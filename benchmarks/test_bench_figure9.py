"""Figure 9: MEMS-cache throughput vs popularity, at fixed budgets.

Paper shape: under skewed popularity (1:99 .. 10:90) both cache
policies beat the no-cache server, with replication on top at 1:99
(lowest effective latency) and striping ahead at milder skews (more
distinct content cached); at 50:50 the cache is not cost-effective.
Cache gains are nearly independent of the bit-rate (panels a vs b).
"""

import pytest

from repro.core.popularity import BimodalPopularity
from repro.experiments.figure9 import run_panel_a, run_panel_b, throughput
from repro.units import KB, MB


def _table_lookup(result, distribution: str, configuration: str) -> list[int]:
    for row in result.table.rows:
        if row[0] == distribution and configuration in str(row[1]):
            return [int(v) for v in row[2:]]
    raise AssertionError(f"row {distribution}/{configuration} missing")


def test_figure9a_low_bitrate(benchmark, show):
    result = benchmark(run_panel_a)
    show(result)
    # Replication wins under heavy skew at every budget.
    repl = _table_lookup(result, "1:99", "replicated")
    stri = _table_lookup(result, "1:99", "striped")
    none = _table_lookup(result, "1:99", "w/o")
    assert all(r >= s for r, s in zip(repl, stri))
    assert all(r > n for r, n in zip(repl, none))
    # Striping overtakes replication at milder skew (more content fits).
    stri_5 = _table_lookup(result, "5:95", "striped")
    repl_5 = _table_lookup(result, "5:95", "replicated")
    assert stri_5[-1] > repl_5[-1]  # at the $200 / k=4 point
    # At uniform popularity the cache loses to plain DRAM.
    uniform_cache = _table_lookup(result, "50:50", "replicated")
    uniform_none = _table_lookup(result, "50:50", "w/o")
    assert all(c < n for c, n in zip(uniform_cache, uniform_none))


def test_figure9b_high_bitrate(benchmark, show):
    result = benchmark(run_panel_b)
    show(result)
    repl = _table_lookup(result, "1:99", "replicated")
    none = _table_lookup(result, "1:99", "w/o")
    # The cache still multiplies throughput at 1 MB/s (Section 5.2.3:
    # the improvement is almost independent of the bit-rate).
    assert repl[-1] > 3 * none[-1]
    # Without a cache, extra budget barely helps at high bit-rates
    # (Figure 9b's "negligible additional improvement" observation).
    assert none[-1] < none[0] * 1.15


def test_figure9_bitrate_independence(benchmark):
    def gains():
        out = {}
        for rate in (10 * KB, 1 * MB):
            base = throughput(rate, 200.0, 4, "none",
                              BimodalPopularity.parse("1:99"))
            cached = throughput(rate, 200.0, 4, "replicated",
                                BimodalPopularity.parse("1:99"))
            out[rate] = cached / base
        return out

    ratios = benchmark(gains)
    low, high = ratios[10 * KB], ratios[1 * MB]
    assert low > 2 and high > 2
    assert low / high == pytest.approx(1.0, abs=0.35)
