"""Planner memoization: repeated solves must come from the cache.

The figure sweeps and the runtime's epoch loop re-ask the planner the
same ``(params, configuration, budget)`` questions many times over; the
:class:`~repro.planner.PlanCache` exists so only the first asking pays
for the doubling+bisection search.  These benchmarks pin that contract:
an identical sweep against a warm planner must run at least 2x faster
than against a cold one (in practice it is orders of magnitude faster —
pure dict lookups), and must add zero new misses.
"""

import time

import pytest

from repro.core.cache_model import CachePolicy
from repro.core.parameters import SystemParameters
from repro.core.popularity import BimodalPopularity
from repro.planner import Configuration, Planner
from repro.units import GB, KB, MB

#: Required cold/warm speedup (the acceptance floor; real runs are
#: typically >100x).
MIN_SPEEDUP = 2.0


def _sweep(planner: Planner) -> float:
    """A representative solve mix: figure-style budget sweeps across
    configurations, plus forward plans over a population grid."""
    params = SystemParameters.table3_default(n_streams=1,
                                             bit_rate=100 * KB, k=2)
    popularity = BimodalPopularity(10, 90)
    checksum = 0.0
    for budget in (100 * MB, 250 * MB, 500 * MB, 1 * GB, 2 * GB):
        checksum += planner.max_streams(params, Configuration.direct(),
                                        budget)
        checksum += planner.max_streams(params, Configuration.buffer(),
                                        budget)
        for policy in (CachePolicy.STRIPED, CachePolicy.REPLICATED):
            checksum += planner.max_streams(
                params, Configuration.cache(policy, popularity), budget)
        checksum += planner.capacity(params, Configuration.buffer(), budget)
    for n in (100, 400, 1_600, 2_400):
        checksum += planner.plan(params.replace(n_streams=n),
                                 Configuration.buffer()).total_dram
    return checksum


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_warm_cache_at_least_2x_faster():
    planner = Planner()
    cold = _timed(lambda: _sweep(planner))
    after_cold = planner.stats()
    assert after_cold["misses"] > 0

    # Best warm time of a few repeats, to shrug off scheduler noise.
    warm = min(_timed(lambda: _sweep(planner)) for _ in range(5))
    after_warm = planner.stats()

    assert after_warm["misses"] == after_cold["misses"], \
        "a warm repeat of an identical sweep must be all hits"
    assert after_warm["hits"] > after_cold["hits"]
    speedup = cold / warm if warm > 0 else float("inf")
    print(f"\nplanner sweep: cold {cold * 1e3:.1f} ms, "
          f"warm {warm * 1e3:.3f} ms ({speedup:.0f}x)")
    assert speedup >= MIN_SPEEDUP


def test_warm_and_cold_agree():
    cold_planner = Planner()
    warm_planner = Planner()
    _sweep(warm_planner)
    assert _sweep(cold_planner) == pytest.approx(_sweep(warm_planner))


def test_warm_sweep_throughput(benchmark):
    # warm_start=False pins the memoization contract in isolation from
    # the hint machinery: a warm repeat of an identical sweep must be
    # answered entirely from the cache — zero new misses.
    planner = Planner(warm_start=False)
    _sweep(planner)  # warm it
    warmed_misses = planner.stats()["misses"]
    benchmark(_sweep, planner)
    stats = planner.stats()
    assert stats["misses"] == warmed_misses
    assert stats["hits"] > 0
