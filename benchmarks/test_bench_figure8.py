"""Figure 8: absolute buffering-cost reduction vs stream count.

Paper shape: savings grow with N along each curve and scale inversely
with the bit-rate — "tens of dollars for high bit-rate streams to tens
of thousands of dollars for lower bit-rates" — and track the Figure 6
DRAM reductions almost proportionally.
"""

from repro.experiments.figure8 import run


def test_figure8(benchmark, show):
    result = benchmark(run)
    show(result)
    peaks = {s.label: max(s.y) for s in result.series if s.y}

    # Savings bands from Section 5.1.2.
    assert peaks["mp3"] > 10_000          # tens of thousands of dollars
    assert peaks["DivX"] > 1_000
    assert peaks["DVD"] > 100
    assert peaks["HDTV"] < 100            # tens of dollars

    # Factor-of-ten ladder between adjacent bit-rates (cost tracks the
    # DRAM reduction, which scales as 1/B at fixed utilisation).
    assert 5 < peaks["mp3"] / peaks["DivX"] < 20
    assert 5 < peaks["DivX"] / peaks["DVD"] < 20

    # Monotone growth along each curve (savings rise with N).
    for series in result.series:
        assert all(a <= b * (1 + 1e-9)
                   for a, b in zip(series.y, series.y[1:]))
