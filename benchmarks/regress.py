"""Record or check the committed benchmark baselines.

A thin wrapper over ``mems-repro bench`` that pins the baseline
location to ``benchmarks/baselines/`` so CI and developers agree on
where the reference ``BENCH_<name>.json`` records live::

    python benchmarks/regress.py record            # refresh baselines
    python benchmarks/regress.py compare OUT_DIR   # gate OUT_DIR vs them
    python benchmarks/regress.py trend             # show the baselines
    python benchmarks/regress.py trend OUT_DIR     # ... vs a current run

``record`` runs the workloads (best-of-``--repeats``) and overwrites
the committed baselines — do this on the reference machine when a PR
deliberately shifts performance, and commit the JSON.  ``record
--only <name>`` (repeatable) refreshes just the named workloads, so a
new workload's baseline can land without re-timing the existing
records on a different machine.  ``compare``
replays recorded results from ``OUT_DIR`` against the baselines and
exits 1 on regression; it never re-runs the workloads, so the gate
itself is deterministic (see ``docs/PERFORMANCE.md``).

``trend`` makes the perf trajectory visible instead of only pass/fail:
it prints every metric of every committed ``BENCH_*.json`` as a table,
and with an ``OUT_DIR`` adds the current run's value and the
direction-aware delta per metric (gated metrics marked ``*``).
``trend --json`` emits the same rows as one machine-readable JSON
document, which CI uploads as an artifact alongside the raw records.
It is purely a report — it never runs workloads and never exits
nonzero on a slowdown; ``compare`` stays the gate.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.cli import main as mems_repro  # noqa: E402

#: The committed reference records.
BASELINE_DIR = Path(__file__).resolve().parent / "baselines"


def _format_value(value: float) -> str:
    return f"{value:.6g}"


def _trend_rows(results: str | None):
    """The trend data: per-metric rows plus current-only workloads."""
    from repro.perf.bench import METRIC_DIRECTIONS, load_records

    baseline = load_records(BASELINE_DIR)
    current = load_records(results) if results is not None else {}
    rows: list[dict] = []
    for name in sorted(baseline):
        record = baseline[name]
        now = current.get(name)
        for metric in sorted(record.metrics):
            direction = METRIC_DIRECTIONS.get(metric)
            then = record.metrics[metric]
            row: dict = {"workload": name, "metric": metric,
                         "gated": direction is not None,
                         "baseline": then}
            if results is not None:
                value = (now.metrics.get(metric)
                         if now is not None else None)
                row["current"] = value
                if value is None or direction is None or then == 0:
                    row["improvement_pct"] = None
                else:
                    change = 100.0 * (value - then) / then
                    row["improvement_pct"] = (change if direction == "higher"
                                              else -change)
            rows.append(row)
    extras = sorted(set(current) - set(baseline))
    return rows, extras


def trend(results: str | None = None, *, as_json: bool = False) -> int:
    """Print the per-metric trajectory of every committed baseline.

    With ``results``, each row also shows the current run's value and
    the direction-aware percentage delta (positive = better).  Metrics
    the regression gate checks are marked with ``*``; the rest are
    informational.  ``as_json`` emits the same rows as one
    machine-readable JSON document (for CI artifacts and dashboards)
    instead of the aligned table.
    """
    import json

    rows, extras = _trend_rows(results)
    if as_json:
        print(json.dumps({"schema": 1, "rows": rows,
                          "current_only": extras}, indent=2))
        return 0
    header = ["workload", "metric", "baseline"]
    if results is not None:
        header += ["current", "delta"]
    table: list[list[str]] = []
    for row in rows:
        marker = "*" if row["gated"] else ""
        cells = [row["workload"], row["metric"] + marker,
                 _format_value(row["baseline"])]
        if results is not None:
            if row["current"] is None:
                cells += ["-", "-"]
            elif row["improvement_pct"] is None:
                cells += [_format_value(row["current"]), "-"]
            else:
                cells += [_format_value(row["current"]),
                          f"{row['improvement_pct']:+.1f}%"]
        table.append(cells)
    widths = [max(len(row[i]) for row in table + [header])
              for i in range(len(header))]
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip())
    for cells in table:
        print("  ".join(c.ljust(w)
                        for c, w in zip(cells, widths)).rstrip())
    if extras:
        print(f"(current-only, no baseline yet: {', '.join(extras)})")
    print("(* = gated by 'compare'; unmarked metrics are informational)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="regress.py",
        description="record/compare the committed benchmark baselines")
    sub = parser.add_subparsers(dest="mode", required=True)
    record = sub.add_parser("record", help="refresh benchmarks/baselines/")
    record.add_argument("--preset", default="small",
                        choices=("tiny", "small", "large", "full"))
    record.add_argument("--repeats", type=int, default=3,
                        help="passes per workload, keeping the best "
                             "(default 3)")
    record.add_argument("--only", action="append", metavar="WORKLOAD",
                        help="record only this workload's baseline "
                             "(repeatable); the other committed records "
                             "are left untouched")
    compare = sub.add_parser(
        "compare", help="gate recorded results against the baselines")
    compare.add_argument("results", metavar="OUT_DIR",
                         help="directory of BENCH_*.json to check")
    compare.add_argument("--tolerance", type=float, default=200.0,
                         help="allowed regression percent; generous by "
                              "default so shared-runner noise never "
                              "fails CI (default 200)")
    trend_cmd = sub.add_parser(
        "trend", help="print the per-metric baseline trajectory table")
    trend_cmd.add_argument("results", metavar="OUT_DIR", nargs="?",
                           default=None,
                           help="optional directory of current "
                                "BENCH_*.json to diff against")
    trend_cmd.add_argument("--json", action="store_true",
                           help="emit the trend rows as one JSON "
                                "document instead of the table")
    args = parser.parse_args(argv)
    if args.mode == "trend":
        return trend(args.results, as_json=args.json)
    if args.mode == "record":
        argv = ["bench", "--preset", args.preset,
                "--repeats", str(args.repeats),
                "--out", str(BASELINE_DIR)]
        for name in args.only or ():
            argv += ["--workload", name]
        return mems_repro(argv)
    return mems_repro(["bench", "--replay", args.results,
                       "--compare", str(BASELINE_DIR),
                       "--tolerance", str(args.tolerance)])


if __name__ == "__main__":
    sys.exit(main())
