"""Record or check the committed benchmark baselines.

A thin wrapper over ``mems-repro bench`` that pins the baseline
location to ``benchmarks/baselines/`` so CI and developers agree on
where the reference ``BENCH_<name>.json`` records live::

    python benchmarks/regress.py record            # refresh baselines
    python benchmarks/regress.py compare OUT_DIR   # gate OUT_DIR vs them

``record`` runs the workloads (best-of-``--repeats``) and overwrites
the committed baselines — do this on the reference machine when a PR
deliberately shifts performance, and commit the JSON.  ``record
--only <name>`` (repeatable) refreshes just the named workloads, so a
new workload's baseline can land without re-timing the existing
records on a different machine.  ``compare``
replays recorded results from ``OUT_DIR`` against the baselines and
exits 1 on regression; it never re-runs the workloads, so the gate
itself is deterministic (see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.cli import main as mems_repro  # noqa: E402

#: The committed reference records.
BASELINE_DIR = Path(__file__).resolve().parent / "baselines"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="regress.py",
        description="record/compare the committed benchmark baselines")
    sub = parser.add_subparsers(dest="mode", required=True)
    record = sub.add_parser("record", help="refresh benchmarks/baselines/")
    record.add_argument("--preset", default="small",
                        choices=("tiny", "small", "full"))
    record.add_argument("--repeats", type=int, default=3,
                        help="passes per workload, keeping the best "
                             "(default 3)")
    record.add_argument("--only", action="append", metavar="WORKLOAD",
                        help="record only this workload's baseline "
                             "(repeatable); the other committed records "
                             "are left untouched")
    compare = sub.add_parser(
        "compare", help="gate recorded results against the baselines")
    compare.add_argument("results", metavar="OUT_DIR",
                         help="directory of BENCH_*.json to check")
    compare.add_argument("--tolerance", type=float, default=200.0,
                         help="allowed regression percent; generous by "
                              "default so shared-runner noise never "
                              "fails CI (default 200)")
    args = parser.parse_args(argv)
    if args.mode == "record":
        argv = ["bench", "--preset", args.preset,
                "--repeats", str(args.repeats),
                "--out", str(BASELINE_DIR)]
        for name in args.only or ():
            argv += ["--workload", name]
        return mems_repro(argv)
    return mems_repro(["bench", "--replay", args.results,
                       "--compare", str(BASELINE_DIR),
                       "--tolerance", str(args.tolerance)])


if __name__ == "__main__":
    sys.exit(main())
