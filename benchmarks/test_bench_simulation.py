"""Event-simulator benchmarks: schedule execution at realistic scale.

These time the cross-validation machinery itself (the paper has no
corresponding figure) and re-assert the core invariant — the analytical
buffer sizes execute jitter-free — at populations near the admission
limit.
"""

from repro.core.buffer_model import design_mems_buffer
from repro.core.cache_model import CachePolicy, design_mems_cache
from repro.core.parameters import SystemParameters
from repro.core.popularity import BimodalPopularity
from repro.simulation.pipelines import (
    simulate_buffer_pipeline,
    simulate_cache_pipeline,
    simulate_direct_pipeline,
)
from repro.units import KB, MB


def test_bench_direct_pipeline(benchmark):
    params = SystemParameters.table3_default(n_streams=250,
                                             bit_rate=1 * MB, k=2)
    report = benchmark(lambda: simulate_direct_pipeline(params, n_cycles=20))
    assert report.jitter_free
    assert report.resources["disk"].worst_cycle_utilization > 0.8


def test_bench_buffer_pipeline(benchmark):
    params = SystemParameters.table3_default(n_streams=200,
                                             bit_rate=1 * MB, k=2)
    design = design_mems_buffer(params)
    report = benchmark(
        lambda: simulate_buffer_pipeline(design, n_hyper_periods=2))
    assert report.jitter_free
    assert report.notes["steady_short_reads"] == 0


def test_bench_cache_pipeline(benchmark):
    params = SystemParameters.table3_default(n_streams=1_000,
                                             bit_rate=100 * KB, k=4)
    design = design_mems_cache(params, CachePolicy.REPLICATED,
                               BimodalPopularity(5, 95))
    report = benchmark(
        lambda: simulate_cache_pipeline(design, n_cycles=15))
    assert report.jitter_free
