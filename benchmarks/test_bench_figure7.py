"""Figure 7: cost-reduction sensitivity to the disk/MEMS latency ratio.

Paper shape (panel a): reduction grows with the latency ratio and is
bounded by the sunk $20 MEMS cost; low/medium bit-rates reach 60-80%
while the 10 MB/s curve stays far lower (the paper reports ~30%; with
our calibrated elevator latency the HDTV baseline DRAM is so small
that the bank does not pay for itself at all — same design guideline,
see EXPERIMENTS.md).  Panel (b): 25/50/75% regions cover most of the
low-bit-rate half of the plane.
"""

from repro.experiments.figure7 import run_panel_a, run_panel_b


def test_figure7a(benchmark, show):
    result = benchmark(run_panel_a)
    show(result)
    by_label = {s.label: s for s in result.series}

    # Monotone in the latency ratio for every bit-rate.
    for series in result.series:
        assert all(a <= b + 1e-9 for a, b in zip(series.y, series.y[1:]))

    # Design principle (i): big wins for low/medium bit-rates...
    ratio5 = by_label["mp3"].x.index(5.0)
    assert by_label["mp3"].y[ratio5] > 55
    assert by_label["DivX"].y[ratio5] > 55
    assert by_label["DVD"].y[ratio5] > 55
    # ... and HDTV-class streams gain far less (or lose outright).
    assert by_label["HDTV"].y[ratio5] < 40

    # The $20 bank caps the reduction strictly below 100%.
    assert max(max(s.y) for s in result.series) < 100.0


def test_figure7b_contours(benchmark, show):
    result = benchmark(lambda: run_panel_b(n_rate_points=10,
                                           n_ratio_points=8))
    show(result)
    rows = result.series  # one per bit-rate, ascending
    # Low-bit-rate, high-ratio corner: >75% region exists.
    assert rows[0].y[-1] > 70
    # High-bit-rate rows never reach the 75% band.
    assert max(rows[-1].y) < 75
    # At the highest ratio the >70% band covers the low and medium
    # bit-rates (the paper's Figure 7(b): "cost-effective almost over
    # the entire parameter space") and collapses at HDTV-class rates.
    top_ratio = [row.y[-1] for row in rows]
    assert all(v > 70 for v in top_ratio[:-2])
    assert top_ratio[-1] < 25
