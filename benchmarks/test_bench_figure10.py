"""Figure 10: throughput improvement vs MEMS cache size (striped, $100).

Paper shape: each skewed distribution has a unique optimal bank size
(interior k), with improvements up to ~2.4x (= +140%); at 50:50 the
cache always degrades performance; past the optimum, displaced DRAM
outweighs the extra cache capacity and the curves fall.
"""

from repro.experiments.figure10 import run


def test_figure10(benchmark, show):
    result = benchmark(run)
    show(result)
    by_label = {s.label: s for s in result.series}

    # Skewed distributions peak strictly inside the k range.
    for spec in ("1:99", "5:95", "10:90"):
        series = by_label[spec]
        best = max(series.y)
        best_k = series.x[series.y.index(best)]
        assert best > 0
        assert series.x[0] < best_k < series.x[-1], \
            f"{spec}: optimum at boundary k={best_k}"
        # Past the optimum the curve declines.
        after = [y for x, y in zip(series.x, series.y) if x > best_k]
        assert after and after[-1] < best

    # Headline magnitude: the paper reports improvements up to ~2.4x.
    top = max(max(s.y) for s in by_label.values())
    assert 100 < top < 300

    # Uniform popularity: the cache always degrades performance.
    assert all(v < 0 for v in by_label["50:50"].y)

    # Milder skew, smaller peak.
    assert max(by_label["1:99"].y) > max(by_label["10:90"].y) > \
        max(by_label["20:80"].y)
