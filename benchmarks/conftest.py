"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures via the
experiment runners, asserts its qualitative shape against what the
paper reports, and (with ``-s``) prints the regenerated rows/series.
"""

from __future__ import annotations

import pytest

from repro.experiments.base import ExperimentResult


@pytest.fixture
def show():
    """Print an experiment result so ``pytest -s`` shows the artifact."""

    def _show(result: ExperimentResult) -> ExperimentResult:
        print()
        print(result.render(width=70, height=14))
        return result

    return _show
