"""Online-runtime benchmarks: event throughput and steady-state memory.

The runtime is the first subsystem whose cost scales with *traffic*
rather than with a figure's sweep grid, so these benchmarks pin down
the two numbers an operator sizes by: how many calendar events per
second one core sustains, and how much memory a long run accumulates
(the audit log and metrics snapshots are the only unbounded state).
"""

import tracemalloc

from repro.runtime import build_scenario, run_runtime

#: ~10k sessions: 160/600 arrivals/s over 40k simulated seconds.
_HORIZON = 40_000.0


def _ten_k_session_config(seed: int = 0):
    return build_scenario("steady-disk", seed=seed, horizon=_HORIZON)


def test_bench_runtime_event_throughput(benchmark):
    def run():
        return run_runtime(_ten_k_session_config())

    result = benchmark(run)
    assert result.totals["arrivals"] >= 10_000
    if benchmark.stats:  # absent under --benchmark-disable
        events_per_second = result.events_executed / benchmark.stats["mean"]
        benchmark.extra_info["events_per_second"] = round(events_per_second)
        benchmark.extra_info["sim_events"] = result.events_executed
        # One core should clear tens of thousands of calendar events/sec.
        assert events_per_second > 10_000


def test_bench_runtime_steady_state_memory():
    tracemalloc.start()
    try:
        result = run_runtime(_ten_k_session_config())
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert result.totals["arrivals"] >= 10_000
    peak_mb = peak / 1e6
    print(f"\n10k-session run: peak {peak_mb:.1f} MB, "
          f"{len(result.events)} audit events, "
          f"{len(result.metrics.snapshots)} snapshots")
    # The audit log dominates; 10k sessions must stay well under 100 MB.
    assert peak_mb < 100


def test_bench_adaptive_cache_epoch_cost(benchmark):
    config = build_scenario("adaptive-cache", seed=0)

    def run():
        return run_runtime(build_scenario("adaptive-cache", seed=0))

    result = benchmark(run)
    assert result.totals["replans"] > 0
    assert result.horizon == config.horizon
