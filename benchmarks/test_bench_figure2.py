"""Figure 2: effective device throughput vs average IO size.

Paper shape: both curves rise toward their media rates; the MEMS curve
(charged max latency) dominates the disk curve (charged average
latency) at small/medium IOs, and reaches a given utilisation with an
order-of-magnitude smaller IOs.
"""

from repro.experiments.figure2 import run


def test_figure2(benchmark, show):
    result = benchmark(run)
    show(result)
    mems = next(s for s in result.series if "MEMS" in s.label)
    disk = next(s for s in result.series if "Disk" in s.label)

    # Asymptotes: ~320 MB/s (MEMS) and ~300 MB/s (disk), approached
    # from below.
    assert 300 < mems.y[-1] <= 320
    assert 250 < disk.y[-1] <= 300

    # Crossover structure: MEMS above disk through the small-IO regime.
    assert all(m > d for m, d in zip(mems.y[:40], disk.y[:40]))

    # Order-of-magnitude smaller IOs for 50% utilisation (paper's point
    # about masking access overheads).
    note = result.notes[0]
    assert "smaller on MEMS" in note
