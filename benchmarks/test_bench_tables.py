"""Tables 1 and 3: regenerate the device catalogs from the models."""

from repro.experiments.tables import run_table1, run_table3


def test_table1(benchmark, show):
    result = benchmark(run_table1)
    show(result)
    assert result.table is not None
    # 2002 and 2007 rows for each of the three media.
    assert len(result.table.rows) == 6
    # The catalog cross-checks against the device models must all pass.
    assert not any("MISMATCH" in note for note in result.notes)


def test_table3(benchmark, show):
    result = benchmark(run_table3)
    show(result)
    rendered = result.table.render()
    # The paper's case-study figures.
    assert "20,000" in rendered       # FutureDisk RPM
    assert "300" in rendered          # disk bandwidth MB/s
    assert "320" in rendered          # G3 bandwidth MB/s
    assert "0.45" in rendered         # G3 full-stroke seek ms
    assert "0.14" in rendered         # G3 settle ms
    # The paper reports a latency ratio near 5 for this device pair.
    ratio_note = next(n for n in result.notes if "latency ratio" in n)
    ratio = float(ratio_note.split("=")[1].split()[0])
    assert 4.0 < ratio < 6.0
