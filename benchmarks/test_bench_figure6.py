"""Figure 6: DRAM requirement vs stream count, without/with MEMS buffer.

Paper shape: log-log near-linear growth per bit-rate; at a fully
utilised disk the no-MEMS DRAM spans ~1 GB (HDTV) to ~1 TB (mp3); the
MEMS buffer cuts it by an order of magnitude at every bit-rate.
"""


from repro.experiments.figure6 import reduction_factors, run


def test_figure6a_without_mems(benchmark, show):
    result = benchmark(lambda: run(with_mems=False))
    show(result)
    by_label = {s.label: s for s in result.series}
    # Terminal (near-saturation) DRAM values, in GB.
    assert 300 < max(by_label["mp3"].y) < 3_000        # ~1 TB
    assert 0.3 < max(by_label["HDTV"].y) < 3.0         # ~1 GB
    # At a fixed N every lower bit-rate needs less DRAM per stream but
    # supports proportionally more streams; curves are monotone.
    for series in result.series:
        assert series.y == sorted(series.y)


def test_figure6b_with_mems(benchmark, show):
    result = benchmark(lambda: run(with_mems=True))
    show(result)
    for series in result.series:
        assert series.y == sorted(series.y)


def test_figure6_order_of_magnitude_reduction(benchmark):
    factors = benchmark(reduction_factors)
    # Section 5.1.1: "the DRAM requirement is reduced by an order of
    # magnitude to support a given system throughput."
    for label, factor in factors.items():
        assert factor > 8, f"{label}: only {factor:.1f}x"
