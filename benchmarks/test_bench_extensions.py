"""Benchmarks for the extension studies (DESIGN.md section 6).

These are not paper artifacts; they regenerate the extension
experiments with the same shape-assertion discipline as the paper
benches.
"""

import pytest

from repro.experiments.extensions import (
    run_ext_blocking,
    run_ext_hybrid,
    run_ext_regions,
    run_ext_robustness,
    run_ext_startup,
)


def test_bench_ext_startup(benchmark, show):
    result = benchmark(run_ext_startup)
    show(result)
    worst = {(row[0], row[1]): float(row[3]) for row in result.table.rows}
    for media in ("DivX", "DVD"):
        assert worst[(media, "cache")] < worst[(media, "direct")]
        assert worst[(media, "buffer (pipeline fill)")] > \
            100 * worst[(media, "direct")]
        # The bypass policy brings the buffer's startup back within one
        # disk cycle of the direct server.
        assert worst[(media, "buffer (bypass)")] < \
            worst[(media, "buffer (pipeline fill)")]


def test_bench_ext_blocking(benchmark, show):
    result = benchmark(lambda: run_ext_blocking(budgets_gb=(1.0, 2.0)))
    show(result)
    by_key = {(row[0], row[1]): float(row[3]) for row in result.table.rows}
    for budget in ("1 GB", "2 GB"):
        assert by_key[(budget, "MEMS buffer")] < \
            by_key[(budget, "disk only")]
        assert by_key[(budget, "MEMS cache")] < \
            by_key[(budget, "disk only")]


def test_bench_ext_hybrid(benchmark, show):
    result = benchmark(run_ext_hybrid)
    show(result)
    for series in result.series:
        # Every split evaluated; the best split beats the worst by a
        # meaningful margin under skewed popularity.
        assert len(series.x) == 5
    skewed = next(s for s in result.series if s.label == "1:99")
    assert max(skewed.y) > 1.5 * min(skewed.y)


def test_bench_ext_robustness(benchmark, show):
    result = benchmark(lambda: run_ext_robustness(n_streams=40,
                                                  n_cycles=25))
    show(result)
    series = result.series[0]
    # Starvation at the bare analytical minimum, none with a generous
    # prefilled cushion.
    assert series.y[0] > 0
    assert series.y[-1] == pytest.approx(0.0, abs=1e-6)


def test_bench_ext_regions(benchmark, show):
    result = benchmark(lambda: run_ext_regions(n_rate_points=5,
                                               n_budget_points=4))
    show(result)
    map_note = next(note for note in result.notes if "b=buffer" in note)
    # Both MEMS regions appear on the map.
    assert "b" in map_note.split("rows:")[0]
    assert "c" in map_note.split("rows:")[0]
