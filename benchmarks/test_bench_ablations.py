"""Ablation benchmarks for the design choices the paper argues in prose.

* Section 3.1.2: routing whole disk IOs to single MEMS devices vs
  striping each IO across the bank (striping shrinks the IO and costs
  k seeks, hurting throughput).
* Section 5.1: charging the *maximum* MEMS latency (the paper's
  conservative choice) vs the average — how much DRAM the conservatism
  costs.
* Section 6 / related work: elevator vs EDF disk scheduling — seek
  travel per cycle.
* Section 7 (future work): the hybrid buffer+cache split vs the pure
  configurations.
"""

import random

import pytest

from repro.core.buffer_model import design_mems_buffer
from repro.core.cache_model import CachePolicy
from repro.core.hybrid import hybrid_split_curve, optimize_hybrid_split
from repro.core.parameters import SystemParameters
from repro.core.popularity import BimodalPopularity
from repro.devices.catalog import MEMS_G3
from repro.scheduling.elevator import ElevatorScheduler
from repro.scheduling.requests import IoKind, IoRequest
from repro.units import GB, KB, MB


def test_ablation_whole_io_routing_vs_striping(benchmark):
    """Whole-IO round-robin routing beats striping each disk IO k ways."""

    def throughput_ratio() -> float:
        k = 4
        io_size = 4 * MB  # a disk-side IO landing in the buffer
        whole = MEMS_G3.effective_throughput(io_size, worst_case=True) * k
        # Striping: every device moves io_size/k but still pays a full
        # (lock-step) positioning delay per IO.
        striped = MEMS_G3.effective_throughput(io_size / k,
                                               worst_case=True) * k
        return whole / striped

    ratio = benchmark(throughput_ratio)
    # Striping the 4 MB IO four ways costs measurable bank throughput.
    assert ratio > 1.1


def test_ablation_max_vs_average_mems_latency(benchmark):
    """The paper's worst-case MEMS latency costs ~30-60% extra DRAM."""

    def dram_pair() -> tuple[float, float]:
        conservative = SystemParameters.table3_default(
            n_streams=1_000, bit_rate=100 * KB, k=2)
        relaxed = conservative.replace(
            l_mems=MEMS_G3.average_access_time())
        worst = design_mems_buffer(conservative, quantise=False).total_dram
        average = design_mems_buffer(relaxed, quantise=False).total_dram
        return worst, average

    worst, average = benchmark(dram_pair)
    assert worst > average
    # The conservatism factor equals the latency ratio (DRAM is linear
    # in L_mems here).
    expected = MEMS_G3.max_access_time() / MEMS_G3.average_access_time()
    assert worst / average == pytest.approx(expected, rel=0.01)


def test_ablation_elevator_vs_edf_travel(benchmark):
    """Elevator sweeps travel a small fraction of EDF's head movement."""

    def travel_ratio() -> float:
        rng = random.Random(17)
        requests = [
            IoRequest(deadline=rng.random(), stream_id=i, kind=IoKind.READ,
                      size=1 * MB, position=rng.random())
            for i in range(256)
        ]
        elevator = ElevatorScheduler(head_position=0.0)
        sweep = elevator.sweep_distance(requests)
        edf_order = sorted(requests)
        positions = [r.position for r in edf_order]
        edf_travel = sum(abs(b - a)
                         for a, b in zip([0.0] + positions, positions))
        return edf_travel / sweep

    ratio = benchmark(travel_ratio)
    # With 256 pending requests EDF seeks ~40x more than one C-LOOK
    # sweep; anything above 10x already demonstrates the trade-off.
    assert ratio > 10


def test_ablation_hybrid_vs_pure_configurations(benchmark):
    """The future-work hybrid split never loses to its pure endpoints."""

    params = SystemParameters.table3_default(n_streams=1, bit_rate=100 * KB,
                                             k=4)
    popularity = BimodalPopularity(5, 95)

    def solve():
        best = optimize_hybrid_split(params, policy=CachePolicy.STRIPED,
                                     popularity=popularity,
                                     dram_budget=2 * GB)
        curve = hybrid_split_curve(params, policy=CachePolicy.STRIPED,
                                   popularity=popularity,
                                   dram_budget=2 * GB)
        return best, curve

    best, curve = benchmark(solve)
    pure_buffer = curve[0].max_streams
    pure_cache = curve[-1].max_streams
    assert best.max_streams >= max(pure_buffer, pure_cache) * (1 - 1e-9)
