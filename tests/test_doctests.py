"""Run the doctest examples embedded in the library docstrings."""

import doctest

import pytest

import repro.units


@pytest.mark.parametrize("module", [repro.units])
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
    assert results.failed == 0
