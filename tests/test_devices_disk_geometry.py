"""Zoned disk geometry and LBA mapping."""

import pytest

from repro.devices.disk_geometry import (
    SECTOR_SIZE,
    DiskGeometry,
    DiskZone,
    PhysicalAddress,
)
from repro.errors import ConfigurationError
from repro.units import GB


@pytest.fixture
def small_geometry() -> DiskGeometry:
    """Two zones, hand-countable: 4 heads, 10+10 cylinders."""
    return DiskGeometry(n_heads=4, zones=[
        DiskZone(first_cylinder=0, n_cylinders=10, sectors_per_track=100),
        DiskZone(first_cylinder=10, n_cylinders=10, sectors_per_track=60),
    ])


class TestZoneValidation:
    def test_zone_fields_validated(self):
        with pytest.raises(ConfigurationError):
            DiskZone(first_cylinder=-1, n_cylinders=10, sectors_per_track=50)
        with pytest.raises(ConfigurationError):
            DiskZone(first_cylinder=0, n_cylinders=0, sectors_per_track=50)
        with pytest.raises(ConfigurationError):
            DiskZone(first_cylinder=0, n_cylinders=10, sectors_per_track=0)

    def test_zones_must_tile_contiguously(self):
        with pytest.raises(ConfigurationError):
            DiskGeometry(n_heads=2, zones=[
                DiskZone(first_cylinder=0, n_cylinders=10,
                         sectors_per_track=50),
                DiskZone(first_cylinder=11, n_cylinders=10,
                         sectors_per_track=40),
            ])

    def test_needs_at_least_one_zone(self):
        with pytest.raises(ConfigurationError):
            DiskGeometry(n_heads=2, zones=[])


class TestCounting(object):
    def test_totals(self, small_geometry):
        geo = small_geometry
        assert geo.n_cylinders == 20
        assert geo.total_sectors == 10 * 4 * 100 + 10 * 4 * 60
        assert geo.capacity_bytes == geo.total_sectors * SECTOR_SIZE

    def test_zone_lookup(self, small_geometry):
        assert small_geometry.zone_of_cylinder(0).sectors_per_track == 100
        assert small_geometry.zone_of_cylinder(9).sectors_per_track == 100
        assert small_geometry.zone_of_cylinder(10).sectors_per_track == 60
        with pytest.raises(ConfigurationError):
            small_geometry.zone_of_cylinder(20)


class TestLbaMapping:
    def test_first_lba(self, small_geometry):
        addr = small_geometry.lba_to_physical(0)
        assert addr == PhysicalAddress(cylinder=0, head=0, sector=0)

    def test_track_then_head_then_cylinder_order(self, small_geometry):
        assert small_geometry.lba_to_physical(99).sector == 99
        addr = small_geometry.lba_to_physical(100)
        assert (addr.cylinder, addr.head, addr.sector) == (0, 1, 0)
        addr = small_geometry.lba_to_physical(400)
        assert (addr.cylinder, addr.head, addr.sector) == (1, 0, 0)

    def test_zone_boundary_crossing(self, small_geometry):
        first_inner_lba = 10 * 4 * 100
        addr = small_geometry.lba_to_physical(first_inner_lba)
        assert (addr.cylinder, addr.head, addr.sector) == (10, 0, 0)

    def test_roundtrip_everywhere(self, small_geometry):
        geo = small_geometry
        for lba in (0, 1, 99, 100, 399, 400, 3_999, 4_000, 5_239,
                    geo.total_sectors - 1):
            assert geo.physical_to_lba(geo.lba_to_physical(lba)) == lba

    def test_out_of_range_rejected(self, small_geometry):
        with pytest.raises(ConfigurationError):
            small_geometry.lba_to_physical(small_geometry.total_sectors)
        with pytest.raises(ConfigurationError):
            small_geometry.lba_to_physical(-1)

    def test_cylinder_of_byte(self, small_geometry):
        assert small_geometry.cylinder_of_byte(0) == 0
        one_cylinder = 4 * 100 * SECTOR_SIZE
        assert small_geometry.cylinder_of_byte(one_cylinder) == 1


class TestSynthesize:
    def test_capacity_close_to_request(self):
        geo = DiskGeometry.synthesize(capacity_bytes=1_000 * GB)
        assert geo.capacity_bytes == pytest.approx(1_000 * GB, rel=0.01)

    def test_outer_to_inner_rate_ratio(self):
        geo = DiskGeometry.synthesize(capacity_bytes=1_000 * GB,
                                      outer_to_inner_ratio=300 / 170)
        outer = geo.zones[0].sectors_per_track
        inner = geo.zones[-1].sectors_per_track
        assert outer / inner == pytest.approx(300 / 170, rel=0.05)

    def test_track_transfer_rate_scales_with_zone(self):
        geo = DiskGeometry.synthesize(capacity_bytes=1_000 * GB)
        outer = geo.track_transfer_rate(0, rpm=20_000)
        inner = geo.track_transfer_rate(geo.n_cylinders - 1, rpm=20_000)
        assert outer > inner

    def test_invalid_requests_rejected(self):
        with pytest.raises(ConfigurationError):
            DiskGeometry.synthesize(capacity_bytes=0)
        with pytest.raises(ConfigurationError):
            DiskGeometry.synthesize(capacity_bytes=1 * GB, n_zones=0)
        with pytest.raises(ConfigurationError):
            DiskGeometry.synthesize(capacity_bytes=1 * GB,
                                    outer_to_inner_ratio=0.5)
