"""The unified planning layer: equivalence with the legacy solvers.

The planner is a refactor, not a remodel: for every configuration the
:class:`repro.planner.Planner` must reproduce the legacy entry points
bit-for-bit — the forward designs (`design_mems_buffer`,
`design_mems_cache`, Theorem 1), the continuous inverses
(`max_streams_*`), the integer admission capacity, and the hybrid
split.  The cache tests pin the memoization contract: a hit returns
the identical object, ``params.replace`` is a fresh key, and the LRU
bound evicts oldest-first.
"""

import pytest

from repro.core.buffer_model import design_mems_buffer
from repro.core.cache_model import CachePolicy, design_mems_cache
from repro.core.capacity import (
    max_streams_with_buffer,
    max_streams_with_cache,
    max_streams_without_mems,
    streams_supported,
)
from repro.core.hybrid import hybrid_throughput
from repro.core.parameters import SystemParameters
from repro.core.popularity import BimodalPopularity
from repro.core.theorems import min_buffer_disk_dram
from repro.errors import AdmissionError, ConfigurationError
from repro.planner import (
    Configuration,
    ConfigurationKind,
    PlanCache,
    Planner,
    default_planner,
    max_feasible_int,
    max_feasible_real,
)
from repro.scheduling.admission import AdmissionController
from repro.units import GB, KB, MB

#: The equivalence grid: (n_streams, k, bit_rate, dram_budget).
GRID = [
    (50, 1, 100 * KB, 100 * MB),
    (400, 2, 100 * KB, 500 * MB),
    (2_400, 2, 100 * KB, 1 * GB),
    (200, 4, 500 * KB, 2 * GB),
]

POPULARITY = BimodalPopularity(10, 90)


def _params(n, k, bit_rate) -> SystemParameters:
    return SystemParameters.table3_default(n_streams=n, bit_rate=bit_rate,
                                           k=k)


class TestForwardEquivalence:
    @pytest.mark.parametrize("n,k,bit_rate,_budget", GRID)
    def test_direct_matches_theorem1(self, n, k, bit_rate, _budget):
        params = _params(n, k, bit_rate)
        plan = Planner().plan(params, Configuration.direct())
        assert plan.feasible
        assert plan.total_dram == n * min_buffer_disk_dram(params)

    @pytest.mark.parametrize("n,k,bit_rate,_budget", GRID)
    def test_buffer_matches_design(self, n, k, bit_rate, _budget):
        params = _params(n, k, bit_rate)
        plan = Planner().plan(params, Configuration.buffer())
        design = design_mems_buffer(params, quantise=False)
        assert plan.feasible
        assert plan.total_dram == design.total_dram
        assert plan.t_disk == design.t_disk
        assert plan.t_mems == design.t_mems
        assert plan.cycle_floor == design.cycle_floor
        assert plan.design == design

    @pytest.mark.parametrize("n,k,bit_rate,_budget", GRID)
    @pytest.mark.parametrize("policy", list(CachePolicy))
    def test_cache_matches_design(self, n, k, bit_rate, _budget, policy):
        params = _params(n, k, bit_rate)
        plan = Planner().plan(params, Configuration.cache(policy, POPULARITY))
        design = design_mems_cache(params, policy, POPULARITY)
        assert plan.feasible
        assert plan.total_dram == design.total_dram
        assert plan.hit_rate == design.hit_rate
        assert plan.capacity_fraction == design.cached_fraction

    def test_quantised_buffer_matches_design(self):
        params = _params(2_400, 2, 100 * KB)
        plan = Planner().plan(params, Configuration.buffer(), quantise=True)
        design = design_mems_buffer(params, quantise=True)
        assert plan.total_dram == design.total_dram

    def test_infeasible_point_reports_not_raises(self):
        # 100k streams at 100 KB/s saturates the FutureDisk.
        params = _params(100_000, 2, 100 * KB)
        plan = Planner().plan(params, Configuration.buffer())
        assert not plan.feasible
        assert isinstance(plan.failure, AdmissionError)
        assert plan.total_dram == 0.0
        with pytest.raises(AdmissionError):
            plan.require()

    def test_require_returns_self_when_feasible(self):
        params = _params(400, 2, 100 * KB)
        plan = Planner().plan(params, Configuration.buffer())
        assert plan.require() is plan


class TestInverseEquivalence:
    @pytest.mark.parametrize("n,k,bit_rate,budget", GRID)
    def test_direct_matches_wrapper(self, n, k, bit_rate, budget):
        params = _params(n, k, bit_rate)
        assert (Planner().max_streams(params, Configuration.direct(), budget)
                == max_streams_without_mems(params, budget))

    @pytest.mark.parametrize("n,k,bit_rate,budget", GRID)
    def test_buffer_matches_wrapper(self, n, k, bit_rate, budget):
        params = _params(n, k, bit_rate)
        assert (Planner().max_streams(params, Configuration.buffer(), budget)
                == max_streams_with_buffer(params, budget))

    @pytest.mark.parametrize("n,k,bit_rate,budget", GRID)
    def test_cache_matches_wrapper(self, n, k, bit_rate, budget):
        params = _params(n, k, bit_rate)
        policy = CachePolicy.STRIPED
        assert (Planner().max_streams(
            params, Configuration.cache(policy, POPULARITY), budget)
            == max_streams_with_cache(params, policy, POPULARITY, budget))

    def test_inverse_saturates_budget(self):
        # Round-trip property: the forward model at the inverse solution
        # lands on the budget (when DRAM, not bandwidth, binds).
        params = _params(1, 2, 100 * KB)
        budget = 500 * MB
        n = Planner().max_streams(params, Configuration.buffer(), budget)
        design = design_mems_buffer(params.replace(n_streams=n),
                                    quantise=False)
        assert design.total_dram == pytest.approx(budget, rel=1e-6)

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            Planner().max_streams(_params(1, 2, 100 * KB),
                                  Configuration.buffer(), -1.0)

    def test_streams_supported_floors_planner_result(self):
        params = _params(1, 2, 100 * KB)
        continuous = Planner().max_streams(params, Configuration.buffer(),
                                           500 * MB)
        assert streams_supported(params, 500 * MB,
                                 configuration="buffer") == int(continuous)


class TestCapacityEquivalence:
    @pytest.mark.parametrize("n,k,bit_rate,budget", GRID)
    @pytest.mark.parametrize("configuration", ["none", "buffer", "cache"])
    def test_matches_admission_controller(self, n, k, bit_rate, budget,
                                          configuration):
        params = _params(n, k, bit_rate)
        policy = CachePolicy.REPLICATED if configuration == "cache" else None
        popularity = POPULARITY if configuration == "cache" else None
        controller = AdmissionController(
            params, budget, configuration=configuration, policy=policy,
            popularity=popularity)
        spec = Configuration.from_legacy(configuration, policy=policy,
                                         popularity=popularity)
        assert Planner().capacity(params, spec, budget) \
            == controller.capacity()

    def test_capacity_is_exactly_maximal(self):
        params = _params(1, 2, 100 * KB)
        budget = 200 * MB
        planner = Planner()
        spec = Configuration.buffer()
        cap = planner.capacity(params, spec, budget)
        assert planner.plan(params.replace(n_streams=cap),
                            spec).fits(budget)
        assert not planner.plan(params.replace(n_streams=cap + 1),
                                spec).fits(budget)

    def test_limit_clamps_the_search(self):
        params = _params(1, 2, 100 * KB)
        cap = Planner().capacity(params, Configuration.direct(), 1 * GB,
                                 limit=10)
        assert cap == 10

    def test_zero_budget_zero_capacity(self):
        params = _params(1, 2, 100 * KB)
        assert Planner().capacity(params, Configuration.buffer(), 0.0) == 0


class TestHybridEquivalence:
    @pytest.mark.parametrize("k_cache", [0, 1, 2])
    def test_matches_hybrid_throughput(self, k_cache):
        params = _params(1, 2, 100 * KB)
        budget = 1 * GB
        design = hybrid_throughput(params, k_cache=k_cache,
                                   policy=CachePolicy.STRIPED,
                                   popularity=POPULARITY,
                                   dram_budget=budget)
        spec = Configuration.hybrid(k_cache, params.k - k_cache,
                                    CachePolicy.STRIPED, POPULARITY)
        planner = Planner()
        assert planner.max_streams(params, spec, budget) \
            == design.max_streams
        assert planner.plan(params.replace(n_streams=0),
                            spec).hit_rate == design.hit_rate

    def test_hybrid_needs_finite_sizes(self):
        params = _params(1, 2, 100 * KB).replace(size_mems=None)
        spec = Configuration.hybrid(1, 1, CachePolicy.STRIPED, POPULARITY)
        with pytest.raises(ConfigurationError):
            Planner().plan(params, spec)


class TestPlanCache:
    def test_hit_returns_identical_object(self):
        planner = Planner()
        params = _params(400, 2, 100 * KB)
        first = planner.plan(params, Configuration.buffer())
        second = planner.plan(params, Configuration.buffer())
        assert second is first
        assert planner.stats()["hits"] == 1
        assert planner.stats()["misses"] == 1

    def test_replace_is_a_fresh_key(self):
        planner = Planner()
        params = _params(400, 2, 100 * KB)
        planner.plan(params, Configuration.buffer())
        misses = planner.stats()["misses"]
        planner.plan(params.replace(n_streams=401), Configuration.buffer())
        assert planner.stats()["misses"] == misses + 1

    def test_inverse_solves_share_forward_entries(self):
        planner = Planner()
        params = _params(1, 2, 100 * KB)
        planner.max_streams(params, Configuration.buffer(), 500 * MB)
        cold = planner.stats()
        # A repeat of the same query is one pure hit: no new misses.
        planner.max_streams(params, Configuration.buffer(), 500 * MB)
        warm = planner.stats()
        assert warm["misses"] == cold["misses"]
        assert warm["hits"] == cold["hits"] + 1

    def test_placeholder_n_streams_is_normalised(self):
        # Inverse solves ignore n_streams, and so must their cache keys.
        planner = Planner()
        budget = 500 * MB
        first = planner.max_streams(_params(1, 2, 100 * KB),
                                    Configuration.buffer(), budget)
        hits = planner.stats()["hits"]
        second = planner.max_streams(_params(99, 2, 100 * KB),
                                     Configuration.buffer(), budget)
        assert second == first
        assert planner.stats()["hits"] == hits + 1

    def test_lru_evicts_oldest_first(self):
        cache = PlanCache(maxsize=2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: 1)  # refresh "a"
        cache.get_or_compute("c", lambda: 3)  # evicts "b"
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_clear_resets_entries_not_counters(self):
        cache = PlanCache()
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("a", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_compute_errors_cache_nothing(self):
        cache = PlanCache()

        def boom():
            raise ValueError("nope")

        with pytest.raises(ValueError):
            cache.get_or_compute("a", boom)
        assert "a" not in cache
        assert cache.stats()["misses"] == 1

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ConfigurationError):
            PlanCache(maxsize=0)

    def test_default_planner_is_shared(self):
        assert default_planner() is default_planner()


class TestConfigurationSpec:
    def test_cache_requires_policy_and_popularity(self):
        with pytest.raises(ConfigurationError):
            Configuration(kind=ConfigurationKind.CACHE)

    def test_hybrid_requires_split(self):
        with pytest.raises(ConfigurationError):
            Configuration(kind=ConfigurationKind.HYBRID,
                          policy=CachePolicy.STRIPED, popularity=POPULARITY)

    def test_hybrid_split_bounds_checked(self):
        with pytest.raises(ConfigurationError):
            Configuration.hybrid(3, -1, CachePolicy.STRIPED, POPULARITY)

    def test_k_cache_forbidden_outside_hybrid(self):
        with pytest.raises(ConfigurationError):
            Configuration(kind=ConfigurationKind.BUFFER, k=2, k_cache=1)

    def test_from_legacy_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            Configuration.from_legacy("turbo")

    def test_specs_are_hashable_and_comparable(self):
        a = Configuration.cache(CachePolicy.STRIPED, POPULARITY, k=2)
        b = Configuration.cache(CachePolicy.STRIPED, POPULARITY, k=2)
        assert a == b and hash(a) == hash(b)
        assert Configuration.direct() != Configuration.buffer()

    def test_describe_mentions_the_split(self):
        spec = Configuration.hybrid(1, 2, CachePolicy.STRIPED, POPULARITY)
        text = spec.describe()
        assert "1" in text and "2" in text


class TestSearchEngine:
    def test_real_search_brackets_the_root(self):
        assert max_feasible_real(lambda x: x <= 123.0) \
            == pytest.approx(123.0, rel=1e-6)

    def test_real_search_rejects_unbounded(self):
        with pytest.raises(ConfigurationError):
            max_feasible_real(lambda x: True)

    def test_int_search_is_exact(self):
        for answer in (0, 1, 7, 100, 1_000):
            found = max_feasible_int(lambda n, a=answer: n <= a)
            assert found == answer

    def test_int_search_honours_limit(self):
        assert max_feasible_int(lambda n: True, limit=37) == 37
