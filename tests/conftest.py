"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.parameters import SystemParameters
from repro.units import GB, KB, MB, MS


@pytest.fixture
def table3_params() -> SystemParameters:
    """A mid-load 2007 case-study configuration (DivX streams, k=2)."""
    return SystemParameters.table3_default(n_streams=1_000, bit_rate=100 * KB,
                                           k=2)


@pytest.fixture
def simple_params() -> SystemParameters:
    """Small hand-checkable parameters: round numbers throughout.

    disk 100 MB/s with 10 ms latency; single MEMS device 200 MB/s with
    1 ms latency; 10 streams of 1 MB/s.
    """
    return SystemParameters(
        n_streams=10,
        bit_rate=1 * MB,
        r_disk=100 * MB,
        r_mems=200 * MB,
        l_disk=10 * MS,
        l_mems=1 * MS,
        k=1,
        c_dram=20.0 / GB,
        c_mems=1.0 / GB,
        size_mems=10 * GB,
        size_disk=1_000 * GB,
    )
