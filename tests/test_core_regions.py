"""Configuration-choice regions."""

import numpy as np
import pytest

from repro.core.cache_model import CachePolicy
from repro.core.popularity import BimodalPopularity, UniformPopularity
from repro.core.regions import (
    configuration_map,
    evaluate_cell,
    render_configuration_map,
)
from repro.errors import ConfigurationError
from repro.units import KB, MB


@pytest.fixture
def popularity() -> BimodalPopularity:
    return BimodalPopularity(5, 95)


class TestEvaluateCell:
    def test_all_configurations_evaluated(self, popularity):
        cell = evaluate_cell(100 * KB, 200.0, popularity=popularity)
        assert set(cell.throughput) == {"none", "buffer", "cache"}
        assert all(v >= 0 for v in cell.throughput.values())

    def test_winner_consistent_with_throughput(self, popularity):
        cell = evaluate_cell(100 * KB, 200.0, popularity=popularity)
        assert cell.throughput[cell.winner] == \
            pytest.approx(max(cell.throughput.values()))

    def test_mems_configs_zero_when_budget_below_devices(self, popularity):
        cell = evaluate_cell(100 * KB, 15.0, popularity=popularity,
                             buffer_devices=2, cache_devices=2)
        assert cell.throughput["buffer"] == 0.0
        assert cell.throughput["cache"] == 0.0
        assert cell.winner == "none"

    def test_gain_over_plain(self, popularity):
        cell = evaluate_cell(100 * KB, 200.0, popularity=popularity)
        assert cell.gain_over_plain >= 1.0

    def test_skewed_popularity_lets_cache_win_at_scale(self, popularity):
        cell = evaluate_cell(100 * KB, 500.0, popularity=popularity)
        assert cell.winner == "cache"

    def test_uniform_popularity_no_cache_when_dram_bound(self):
        # At DRAM-bound budgets a uniform-popularity cache cannot earn
        # its device cost.  (At disk-saturating budgets it still wins by
        # adding raw bank bandwidth — a legitimate model outcome.)
        cell = evaluate_cell(10 * KB, 200.0,
                             popularity=UniformPopularity())
        assert cell.winner != "cache"

    def test_validation(self, popularity):
        with pytest.raises(ConfigurationError):
            evaluate_cell(0, 100.0, popularity=popularity)
        with pytest.raises(ConfigurationError):
            evaluate_cell(1 * KB, 0, popularity=popularity)


class TestConfigurationMap:
    def test_grid_shape(self, popularity):
        rates = np.array([10 * KB, 1 * MB])
        budgets = np.array([50.0, 200.0])
        cells = configuration_map(rates, budgets, popularity=popularity)
        assert len(cells) == 2 and len(cells[0]) == 2
        assert cells[1][0].bit_rate == 1 * MB
        assert cells[0][1].total_budget == 200.0

    def test_design_guidelines_visible(self, popularity):
        # Low bit-rate, modest budget: buffer region exists; skewed
        # popularity at larger budgets: cache region exists.
        rates = np.array([10 * KB, 1 * MB])
        budgets = np.array([60.0, 500.0])
        cells = configuration_map(rates, budgets, popularity=popularity)
        winners = {cell.winner for row in cells for cell in row}
        assert "buffer" in winners
        assert "cache" in winners

    def test_render_contains_glyph_legend(self, popularity):
        rates = np.array([10 * KB])
        budgets = np.array([60.0, 500.0])
        cells = configuration_map(rates, budgets, popularity=popularity)
        rendered = render_configuration_map(cells)
        assert "b=buffer" in rendered and "c=cache" in rendered

    def test_empty_axes_rejected(self, popularity):
        with pytest.raises(ConfigurationError):
            configuration_map(np.array([]), np.array([1.0]),
                              popularity=popularity)


class TestPolicyKnob:
    def test_striped_policy_selectable(self, popularity):
        cell = evaluate_cell(100 * KB, 300.0, popularity=popularity,
                             policy=CachePolicy.STRIPED, cache_devices=4)
        assert cell.throughput["cache"] > 0
