"""IO requests, elevator (C-LOOK) ordering, and EDF ordering."""

import pytest

from repro.errors import ConfigurationError
from repro.scheduling.edf import EdfScheduler
from repro.scheduling.elevator import ElevatorScheduler
from repro.scheduling.requests import IoKind, IoRequest


def make_request(position: float, deadline: float = 1.0,
                 stream_id: int = 0) -> IoRequest:
    return IoRequest(deadline=deadline, stream_id=stream_id,
                     kind=IoKind.READ, size=1e6, position=position)


class TestIoRequest:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_request(position=1.5)
        with pytest.raises(ConfigurationError):
            IoRequest(deadline=1.0, stream_id=0, kind=IoKind.READ, size=-1)

    def test_ordering_by_deadline_then_arrival(self):
        early = make_request(0.5, deadline=1.0)
        late = make_request(0.5, deadline=2.0)
        tie = make_request(0.1, deadline=1.0)
        assert early < late
        assert early < tie  # same deadline: earlier request id wins

    def test_slack(self):
        req = IoRequest(deadline=5.0, stream_id=0, kind=IoKind.WRITE,
                        size=10, issue_time=2.0)
        assert req.slack == pytest.approx(3.0)

    def test_unique_ids(self):
        a, b = make_request(0.1), make_request(0.2)
        assert a.request_id != b.request_id


class TestElevator:
    def test_ascending_sweep_from_head(self):
        scheduler = ElevatorScheduler(head_position=0.3)
        requests = [make_request(p) for p in (0.9, 0.1, 0.5, 0.4, 0.2)]
        ordered = scheduler.order(requests)
        assert [r.position for r in ordered] == [0.4, 0.5, 0.9, 0.1, 0.2]

    def test_head_advances_to_last_serviced(self):
        scheduler = ElevatorScheduler()
        scheduler.order([make_request(0.7), make_request(0.2)])
        assert scheduler.head_position == 0.7

    def test_empty_batch(self):
        scheduler = ElevatorScheduler()
        assert scheduler.order([]) == []

    def test_stable_for_equal_positions(self):
        scheduler = ElevatorScheduler()
        a, b = make_request(0.5), make_request(0.5)
        ordered = scheduler.order([b, a])
        # Equal positions keep request-id (submission) order.
        assert ordered[0].request_id < ordered[1].request_id

    def test_sweep_distance_sorted_batch(self):
        scheduler = ElevatorScheduler(head_position=0.0)
        requests = [make_request(p) for p in (0.2, 0.5, 0.9)]
        assert scheduler.sweep_distance(requests) == pytest.approx(0.9)

    def test_sweep_distance_with_wrap(self):
        scheduler = ElevatorScheduler(head_position=0.5)
        requests = [make_request(p) for p in (0.7, 0.1, 0.3)]
        # 0.5 -> 0.7 (0.2), wrap 0.7 -> 0.1 (0.6), 0.1 -> 0.3 (0.2).
        assert scheduler.sweep_distance(requests) == pytest.approx(1.0)

    def test_elevator_travel_beats_fifo(self):
        import random

        rng = random.Random(3)
        positions = [rng.random() for _ in range(64)]
        requests = [make_request(p) for p in positions]
        scheduler = ElevatorScheduler(head_position=0.0)
        sweep = scheduler.sweep_distance(requests)
        fifo = sum(abs(b - a) for a, b in zip([0.0] + positions, positions))
        assert sweep < fifo

    def test_head_position_validated(self):
        with pytest.raises(ConfigurationError):
            ElevatorScheduler(head_position=2.0)


class TestEdf:
    def test_pop_order_is_deadline_order(self):
        scheduler = EdfScheduler()
        reqs = [make_request(0.1, deadline=d) for d in (3.0, 1.0, 2.0)]
        scheduler.submit_all(reqs)
        deadlines = [scheduler.pop().deadline for _ in range(3)]
        assert deadlines == [1.0, 2.0, 3.0]

    def test_pop_empty_returns_none(self):
        assert EdfScheduler().pop() is None

    def test_len(self):
        scheduler = EdfScheduler()
        scheduler.submit(make_request(0.1))
        assert len(scheduler) == 1

    def test_static_order(self):
        reqs = [make_request(0.1, deadline=d) for d in (2.0, 1.0)]
        ordered = EdfScheduler.order(reqs)
        assert [r.deadline for r in ordered] == [1.0, 2.0]

    def test_edf_ignores_position(self):
        # The related-work trade-off: EDF seeks more than the elevator.
        reqs = [make_request(0.9, deadline=1.0), make_request(0.1,
                                                              deadline=2.0),
                make_request(0.8, deadline=3.0)]
        ordered = EdfScheduler.order(reqs)
        positions = [r.position for r in ordered]
        assert positions == [0.9, 0.1, 0.8]  # deadline order, not C-LOOK
        travel = sum(abs(b - a) for a, b in zip(positions, positions[1:]))
        elevator = ElevatorScheduler(head_position=0.0)
        assert elevator.sweep_distance(reqs) <= travel + 0.9
