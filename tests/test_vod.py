"""Unit tests for the VoD prefix-caching subsystem (`repro.vod`)."""

import math

import pytest

from repro.core.cache_model import CachePolicy, cache_buffer
from repro.core.parameters import SystemParameters
from repro.core.theorems import min_buffer_direct
from repro.errors import ConfigurationError
from repro.planner.configuration import Configuration, ConfigurationKind
from repro.planner.solver import Planner
from repro.scheduling.admission import AdmissionController
from repro.units import GB, KB, MB
from repro.vod import (
    AdaptiveReplacement,
    MulticastBatcher,
    PrefixAllocation,
    PrefixPlacement,
    base_prefix_bytes,
    prefix_seconds,
)


def _params(**overrides):
    params = SystemParameters.table3_default(n_streams=1, bit_rate=500 * KB,
                                             k=2)
    return params.replace(**overrides) if overrides else params


class TestPrefixSizing:
    def test_covers_startup_with_safety(self):
        params = _params()
        seconds = prefix_seconds(params, population=50.0, safety=2.0,
                                 floor=0.0)
        assert seconds > 0.0

    def test_monotone_in_population(self):
        params = _params()
        values = [prefix_seconds(params, population=n, floor=0.0)
                  for n in (1.0, 50.0, 100.0, 200.0)]
        assert values == sorted(values)

    def test_population_is_clamped_at_half_disk_bandwidth(self):
        params = _params()
        cap = 0.5 * params.r_disk / params.bit_rate
        at_cap = prefix_seconds(params, population=cap, floor=0.0)
        beyond = prefix_seconds(params, population=10.0 * cap, floor=0.0)
        assert beyond == pytest.approx(at_cap)

    def test_floor_applies(self):
        params = _params()
        assert prefix_seconds(params, population=1.0, floor=30.0) >= 30.0

    def test_bytes_is_bitrate_times_seconds(self):
        params = _params()
        seconds = prefix_seconds(params, population=40.0)
        assert base_prefix_bytes(params, population=40.0) == pytest.approx(
            params.bit_rate * seconds)

    def test_validation(self):
        params = _params()
        with pytest.raises(ConfigurationError):
            prefix_seconds(params, population=-1.0)
        with pytest.raises(ConfigurationError):
            prefix_seconds(params, population=1.0, safety=0.0)
        with pytest.raises(ConfigurationError):
            prefix_seconds(params, population=1.0, floor=-1.0)


class TestPrefixAllocation:
    def test_basic_accounting(self):
        alloc = PrefixAllocation(prefix_bytes=(60 * MB, 0.0, 30 * MB),
                                 title_bytes=2 * GB)
        assert alloc.n_titles == 3
        assert alloc.resident_titles == (0, 2)
        assert alloc.total_bytes == pytest.approx(90 * MB)
        assert alloc.byte_fraction(1) == pytest.approx(0.0)
        assert alloc.byte_fraction(0) == pytest.approx(60 * MB / (2 * GB))

    def test_window_seconds(self):
        alloc = PrefixAllocation(prefix_bytes=(60 * MB, 0.0),
                                 title_bytes=2 * GB)
        assert alloc.window_seconds(0, 500 * KB) == pytest.approx(120.0)
        assert alloc.window_seconds(1, 500 * KB) == pytest.approx(0.0)
        with pytest.raises(ConfigurationError):
            alloc.window_seconds(0, 0.0)

    def test_mems_fraction_expected_share(self):
        alloc = PrefixAllocation(prefix_bytes=(1 * GB, 0.0),
                                 title_bytes=2 * GB)
        # 80% of traffic hits the half-resident title: h = 0.8 * 0.5.
        assert alloc.mems_fraction([0.8, 0.2]) == pytest.approx(0.4)

    def test_mems_fraction_validation(self):
        alloc = PrefixAllocation(prefix_bytes=(1 * GB,), title_bytes=2 * GB)
        with pytest.raises(ConfigurationError):
            alloc.mems_fraction([0.5, 0.5])  # wrong length
        with pytest.raises(ConfigurationError):
            alloc.mems_fraction([-1.0])
        with pytest.raises(ConfigurationError):
            alloc.mems_fraction([0.5])  # does not sum to 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PrefixAllocation(prefix_bytes=(), title_bytes=1 * GB)
        with pytest.raises(ConfigurationError):
            PrefixAllocation(prefix_bytes=(1.0,), title_bytes=0.0)
        with pytest.raises(ConfigurationError):
            PrefixAllocation(prefix_bytes=(3 * GB,), title_bytes=2 * GB)


class TestAdaptiveReplacement:
    def test_greedy_down_the_ranking(self):
        policy = AdaptiveReplacement(hysteresis=0.0)
        alloc = policy.rebalance([5.0, 1.0, 3.0], base_bytes=10 * MB,
                                 max_bytes=60 * MB, budget_bytes=150 * MB,
                                 title_bytes=1 * GB)
        # Titles 0 and 2 get full prefixes; title 1 the 30 MB residue.
        assert alloc.prefix_bytes[0] == pytest.approx(60 * MB)
        assert alloc.prefix_bytes[2] == pytest.approx(60 * MB)
        assert alloc.prefix_bytes[1] == pytest.approx(30 * MB)

    def test_residue_below_base_stays_unspent(self):
        policy = AdaptiveReplacement(hysteresis=0.0)
        alloc = policy.rebalance([5.0, 1.0], base_bytes=10 * MB,
                                 max_bytes=60 * MB, budget_bytes=65 * MB,
                                 title_bytes=1 * GB)
        # 5 MB left after title 0 — below base, so title 1 gets nothing.
        assert alloc.resident_titles == (0,)
        assert alloc.total_bytes == pytest.approx(60 * MB)

    def test_hysteresis_keeps_resident_on_near_tie(self):
        policy = AdaptiveReplacement(hysteresis=0.2)
        # Title 1 is resident; title 0's score edges ahead but not past
        # the 20% bonus, so residency sticks.
        alloc = policy.rebalance([1.1, 1.0], base_bytes=10 * MB,
                                 max_bytes=60 * MB, budget_bytes=60 * MB,
                                 title_bytes=1 * GB, resident=(1,))
        assert alloc.resident_titles == (1,)

    def test_big_swing_beats_hysteresis(self):
        policy = AdaptiveReplacement(hysteresis=0.2)
        alloc = policy.rebalance([2.0, 1.0], base_bytes=10 * MB,
                                 max_bytes=60 * MB, budget_bytes=60 * MB,
                                 title_bytes=1 * GB, resident=(1,))
        assert alloc.resident_titles == (0,)

    def test_deterministic_tie_break_by_id(self):
        policy = AdaptiveReplacement(hysteresis=0.0)
        alloc = policy.rebalance([1.0, 1.0, 1.0], base_bytes=10 * MB,
                                 max_bytes=60 * MB, budget_bytes=60 * MB,
                                 title_bytes=1 * GB)
        assert alloc.resident_titles == (0,)

    def test_validation(self):
        policy = AdaptiveReplacement()
        with pytest.raises(ConfigurationError):
            AdaptiveReplacement(hysteresis=-0.1)
        with pytest.raises(ConfigurationError):
            policy.rebalance([], base_bytes=1.0, max_bytes=2.0,
                             budget_bytes=1.0, title_bytes=1 * GB)
        with pytest.raises(ConfigurationError):
            policy.rebalance([-1.0], base_bytes=1.0, max_bytes=2.0,
                             budget_bytes=1.0, title_bytes=1 * GB)
        with pytest.raises(ConfigurationError):
            policy.rebalance([1.0], base_bytes=0.0, max_bytes=2.0,
                             budget_bytes=1.0, title_bytes=1 * GB)
        with pytest.raises(ConfigurationError):
            policy.rebalance([1.0], base_bytes=3.0, max_bytes=2.0,
                             budget_bytes=1.0, title_bytes=1 * GB)
        with pytest.raises(ConfigurationError):
            policy.rebalance([1.0], base_bytes=1.0, max_bytes=2.0,
                             budget_bytes=-1.0, title_bytes=1 * GB)


class TestMulticastBatcher:
    def test_open_join_leave_lifecycle(self):
        batcher = MulticastBatcher()
        stream = batcher.open(7, 0.0, 120.0, session_id=1)
        assert batcher.active_streams == 1
        assert batcher.active_sessions == 1
        assert batcher.has_stream(stream.stream_id)
        batcher.join(stream, 2)
        assert batcher.active_sessions == 2
        assert not batcher.leave(stream.stream_id, 1)
        assert batcher.leave(stream.stream_id, 2)  # last rider closes
        assert batcher.active_streams == 0
        assert batcher.fanout == pytest.approx(2.0)

    def test_joinable_respects_window(self):
        batcher = MulticastBatcher()
        stream = batcher.open(7, 0.0, 120.0, session_id=1)
        assert batcher.joinable(7, 100.0) is stream
        assert batcher.joinable(7, 120.5) is None  # window lapsed
        assert batcher.joinable(8, 10.0) is None   # other title

    def test_stale_pointer_cleared_after_close(self):
        batcher = MulticastBatcher()
        stream = batcher.open(7, 0.0, 120.0, session_id=1)
        batcher.leave(stream.stream_id, 1)
        assert batcher.joinable(7, 10.0) is None

    def test_newest_stream_per_title_wins(self):
        batcher = MulticastBatcher()
        batcher.open(7, 0.0, 10.0, session_id=1)
        newer = batcher.open(7, 50.0, 120.0, session_id=2)
        assert batcher.joinable(7, 60.0) is newer

    def test_drop_newest_and_dissolve(self):
        batcher = MulticastBatcher()
        first = batcher.open(1, 0.0, 60.0, session_id=1)
        second = batcher.open(2, 1.0, 60.0, session_id=2)
        third = batcher.open(3, 2.0, 60.0, session_id=3)
        victims = batcher.drop_newest(2)
        assert [s.stream_id for s in victims] == [third.stream_id,
                                                  second.stream_id]
        assert victims[0].session_ids == [3]  # members intact for sheds
        assert batcher.active_streams == 1
        assert batcher.dissolve()[0].stream_id == first.stream_id
        assert batcher.active_streams == 0
        # Cumulative totals survive closure.
        assert batcher.streams_total == 3
        assert batcher.sessions_total == 3

    def test_errors(self):
        batcher = MulticastBatcher()
        stream = batcher.open(7, 0.0, 120.0, session_id=1)
        with pytest.raises(ConfigurationError):
            batcher.open(8, 0.0, -1.0, session_id=2)
        with pytest.raises(ConfigurationError):
            batcher.leave(999, 1)
        with pytest.raises(ConfigurationError):
            batcher.leave(stream.stream_id, 42)  # not a member
        with pytest.raises(ConfigurationError):
            batcher.stream(999)
        with pytest.raises(ConfigurationError):
            batcher.drop_newest(-1)
        assert batcher.fanout == pytest.approx(1.0)


class TestPrefixConfiguration:
    def test_constructor_and_describe(self):
        spec = Configuration.prefix(CachePolicy.REPLICATED, 0.75)
        assert spec.kind is ConfigurationKind.PREFIX
        assert spec.mems_fraction == pytest.approx(0.75)
        assert spec.fanout == pytest.approx(1.0)
        assert spec.uses_mems
        text = spec.describe()
        assert "prefix(replicated" in text and "h=0.750" in text

    def test_hashable_memo_key(self):
        a = Configuration.prefix(CachePolicy.STRIPED, 0.5)
        b = Configuration.prefix(CachePolicy.STRIPED, 0.5)
        assert a == b and hash(a) == hash(b)
        assert a != Configuration.prefix(CachePolicy.STRIPED, 0.6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Configuration.prefix(CachePolicy.REPLICATED, 1.5)
        with pytest.raises(ConfigurationError):
            Configuration.prefix(CachePolicy.REPLICATED, -0.1)
        with pytest.raises(ConfigurationError):
            Configuration.prefix(CachePolicy.REPLICATED, 0.5, fanout=0.5)
        with pytest.raises(ConfigurationError):
            Configuration.prefix(CachePolicy.REPLICATED, 0.5, k=0)
        with pytest.raises(ConfigurationError):
            Configuration(kind=ConfigurationKind.PREFIX,
                          policy=CachePolicy.REPLICATED)  # no mems_fraction
        with pytest.raises(ConfigurationError):
            # mems_fraction is prefix-only.
            Configuration(kind=ConfigurationKind.BUFFER, mems_fraction=0.5)


class TestPlanPrefix:
    def test_h_zero_matches_direct_demand(self):
        params = _params(n_streams=40)
        plan = Planner().plan(
            params, Configuration.prefix(CachePolicy.REPLICATED, 0.0))
        direct = 40 * min_buffer_direct(40, params.bit_rate, params.r_disk,
                                        params.l_disk)
        assert plan.feasible
        assert plan.total_dram == pytest.approx(direct)
        assert plan.hit_rate == pytest.approx(0.0)

    def test_h_one_matches_cache_service_demand(self):
        params = _params(n_streams=40)
        plan = Planner().plan(
            params, Configuration.prefix(CachePolicy.STRIPED, 1.0))
        per_stream = cache_buffer(CachePolicy.STRIPED, 40, params.bit_rate,
                                  params.k, params.r_mems, params.l_mems)
        assert plan.total_dram == pytest.approx(40 * per_stream)
        assert plan.hit_rate == pytest.approx(1.0)

    def test_fanout_divides_io_demand(self):
        params = _params(n_streams=40)
        planner = Planner()
        solo = planner.plan(
            params, Configuration.prefix(CachePolicy.REPLICATED, 0.5))
        shared = planner.plan(
            params, Configuration.prefix(CachePolicy.REPLICATED, 0.5,
                                         fanout=4.0))
        assert shared.total_dram < solo.total_dram
        ten = planner.plan(
            params.replace(n_streams=10),
            Configuration.prefix(CachePolicy.REPLICATED, 0.5))
        assert shared.total_dram == pytest.approx(ten.total_dram)

    def test_demand_monotone_in_population(self):
        params = _params()
        planner = Planner()
        spec = Configuration.prefix(CachePolicy.REPLICATED, 0.8)
        demands = [planner.plan(params.replace(n_streams=n), spec).total_dram
                   for n in (10, 50, 100, 200)]
        assert demands == sorted(demands)
        assert demands[0] < demands[-1]

    def test_capacity_search(self):
        params = _params()
        planner = Planner()
        spec = Configuration.prefix(CachePolicy.REPLICATED, 0.9)
        capacity = planner.capacity(params, spec, 50 * MB)
        assert capacity > 0
        below = planner.plan(params.replace(n_streams=capacity), spec)
        above = planner.plan(params.replace(n_streams=capacity + 1), spec)
        assert below.total_dram <= 50 * MB
        assert not above.feasible or above.total_dram > 50 * MB


class TestAdmissionSpecPathway:
    def test_spec_constructor_and_admit(self):
        spec = Configuration.prefix(CachePolicy.REPLICATED, 0.9)
        controller = AdmissionController(_params(), 50 * MB, spec=spec)
        assert controller.configuration == "prefix"
        assert controller.capacity() > 0
        assert controller.try_admit().admitted
        assert controller.admitted_streams == 1

    def test_spec_excludes_legacy_fields(self):
        spec = Configuration.prefix(CachePolicy.REPLICATED, 0.9)
        with pytest.raises(ConfigurationError):
            AdmissionController(_params(), 50 * MB, spec=spec,
                                configuration="buffer")
        with pytest.raises(ConfigurationError):
            AdmissionController(_params(), 50 * MB, spec=spec,
                                policy=CachePolicy.REPLICATED)

    def test_reconfigure_with_spec_moves_capacity(self):
        controller = AdmissionController(
            _params(), 50 * MB,
            spec=Configuration.prefix(CachePolicy.REPLICATED, 0.9))
        first = controller.capacity()
        controller.reconfigure(
            spec=Configuration.prefix(CachePolicy.REPLICATED, 0.2))
        second = controller.capacity()
        assert second != first  # the demand model actually swapped

    def test_reconfigure_spec_excludes_legacy_fields(self):
        controller = AdmissionController(
            _params(), 50 * MB,
            spec=Configuration.prefix(CachePolicy.REPLICATED, 0.9))
        with pytest.raises(ConfigurationError):
            controller.reconfigure(
                spec=Configuration.prefix(CachePolicy.REPLICATED, 0.5),
                configuration="buffer")

    def test_reconfigure_from_spec_to_legacy(self):
        controller = AdmissionController(
            _params(), 50 * MB,
            spec=Configuration.prefix(CachePolicy.REPLICATED, 0.9))
        controller.reconfigure(configuration="buffer")
        assert controller.configuration == "buffer"
        assert controller.capacity() > 0

    def test_reconfigure_from_legacy_to_spec(self):
        controller = AdmissionController(_params(), 50 * MB,
                                         configuration="buffer")
        controller.reconfigure(
            spec=Configuration.prefix(CachePolicy.REPLICATED, 0.9))
        assert controller.configuration == "prefix"
        assert controller.capacity() > 0


class TestPrefixPlacement:
    def test_replan_produces_feasible_decision(self):
        placement = PrefixPlacement(20, planner=Planner())
        params = _params(size_disk=40 * GB)
        for title in range(20):
            for _ in range(20 - title):
                placement.observe(title)
        decision = placement.replan(params, 30.0, dram_budget=50 * MB)
        assert decision.feasible
        assert decision.capacity is not None and decision.capacity > 0
        assert 0.0 <= decision.mems_fraction <= 1.0
        assert decision.spec.kind is ConfigurationKind.PREFIX
        assert decision.spec.fanout == pytest.approx(1.0)
        assert decision.allocation.resident_titles == decision.cached_titles
        assert placement.is_resident(decision.cached_titles[0])

    def test_drift_promotes_and_demotes(self):
        placement = PrefixPlacement(40, decay=0.0, prior_strength=0.0,
                                    hysteresis=0.0, planner=Planner())
        # Small bank: room for only a handful of full prefixes.
        params = _params(size_disk=80 * GB, size_mems=300 * MB)
        for title in range(5):
            for _ in range(10):
                placement.observe(title)
        first = placement.replan(params, 10.0)
        assert set(first.promoted) >= set(range(5))
        for title in range(20, 25):
            for _ in range(50):
                placement.observe(title)
        second = placement.replan(params, 10.0)
        assert set(range(20, 25)) <= set(second.promoted)
        assert second.demoted  # cold filler titles lose their slots
        assert not set(second.demoted) & set(range(20, 25))

    def test_window_tracks_allocation(self):
        placement = PrefixPlacement(10, planner=Planner())
        params = _params(size_disk=20 * GB)
        assert placement.window_seconds(0) == pytest.approx(0.0)  # cold
        placement.observe(3)
        decision = placement.replan(params, 5.0)
        title = decision.cached_titles[0]
        window = placement.window_seconds(title)
        assert window > 0.0
        assert window <= placement.window_cap + 1e-9

    def test_capacity_hint_threads_across_epochs(self):
        planner = Planner()
        placement = PrefixPlacement(10, planner=planner)
        params = _params(size_disk=20 * GB)
        placement.observe(0)
        placement.replan(params, 5.0, dram_budget=50 * MB)
        cold_probes = planner.stats()["probes_cold"]
        for epoch in range(3):
            placement.observe(epoch % 10)
            placement.replan(params, 5.0 + epoch, dram_budget=50 * MB)
        stats = planner.stats()
        # Later epochs replay from the hint: warm probes, no new colds.
        assert stats["probes_cold"] == cold_probes
        assert stats["probes_warm"] > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PrefixPlacement(0)
        with pytest.raises(ConfigurationError):
            PrefixPlacement(5, decay=1.0)
        with pytest.raises(ConfigurationError):
            PrefixPlacement(5, safety=0.0)
        with pytest.raises(ConfigurationError):
            PrefixPlacement(5, window_cap=0.0)
        placement = PrefixPlacement(5, planner=Planner())
        with pytest.raises(ConfigurationError):
            placement.observe(5)
        with pytest.raises(ConfigurationError):
            placement.replan(_params(), -1.0)
        with pytest.raises(ConfigurationError):
            placement.is_resident(-1)


def test_package_exports():
    import repro.vod as vod

    for name in vod.__all__:
        assert getattr(vod, name) is not None
    assert math.isfinite(AdaptiveReplacement().hysteresis)
