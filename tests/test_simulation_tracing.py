"""Schedule trace reconstruction and Gantt rendering."""

import pytest

from repro.core.buffer_model import design_mems_buffer
from repro.core.parameters import SystemParameters
from repro.errors import ConfigurationError
from repro.simulation.tracing import (
    ScheduleTrace,
    TraceSegment,
    trace_buffer_schedule,
)
from repro.units import MB


@pytest.fixture
def design():
    params = SystemParameters.table3_default(n_streams=10, bit_rate=1 * MB,
                                             k=1)
    return design_mems_buffer(params)


@pytest.fixture
def bank_design():
    params = SystemParameters.table3_default(n_streams=45, bit_rate=1 * MB,
                                             k=3)
    return design_mems_buffer(params)


class TestTraceSegments:
    def test_segment_validation(self):
        with pytest.raises(ConfigurationError):
            TraceSegment(lane="disk", start=2.0, end=1.0, activity="seek",
                         stream_id=0)


class TestTraceConstruction:
    def test_lanes_present(self, design):
        trace = trace_buffer_schedule(design, n_mems_cycles=2)
        assert trace.lanes == ["disk", "mems0"]

    def test_bank_lanes(self, bank_design):
        trace = trace_buffer_schedule(bank_design, n_mems_cycles=2)
        assert trace.lanes == ["disk", "mems0", "mems1", "mems2"]

    def test_activity_mix_per_mems_cycle(self, design):
        trace = trace_buffer_schedule(design, n_mems_cycles=1)
        dram = [s for s in trace.segments
                if s.lane == "mems0" and s.activity == "dram_xfer"]
        writes = [s for s in trace.segments
                  if s.lane == "mems0" and s.activity == "write_xfer"]
        assert len(dram) == 10          # one DRAM transfer per stream
        assert len(writes) == design.m  # M disk landings

    def test_segments_are_ordered_per_lane(self, design):
        trace = trace_buffer_schedule(design, n_mems_cycles=3)
        for lane in trace.lanes:
            times = [s.start for s in trace.segments if s.lane == lane]
            assert times == sorted(times)

    def test_busy_time_accounting(self, design):
        trace = trace_buffer_schedule(design, n_mems_cycles=2)
        params = design.params
        per_read = params.l_mems + params.bit_rate * design.t_mems \
            / params.r_mems
        per_write = params.l_mems + design.s_disk_mems / params.r_mems
        expected = 2 * (10 * per_read + design.m * per_write)
        assert trace.busy_time("mems0") == pytest.approx(expected)

    def test_default_window_covers_one_disk_cycle(self, design):
        trace = trace_buffer_schedule(design)
        assert trace.horizon >= design.t_disk * 0.9

    def test_validation(self, design):
        with pytest.raises(ConfigurationError):
            trace_buffer_schedule(design, n_mems_cycles=0)


class TestRendering:
    def test_gantt_has_a_row_per_lane(self, bank_design):
        trace = trace_buffer_schedule(bank_design, n_mems_cycles=2)
        rendered = trace.render(width=60)
        lines = rendered.splitlines()
        assert any(line.startswith("  disk") for line in lines)
        assert sum(1 for line in lines if "mems" in line) == 3

    def test_glyphs_present(self, design):
        trace = trace_buffer_schedule(design, n_mems_cycles=3)
        rendered = trace.render(width=70)
        assert "D" in rendered   # disk transfers
        assert "d" in rendered   # DRAM transfers
        assert "w" in rendered   # buffer writes

    def test_empty_trace(self):
        trace = ScheduleTrace(t_disk=1.0, t_mems=0.1)
        assert trace.render() == "(empty trace)"

    def test_width_validated(self, design):
        trace = trace_buffer_schedule(design, n_mems_cycles=1)
        with pytest.raises(ConfigurationError):
            trace.render(width=5)
