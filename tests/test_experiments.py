"""Experiment runners: every table and figure regenerates with the
paper's qualitative shape."""

import pytest

from repro.experiments import figure2, figure6, figure7, figure8, figure9
from repro.experiments import figure10, tables
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.errors import ConfigurationError
from repro.units import KB, MB


class TestFigure2:
    def test_mems_dominates_at_small_ios(self):
        result = figure2.run()
        mems = next(s for s in result.series if "MEMS" in s.label)
        disk = next(s for s in result.series if "Disk" in s.label)
        # At every swept IO size the MEMS curve is above the disk curve
        # until the disk approaches its (lower) media-rate asymptote.
        small = range(10)  # smallest IO sizes
        assert all(mems.y[i] > disk.y[i] for i in small)

    def test_curves_approach_media_rates(self):
        result = figure2.run()
        mems = next(s for s in result.series if "MEMS" in s.label)
        disk = next(s for s in result.series if "Disk" in s.label)
        assert mems.y[-1] == pytest.approx(320, rel=0.05)
        assert disk.y[-1] == pytest.approx(300, rel=0.15)

    def test_both_monotone(self):
        result = figure2.run(n_points=50)
        for series in result.series:
            assert series.y == sorted(series.y)


class TestFigure6:
    def test_with_mems_reduces_dram_order_of_magnitude(self):
        factors = figure6.reduction_factors(max_streams=1e4)
        # Section 5.1.1: "reduced by an order of magnitude".
        assert all(f > 8 for f in factors.values())

    def test_panel_a_paper_extremes(self):
        result = figure6.run(with_mems=False)
        mp3 = next(s for s in result.series if s.label == "mp3")
        hdtv = next(s for s in result.series if s.label == "HDTV")
        # ~1 TB for 10 KB/s streams, ~1 GB for 10 MB/s at full load.
        assert 300 < max(mp3.y) < 3_000
        assert 0.3 < max(hdtv.y) < 3.0

    def test_lower_bitrate_needs_more_dram_at_fixed_throughput(self):
        result = figure6.run(with_mems=False, max_streams=1e3)
        mp3 = next(s for s in result.series if s.label == "mp3")
        dvd = next(s for s in result.series if s.label == "DVD")
        # Compare at equal *throughput* N*B: mp3 at N=1000 vs DVD at
        # N=10 carry 10 MB/s each.
        mp3_at_1000 = mp3.y[mp3.x.index(1000.0)]
        dvd_at_10 = dvd.y[dvd.x.index(10.0)]
        assert mp3_at_1000 > dvd_at_10

    def test_series_end_at_saturation(self):
        result = figure6.run(with_mems=False)
        hdtv = next(s for s in result.series if s.label == "HDTV")
        assert max(hdtv.x) < 30  # 300 MB/s / 10 MB/s


class TestFigure7:
    def test_panel_a_monotone_in_ratio(self):
        result = figure7.run_panel_a(ratios=[1.0, 3.0, 5.0, 10.0])
        for series in result.series:
            assert series.y == sorted(series.y)

    def test_panel_a_design_principle(self):
        # Low/medium bit-rates benefit most (design principle (i)).
        result = figure7.run_panel_a(ratios=[5.0])
        by_label = {s.label: s.y[0] for s in result.series}
        assert by_label["mp3"] > 50
        assert by_label["HDTV"] < by_label["DVD"]

    def test_panel_b_grid_regions(self):
        result = figure7.run_panel_b(n_rate_points=6, n_ratio_points=4)
        assert len(result.series) == 6
        # The low-rate / high-ratio corner achieves > 50% reduction.
        low_rate = result.series[0]
        assert low_rate.y[-1] > 50


class TestFigure8:
    def test_savings_scale_with_inverse_bitrate(self):
        result = figure8.run(max_streams=1e5)
        peaks = {s.label: max(s.y) for s in result.series if s.y}
        # Section 5.1.2: tens of $ (HDTV) to tens of thousands (mp3).
        assert peaks["mp3"] > 5_000
        assert peaks["HDTV"] < 100
        assert peaks["mp3"] > peaks["DivX"] > peaks["DVD"] > peaks["HDTV"]


class TestFigure9:
    def test_replication_wins_at_heavy_skew(self):
        n = {c: figure9.throughput(10 * KB, 200.0, 4, c,
                                   _dist("1:99")) for c in
             ("none", "replicated", "striped")}
        assert n["replicated"] > n["striped"] > n["none"]

    def test_cache_loses_at_uniform_popularity(self):
        none = figure9.throughput(10 * KB, 100.0, 2, "none", _dist("50:50"))
        cached = figure9.throughput(10 * KB, 100.0, 2, "replicated",
                                    _dist("50:50"))
        assert cached < none

    def test_cache_gain_nearly_bitrate_independent(self):
        # Section 5.2.3: improvement is almost independent of bit-rate.
        gains = []
        for rate in (10 * KB, 1 * MB):
            none = figure9.throughput(rate, 200.0, 4, "none", _dist("1:99"))
            repl = figure9.throughput(rate, 200.0, 4, "replicated",
                                      _dist("1:99"))
            gains.append(repl / none)
        assert gains[0] > 2 and gains[1] > 2

    def test_table_structure(self):
        result = figure9.run(bit_rate=10 * KB,
                             distributions=("1:99", "50:50"))
        assert result.table is not None
        assert len(result.table.rows) == 2 * 3  # dists x configs


class TestFigure10:
    def test_optimal_bank_size_exists_for_skewed(self):
        result = figure10.run(max_devices=8)
        skewed = next(s for s in result.series if s.label == "1:99")
        best = max(skewed.y)
        assert best > 100  # the paper reports up to ~2.4x (= +140%)
        best_k = skewed.x[skewed.y.index(best)]
        assert 1 < best_k < 8  # interior optimum

    def test_uniform_always_degrades(self):
        result = figure10.run(max_devices=8)
        uniform = next(s for s in result.series if s.label == "50:50")
        assert all(v < 0 for v in uniform.y)

    def test_stops_when_budget_exhausted(self):
        result = figure10.run(total_cost=30.0, max_devices=8)
        # $30 buys at most 2 devices ($10 each) + some DRAM.
        for series in result.series:
            assert max(series.x) <= 2


class TestTables:
    def test_table1_no_mismatches(self):
        result = tables.run_table1()
        assert result.table is not None
        assert not any("MISMATCH" in note for note in result.notes)

    def test_table3_values_rendered(self):
        result = tables.run_table3()
        rendered = result.table.render()
        assert "20,000" in rendered      # RPM
        assert "0.45" in rendered        # MEMS full stroke
        assert "0.14" in rendered        # X settle


class TestRegistry:
    def test_all_eleven_paper_artifacts_registered(self):
        from repro.experiments.registry import PAPER_EXPERIMENTS

        assert len(PAPER_EXPERIMENTS) == 11
        for expected in ("table1", "figure2", "table3", "figure6a",
                         "figure6b", "figure7a", "figure7b", "figure8",
                         "figure9a", "figure9b", "figure10"):
            assert expected in PAPER_EXPERIMENTS
            assert expected in EXPERIMENTS

    def test_extensions_registered(self):
        from repro.experiments.registry import EXTENSION_EXPERIMENTS

        assert len(EXTENSION_EXPERIMENTS) >= 7
        assert all(eid.startswith("ext-") for eid in EXTENSION_EXPERIMENTS)

    def test_unknown_id_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("figure99")


def _dist(spec: str):
    from repro.core.popularity import BimodalPopularity

    return BimodalPopularity.parse(spec)
