"""Cross-module integration: the analytical model against the simulator,
the corollaries against each other, and the paper's design principles
end to end."""


import pytest

from repro.core.buffer_model import design_mems_buffer, mems_cycle_floor
from repro.core.cache_model import (
    CachePolicy,
    design_mems_cache,
    replicated_cache_buffer,
    striped_cache_buffer,
)
from repro.core.capacity import (
    max_streams_with_buffer,
    max_streams_with_cache,
    max_streams_without_mems,
)
from repro.core.parameters import SystemParameters
from repro.core.popularity import BimodalPopularity
from repro.core.theorems import min_buffer_direct
from repro.devices.catalog import FUTURE_DISK_2007, MEMS_G3
from repro.scheduling.time_cycle import build_buffer_schedule
from repro.simulation.pipelines import (
    simulate_buffer_pipeline,
    simulate_cache_pipeline,
    simulate_direct_pipeline,
)
from repro.units import GB, KB, MB, MS


class TestAnalyticVsSimulation:
    """The bounds of Section 4 are *exactly* tight: the simulator is
    jitter-free at the analytical buffer size and starves below it."""

    @pytest.mark.parametrize("n,bit_rate", [
        (10, 1 * MB), (100, 1 * MB), (25, 10 * MB), (500, 100 * KB),
    ])
    def test_theorem1_tightness(self, n, bit_rate):
        params = SystemParameters.table3_default(n_streams=n,
                                                 bit_rate=bit_rate, k=2)
        exact = simulate_direct_pipeline(params, n_cycles=25)
        assert exact.jitter_free
        shrunk = simulate_direct_pipeline(params, n_cycles=25,
                                          buffer_scale=0.85)
        assert not shrunk.jitter_free

    @pytest.mark.parametrize("n,k", [(20, 1), (40, 2), (45, 3), (60, 4)])
    def test_theorem2_schedule_executes(self, n, k):
        params = SystemParameters.table3_default(n_streams=n,
                                                 bit_rate=1 * MB, k=k)
        design = design_mems_buffer(params)
        report = simulate_buffer_pipeline(design, n_hyper_periods=3)
        assert report.jitter_free
        assert report.notes["steady_short_reads"] == 0
        # Eq. 7 holds empirically.
        assert report.peak_mems_occupancy <= params.mems_bank_capacity

    @pytest.mark.parametrize("policy", [CachePolicy.STRIPED,
                                        CachePolicy.REPLICATED])
    def test_theorem34_schedule_executes(self, policy):
        params = SystemParameters.table3_default(n_streams=300,
                                                 bit_rate=1 * MB, k=3)
        design = design_mems_cache(params, policy, BimodalPopularity(5, 95))
        report = simulate_cache_pipeline(design, n_cycles=20)
        assert report.jitter_free

    def test_cycle_utilization_saturates_at_capacity_limit(self):
        # Fill the server to its admission limit: the simulated disk
        # cycle utilisation approaches 1 (the bound is not slack).
        params = SystemParameters.table3_default(n_streams=280,
                                                 bit_rate=1 * MB, k=2)
        report = simulate_direct_pipeline(params, n_cycles=10)
        assert report.resources["disk"].worst_cycle_utilization > 0.99


class TestCorollaryConsistency:
    def test_striped_equals_replicated_at_k1_everywhere(self):
        for n in (1, 7, 64):
            for rate in (100 * KB, 1 * MB):
                a = striped_cache_buffer(n, rate, 1, 320 * MB, 0.59 * MS)
                b = replicated_cache_buffer(n, rate, 1, 320 * MB, 0.59 * MS)
                assert a == pytest.approx(b)

    def test_theorem1_is_theorem2_with_free_instant_mems(self):
        # With a zero-latency, infinite-rate MEMS layer, the buffered
        # DRAM at the minimal disk cycle degenerates to ~0 and the disk
        # cycle lower bound equals Theorem 1's cycle.
        params = SystemParameters(
            n_streams=50, bit_rate=1 * MB, r_disk=300 * MB,
            r_mems=1e15, l_disk=3 * MS, l_mems=0.0, k=1)
        design = design_mems_buffer(params, quantise=False)
        assert design.s_mems_dram == pytest.approx(0.0, abs=1.0)

    def test_corollary1_matches_striped_k1(self):
        # Streaming straight from one MEMS device (Cor. 1) is the k=1
        # striped cache with no disk population.
        n, rate = 40, 1 * MB
        direct = min_buffer_direct(n, rate, 320 * MB, 0.59 * MS)
        cache = striped_cache_buffer(n, rate, 1, 320 * MB, 0.59 * MS)
        assert direct == pytest.approx(cache)


class TestDesignPrinciples:
    """Section 1's two design principles, verified end to end."""

    def test_principle_one_buffer_low_and_medium_bitrates(self):
        # MEMS buffering pays off for mp3/DivX/DVD-class streams at
        # high utilisation, not for HDTV-class.
        from repro.core.cost import compare_buffer_costs

        gains = {}
        for rate, n in ((10 * KB, 25_000), (100 * KB, 2_500), (1 * MB, 250),
                        (10 * MB, 25)):
            params = SystemParameters.table3_default(n_streams=n,
                                                     bit_rate=rate, k=2)
            gains[rate] = compare_buffer_costs(
                params, pricing="per_byte").percent_reduction
        assert gains[10 * KB] > 50
        assert gains[100 * KB] > 50
        assert gains[10 * MB] < gains[100 * KB]

    def test_principle_two_cache_helps_regardless_of_bitrate(self):
        popularity = BimodalPopularity(1, 99)
        for rate in (10 * KB, 1 * MB):
            params = SystemParameters.table3_default(n_streams=1,
                                                     bit_rate=rate, k=2)
            budget = 4 * GB
            plain = max_streams_without_mems(params, budget + 20 / 20 * GB)
            cached = max_streams_with_cache(params, CachePolicy.REPLICATED,
                                            popularity, budget)
            assert cached > plain

    def test_buffer_requires_double_bandwidth(self):
        # Section 3.1: the MEMS bank must run at twice the disk's
        # streaming throughput; a single G3 device cannot buffer a
        # fully-driven FutureDisk (320 < 2 x 300), which is why the
        # paper uses at least two devices.
        params = SystemParameters.table3_default(
            n_streams=200, bit_rate=1 * MB, k=1, size_mems_unlimited=True)
        with pytest.raises(Exception):
            mems_cycle_floor(params)  # 2*200 MB/s > 320 MB/s
        ok = params.replace(k=2)
        assert mems_cycle_floor(ok) > 0


class TestScheduleAgainstDevices:
    def test_disk_service_fits_measured_latency(self):
        # The schedule budgets l_disk per IO; the physical disk model's
        # elevator latency at matching queue depth is consistent.
        params = SystemParameters.table3_default(n_streams=8,
                                                 bit_rate=1 * MB, k=2)
        assert params.l_disk == pytest.approx(
            FUTURE_DISK_2007.scheduled_latency(8))

    def test_mems_latency_is_device_worst_case(self):
        params = SystemParameters.table3_default(n_streams=8,
                                                 bit_rate=1 * MB, k=2)
        assert params.l_mems == pytest.approx(MEMS_G3.max_access_time())

    def test_buffer_schedule_bytes_match_offered_load(self):
        params = SystemParameters.table3_default(n_streams=30,
                                                 bit_rate=1 * MB, k=2)
        schedule = build_buffer_schedule(design_mems_buffer(params))
        schedule.verify_steady_state()


class TestServerWithPhysicalDisk:
    def test_sampled_server_end_to_end(self):
        # The full operator path: physical disk model, admission fill,
        # stochastic simulation with a prefill-friendly population.
        from repro.simulation.server import ServerConfig, StreamingServer

        params = SystemParameters.table3_default(n_streams=1,
                                                 bit_rate=1 * MB, k=2)
        server = StreamingServer(ServerConfig(
            params=params, dram_budget=500e6, disk=FUTURE_DISK_2007))
        n = server.fill()
        assert n > 0
        exact = server.simulate(n_cycles=10)
        assert exact.jitter_free
        sampled = server.simulate(n_cycles=10, latency_model="sampled",
                                  seed=5)
        # Stochastic latencies may jitter at the exact sizes, but the
        # schedule keeps delivering the overwhelming share of bytes.
        assert sampled.bytes_delivered > 0.95 * exact.bytes_delivered

    def test_mems_latency_conservatism_pays_off(self):
        # Charging the worst-case MEMS latency (the paper's choice)
        # means the simulated MEMS cycles always have slack when real
        # accesses average less.
        params = SystemParameters.table3_default(n_streams=100,
                                                 bit_rate=1 * MB, k=2)
        design = design_mems_buffer(params)
        report = simulate_buffer_pipeline(design, n_hyper_periods=2)
        worst = max(u.worst_cycle_utilization
                    for name, u in report.resources.items()
                    if name.startswith("mems"))
        assert worst <= 1.0 + 1e-9


class TestCapacityOrdering:
    def test_throughput_ordering_when_dram_bound(self):
        # With scarce DRAM and skewed popularity, the paper's ordering:
        # plain < buffered, plain < cached.
        params = SystemParameters.table3_default(n_streams=1,
                                                 bit_rate=100 * KB, k=2)
        budget = 1 * GB
        plain = max_streams_without_mems(params, budget)
        buffered = max_streams_with_buffer(params, budget)
        cached = max_streams_with_cache(params, CachePolicy.REPLICATED,
                                        BimodalPopularity(1, 99), budget)
        assert buffered > plain
        assert cached > plain
