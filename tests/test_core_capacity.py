"""Inverse solvers: maximum admitted streams per configuration."""

import math

import pytest

from repro.core.cache_model import CachePolicy
from repro.core.capacity import (
    max_streams_with_buffer,
    max_streams_with_cache,
    max_streams_without_mems,
    streams_supported,
)
from repro.core.buffer_model import design_mems_buffer
from repro.core.cache_model import design_mems_cache
from repro.core.parameters import SystemParameters
from repro.core.popularity import BimodalPopularity
from repro.core.theorems import min_buffer_direct
from repro.errors import ConfigurationError
from repro.units import GB, KB


@pytest.fixture
def table3_one() -> SystemParameters:
    return SystemParameters.table3_default(n_streams=1, bit_rate=100 * KB,
                                           k=2)


class TestWithoutMems:
    def test_matches_forward_model(self, table3_one):
        n = max_streams_without_mems(table3_one, 1 * GB)
        total = n * min_buffer_direct(n, table3_one.bit_rate,
                                      table3_one.r_disk, table3_one.l_disk)
        assert total == pytest.approx(1 * GB, rel=1e-6)

    def test_negative_budget_rejected(self, table3_one):
        with pytest.raises(ConfigurationError):
            max_streams_without_mems(table3_one, -1.0)


class TestWithBuffer:
    def test_inverse_of_design(self, table3_one):
        budget = 500 * 1e6
        n = max_streams_with_buffer(table3_one, budget)
        design = design_mems_buffer(table3_one.replace(n_streams=n),
                                    quantise=False)
        assert design.total_dram == pytest.approx(budget, rel=1e-6)

    def test_buffer_beats_plain_when_dram_bound(self, table3_one):
        budget = 1 * GB
        plain = max_streams_without_mems(table3_one, budget)
        buffered = max_streams_with_buffer(table3_one, budget)
        assert buffered > plain

    def test_bandwidth_ceiling_respected(self, table3_one):
        # Even with infinite DRAM, the doubled MEMS load caps N.
        n = max_streams_with_buffer(table3_one, 1e15)
        bank = table3_one.mems_bank_bandwidth
        assert (n + table3_one.k - 1) * 2 * table3_one.bit_rate <= bank
        assert n * table3_one.bit_rate <= table3_one.r_disk

    def test_zero_budget_zero_streams(self, table3_one):
        assert max_streams_with_buffer(table3_one, 0.0) == 0.0


class TestWithCache:
    def test_monotone_in_budget(self, table3_one):
        popularity = BimodalPopularity(5, 95)
        results = [max_streams_with_cache(table3_one, CachePolicy.STRIPED,
                                          popularity, budget)
                   for budget in (0.5 * GB, 1 * GB, 4 * GB)]
        assert results == sorted(results)

    def test_inverse_of_design(self, table3_one):
        popularity = BimodalPopularity(5, 95)
        budget = 2 * GB
        n = max_streams_with_cache(table3_one, CachePolicy.REPLICATED,
                                   popularity, budget)
        design = design_mems_cache(table3_one.replace(n_streams=n),
                                   CachePolicy.REPLICATED, popularity)
        assert design.total_dram == pytest.approx(budget, rel=1e-6)

    def test_heavier_skew_more_streams(self, table3_one):
        budget = 2 * GB
        heavy = max_streams_with_cache(table3_one, CachePolicy.REPLICATED,
                                       BimodalPopularity(1, 99), budget)
        light = max_streams_with_cache(table3_one, CachePolicy.REPLICATED,
                                       BimodalPopularity(20, 80), budget)
        assert heavy > light


class TestStreamsSupported:
    def test_floor_semantics(self, table3_one):
        n_cont = max_streams_without_mems(table3_one, 1 * GB)
        n_int = streams_supported(table3_one, 1 * GB)
        assert n_int == math.floor(n_cont + 1e-9)

    def test_all_configurations(self, table3_one):
        popularity = BimodalPopularity(5, 95)
        none = streams_supported(table3_one, 1 * GB)
        buffer = streams_supported(table3_one, 1 * GB,
                                   configuration="buffer")
        cache = streams_supported(table3_one, 1 * GB, configuration="cache",
                                  policy=CachePolicy.STRIPED,
                                  popularity=popularity)
        assert none > 0 and buffer > 0 and cache > 0

    def test_cache_requires_policy_and_popularity(self, table3_one):
        with pytest.raises(ConfigurationError):
            streams_supported(table3_one, 1 * GB, configuration="cache")

    def test_unknown_configuration(self, table3_one):
        with pytest.raises(ConfigurationError):
            streams_supported(table3_one, 1 * GB, configuration="magic")
