"""Runtime-level tests for prefix mode and the VoD scenarios."""

import dataclasses
import json

import pytest

from repro.errors import ConfigurationError
from repro.runtime import (
    FailureEvent,
    FailureKind,
    FocusEvent,
    SCENARIOS,
    SessionEventKind,
    build_scenario,
    render_dashboard,
    run_runtime,
    run_scenario_batch,
)


def _tiny_run(**overrides):
    scenario = build_scenario("flash_crowd", seed=5)
    config = dataclasses.replace(scenario, horizon=1800.0,
                                 metrics_interval=300.0, surges=(),
                                 focuses=overrides.pop("focuses", ()),
                                 **overrides)
    return run_runtime(config)


class TestScenarioRegistry:
    def test_vod_scenarios_registered(self):
        for name in ("flash_crowd", "diurnal_drift", "long_tail"):
            assert name in SCENARIOS
            assert SCENARIOS[name]().configuration == "prefix"

    def test_unknown_scenario_error_is_canonical(self):
        with pytest.raises(ConfigurationError,
                           match="unknown scenario 'nope'"):
            build_scenario("nope")
        with pytest.raises(ConfigurationError,
                           match="unknown scenario 'nope'"):
            run_scenario_batch(["flash_crowd", "nope"], horizon=100.0)


class TestPrefixRuntime:
    def test_deterministic_given_seed(self):
        assert _tiny_run().to_json() == _tiny_run().to_json()

    def test_gauges_and_counters_present(self):
        result = _tiny_run()
        last = result.metrics.snapshots[-1].gauges
        for gauge in ("io_streams", "fanout_ratio", "fanout_cumulative",
                      "prefix_hit_rate", "prefix_resident_titles",
                      "sessions_per_mems_byte", "tail_disk_load"):
            assert gauge in last
        assert last["io_streams"] <= last["active_sessions"]
        assert 0.0 <= last["prefix_hit_rate"] <= 1.0
        assert last["tail_disk_load"] >= 0.0
        for counter in ("batched_joins", "streams_opened", "streams_closed"):
            assert counter in result.totals

    def test_admits_split_between_streams_and_joins(self):
        totals = _tiny_run().totals
        assert totals["admits"] == \
            totals["streams_opened"] + totals["batched_joins"]
        assert totals["streams_opened"] > 0

    def test_served_by_vocabulary(self):
        result = _tiny_run()
        served = {e.served_by for e in result.events
                  if e.kind is SessionEventKind.ADMIT}
        assert served <= {"prefix", "disk", "shared"}
        assert "prefix" in served or "shared" in served

    def test_summary_and_dashboard_and_json(self):
        result = _tiny_run()
        assert "fanout_sessions_per_stream" in result.notes
        assert "vod:" in result.summary()
        assert "vod:" in render_dashboard(result.metrics)
        payload = json.loads(result.to_json())
        assert payload["summary"]["notes"]["streams_opened"] == \
            result.totals["streams_opened"]

    def test_partial_bank_failure_keeps_prefix_mode(self):
        result = _tiny_run(failures=(FailureEvent(
            time=900.0, kind=FailureKind.DEVICE_LOSS, count=1),))
        assert result.totals["failures"] == 1
        assert result.k_active == 1
        assert result.final_mode == "prefix"

    def test_total_bank_loss_falls_back_and_keeps_counters(self):
        result = _tiny_run(failures=(FailureEvent(
            time=900.0, kind=FailureKind.DEVICE_LOSS, count=2),))
        assert result.k_active == 0
        assert result.final_mode == "none"
        # Cumulative fanout accounting survives the batcher teardown.
        assert result.notes["streams_opened"] > 0
        assert result.notes["batched_sessions"] >= \
            result.notes["streams_opened"]
        last = result.metrics.snapshots[-1].gauges
        assert result.active_sessions == last["active_sessions"]


class TestFocusEvents:
    def test_focus_event_validation(self):
        with pytest.raises(ConfigurationError):
            FocusEvent(time=-1.0, title=0, weight=0.5)
        with pytest.raises(ConfigurationError):
            FocusEvent(time=0.0, title=-1, weight=0.5)
        with pytest.raises(ConfigurationError):
            FocusEvent(time=0.0, title=0, weight=1.5)

    def test_focus_shifts_traffic(self):
        def share(result):
            hits = sum(1 for e in result.events
                       if e.kind is SessionEventKind.ADMIT and e.title == 3)
            return hits / max(1, result.totals["admits"])

        base = _tiny_run()
        focused = _tiny_run(
            focuses=(FocusEvent(time=0.0, title=3, weight=0.9),))
        assert share(focused) > share(base) + 0.3

    def test_focus_weight_zero_restores_base_draws(self):
        released = _tiny_run(
            focuses=(FocusEvent(time=0.0, title=3, weight=0.0),))
        base = _tiny_run()
        # Engine event counts differ (the focus event itself executes),
        # but the session log and metrics must match draw for draw.
        assert released.events == base.events
        assert released.metrics.to_json() == base.metrics.to_json()

    def test_config_validation(self):
        scenario = build_scenario("flash_crowd", seed=5)
        with pytest.raises(ConfigurationError):
            dataclasses.replace(scenario, prefix_safety=0.0)
        with pytest.raises(ConfigurationError):
            dataclasses.replace(scenario, prefix_floor=-1.0)
        with pytest.raises(ConfigurationError):
            dataclasses.replace(scenario, batch_window=-5.0)
        with pytest.raises(ConfigurationError):
            dataclasses.replace(scenario, configuration="bogus")


class TestFlashCrowdAcceptance:
    """The issue's headline claim, asserted at the default horizon."""

    def test_fanout_and_admission_advantage(self):
        prefix = run_runtime(build_scenario("flash_crowd", seed=11))
        whole = run_runtime(dataclasses.replace(
            build_scenario("flash_crowd", seed=11), configuration="cache"))
        assert prefix.notes["fanout_sessions_per_stream"] >= 3.0
        assert prefix.totals["admits"] > whole.totals["admits"]

    def test_prefix_replans_reuse_warm_hints(self):
        result = run_runtime(build_scenario("flash_crowd", seed=11))
        assert result.totals["replans"] > 0
        assert result.planner_cache["probes_warm"] > 0


class TestOtherVodScenarios:
    def test_diurnal_drift_runs_and_drifts(self):
        config = dataclasses.replace(build_scenario("diurnal_drift", seed=3),
                                     horizon=1800.0)
        result = run_runtime(config)
        assert result.totals["replans"] > 0
        assert result.final_mode == "prefix"

    def test_long_tail_fans_out_less_than_flash_crowd(self):
        crowd = run_runtime(build_scenario("flash_crowd", seed=5))
        tail = run_runtime(dataclasses.replace(
            build_scenario("long_tail", seed=5), horizon=6000.0))
        assert crowd.notes["fanout_sessions_per_stream"] > \
            tail.notes["fanout_sessions_per_stream"]

    def test_batch_covers_all_scenarios(self):
        results = run_scenario_batch(sorted(SCENARIOS), horizon=600.0,
                                     seed=3, jobs=2)
        assert sorted(results) == sorted(SCENARIOS)
        for name in ("flash_crowd", "diurnal_drift", "long_tail"):
            assert results[name].totals["admits"] > 0
