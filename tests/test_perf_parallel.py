"""The deterministic process-pool sweep primitive."""

import pytest

from repro.errors import ConfigurationError
from repro.perf.parallel import MAX_CHUNK, _chunk_size, batchable, sweep_map


def _square(x):
    return x * x


def _square_batch(items):
    return [x * x for x in items]


@batchable(_square_batch)
def _square_vec(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("boom at three")
    return x


def _seeded_tuple(item):
    # Every configuration travels inside the item (the contract).
    seed, scale = item
    return (seed, seed * scale)


class TestSweepMap:
    def test_serial_default(self):
        assert sweep_map(_square, range(6)) == [0, 1, 4, 9, 16, 25]

    def test_parallel_matches_serial(self):
        items = list(range(40))
        serial = sweep_map(_square, items)
        assert sweep_map(_square, items, jobs=4) == serial

    def test_order_preserved_with_item_payloads(self):
        items = [(seed, 3) for seed in range(25)]
        expected = [_seeded_tuple(item) for item in items]
        assert sweep_map(_seeded_tuple, items, jobs=3) == expected

    def test_single_item_stays_serial(self):
        # One item never pays pool startup, whatever jobs says.
        assert sweep_map(_square, [7], jobs=8) == [49]

    def test_empty_items(self):
        assert sweep_map(_square, [], jobs=4) == []

    def test_generator_items(self):
        assert sweep_map(_square, (i for i in range(4)),
                         jobs=2) == [0, 1, 4, 9]

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="boom at three"):
            sweep_map(_fail_on_three, range(6), jobs=2)

    def test_worker_exception_propagates_serially(self):
        with pytest.raises(ValueError, match="boom at three"):
            sweep_map(_fail_on_three, range(6))

    def test_explicit_chunk_size(self):
        items = list(range(10))
        assert sweep_map(_square, items, jobs=2,
                         chunk_size=5) == [i * i for i in items]

    def test_jobs_validated(self):
        with pytest.raises(ConfigurationError):
            sweep_map(_square, range(3), jobs=0)

    def test_chunk_size_validated(self):
        with pytest.raises(ConfigurationError):
            sweep_map(_square, range(3), jobs=2, chunk_size=0)


class TestBatchMode:
    """``batch=True`` routes through the :func:`batchable` twin."""

    def test_batchable_attaches_twin_and_returns_fn(self):
        assert _square_vec(3) == 9
        assert _square_vec._batch_impl is _square_batch

    def test_batch_matches_serial(self):
        items = list(range(20))
        assert sweep_map(_square_vec, items, batch=True) == \
            sweep_map(_square_vec, items)

    def test_batch_composes_with_jobs(self):
        items = list(range(30))
        expected = [x * x for x in items]
        assert sweep_map(_square_vec, items, jobs=3,
                         batch=True) == expected

    def test_batch_without_twin_falls_back_per_item(self):
        # _square has no _batch_impl; batch=True must still work.
        assert sweep_map(_square, range(6), batch=True) == \
            [0, 1, 4, 9, 16, 25]

    def test_batch_chunk_size_override(self):
        items = list(range(10))
        assert sweep_map(_square_vec, items, jobs=2, chunk_size=3,
                         batch=True) == [x * x for x in items]

    def test_batch_empty_items(self):
        assert sweep_map(_square_vec, [], jobs=4, batch=True) == []

    def test_figure6_batch_byte_identical(self):
        from repro.experiments import figure6
        from repro.units import KB, MB

        kwargs = dict(with_mems=True,
                      bit_rates={"DivX": 100 * KB, "DVD": 1 * MB},
                      max_streams=500.0)
        scalar = figure6.run(batch=False, **kwargs)
        batched = figure6.run(batch=True, **kwargs)
        assert batched.to_csv() == scalar.to_csv()
        assert batched.notes == scalar.notes

    def test_figure9_batch_byte_identical(self):
        from repro.experiments import figure9

        scalar = figure9.run(distributions=("1:99", "50:50"))
        batched = figure9.run(distributions=("1:99", "50:50"), batch=True)
        assert batched.table.rows == scalar.table.rows
        assert batched.notes == scalar.notes


class TestSweepDeterminism:
    """Parallel runs must be byte-identical to serial ones."""

    def test_figure6_csv_byte_identical_across_jobs(self):
        from repro.experiments import figure6
        from repro.units import KB, MB

        kwargs = dict(with_mems=True,
                      bit_rates={"DivX": 100 * KB, "DVD": 1 * MB},
                      max_streams=500.0)
        serial = figure6.run(jobs=1, **kwargs)
        fanned = figure6.run(jobs=2, **kwargs)
        assert fanned.to_csv() == serial.to_csv()
        assert fanned.notes == serial.notes

    def test_registry_batch_matches_serial(self):
        from repro.experiments.registry import run_selected

        serial = run_selected(["table1", "table3"], jobs=1)
        fanned = run_selected(["table1", "table3"], jobs=2)
        assert list(fanned) == list(serial)
        for experiment_id, result in serial.items():
            assert fanned[experiment_id].to_csv() == result.to_csv()
            assert fanned[experiment_id].notes == result.notes

    def test_scenario_batch_matches_serial(self):
        from repro.runtime.scenarios import run_scenario_batch

        names = ["device-failure", "degraded-bandwidth"]
        serial = run_scenario_batch(names, seed=3, horizon=600.0, jobs=1)
        fanned = run_scenario_batch(names, seed=3, horizon=600.0, jobs=2)
        assert list(fanned) == names
        for name in names:
            assert fanned[name].to_json() == serial[name].to_json()

    def test_scenario_batch_validates_names(self):
        from repro.runtime.scenarios import run_scenario_batch

        with pytest.raises(ConfigurationError):
            run_scenario_batch(["no-such-scenario"])


class TestChunkSize:
    def test_bounds(self):
        for n_items in (1, 2, 7, 40, 1000):
            for jobs in (2, 4, 16):
                chunk = _chunk_size(n_items, jobs)
                assert 1 <= chunk <= MAX_CHUNK

    def test_small_batches_get_unit_chunks(self):
        assert _chunk_size(4, 4) == 1

    def test_large_batches_amortise(self):
        assert _chunk_size(1000, 4) == MAX_CHUNK
