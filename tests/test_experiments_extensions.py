"""Extension-experiment runners."""

import pytest

from repro.experiments.extensions import (
    run_ext_blocking,
    run_ext_hybrid,
    run_ext_placement,
    run_ext_regions,
    run_ext_robustness,
    run_ext_sptf,
    run_ext_startup,
    run_ext_write_mix,
)
from repro.units import KB


class TestStartupExperiment:
    def test_four_configurations_per_media(self):
        result = run_ext_startup()
        assert result.table is not None
        assert len(result.table.rows) == 2 * 4

    def test_cache_starts_fastest(self):
        result = run_ext_startup(bit_rates={"DVD": 1_000 * KB})
        worst = {row[1]: float(row[3]) for row in result.table.rows}
        assert worst["cache"] < worst["direct"]
        assert worst["buffer (pipeline fill)"] > worst["direct"]


class TestPlacementExperiment:
    def test_gain_curve_shape(self):
        result = run_ext_placement()
        series = result.series[0]
        # Uniform endpoint ~1.0, interior maximum above it.
        assert series.y[0] == pytest.approx(1.0, abs=1e-6)
        assert max(series.y) > 1.05


class TestSptfExperiment:
    def test_speedup_everywhere(self):
        result = run_ext_sptf(batch_sizes=(8, 32), n_batches=4)
        assert all(v > 1.0 for v in result.series[0].y)


class TestBlockingExperiment:
    def test_mems_configs_block_less(self):
        result = run_ext_blocking(budgets_gb=(2.0,))
        rows = {row[1]: float(row[3]) for row in result.table.rows}
        assert rows["MEMS buffer"] < rows["disk only"]
        assert rows["MEMS cache"] < rows["disk only"]


class TestHybridExperiment:
    def test_one_series_per_distribution(self):
        result = run_ext_hybrid()
        assert [s.label for s in result.series] == ["1:99", "5:95", "20:80"]
        # Every split k_cache = 0..k is evaluated.
        assert result.series[0].x == [0.0, 1.0, 2.0, 3.0, 4.0]


class TestRobustnessExperiment:
    def test_headroom_reduces_starvation(self):
        result = run_ext_robustness(n_streams=40, n_cycles=20)
        series = result.series[0]
        # Starvation is (weakly) decreasing in the provisioned headroom
        # and effectively gone with generous padding.
        assert series.y[0] >= series.y[-1]
        assert series.y[-1] < series.y[0] * 0.2 or series.y[0] == 0.0


class TestRegionsExperiment:
    def test_map_is_rendered(self):
        result = run_ext_regions(n_rate_points=4, n_budget_points=3)
        assert any("b=buffer" in note for note in result.notes)
        assert len(result.series) == 4


class TestGenerationsExperiment:
    def test_later_generations_save_more(self):
        from repro.experiments.extensions import run_ext_generations

        result = run_ext_generations()
        reductions = [float(row[-1].rstrip("%"))
                      for row in result.table.rows]
        # G1 -> G2 -> G3: monotone improvement, all cost-effective at
        # high utilisation.
        assert reductions == sorted(reductions)
        assert all(r > 0 for r in reductions)

    def test_bank_sized_for_double_bandwidth(self):
        from repro.experiments.extensions import run_ext_generations

        result = run_ext_generations()
        for row in result.table.rows:
            k = int(row[1])
            rate_mb = float(row[2])
            # k devices must carry 2 x 240 MB/s of stream load.
            assert k * rate_mb > 2 * 240


class TestWriteMixExperiment:
    def test_writers_decrease_with_readers(self):
        result = run_ext_write_mix()
        series = result.series[0]
        assert all(a >= b for a, b in zip(series.y, series.y[1:]))
        assert series.y[0] > 0
