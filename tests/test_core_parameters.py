"""SystemParameters: validation, derived quantities, constructors."""

import math

import pytest

from repro.core.parameters import SystemParameters
from repro.errors import ConfigurationError
from repro.units import GB, MB, MS


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("n_streams", -1), ("bit_rate", 0), ("r_disk", 0), ("r_mems", -1),
        ("l_disk", -0.001), ("l_mems", -0.001), ("k", 0), ("c_dram", -1),
        ("c_mems", -1), ("size_mems", 0), ("size_disk", -1),
    ])
    def test_invalid_fields_rejected(self, simple_params, field, value):
        with pytest.raises(ConfigurationError):
            simple_params.replace(**{field: value})

    def test_none_sizes_allowed(self, simple_params):
        unlimited = simple_params.replace(size_mems=None, size_disk=None)
        assert unlimited.size_mems is None
        assert unlimited.mems_bank_capacity is None


class TestDerivedQuantities:
    def test_offered_load(self, simple_params):
        assert simple_params.offered_load == 10 * MB

    def test_disk_utilization(self, simple_params):
        assert simple_params.disk_utilization == pytest.approx(0.1)

    def test_bank_aggregates(self, simple_params):
        p4 = simple_params.replace(k=4)
        assert p4.mems_bank_bandwidth == 4 * 200 * MB
        assert p4.mems_bank_capacity == 4 * 10 * GB
        assert p4.mems_bank_cost == pytest.approx(4 * 10.0)

    def test_bank_cost_requires_finite_size(self, simple_params):
        unlimited = simple_params.replace(size_mems=None)
        with pytest.raises(ConfigurationError):
            _ = unlimited.mems_bank_cost

    def test_latency_ratio(self, simple_params):
        assert simple_params.latency_ratio == pytest.approx(10.0)
        assert simple_params.replace(l_mems=0).latency_ratio == math.inf


class TestTable3Default:
    def test_matches_catalog(self):
        params = SystemParameters.table3_default(n_streams=100,
                                                 bit_rate=1 * MB)
        assert params.r_disk == 300 * MB
        assert params.r_mems == 320 * MB
        assert params.l_mems == pytest.approx(0.59 * MS)
        assert params.c_dram * GB == pytest.approx(20.0)
        assert params.c_mems * GB == pytest.approx(1.0)
        assert params.size_mems == 10 * GB
        assert params.size_disk == 1_000 * GB
        assert params.k == 2  # paper's default buffer bank

    def test_latency_ratio_near_five(self):
        params = SystemParameters.table3_default(n_streams=1,
                                                 bit_rate=1 * MB)
        assert 4.0 < params.latency_ratio < 6.0

    def test_unlimited_relaxation(self):
        params = SystemParameters.table3_default(
            n_streams=1, bit_rate=1 * MB, size_mems_unlimited=True)
        assert params.size_mems is None

    def test_elevator_queue_depth_knob(self):
        shallow = SystemParameters.table3_default(
            n_streams=1, bit_rate=1 * MB, elevator_queue_depth=2)
        deep = SystemParameters.table3_default(
            n_streams=1, bit_rate=1 * MB, elevator_queue_depth=64)
        assert shallow.l_disk > deep.l_disk


class TestDerivation:
    def test_replace_returns_new_instance(self, simple_params):
        other = simple_params.replace(n_streams=20)
        assert other.n_streams == 20
        assert simple_params.n_streams == 10

    def test_with_latency_ratio(self, simple_params):
        adjusted = simple_params.with_latency_ratio(5.0)
        assert adjusted.latency_ratio == pytest.approx(5.0)
        assert adjusted.l_disk == simple_params.l_disk

    def test_with_latency_ratio_rejects_nonpositive(self, simple_params):
        with pytest.raises(ConfigurationError):
            simple_params.with_latency_ratio(0)

    def test_frozen(self, simple_params):
        with pytest.raises(Exception):
            simple_params.n_streams = 5  # type: ignore[misc]
