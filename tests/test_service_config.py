"""The declarative RuntimeConfig tree: validation, JSON, compilation."""

import pytest

from repro.core.parameters import SystemParameters
from repro.errors import ConfigurationError
from repro.runtime.failures import FailureKind
from repro.runtime.scenarios import SCENARIOS
from repro.service.backpressure import BackpressureConfig
from repro.service.config import (
    ControlConfig,
    PlacementConfig,
    PopularityConfig,
    RuntimeConfig,
    SystemConfig,
    WorkloadConfig,
)
from repro.service.scenarios import (
    SERVICE_SCENARIOS,
    build_service_scenario,
)
from repro.units import KB, MB


def _minimal(**overrides):
    fields = dict(
        configuration="none", dram_budget=50 * MB, horizon=1_000.0,
        system=SystemConfig.from_params(SystemParameters.table3_default(
            n_streams=1, bit_rate=500 * KB, k=1)),
        workload=WorkloadConfig(
            arrival_rate=0.1, mean_holding=600.0, n_titles=50,
            popularity=PopularityConfig(kind="zipf", alpha=1.0)))
    fields.update(overrides)
    return RuntimeConfig(**fields)


class TestValidation:
    def test_rejects_unknown_configuration(self):
        with pytest.raises(ConfigurationError, match="configuration"):
            _minimal(configuration="turbo")

    def test_rejects_bad_horizon_and_budget(self):
        with pytest.raises(ConfigurationError, match="horizon"):
            _minimal(horizon=0.0)
        with pytest.raises(ConfigurationError, match="dram_budget"):
            _minimal(dram_budget=-1.0)

    def test_rejects_unknown_device(self):
        with pytest.raises(ConfigurationError, match="device"):
            _minimal(device="G9")

    def test_control_bounds(self):
        with pytest.raises(ConfigurationError, match="epoch"):
            ControlConfig(epoch=0.0)
        with pytest.raises(ConfigurationError, match="replan_latency"):
            ControlConfig(replan_latency=-1.0)
        with pytest.raises(ConfigurationError, match="replan_latency"):
            ControlConfig(epoch=100.0, replan_latency=100.0)

    def test_workload_bounds(self):
        with pytest.raises(ConfigurationError, match="arrival_rate"):
            WorkloadConfig(arrival_rate=0.0, mean_holding=1.0, n_titles=5,
                           popularity=PopularityConfig(kind="uniform"))
        with pytest.raises(ConfigurationError, match="n_titles"):
            WorkloadConfig(arrival_rate=1.0, mean_holding=1.0, n_titles=0,
                           popularity=PopularityConfig(kind="uniform"))

    def test_popularity_kind_needs_its_parameters(self):
        with pytest.raises(ConfigurationError, match="alpha"):
            PopularityConfig(kind="zipf")
        with pytest.raises(ConfigurationError, match="bimodal"):
            PopularityConfig(kind="bimodal", x_percent=5.0)
        with pytest.raises(ConfigurationError, match="kind"):
            PopularityConfig(kind="flat")

    def test_placement_bounds(self):
        with pytest.raises(ConfigurationError, match="decay"):
            PlacementConfig(decay=1.0)
        with pytest.raises(ConfigurationError, match="batch_window"):
            PlacementConfig(batch_window=0.0)


class TestSerialization:
    @pytest.mark.parametrize("name", sorted(SERVICE_SCENARIOS))
    def test_every_scenario_round_trips_through_json(self, name):
        config = build_service_scenario(name, seed=3, horizon=2_000.0)
        clone = RuntimeConfig.from_json(config.to_json())
        assert clone == config
        assert clone.to_json() == config.to_json()

    def test_rejects_wrong_schema(self):
        payload = _minimal().to_dict()
        payload["schema"] = 99
        with pytest.raises(ConfigurationError, match="schema"):
            RuntimeConfig.from_dict(payload)

    def test_rejects_unknown_keys(self):
        payload = _minimal().to_dict()
        payload["turbo"] = True
        with pytest.raises(ConfigurationError, match="turbo"):
            RuntimeConfig.from_dict(payload)

    def test_rejects_missing_required_keys(self):
        payload = _minimal().to_dict()
        del payload["workload"]
        with pytest.raises(ConfigurationError, match="workload"):
            RuntimeConfig.from_dict(payload)

    def test_rejects_non_json_text(self):
        with pytest.raises(ConfigurationError, match="JSON"):
            RuntimeConfig.from_json("{not json")
        with pytest.raises(ConfigurationError, match="object"):
            RuntimeConfig.from_json("[1, 2]")

    def test_timeline_serializes_events(self):
        config = build_service_scenario("device-failure", horizon=2_000.0)
        payload = config.to_dict()["timeline"]
        assert payload["failures"] == [
            {"time": 1_000.0, "kind": "device_loss", "count": 1,
             "factor": 1.0}]
        clone = RuntimeConfig.from_dict(config.to_dict())
        failure = clone.timeline.failures[0]
        assert failure.kind is FailureKind.DEVICE_LOSS

    def test_backpressure_thresholds_ride_along(self):
        config = _minimal(control=ControlConfig(
            backpressure=BackpressureConfig(throttle_enter=0.6,
                                            throttle_exit=0.4,
                                            shed_enter=0.9,
                                            shed_exit=0.8)))
        clone = RuntimeConfig.from_json(config.to_json())
        assert clone.control.backpressure.throttle_enter == pytest.approx(0.6)


class TestCompilation:
    @pytest.mark.parametrize("name", sorted(SERVICE_SCENARIOS))
    def test_to_legacy_matches_the_shim_factories(self, name):
        declarative = build_service_scenario(name, seed=5, horizon=2_500.0)
        legacy = SCENARIOS[name](seed=5, horizon=2_500.0)
        compiled = declarative.to_legacy()
        assert compiled.params == legacy.params
        assert compiled.configuration == legacy.configuration
        assert compiled.dram_budget == legacy.dram_budget
        assert compiled.failures == legacy.failures
        assert compiled.drifts == legacy.drifts
        assert compiled.surges == legacy.surges
        assert compiled.focuses == legacy.focuses
        assert compiled.seed == legacy.seed

    @pytest.mark.parametrize("name", sorted(SERVICE_SCENARIOS))
    def test_from_legacy_round_trips(self, name):
        declarative = build_service_scenario(name, seed=2, horizon=2_000.0)
        lifted = RuntimeConfig.from_legacy(declarative.to_legacy())
        assert lifted == declarative

    def test_replace_returns_an_updated_copy(self):
        config = _minimal()
        faster = config.replace(horizon=500.0)
        assert faster.horizon == 500.0
        assert config.horizon == 1_000.0
