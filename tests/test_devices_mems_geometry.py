"""MEMS sled geometry: tip groups, block mapping, seek distances."""

import pytest

from repro.devices.mems_geometry import MemsGeometry, TipSector
from repro.errors import ConfigurationError
from repro.units import GB


@pytest.fixture
def small_geometry() -> MemsGeometry:
    """Hand-countable: 8 tips in 2 groups of 4, 3x(2 sectors) per tip."""
    return MemsGeometry(n_tips=8, active_tips=4, bits_per_tip_x=3,
                        bits_per_tip_y=1024, sector_bits=512)


class TestValidation:
    def test_tips_must_divide(self):
        with pytest.raises(ConfigurationError):
            MemsGeometry(n_tips=10, active_tips=4, bits_per_tip_x=10,
                         bits_per_tip_y=1024)

    def test_sector_bits_must_divide_y(self):
        with pytest.raises(ConfigurationError):
            MemsGeometry(n_tips=8, active_tips=4, bits_per_tip_x=10,
                         bits_per_tip_y=1000, sector_bits=512)

    @pytest.mark.parametrize("kwargs", [
        {"n_tips": 0}, {"active_tips": 0}, {"active_tips": 16},
        {"bits_per_tip_x": 0}, {"bits_per_tip_y": 0},
    ])
    def test_invalid_counts_rejected(self, kwargs):
        base = dict(n_tips=8, active_tips=4, bits_per_tip_x=3,
                    bits_per_tip_y=1024)
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            MemsGeometry(**base)


class TestCounting:
    def test_derived_quantities(self, small_geometry):
        geo = small_geometry
        assert geo.n_tip_groups == 2
        assert geo.sectors_per_sweep == 2
        assert geo.sector_bytes == 512 * 4 // 8  # 256 B per group-sector
        assert geo.sectors_total == 2 * 3 * 2
        assert geo.capacity_bytes == geo.sectors_total * geo.sector_bytes


class TestBlockMapping:
    def test_layout_order_y_then_x_then_group(self, small_geometry):
        geo = small_geometry
        assert geo.block_to_sector(0) == TipSector(0, 0, 0)
        assert geo.block_to_sector(1) == TipSector(0, 0, 1)
        assert geo.block_to_sector(2) == TipSector(0, 1, 0)
        assert geo.block_to_sector(6) == TipSector(1, 0, 0)

    def test_roundtrip(self, small_geometry):
        geo = small_geometry
        for block in range(geo.sectors_total):
            assert geo.sector_to_block(geo.block_to_sector(block)) == block

    def test_sequential_blocks_need_no_x_motion(self, small_geometry):
        geo = small_geometry
        a = geo.block_to_sector(0)
        b = geo.block_to_sector(1)
        dx, dy = geo.seek_fractions(a, b)
        assert dx == 0.0
        assert dy > 0.0

    def test_out_of_range_rejected(self, small_geometry):
        with pytest.raises(ConfigurationError):
            small_geometry.block_to_sector(small_geometry.sectors_total)
        with pytest.raises(ConfigurationError):
            small_geometry.sector_to_block(TipSector(5, 0, 0))

    def test_block_of_byte(self, small_geometry):
        geo = small_geometry
        assert geo.block_of_byte(0) == 0
        assert geo.block_of_byte(geo.sector_bytes) == 1
        with pytest.raises(ConfigurationError):
            geo.block_of_byte(-1)


class TestSeekFractions:
    def test_bounds(self, small_geometry):
        geo = small_geometry
        corner_a = TipSector(0, 0, 0)
        corner_b = TipSector(0, geo.bits_per_tip_x - 1,
                             geo.sectors_per_sweep - 1)
        dx, dy = geo.seek_fractions(corner_a, corner_b)
        assert dx == 1.0
        assert dy == 1.0

    def test_group_switch_is_free(self, small_geometry):
        a = TipSector(0, 1, 1)
        b = TipSector(1, 1, 1)
        assert small_geometry.seek_fractions(a, b) == (0.0, 0.0)


class TestSynthesize:
    def test_capacity_close_to_request(self):
        geo = MemsGeometry.synthesize(capacity_bytes=10 * GB)
        assert geo.capacity_bytes == pytest.approx(10 * GB, rel=0.01)

    def test_region_roughly_square(self):
        geo = MemsGeometry.synthesize(capacity_bytes=10 * GB)
        assert geo.bits_per_tip_x == pytest.approx(geo.bits_per_tip_y,
                                                   rel=0.2)

    def test_invalid_request_rejected(self):
        with pytest.raises(ConfigurationError):
            MemsGeometry.synthesize(capacity_bytes=0)
