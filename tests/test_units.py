"""Unit constants and formatting helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.units import (
    GB,
    KB,
    MB,
    MS,
    TB,
    US,
    bytes_to_human,
    rate_to_human,
    rpm_to_rotation_time,
    seconds_to_human,
)


class TestConstants:
    def test_decimal_byte_units(self):
        assert KB == 1_000
        assert MB == 1_000 * KB
        assert GB == 1_000 * MB
        assert TB == 1_000 * GB

    def test_time_units(self):
        assert MS == pytest.approx(1e-3)
        assert US == pytest.approx(1e-6)


class TestRpmConversion:
    def test_paper_future_disk(self):
        # 20,000 RPM -> 3 ms per rotation (Table 3).
        assert rpm_to_rotation_time(20_000) == pytest.approx(0.003)

    def test_slow_disk(self):
        assert rpm_to_rotation_time(7_200) == pytest.approx(60 / 7_200)

    @pytest.mark.parametrize("bad", [0, -1, -7200])
    def test_nonpositive_rpm_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            rpm_to_rotation_time(bad)


class TestBytesToHuman:
    @pytest.mark.parametrize("value,expected", [
        (0, "0 B"),
        (512, "512 B"),
        (1_000, "1.00 KB"),
        (1_500_000, "1.50 MB"),
        (10 * GB, "10.00 GB"),
        (2.5 * TB, "2.50 TB"),
    ])
    def test_formatting(self, value, expected):
        assert bytes_to_human(value) == expected

    def test_negative_values(self):
        assert bytes_to_human(-1_500_000) == "-1.50 MB"

    def test_rate_suffix(self):
        assert rate_to_human(320 * MB) == "320.00 MB/s"


class TestSecondsToHuman:
    @pytest.mark.parametrize("value,expected", [
        (2.0, "2.000 s"),
        (0.00059, "0.590 ms"),
        (0.0000005, "0.500 us"),
    ])
    def test_formatting(self, value, expected):
        assert seconds_to_human(value) == expected

    def test_negative(self):
        assert seconds_to_human(-0.001) == "-1.000 ms"
