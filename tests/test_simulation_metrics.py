"""Metrics containers: resource usage accounting and stream summaries."""

import math

import pytest

from repro.simulation.metrics import (
    ResourceUsage,
    SimulationReport,
    summarize_streams,
)
from repro.simulation.streams import StreamBuffer


class TestResourceUsage:
    def test_record_cycle_accumulates(self):
        usage = ResourceUsage(name="disk")
        usage.record_cycle(0.5, 1.0)
        usage.record_cycle(0.7, 1.0)
        assert usage.busy_time == pytest.approx(1.2)
        assert usage.worst_cycle_utilization == pytest.approx(0.7)
        assert usage.cycle_overruns == 0

    def test_overrun_detection(self):
        usage = ResourceUsage(name="disk")
        usage.record_cycle(1.2, 1.0)
        assert usage.cycle_overruns == 1
        assert usage.worst_cycle_utilization == pytest.approx(1.2)

    def test_exact_fit_is_not_an_overrun(self):
        usage = ResourceUsage(name="disk")
        usage.record_cycle(1.0, 1.0)
        assert usage.cycle_overruns == 0

    def test_zero_length_cycle_ignored_for_utilization(self):
        usage = ResourceUsage(name="disk")
        usage.record_cycle(0.5, 0.0)
        assert usage.worst_cycle_utilization == 0.0
        assert usage.busy_time == 0.5


class TestSimulationReport:
    def _report(self, **overrides):
        defaults = dict(horizon=10.0, bytes_delivered=100.0, underflows=[],
                        resources={"disk": ResourceUsage(name="disk",
                                                         busy_time=5.0)},
                        min_stream_level=1.0, peak_stream_level=2.0)
        defaults.update(overrides)
        return SimulationReport(**defaults)

    def test_jitter_free(self):
        assert self._report().jitter_free
        from repro.simulation.streams import UnderflowInterval

        bad = self._report(underflows=[UnderflowInterval(
            stream_id=0, start=1.0, duration=0.5, deficit=100.0)])
        assert not bad.jitter_free
        assert bad.total_underflow_time == pytest.approx(0.5)

    def test_utilization(self):
        report = self._report()
        assert report.utilization("disk") == pytest.approx(0.5)

    def test_zero_horizon_utilization(self):
        report = self._report(horizon=0.0)
        assert report.utilization("disk") == 0.0


class TestSummarizeStreams:
    def test_aggregates_across_buffers(self):
        a = StreamBuffer(0, bit_rate=10.0)
        b = StreamBuffer(1, bit_rate=10.0)
        a.credit(0.0, 100.0)
        a.start_playback(0.0)
        b.credit(0.0, 50.0)
        b.start_playback(0.0)
        underflows, delivered, min_level, peak_level = summarize_streams(
            [a, b], horizon=6.0)
        # b runs dry at t=5: one underflow of 10 bytes / 1 second.
        assert len(underflows) == 1
        assert underflows[0].stream_id == 1
        assert underflows[0].deficit == pytest.approx(10.0)
        # delivered: a plays 60 bytes, b plays 60 - 10 deficit.
        assert delivered == pytest.approx(110.0)
        assert min_level == 0.0
        assert peak_level == pytest.approx(100.0)

    def test_never_played_stream(self):
        idle = StreamBuffer(0, bit_rate=10.0)
        idle.credit(0.0, 100.0)
        underflows, delivered, min_level, peak_level = summarize_streams(
            [idle], horizon=5.0)
        assert not underflows
        assert delivered == 0.0
        assert math.isinf(min_level)  # never observed while playing
        assert peak_level == pytest.approx(100.0)

    def test_underflows_sorted_by_start(self):
        early = StreamBuffer(0, bit_rate=10.0)
        late = StreamBuffer(1, bit_rate=10.0)
        early.credit(0.0, 10.0)
        early.start_playback(0.0)   # dry at t=1
        late.credit(0.0, 30.0)
        late.start_playback(0.0)    # dry at t=3
        underflows, *_ = summarize_streams([late, early], horizon=5.0)
        assert [u.stream_id for u in underflows] == [0, 1]
