"""End-to-end tests for the online server runtime."""

import json

import pytest

from repro.runtime import (
    MetricsLog,
    SessionEventKind,
    build_scenario,
    run_scenario,
)
from repro.workloads.arrivals import predicted_blocking


class TestDeterminism:
    def test_same_seed_reproduces_the_whole_run(self):
        first = run_scenario("device-failure", seed=5)
        second = run_scenario("device-failure", seed=5)
        assert first.to_json() == second.to_json()

    def test_different_seeds_diverge(self):
        first = run_scenario("adaptive-cache", seed=1, horizon=2_000)
        second = run_scenario("adaptive-cache", seed=2, horizon=2_000)
        assert first.to_json() != second.to_json()


class TestLifecycle:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario("steady-disk", seed=0, horizon=10_000)

    def test_session_conservation(self, result):
        totals = result.totals
        assert totals["arrivals"] == totals["admits"] + totals["rejects"]
        assert result.active_sessions == (
            totals["admits"] - totals["departures"] - totals["drops"])
        assert result.active_sessions >= 0

    def test_event_log_is_time_ordered(self, result):
        times = [e.time for e in result.events]
        assert times == sorted(times)

    def test_rejections_carry_reasons(self, result):
        rejects = [e for e in result.events
                   if e.kind is SessionEventKind.REJECT]
        assert rejects, "a near-capacity run must block someone"
        assert all(e.reason for e in rejects)

    def test_every_departure_matches_an_admission(self, result):
        admitted = {e.session_id for e in result.events
                    if e.kind is SessionEventKind.ADMIT}
        ended = [e.session_id for e in result.events
                 if e.kind in (SessionEventKind.DEPART,
                               SessionEventKind.DROP)]
        assert set(ended) <= admitted
        assert len(ended) == len(set(ended))  # nobody departs twice


class TestErlangValidation:
    def test_blocking_probability_tracks_erlang_b(self):
        result = run_scenario("steady-disk", seed=0)
        config = build_scenario("steady-disk", seed=0)
        predicted = predicted_blocking(config.workload.arrival_rate,
                                       config.workload.mean_holding,
                                       result.final_capacity)
        assert result.blocking_probability > 0
        # Finite horizon (the system starts empty) biases the empirical
        # value slightly low; 0.025 absolute is ~3 sigma at this length.
        assert result.blocking_probability == pytest.approx(predicted,
                                                            abs=0.025)


class TestFailureInjection:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario("device-failure", seed=7)

    def test_failure_is_survived_with_a_feasible_design(self, result):
        assert result.totals["failures"] == 1
        assert result.k_active == 1
        assert result.final_mode in ("cache", "buffer", "none")
        assert result.final_dram_required <= result.dram_budget * (1 + 1e-9)
        assert result.active_sessions <= result.final_capacity

    def test_failure_is_visible_in_exported_metrics(self, result):
        assert result.degraded_time > 0
        log = MetricsLog.from_json(result.metrics.to_json())
        degraded_intervals = [s for s in log.snapshots
                              if s.gauges["degraded"] == 1.0]
        assert degraded_intervals
        assert all(s.gauges["k_active"] == 1.0 for s in degraded_intervals)
        assert log.totals()["failures"] == 1

    def test_shed_sessions_are_logged_as_drops(self, result):
        drops = [e for e in result.events
                 if e.kind is SessionEventKind.DROP]
        assert len(drops) == result.totals["drops"]
        assert drops, "a near-capacity failure must shed someone"
        failure_time = build_scenario("device-failure").failures[0].time
        assert all(e.time >= failure_time for e in drops)
        assert all(e.reason for e in drops)

    def test_bandwidth_degrade_also_recovers(self):
        result = run_scenario("degraded-bandwidth", seed=3)
        assert result.degraded_time > 0
        assert result.final_dram_required <= result.dram_budget * (1 + 1e-9)


class TestAdaptivePlacement:
    def test_drift_triggers_migrations(self):
        result = run_scenario("adaptive-cache", seed=4)
        config = build_scenario("adaptive-cache", seed=4)
        first_drift = min(d.time for d in config.drifts)
        later = [m for m in result.migrations if m.time > first_drift]
        assert later, "popularity drift must cause re-placements"
        assert any(m.migrations_in for m in later)
        assert any(m.migrations_out for m in later)

    def test_cache_serves_sessions(self):
        result = run_scenario("adaptive-cache", seed=4)
        served = {e.served_by for e in result.events
                  if e.kind is SessionEventKind.ADMIT}
        assert "cache" in served and "disk" in served

    def test_flash_crowd_raises_blocking(self):
        calm = run_scenario("steady-disk", seed=0, horizon=15_000)
        surged = run_scenario("flash-crowd", seed=0, horizon=15_000)
        assert surged.blocking_probability > calm.blocking_probability


class TestMetricsExport:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario("adaptive-cache", seed=2, horizon=3_000)

    def test_metrics_round_trip_through_json(self, result):
        text = result.metrics.to_json(indent=2)
        restored = MetricsLog.from_json(text)
        assert restored.snapshots == result.metrics.snapshots
        assert restored.to_json(indent=2) == text

    def test_result_json_is_valid_and_complete(self, result):
        payload = json.loads(result.to_json())
        assert payload["schema"] == 1
        assert payload["summary"]["totals"]["arrivals"] > 0
        assert len(payload["events"]) == len(result.events)
        assert len(payload["metrics"]["snapshots"]) == len(
            result.metrics.snapshots)

    def test_intervals_tile_the_horizon(self, result):
        snapshots = result.metrics.snapshots
        assert snapshots[0].t_start == 0.0
        assert snapshots[-1].t_end == pytest.approx(result.horizon)
        for a, b in zip(snapshots, snapshots[1:]):
            assert b.t_start == pytest.approx(a.t_end)
            assert b.index == a.index + 1

    def test_dashboard_renders(self, result):
        text = result.dashboard()
        assert "totals:" in text
        assert "Erlang-B" in text
        assert "warm probes" in text

    def test_planner_probe_gauges_exported(self, result):
        last = result.metrics.snapshots[-1].gauges
        assert {"planner_probe_cold", "planner_probe_warm",
                "planner_probe_total"} <= last.keys()
        assert last["planner_probe_total"] == (
            last["planner_probe_cold"] + last["planner_probe_warm"])
        assert last["planner_probe_total"] > 0
        # Counters are cumulative: monotone across snapshots.
        totals = [s.gauges["planner_probe_total"]
                  for s in result.metrics.snapshots]
        assert totals == sorted(totals)

    def test_summary_reports_probe_counts(self, result):
        assert "planner probes:" in result.summary()

    def test_custom_horizon_respected(self):
        result = run_scenario("steady-disk", seed=0, horizon=5_000)
        assert result.horizon == 5_000
        assert result.metrics.snapshots[-1].t_end == pytest.approx(5_000)
