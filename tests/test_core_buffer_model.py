"""Theorem 2: the k-device MEMS buffer design."""

import math

import pytest

from repro.core.buffer_model import (
    choose_disk_transfers_per_mems_cycle,
    design_mems_buffer,
    disk_cycle_bounds,
    mems_cycle_floor,
)
from repro.core.parameters import SystemParameters
from repro.core.theorems import io_cycle_direct
from repro.errors import (
    AdmissionError,
    CapacityError,
    SchedulingError,
)
from repro.units import GB, KB, MB, MS


class TestMemsCycleFloor:
    def test_hand_computed(self, simple_params):
        # C = N*L*R / (k*R - 2*(N+k-1)*B)
        # = 10 * 1e-3 * 2e8 / (2e8 - 2*10*1e6) = 2e6 / 1.8e8.
        assert mems_cycle_floor(simple_params) == pytest.approx(2e6 / 1.8e8)

    def test_zero_streams(self, simple_params):
        assert mems_cycle_floor(simple_params.replace(n_streams=0)) == 0.0

    def test_doubled_load_saturates_bank(self, simple_params):
        # MEMS must sustain 2x the stream load (Section 3.1): the bank
        # rate is 200 MB/s, so 100 streams of 1 MB/s (200 MB/s doubled)
        # saturate it even though the raw load is only half the rate.
        with pytest.raises(AdmissionError):
            mems_cycle_floor(simple_params.replace(n_streams=100))

    def test_more_devices_lower_floor(self, simple_params):
        c1 = mems_cycle_floor(simple_params)
        c2 = mems_cycle_floor(simple_params.replace(k=2))
        assert c2 < c1

    def test_corollary2_k_devices_behave_as_one_fast_device(self):
        # Corollary 2: for N >> k, a k-bank equals a single device with
        # k-fold throughput and k-fold smaller latency.
        base = SystemParameters(
            n_streams=1_000, bit_rate=100 * KB, r_disk=300 * MB,
            r_mems=100 * MB, l_disk=3 * MS, l_mems=1 * MS, k=4)
        merged = base.replace(k=1, r_mems=400 * MB, l_mems=0.25 * MS)
        assert mems_cycle_floor(base) == pytest.approx(
            mems_cycle_floor(merged), rel=1e-2)


class TestDiskCycleBounds:
    def test_lower_bound_is_theorem1_cycle(self, simple_params):
        lower, _ = disk_cycle_bounds(simple_params)
        assert lower == pytest.approx(io_cycle_direct(
            10, 1 * MB, 100 * MB, 10 * MS))

    def test_upper_bound_from_eq7(self, simple_params):
        # 2 * N * T * B <= k * Size  =>  T <= 10 GB / (2 * 10 MB/s).
        _, upper = disk_cycle_bounds(simple_params)
        assert upper == pytest.approx(10 * GB / (2 * 10 * MB))

    def test_unlimited_storage_unbounded(self, simple_params):
        _, upper = disk_cycle_bounds(simple_params.replace(size_mems=None))
        assert math.isinf(upper)


class TestChooseM:
    def test_smallest_feasible_m(self):
        # N=10, T_disk=10s, C=1s: M >= 10*1/(10-1) = 1.11 -> M=2.
        assert choose_disk_transfers_per_mems_cycle(10, 10.0, 1.0) == 2

    def test_m_at_least_one(self):
        assert choose_disk_transfers_per_mems_cycle(10, 1000.0, 0.001) == 1

    def test_quantised_cycle_covers_service_demand(self):
        n, t_disk, c = 37, 5.0, 0.8
        m = choose_disk_transfers_per_mems_cycle(n, t_disk, c)
        t_mems = (m / n) * t_disk
        # The service condition: T_mems >= C * T_disk / (T_disk - C).
        assert t_mems >= c * t_disk / (t_disk - c) - 1e-12

    def test_m_strictly_below_n(self):
        with pytest.raises(SchedulingError):
            choose_disk_transfers_per_mems_cycle(5, 1.0, 0.9)

    def test_needs_two_streams(self):
        with pytest.raises(SchedulingError):
            choose_disk_transfers_per_mems_cycle(1, 10.0, 1.0)

    def test_t_disk_must_exceed_floor(self):
        with pytest.raises(SchedulingError):
            choose_disk_transfers_per_mems_cycle(10, 1.0, 2.0)


class TestDesign:
    def test_equation5_value(self, simple_params):
        design = design_mems_buffer(simple_params, quantise=False)
        c = mems_cycle_floor(simple_params)
        t = disk_cycle_bounds(simple_params)[1]
        slack = 1.0  # k=1: (2k-2)/N = 0
        expected = 1 * MB * c * slack * t / (t - c)
        assert design.s_mems_dram == pytest.approx(expected)

    def test_unlimited_storage_limit(self, simple_params):
        unlimited = simple_params.replace(size_mems=None)
        design = design_mems_buffer(unlimited, quantise=False)
        c = mems_cycle_floor(unlimited)
        assert design.s_mems_dram == pytest.approx(1 * MB * c)
        assert math.isinf(design.t_disk)
        assert design.m is None

    def test_buffer_shrinks_dram_vs_theorem1(self, table3_params):
        from repro.core.theorems import min_buffer_disk_dram

        design = design_mems_buffer(table3_params)
        assert design.s_mems_dram < min_buffer_disk_dram(table3_params)

    def test_disk_io_size(self, simple_params):
        design = design_mems_buffer(simple_params, quantise=False)
        assert design.s_disk_mems == pytest.approx(
            1 * MB * design.t_disk)

    def test_total_dram(self, simple_params):
        design = design_mems_buffer(simple_params, quantise=False)
        assert design.total_dram == pytest.approx(10 * design.s_mems_dram)

    def test_quantised_design_has_m_and_t_mems(self, table3_params):
        design = design_mems_buffer(table3_params)
        assert design.m is not None and 1 <= design.m < 1_000
        assert design.t_mems == pytest.approx(
            design.m / 1_000 * design.t_disk)
        discrete = design.s_mems_dram_discrete
        assert discrete is not None
        # The discrete size is within the integer-M quantisation of the
        # closed form.
        assert discrete >= design.s_mems_dram * 0.5

    def test_pinned_t_disk_respected(self, simple_params):
        lower, upper = disk_cycle_bounds(simple_params)
        t = (lower + upper) / 2
        design = design_mems_buffer(simple_params, t_disk=t, quantise=False)
        assert design.t_disk == t

    def test_pinned_t_disk_bounds_enforced(self, simple_params):
        lower, upper = disk_cycle_bounds(simple_params)
        with pytest.raises(AdmissionError):
            design_mems_buffer(simple_params, t_disk=lower / 2)
        with pytest.raises(CapacityError):
            design_mems_buffer(simple_params, t_disk=upper * 2)

    def test_storage_too_small_raises_capacity_error(self, simple_params):
        # With 95 streams the minimal disk cycle needs far more staging
        # bytes than one 10 GB device holds... but the bank also lacks
        # bandwidth; use a bigger-rate bank to isolate the capacity check.
        tight = simple_params.replace(n_streams=90, r_mems=400 * MB,
                                      size_mems=1 * GB)
        with pytest.raises(CapacityError):
            design_mems_buffer(tight)

    def test_zero_streams_trivial_design(self, simple_params):
        design = design_mems_buffer(simple_params.replace(n_streams=0))
        assert design.total_dram == 0.0

    def test_larger_t_disk_means_less_dram(self, simple_params):
        lower, upper = disk_cycle_bounds(simple_params)
        small = design_mems_buffer(simple_params, t_disk=lower * 1.2,
                                   quantise=False)
        large = design_mems_buffer(simple_params, t_disk=upper,
                                   quantise=False)
        assert large.s_mems_dram < small.s_mems_dram

    def test_single_stream_skips_quantisation(self):
        params = SystemParameters.table3_default(n_streams=1,
                                                 bit_rate=1 * MB, k=2)
        design = design_mems_buffer(params)
        assert design.m is None
        assert design.s_mems_dram > 0
