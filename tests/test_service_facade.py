"""MediaService: admit/teardown/stats/reconfigure/drain + the replan window."""

import pytest

from repro.errors import ConfigurationError
from repro.service.backpressure import ServiceState
from repro.service.config import ControlConfig
from repro.service.events import (
    AdmitPending,
    BackpressureChanged,
    DrainStarted,
    EventBus,
    EventLog,
    FailureInjected,
    Reconfigured,
    RecoveryPlanned,
    ReplanCompleted,
    ReplanStarted,
    SessionAdmitted,
    SessionClosed,
    SessionRejected,
)
from repro.service.facade import MediaService, TicketState
from repro.service.scenarios import (
    adaptive_cache,
    device_failure,
    overload,
    steady_disk,
)
from repro.units import MB


def _service(config, **control_overrides):
    if control_overrides:
        config = config.replace(
            control=ControlConfig(
                epoch=config.control.epoch,
                metrics_interval=config.control.metrics_interval,
                backpressure=config.control.backpressure,
                **control_overrides))
    bus = EventBus()
    log = EventLog()
    bus.subscribe(None, log)
    return MediaService(config, bus=bus), log


class TestAdmitTeardown:
    def test_admit_returns_a_finalized_ticket(self):
        service, log = _service(steady_disk(seed=1, horizon=2_000.0))
        ticket = service.admit()
        assert ticket.state in (TicketState.ADMITTED, TicketState.REJECTED)
        assert not ticket.pending
        assert ticket.title is not None
        assert ticket.finalized_at == service.sim.now
        assert len(log.of_type(SessionAdmitted)
                   or log.of_type(SessionRejected)) == 1

    def test_admitted_ticket_names_its_session_and_server(self):
        service, _ = _service(steady_disk(seed=1, horizon=2_000.0))
        ticket = service.admit(title=3)
        assert ticket.admitted
        assert ticket.title == 3
        assert ticket.session_id is not None
        assert ticket.served_by in ("disk", "mems", "dram")
        assert service.engine.active_sessions == 1

    def test_ticket_ids_are_sequential(self):
        service, _ = _service(steady_disk(seed=1, horizon=2_000.0))
        ids = [service.admit().ticket_id for _ in range(4)]
        assert ids == [0, 1, 2, 3]

    def test_teardown_closes_a_live_session_once(self):
        service, log = _service(steady_disk(seed=1, horizon=2_000.0))
        ticket = service.admit()
        assert ticket.admitted
        assert service.teardown(ticket.session_id) is True
        assert service.engine.active_sessions == 0
        assert service.teardown(ticket.session_id) is False
        assert len(log.of_type(SessionClosed)) == 1

    def test_stats_snapshot_tracks_the_plane(self):
        service, _ = _service(steady_disk(seed=1, horizon=2_000.0))
        service.admit()
        snap = service.stats()
        assert snap["active_sessions"] == 1
        assert snap["state"] == "accepting"
        assert snap["mode"] == "none"
        assert snap["tickets_issued"] == 1
        assert snap["pending_tickets"] == 0
        assert 0 < snap["load"] <= 1.5
        assert snap["events_published"] >= 1


class TestPendingAdmit:
    """Acceptance criterion: admit never blocks on a replan."""

    def test_admit_during_replan_window_parks_pending(self):
        config = adaptive_cache(seed=2, horizon=6_000.0)
        service, log = _service(config, replan_latency=30.0)
        sim = service.sim
        service.on_epoch(sim)
        assert service.replan_inflight
        assert len(log.of_type(ReplanStarted)) == 1
        assert len(log.of_type(ReplanCompleted)) == 0

        # Admit inside the window: an immediate PENDING ticket, no
        # engine admission, no RNG draw, no blocking.
        draws_before = service.engine.rng.bit_generator.state
        before = service.engine.active_sessions
        tickets = [service.admit() for _ in range(3)]
        assert all(t.pending for t in tickets)
        assert all(t.session_id is None for t in tickets)
        assert service.engine.active_sessions == before
        assert service.engine.rng.bit_generator.state == draws_before
        assert service.pending_tickets == 3
        assert len(log.of_type(AdmitPending)) == 3

        # The replan-done event finalizes them FIFO under the new plan.
        sim.run(until=sim.now + 31.0)
        assert not service.replan_inflight
        assert service.pending_tickets == 0
        assert all(not t.pending for t in tickets)
        assert all(t.finalized_at == pytest.approx(30.0) for t in tickets)
        completed = log.of_type(ReplanCompleted)
        assert len(completed) == 1
        assert completed[0].pending_finalized == 3
        assert completed[0].duration == pytest.approx(30.0)
        finalized = [e for e in log.of_type(SessionAdmitted)
                     + log.of_type(SessionRejected) if e.was_pending]
        assert [e.ticket_id for e in finalized] == [0, 1, 2]

    def test_zero_latency_replans_stay_synchronous(self):
        service, log = _service(adaptive_cache(seed=2, horizon=6_000.0))
        service.on_epoch(service.sim)
        assert not service.replan_inflight
        assert len(log.of_type(ReplanStarted)) == 1
        assert len(log.of_type(ReplanCompleted)) == 1
        ticket = service.admit()
        assert not ticket.pending

    def test_static_mode_ignores_the_window(self):
        service, log = _service(steady_disk(seed=1, horizon=2_000.0),
                                replan_latency=30.0)
        service.on_epoch(service.sim)
        assert not service.replan_inflight
        assert log.events == []

    def test_drain_during_window_rejects_parked_tickets(self):
        service, log = _service(adaptive_cache(seed=2, horizon=6_000.0),
                                replan_latency=30.0)
        sim = service.sim
        service.on_epoch(sim)
        ticket = service.admit()
        assert ticket.pending
        engine_rejects = service.engine.rejects_total
        service.drain()
        sim.run(until=sim.now + 31.0)
        assert ticket.state is TicketState.REJECTED
        assert ticket.reason == "draining"
        # Service-level rejection: the engine counters are untouched.
        assert service.engine.rejects_total == engine_rejects


class TestReconfigureDrain:
    def test_reconfigure_maps_keywords_to_engine_operations(self):
        service, log = _service(adaptive_cache(seed=2, horizon=6_000.0))
        factor = service.engine.config.workload.rate_factor
        changes = service.reconfigure(rate_factor=2.0,
                                      dram_budget=40 * MB)
        assert changes == ("rate_factor=2",
                           f"dram_budget={40 * MB:g}")
        assert (service.engine.config.workload.rate_factor
                == pytest.approx(2.0 * factor))
        assert service.engine.config.dram_budget == 40 * MB
        events = log.of_type(Reconfigured)
        assert len(events) == 1
        assert events[0].changes == changes

    def test_reconfigure_rejects_no_op_and_half_focus(self):
        service, _ = _service(adaptive_cache(seed=2, horizon=6_000.0))
        with pytest.raises(ConfigurationError, match="no changes"):
            service.reconfigure()
        with pytest.raises(ConfigurationError, match="focus"):
            service.reconfigure(focus_title=3)

    def test_drain_rejects_new_admits_without_touching_the_engine(self):
        service, log = _service(steady_disk(seed=1, horizon=2_000.0))
        first = service.admit()
        assert first.admitted
        active = service.drain()
        assert active == 1
        assert service.draining
        ticket = service.admit()
        assert ticket.state is TicketState.REJECTED
        assert ticket.reason == "draining"
        assert service.engine.rejects_total == 0
        assert len(log.of_type(DrainStarted)) == 1
        service.drain()  # idempotent: still one DrainStarted event
        assert len(log.of_type(DrainStarted)) == 1


class TestBackpressureIntegration:
    def test_overload_drives_the_governor_to_shedding(self):
        service, log = _service(overload(seed=4, horizon=2_000.0))
        while service.state is not ServiceState.SHEDDING:
            ticket = service.admit()
            if not ticket.admitted and service.state is not \
                    ServiceState.SHEDDING:  # pragma: no cover
                pytest.fail("rejections started before SHEDDING")
        changes = log.of_type(BackpressureChanged)
        assert [c.state for c in changes] == ["throttled", "shedding"]
        assert all(c.previous != c.state for c in changes)

    def test_teardowns_recover_through_throttled(self):
        service, log = _service(overload(seed=4, horizon=2_000.0))
        admitted = []
        while service.state is not ServiceState.SHEDDING:
            ticket = service.admit()
            if ticket.admitted:
                admitted.append(ticket.session_id)
        for session_id in admitted:
            service.teardown(session_id)
        assert service.state is ServiceState.ACCEPTING
        path = [c.state for c in log.of_type(BackpressureChanged)]
        assert path == ["throttled", "shedding", "throttled", "accepting"]


class TestFailureInjection:
    def test_failure_publishes_injection_and_recovery(self):
        config = device_failure(seed=3, horizon=4_000.0)
        service, log = _service(config)
        event = config.timeline.failures[0]
        k_before = service.engine.k_active
        service.inject_failure(service.sim, event)
        assert service.engine.k_active == k_before - 1
        injected = log.of_type(FailureInjected)
        recovery = log.of_type(RecoveryPlanned)
        assert len(injected) == 1 and len(recovery) == 1
        assert injected[0].failure_kind == "device_loss"
        assert recovery[0].k_active == k_before - 1
        assert recovery[0].sessions_dropped >= 0
