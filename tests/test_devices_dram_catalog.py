"""DRAM model and the Table 1 / Table 3 catalogs."""

import pytest

from repro.devices.catalog import (
    DISK_2002,
    DRAM_2002,
    DRAM_2007,
    FUTURE_DISK_2007,
    MEDIA_BITRATES,
    MEMS_G3,
    device_table_2002,
    device_table_2007,
    table3_devices,
)
from repro.devices.dram import Dram
from repro.errors import ConfigurationError
from repro.units import GB, KB, MB, US


class TestDram:
    def test_2007_figures(self):
        assert DRAM_2007.transfer_rate == 10_000 * MB
        assert DRAM_2007.capacity == 5 * GB
        assert DRAM_2007.cost_per_byte * GB == pytest.approx(20.0)
        assert DRAM_2007.access_latency == pytest.approx(0.03 * US)

    def test_flat_latency(self):
        assert DRAM_2007.average_access_time() == DRAM_2007.max_access_time()

    def test_transfer_time(self):
        # 10 GB at 10 GB/s: one second plus the (negligible) latency.
        assert DRAM_2007.transfer_time(10_000 * MB) == \
            pytest.approx(1.0, rel=1e-6)

    def test_cost_of(self):
        assert DRAM_2007.cost_of(1 * GB) == pytest.approx(20.0)
        with pytest.raises(ConfigurationError):
            DRAM_2007.cost_of(-1)

    @pytest.mark.parametrize("field,value", [
        ("bandwidth", 0), ("capacity_bytes", 0), ("dollars_per_byte", -1),
        ("access_latency", -1),
    ])
    def test_validation(self, field, value):
        kwargs = dict(name="bad", bandwidth=1 * GB, capacity_bytes=1 * GB,
                      dollars_per_byte=1 / GB, access_latency=1e-8)
        kwargs[field] = value
        with pytest.raises(ConfigurationError):
            Dram(**kwargs)


class TestCatalog2002:
    def test_disk_2002_within_table1_bands(self):
        assert DISK_2002.capacity == 100 * GB
        assert 30 * MB <= DISK_2002.transfer_rate <= 55 * MB
        assert 0.001 <= DISK_2002.average_access_time() <= 0.011
        assert 100 <= DISK_2002.cost_per_device <= 300

    def test_dram_2002(self):
        assert DRAM_2002.capacity == 0.5 * GB
        assert DRAM_2002.cost_per_byte * GB == pytest.approx(200.0)

    def test_table_rows(self):
        table = device_table_2002()
        media = [row.medium for row in table]
        assert media == ["DRAM", "MEMS", "Disk"]
        mems_row = table[1]
        assert mems_row.capacity_gb is None  # no MEMS devices in 2002


class TestCatalog2007:
    def test_table_rows_match_models(self):
        table = {row.medium: row for row in device_table_2007()}
        assert table["MEMS"].capacity_gb == MEMS_G3.capacity / GB
        assert table["Disk"].capacity_gb == FUTURE_DISK_2007.capacity / GB
        assert table["DRAM"].cost_per_gb == \
            pytest.approx(DRAM_2007.cost_per_byte * GB)

    def test_mems_access_band_contains_model(self):
        row = {r.medium: r for r in device_table_2007()}["MEMS"]
        lo, hi = row.access_time_ms
        avg_ms = MEMS_G3.average_access_time() * 1e3
        max_ms = MEMS_G3.max_access_time() * 1e3
        assert lo <= max_ms <= hi
        assert avg_ms <= hi

    def test_disk_bandwidth_band_contains_model(self):
        row = {r.medium: r for r in device_table_2007()}["Disk"]
        lo, hi = row.bandwidth_mb_s
        assert lo <= FUTURE_DISK_2007.transfer_rate / MB <= hi
        # The zoned geometry's inner tracks approach the low end.
        inner_rate = FUTURE_DISK_2007.geometry.track_transfer_rate(
            FUTURE_DISK_2007.geometry.n_cylinders - 1,
            FUTURE_DISK_2007.rpm)
        assert inner_rate / MB == pytest.approx(lo, rel=0.35)

    def test_table3_devices_mapping(self):
        devices = table3_devices()
        assert devices["FutureDisk"] is FUTURE_DISK_2007
        assert devices["G3 MEMS"] is MEMS_G3
        assert devices["DRAM"] is DRAM_2007

    def test_mems_20x_cheaper_than_dram(self):
        # Section 5.1.2: "MEMS buffering is 20 times cheaper than DRAM
        # buffering per-byte."
        ratio = DRAM_2007.cost_per_byte / MEMS_G3.cost_per_byte
        assert ratio == pytest.approx(20.0)


class TestMediaBitrates:
    def test_paper_sweep_values(self):
        assert MEDIA_BITRATES["mp3"] == 10 * KB
        assert MEDIA_BITRATES["DivX"] == 100 * KB
        assert MEDIA_BITRATES["DVD"] == 1 * MB
        assert MEDIA_BITRATES["HDTV"] == 10 * MB

    def test_intro_stream_counts(self):
        # Section 5: the FutureDisk supports "tens" of HDTV, >100 DVD,
        # ~1000 DivX, tens of thousands of mp3 streams.
        disk_rate = FUTURE_DISK_2007.transfer_rate
        assert 10 <= disk_rate / MEDIA_BITRATES["HDTV"] < 100
        assert disk_rate / MEDIA_BITRATES["DVD"] > 100
        assert disk_rate / MEDIA_BITRATES["DivX"] >= 1000
        assert disk_rate / MEDIA_BITRATES["mp3"] >= 10_000
