"""DES core and the piecewise-linear stream buffer model."""


import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.simulation.engine import EventQueue, Simulator
from repro.simulation.streams import StreamBuffer


class TestEventQueue:
    def test_time_order(self):
        queue = EventQueue()
        seen = []
        queue.push(2.0, lambda s: seen.append("b"))
        queue.push(1.0, lambda s: seen.append("a"))
        assert queue.pop().time == 1.0
        assert queue.pop().time == 2.0

    def test_fifo_among_simultaneous(self):
        queue = EventQueue()
        queue.push(1.0, lambda s: None, label="first")
        queue.push(1.0, lambda s: None, label="second")
        assert queue.pop().label == "first"
        assert queue.pop().label == "second"

    def test_peek_and_len(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(3.0, lambda s: None)
        assert queue.peek_time() == 3.0
        assert len(queue) == 1
        assert bool(queue)

    def test_fifo_stable_among_many_simultaneous(self):
        # The heap must never compare callbacks: ties on time break on
        # the insertion sequence alone, even at scale.
        queue = EventQueue()
        for i in range(100):
            queue.push(5.0, lambda s: None, label=f"event-{i}")
        labels = [queue.pop().label for _ in range(100)]
        assert labels == [f"event-{i}" for i in range(100)]

    def test_fifo_stable_interleaved_with_other_times(self):
        queue = EventQueue()
        queue.push(9.0, lambda s: None, label="late")
        queue.push(1.0, lambda s: None, label="tie-a")
        queue.push(0.5, lambda s: None, label="early")
        queue.push(1.0, lambda s: None, label="tie-b")
        queue.push(1.0, lambda s: None, label="tie-c")
        labels = [queue.pop().label for _ in range(5)]
        assert labels == ["early", "tie-a", "tie-b", "tie-c", "late"]


class TestSimulator:
    def test_runs_in_time_order(self):
        sim = Simulator()
        order = []
        sim.at(2.0, lambda s: order.append(2))
        sim.at(1.0, lambda s: order.append(1))
        sim.run()
        assert order == [1, 2]
        assert sim.now == 2.0

    def test_after_schedules_relative(self):
        sim = Simulator()
        times = []
        sim.after(1.0, lambda s: (times.append(s.now),
                                  s.after(0.5, lambda s2:
                                          times.append(s2.now))))
        sim.run()
        assert times == [1.0, 1.5]

    def test_run_until(self):
        sim = Simulator()
        seen = []
        sim.at(1.0, lambda s: seen.append(1))
        sim.at(5.0, lambda s: seen.append(5))
        sim.run(until=2.0)
        assert seen == [1]
        assert sim.now == 2.0
        sim.run()
        assert seen == [1, 5]

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.at(1.0, lambda s: s.at(0.5, lambda s2: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.after(-1.0, lambda s: None)

    def test_event_budget(self):
        sim = Simulator(max_events=10)

        def rearm(s):
            s.after(0.1, rearm)

        sim.after(0.1, rearm)
        with pytest.raises(SimulationError):
            sim.run()

    def test_max_events_validated(self):
        with pytest.raises(ConfigurationError):
            Simulator(max_events=0)

    def test_simultaneous_callbacks_run_in_scheduling_order(self):
        sim = Simulator()
        order = []

        def spawn(s):
            order.append("spawn")
            for i in range(5):
                s.at(3.0, (lambda j: lambda s2: order.append(j))(i))

        sim.at(3.0, spawn)
        sim.run()
        assert order == ["spawn", 0, 1, 2, 3, 4]

    def test_every_rearms_across_run_until_boundaries(self):
        # every() re-arms after each firing, so a recurrence survives
        # repeated bounded run() calls and stays on its grid.
        sim = Simulator()
        ticks = []
        sim.every(1.0, lambda s: ticks.append(s.now))
        assert sim.run(until=2.5) == 2.5
        assert ticks == [1.0, 2.0]
        assert sim.now == 2.5
        assert sim.run(until=4.0) == 4.0
        assert ticks == [1.0, 2.0, 3.0, 4.0]
        # The next firing (t=5.0) is armed but beyond the horizon.
        assert sim.run(until=4.5) == 4.5
        assert ticks == [1.0, 2.0, 3.0, 4.0]

    def test_every_with_start_honours_until(self):
        sim = Simulator()
        ticks = []
        sim.every(2.0, lambda s: ticks.append(s.now), start=1.0)
        sim.run(until=6.0)
        assert ticks == [1.0, 3.0, 5.0]


class TestStreamBuffer:
    def test_no_drain_before_playback(self):
        buf = StreamBuffer(0, bit_rate=1e6)
        buf.credit(0.0, 5e6)
        assert buf.level(10.0) == pytest.approx(5e6)

    def test_linear_drain_after_playback(self):
        buf = StreamBuffer(0, bit_rate=1e6)
        buf.credit(0.0, 5e6)
        buf.start_playback(0.0)
        assert buf.level(2.0) == pytest.approx(3e6)

    def test_exact_exhaustion_is_not_underflow(self):
        buf = StreamBuffer(0, bit_rate=1e6)
        buf.credit(0.0, 5e6)
        buf.start_playback(0.0)
        assert buf.level(5.0) == pytest.approx(0.0)
        assert not buf.underflows

    def test_underflow_recorded_with_deficit(self):
        buf = StreamBuffer(0, bit_rate=1e6)
        buf.credit(0.0, 5e6)
        buf.start_playback(0.0)
        buf.level(7.0)
        assert len(buf.underflows) == 1
        event = buf.underflows[0]
        assert event.deficit == pytest.approx(2e6)
        assert event.duration == pytest.approx(2.0)
        assert event.start == pytest.approx(5.0)

    def test_epsilon_deficits_forgiven(self):
        buf = StreamBuffer(0, bit_rate=1e6)
        buf.credit(0.0, 1e6)
        buf.start_playback(0.0)
        buf.level(1.0 + 1e-12)  # rounding-scale overshoot
        assert not buf.underflows

    def test_overflow_raises(self):
        buf = StreamBuffer(0, bit_rate=1e6, capacity=1e6)
        with pytest.raises(SimulationError):
            buf.credit(0.0, 2e6)

    def test_time_cannot_go_backwards(self):
        buf = StreamBuffer(0, bit_rate=1e6)
        buf.credit(5.0, 1e6)
        with pytest.raises(SimulationError):
            buf.level(4.0)

    def test_min_and_peak_levels(self):
        buf = StreamBuffer(0, bit_rate=1e6, capacity=1e7)
        buf.credit(0.0, 4e6)
        buf.start_playback(0.0)
        buf.credit(2.0, 1e6)  # level 2e6 -> 3e6
        buf.level(5.0)  # drains to 0
        assert buf.peak_level == pytest.approx(4e6)
        assert buf.min_level == pytest.approx(0.0)

    def test_playback_start_recorded(self):
        buf = StreamBuffer(0, bit_rate=1e6)
        buf.credit(1.0, 1e6)
        buf.start_playback(1.5)
        assert buf.playback_start == 1.5
        with pytest.raises(SimulationError):
            buf.start_playback(2.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StreamBuffer(-1, bit_rate=1e6)
        with pytest.raises(ConfigurationError):
            StreamBuffer(0, bit_rate=0)
        with pytest.raises(ConfigurationError):
            StreamBuffer(0, bit_rate=1e6, capacity=0)
        buf = StreamBuffer(0, bit_rate=1e6)
        with pytest.raises(ConfigurationError):
            buf.credit(0.0, -1)
