"""DES core and the piecewise-linear stream buffer model."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.simulation.engine import EventQueue, Simulator
from repro.simulation.streams import StreamBuffer


class TestEventQueue:
    def test_time_order(self):
        queue = EventQueue()
        seen = []
        queue.push(2.0, lambda s: seen.append("b"))
        queue.push(1.0, lambda s: seen.append("a"))
        assert queue.pop().time == 1.0
        assert queue.pop().time == 2.0

    def test_fifo_among_simultaneous(self):
        queue = EventQueue()
        queue.push(1.0, lambda s: None, label="first")
        queue.push(1.0, lambda s: None, label="second")
        assert queue.pop().label == "first"
        assert queue.pop().label == "second"

    def test_peek_and_len(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(3.0, lambda s: None)
        assert queue.peek_time() == 3.0
        assert len(queue) == 1
        assert bool(queue)

    def test_fifo_stable_among_many_simultaneous(self):
        # The heap must never compare callbacks: ties on time break on
        # the insertion sequence alone, even at scale.
        queue = EventQueue()
        for i in range(100):
            queue.push(5.0, lambda s: None, label=f"event-{i}")
        labels = [queue.pop().label for _ in range(100)]
        assert labels == [f"event-{i}" for i in range(100)]

    def test_fifo_stable_interleaved_with_other_times(self):
        queue = EventQueue()
        queue.push(9.0, lambda s: None, label="late")
        queue.push(1.0, lambda s: None, label="tie-a")
        queue.push(0.5, lambda s: None, label="early")
        queue.push(1.0, lambda s: None, label="tie-b")
        queue.push(1.0, lambda s: None, label="tie-c")
        labels = [queue.pop().label for _ in range(5)]
        assert labels == ["early", "tie-a", "tie-b", "tie-c", "late"]


class TestSimulator:
    def test_runs_in_time_order(self):
        sim = Simulator()
        order = []
        sim.at(2.0, lambda s: order.append(2))
        sim.at(1.0, lambda s: order.append(1))
        sim.run()
        assert order == [1, 2]
        assert sim.now == 2.0

    def test_after_schedules_relative(self):
        sim = Simulator()
        times = []
        sim.after(1.0, lambda s: (times.append(s.now),
                                  s.after(0.5, lambda s2:
                                          times.append(s2.now))))
        sim.run()
        assert times == [1.0, 1.5]

    def test_run_until(self):
        sim = Simulator()
        seen = []
        sim.at(1.0, lambda s: seen.append(1))
        sim.at(5.0, lambda s: seen.append(5))
        sim.run(until=2.0)
        assert seen == [1]
        assert sim.now == 2.0
        sim.run()
        assert seen == [1, 5]

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.at(1.0, lambda s: s.at(0.5, lambda s2: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.after(-1.0, lambda s: None)

    def test_event_budget(self):
        sim = Simulator(max_events=10)

        def rearm(s):
            s.after(0.1, rearm)

        sim.after(0.1, rearm)
        with pytest.raises(SimulationError):
            sim.run()

    def test_max_events_validated(self):
        with pytest.raises(ConfigurationError):
            Simulator(max_events=0)

    def test_simultaneous_callbacks_run_in_scheduling_order(self):
        sim = Simulator()
        order = []

        def spawn(s):
            order.append("spawn")
            for i in range(5):
                s.at(3.0, (lambda j: lambda s2: order.append(j))(i))

        sim.at(3.0, spawn)
        sim.run()
        assert order == ["spawn", 0, 1, 2, 3, 4]

    def test_every_rearms_across_run_until_boundaries(self):
        # every() re-arms after each firing, so a recurrence survives
        # repeated bounded run() calls and stays on its grid.
        sim = Simulator()
        ticks = []
        sim.every(1.0, lambda s: ticks.append(s.now))
        assert sim.run(until=2.5) == 2.5
        assert ticks == [1.0, 2.0]
        assert sim.now == 2.5
        assert sim.run(until=4.0) == 4.0
        assert ticks == [1.0, 2.0, 3.0, 4.0]
        # The next firing (t=5.0) is armed but beyond the horizon.
        assert sim.run(until=4.5) == 4.5
        assert ticks == [1.0, 2.0, 3.0, 4.0]

    def test_every_with_start_honours_until(self):
        sim = Simulator()
        ticks = []
        sim.every(2.0, lambda s: ticks.append(s.now), start=1.0)
        sim.run(until=6.0)
        assert ticks == [1.0, 3.0, 5.0]


class TestCalendarQueueEdges:
    """Edge cases specific to the bucketed calendar-queue core."""

    def test_empty_queue_peek_time_after_drain(self):
        queue = EventQueue()
        queue.push(1.0, lambda s: None)
        queue.pop()
        assert queue.peek_time() is None
        assert len(queue) == 0
        assert not queue

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_fifo_at_equal_timestamps_within_one_bucket(self):
        # Ties land in the same bucket; the bucket sort must break them
        # on insertion sequence alone.
        queue = EventQueue(bucket_width=10.0)
        for i in range(50):
            queue.push(5.0, lambda s: None, label=f"tie-{i}")
        assert [queue.pop().label for _ in range(50)] == [
            f"tie-{i}" for i in range(50)]

    def test_far_future_events_cross_bucket_wraps(self):
        # Events thousands of bucket widths apart must still drain in
        # time order, including ties far beyond the first bucket.
        queue = EventQueue(bucket_width=0.001)
        queue.push(5000.0, lambda s: None, label="far-tie-a")
        queue.push(0.0005, lambda s: None, label="near")
        queue.push(5000.0, lambda s: None, label="far-tie-b")
        queue.push(123.456, lambda s: None, label="mid")
        order = [queue.pop().label for _ in range(4)]
        assert order == ["near", "mid", "far-tie-a", "far-tie-b"]

    def test_push_behind_the_drain_cursor(self):
        # A standalone queue may push a time earlier than events it has
        # already popped; the entry must still come out next.
        queue = EventQueue(bucket_width=1.0)
        queue.push(10.0, lambda s: None, label="late")
        queue.push(0.5, lambda s: None, label="first")
        assert queue.pop().label == "first"
        queue.push(0.25, lambda s: None, label="behind")
        assert queue.pop().label == "behind"
        assert queue.pop().label == "late"

    def test_infinite_times_park_in_the_far_heap(self):
        queue = EventQueue()
        queue.push(float("inf"), lambda s: None, label="end-a")
        queue.push(1.0, lambda s: None, label="soon")
        queue.push(float("inf"), lambda s: None, label="end-b")
        assert queue.peek_time() == 1.0
        assert queue.pop().label == "soon"
        assert queue.peek_time() == float("inf")
        assert [queue.pop().label for _ in range(2)] == ["end-a", "end-b"]

    def test_nan_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(float("nan"), lambda s: None)
        with pytest.raises(SimulationError):
            EventQueue(bucket_width=None).push(float("nan"), lambda s: None)

    def test_bucket_width_validated(self):
        with pytest.raises(ConfigurationError):
            EventQueue(bucket_width=0.0)
        with pytest.raises(ConfigurationError):
            EventQueue(bucket_width=-1.0)

    def test_every_rearms_across_wheel_rotation(self):
        # interval >> bucket width: each re-arm hops hundreds of
        # buckets; the recurrence must stay on its exact grid.
        sim = Simulator(bucket_width=0.001)
        ticks = []
        sim.every(0.25, lambda s: ticks.append(s.now))
        sim.run(until=2.0)
        assert ticks == [0.25 * i for i in range(1, 9)]

    def test_every_interval_must_be_finite(self):
        sim = Simulator()
        for bad in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(SimulationError):
                sim.every(bad, lambda s: None)

    def test_sparse_schedule_falls_back_to_heap(self):
        # One event per second against 1 ms buckets: the wheel detects
        # ~1 event/bucket and degrades to the heap, with no change in
        # the observable schedule.
        sim = Simulator(bucket_width=0.001)
        ticks = []
        sim.every(1.0, lambda s: ticks.append(s.now))
        assert sim._queue.bucket_width == 0.001
        sim.run(until=600.0)
        assert sim._queue.bucket_width is None  # degraded, sticky
        assert len(ticks) == 600
        assert ticks[:3] == [1.0, 2.0, 3.0]
        # The recurrence keeps firing across the mode switch.
        sim.run(until=602.5)
        assert len(ticks) == 602

    def test_pop_rearms_recurring_entries(self):
        sim = Simulator()
        sim.every(2.0, lambda s: None, label="tick")
        queue = sim._queue
        first = queue.pop()
        assert (first.time, first.label) == (2.0, "tick")
        second = queue.pop()
        assert (second.time, second.label) == (4.0, "tick")
        assert second.sequence == first.sequence  # same entry, re-armed


class TestWheelHeapEquivalence:
    """The wheel and the plain heap execute the identical event order."""

    schedules = st.lists(
        st.tuples(st.integers(min_value=0, max_value=40),  # time grid
                  st.integers(min_value=0, max_value=3)),  # pops after
        min_size=1, max_size=60)

    @settings(max_examples=200, deadline=None)
    @given(schedule=schedules, width=st.sampled_from([0.25, 1.0, 7.0]))
    def test_push_pop_interleavings_bit_identical(self, schedule, width):
        wheel = EventQueue(bucket_width=width)
        heap = EventQueue(bucket_width=None)
        traces = {id(wheel): [], id(heap): []}
        for n, (tick, pops) in enumerate(schedule):
            time = tick * 0.125  # exact binary fractions
            for queue in (wheel, heap):
                queue.push(time, lambda s: None, label=f"e{n}")
            for _ in range(pops):
                if not wheel:
                    break
                for queue in (wheel, heap):
                    event = queue.pop()
                    traces[id(queue)].append(
                        (event.time, event.sequence, event.label))
        while wheel:
            for queue in (wheel, heap):
                event = queue.pop()
                traces[id(queue)].append(
                    (event.time, event.sequence, event.label))
        assert traces[id(wheel)] == traces[id(heap)]
        assert len(heap) == 0

    sim_programs = st.lists(
        st.tuples(st.integers(min_value=0, max_value=30),   # delay grid
                  st.integers(min_value=0, max_value=2)),   # respawns
        min_size=1, max_size=40)

    @settings(max_examples=150, deadline=None)
    @given(program=sim_programs,
           intervals=st.lists(st.integers(min_value=1, max_value=9),
                              min_size=0, max_size=3),
           horizon=st.integers(min_value=1, max_value=50))
    def test_simulator_traces_bit_identical(self, program, intervals,
                                            horizon):
        def build(bucket_width):
            trace = []
            sim = Simulator(max_events=5_000, bucket_width=bucket_width)

            def spawn(delay, respawns, tag):
                def cb(s):
                    trace.append((s.now, tag))
                    for j in range(respawns):
                        spawn(delay * 0.5 + j, respawns - 1,
                              f"{tag}.{j}")
                sim.after(delay, cb, tag)

            for n, (delay, respawns) in enumerate(program):
                spawn(delay * 0.25, respawns, f"p{n}")
            for n, period in enumerate(intervals):
                sim.every(period * 0.5,
                          (lambda t: lambda s: trace.append((s.now, t)))(
                              f"tick{n}"))
            sim.run(until=horizon * 0.5)
            sim.run(until=horizon * 0.75)
            return trace, sim.now, sim.events_executed

        assert build(1.0) == build(None)


class TestStreamBuffer:
    def test_no_drain_before_playback(self):
        buf = StreamBuffer(0, bit_rate=1e6)
        buf.credit(0.0, 5e6)
        assert buf.level(10.0) == pytest.approx(5e6)

    def test_linear_drain_after_playback(self):
        buf = StreamBuffer(0, bit_rate=1e6)
        buf.credit(0.0, 5e6)
        buf.start_playback(0.0)
        assert buf.level(2.0) == pytest.approx(3e6)

    def test_exact_exhaustion_is_not_underflow(self):
        buf = StreamBuffer(0, bit_rate=1e6)
        buf.credit(0.0, 5e6)
        buf.start_playback(0.0)
        assert buf.level(5.0) == pytest.approx(0.0)
        assert not buf.underflows

    def test_underflow_recorded_with_deficit(self):
        buf = StreamBuffer(0, bit_rate=1e6)
        buf.credit(0.0, 5e6)
        buf.start_playback(0.0)
        buf.level(7.0)
        assert len(buf.underflows) == 1
        event = buf.underflows[0]
        assert event.deficit == pytest.approx(2e6)
        assert event.duration == pytest.approx(2.0)
        assert event.start == pytest.approx(5.0)

    def test_epsilon_deficits_forgiven(self):
        buf = StreamBuffer(0, bit_rate=1e6)
        buf.credit(0.0, 1e6)
        buf.start_playback(0.0)
        buf.level(1.0 + 1e-12)  # rounding-scale overshoot
        assert not buf.underflows

    def test_overflow_raises(self):
        buf = StreamBuffer(0, bit_rate=1e6, capacity=1e6)
        with pytest.raises(SimulationError):
            buf.credit(0.0, 2e6)

    def test_time_cannot_go_backwards(self):
        buf = StreamBuffer(0, bit_rate=1e6)
        buf.credit(5.0, 1e6)
        with pytest.raises(SimulationError):
            buf.level(4.0)

    def test_min_and_peak_levels(self):
        buf = StreamBuffer(0, bit_rate=1e6, capacity=1e7)
        buf.credit(0.0, 4e6)
        buf.start_playback(0.0)
        buf.credit(2.0, 1e6)  # level 2e6 -> 3e6
        buf.level(5.0)  # drains to 0
        assert buf.peak_level == pytest.approx(4e6)
        assert buf.min_level == pytest.approx(0.0)

    def test_playback_start_recorded(self):
        buf = StreamBuffer(0, bit_rate=1e6)
        buf.credit(1.0, 1e6)
        buf.start_playback(1.5)
        assert buf.playback_start == 1.5
        with pytest.raises(SimulationError):
            buf.start_playback(2.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StreamBuffer(-1, bit_rate=1e6)
        with pytest.raises(ConfigurationError):
            StreamBuffer(0, bit_rate=0)
        with pytest.raises(ConfigurationError):
            StreamBuffer(0, bit_rate=1e6, capacity=0)
        buf = StreamBuffer(0, bit_rate=1e6)
        with pytest.raises(ConfigurationError):
            buf.credit(0.0, -1)
