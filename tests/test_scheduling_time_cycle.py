"""Time-cycle schedule construction and the Figures 4-5 structure."""


import pytest

from repro.core.buffer_model import design_mems_buffer
from repro.core.parameters import SystemParameters
from repro.errors import ConfigurationError, SchedulingError
from repro.scheduling.time_cycle import (
    CycleOperation,
    OperationKind,
    build_buffer_schedule,
    build_direct_schedule,
)
from repro.units import MB


@pytest.fixture
def params() -> SystemParameters:
    return SystemParameters.table3_default(n_streams=10, bit_rate=1 * MB,
                                           k=1)


@pytest.fixture
def bank_params() -> SystemParameters:
    # The paper's Figure 5 example: N=45, k=3.
    return SystemParameters.table3_default(n_streams=45, bit_rate=1 * MB,
                                           k=3)


class TestDirectSchedule:
    def test_one_io_per_stream(self, params):
        schedule = build_direct_schedule(params)
        assert len(schedule.disk_cycles) == 1
        ops = schedule.disk_cycles[0]
        assert len(ops) == 10
        assert {op.stream_id for op in ops} == set(range(10))
        assert all(op.kind is OperationKind.DISK_READ for op in ops)

    def test_io_size_is_cycle_worth(self, params):
        schedule = build_direct_schedule(params)
        op = schedule.disk_cycles[0][0]
        assert op.size == pytest.approx(params.bit_rate * schedule.t_disk)

    def test_longer_cycle_allowed(self, params):
        schedule = build_direct_schedule(params, t_cycle=10.0)
        assert schedule.t_disk == 10.0
        schedule.verify_steady_state()

    def test_below_minimum_cycle_rejected(self, params):
        minimum = build_direct_schedule(params).t_disk
        with pytest.raises(SchedulingError):
            build_direct_schedule(params, t_cycle=minimum / 2)

    def test_steady_state_holds(self, params):
        build_direct_schedule(params).verify_steady_state()

    def test_fractional_streams_rejected(self, params):
        with pytest.raises(ConfigurationError):
            build_direct_schedule(params.replace(n_streams=2.5))


class TestBufferSchedule:
    def test_figure4_structure(self, params):
        # Single MEMS device, N=10: each MEMS cycle has 10 DRAM
        # transfers and M disk transfers (M < N).
        design = design_mems_buffer(params)
        schedule = build_buffer_schedule(design)
        cycle = schedule.mems_cycles[0]
        reads = [op for op in cycle if op.kind is OperationKind.MEMS_READ]
        writes = [op for op in cycle if op.kind is OperationKind.MEMS_WRITE]
        assert len(reads) == 10
        assert len(writes) == design.m

    def test_figure5_round_robin_device_assignment(self, bank_params):
        design = design_mems_buffer(bank_params)
        schedule = build_buffer_schedule(design)
        disk_ops = schedule.disk_cycles[0]
        # Every k-th disk IO lands on the same device (Section 3.1.2).
        devices = [op.device_index for op in disk_ops]
        assert devices[:6] == [0, 1, 2, 0, 1, 2]
        # 45 streams over 3 devices: 15 DRAM transfers per device/cycle.
        cycle = schedule.mems_cycles[0]
        per_device = {}
        for op in cycle:
            if op.kind is OperationKind.MEMS_READ:
                per_device[op.device_index] = \
                    per_device.get(op.device_index, 0) + 1
        assert per_device == {0: 15, 1: 15, 2: 15}

    def test_cycle_ratio_matches_m_over_n(self, bank_params):
        design = design_mems_buffer(bank_params)
        schedule = build_buffer_schedule(design)
        assert schedule.t_mems / schedule.t_disk == \
            pytest.approx(design.m / 45)

    def test_hyper_period_balance(self, bank_params):
        design = design_mems_buffer(bank_params)
        schedule = build_buffer_schedule(design)
        schedule.verify_steady_state()
        read = schedule.bytes_by_kind(OperationKind.MEMS_READ)
        written = schedule.bytes_by_kind(OperationKind.MEMS_WRITE)
        assert read == pytest.approx(written)

    def test_writes_preserve_disk_io_size(self, bank_params):
        # Routing whole IOs (not striping) preserves the disk-side IO
        # size on the MEMS device.
        design = design_mems_buffer(bank_params)
        schedule = build_buffer_schedule(design)
        writes = [op for cycle in schedule.mems_cycles for op in cycle
                  if op.kind is OperationKind.MEMS_WRITE]
        assert all(op.size == pytest.approx(design.s_disk_mems)
                   for op in writes)

    def test_unquantised_design_rejected(self, params):
        design = design_mems_buffer(params, quantise=False)
        with pytest.raises(SchedulingError):
            build_buffer_schedule(design)

    def test_steady_state_detects_imbalance(self, params):
        design = design_mems_buffer(params)
        schedule = build_buffer_schedule(design)
        # Corrupt one operation's size: the invariant must trip.
        bad = CycleOperation(kind=OperationKind.MEMS_READ, stream_id=0,
                             device_index=0, size=1.0)
        schedule.mems_cycles[0][0] = bad
        with pytest.raises(SchedulingError):
            schedule.verify_steady_state()


class TestOperationValidation:
    def test_negative_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            CycleOperation(kind=OperationKind.DISK_READ, stream_id=-1,
                           device_index=None, size=1.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            CycleOperation(kind=OperationKind.DISK_READ, stream_id=0,
                           device_index=None, size=-1.0)
