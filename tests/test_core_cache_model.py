"""Theorems 3-4: striped and replicated MEMS caches."""

import pytest

from repro.core.cache_model import (
    CachePolicy,
    cache_buffer,
    cache_capacity_fraction,
    design_mems_cache,
    replicated_cache_buffer,
    striped_cache_buffer,
)
from repro.core.popularity import BimodalPopularity
from repro.core.theorems import min_buffer_direct
from repro.errors import AdmissionError, ConfigurationError
from repro.units import GB, KB, MB, MS


class TestStripedBuffer:
    def test_equation12_hand_computed(self):
        # n=10, L=1ms, k=2, R=100MB/s, B=1MB/s:
        # S = 10 * 1e-3 * 2e8 * 1e6 / (2e8 - 1e7).
        s = striped_cache_buffer(10, 1 * MB, 2, 100 * MB, 1 * MS)
        assert s == pytest.approx(10 * 1e-3 * 2e8 * 1e6 / (2e8 - 1e7))

    def test_corollary3_k_times_throughput_same_latency(self):
        # A striped k-bank equals one device with k-fold rate and the
        # *same* latency — exactly, not just asymptotically.
        s_bank = striped_cache_buffer(40, 1 * MB, 4, 80 * MB, 1 * MS)
        s_single = striped_cache_buffer(40, 1 * MB, 1, 320 * MB, 1 * MS)
        assert s_bank == pytest.approx(s_single)

    def test_saturation(self):
        with pytest.raises(AdmissionError):
            striped_cache_buffer(200, 1 * MB, 2, 100 * MB, 1 * MS)

    def test_zero_streams(self):
        assert striped_cache_buffer(0, 1 * MB, 2, 100 * MB, 1 * MS) == 0.0


class TestReplicatedBuffer:
    def test_equation13_hand_computed(self):
        # n=10, k=2: (n+k-1)/k = 5.5; kR = 2e8;
        # S = 5.5 * 1e-3 * 2e8 * 1e6 / (2e8 - 11 * 1e6).
        s = replicated_cache_buffer(10, 1 * MB, 2, 100 * MB, 1 * MS)
        assert s == pytest.approx(5.5 * 1e-3 * 2e8 * 1e6 / (2e8 - 1.1e7))

    def test_corollary4_k_devices_as_one_fast_low_latency(self):
        # For N divisible by and large vs k: k-bank ~ one device with
        # k-fold rate and k-fold smaller latency.
        s_bank = replicated_cache_buffer(1_200, 100 * KB, 4, 80 * MB, 1 * MS)
        s_merged = striped_cache_buffer(1_200, 100 * KB, 1, 320 * MB,
                                        0.25 * MS)
        assert s_bank == pytest.approx(s_merged, rel=1e-2)

    def test_policies_coincide_at_k1(self):
        args = (17, 1 * MB, 1, 100 * MB, 1 * MS)
        assert replicated_cache_buffer(*args) == \
            pytest.approx(striped_cache_buffer(*args))

    def test_replication_beats_striping_at_moderate_load(self):
        # Fewer seeks per device: at the same n, replication needs less
        # DRAM whenever n >> k.
        args = (100, 1 * MB, 4, 100 * MB, 1 * MS)
        assert replicated_cache_buffer(*args) < striped_cache_buffer(*args)

    def test_saturation_includes_rounding_slack(self):
        # (n + k - 1) * B must stay below k * R.
        with pytest.raises(AdmissionError):
            replicated_cache_buffer(198, 1 * MB, 4, 50 * MB, 1 * MS)


class TestDispatch:
    def test_cache_buffer_dispatches(self):
        args = (10, 1 * MB, 2, 100 * MB, 1 * MS)
        assert cache_buffer(CachePolicy.STRIPED, *args) == \
            striped_cache_buffer(*args)
        assert cache_buffer(CachePolicy.REPLICATED, *args) == \
            replicated_cache_buffer(*args)

    @pytest.mark.parametrize("kwargs", [
        {"n_cached": -1}, {"bit_rate": 0}, {"k": 0}, {"r_mems": 0},
        {"l_mems": -1},
    ])
    def test_validation(self, kwargs):
        base = dict(n_cached=10, bit_rate=1 * MB, k=2, r_mems=100 * MB,
                    l_mems=1 * MS)
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            striped_cache_buffer(**base)


class TestCapacityFraction:
    def test_striping_aggregates_capacity(self):
        p = cache_capacity_fraction(CachePolicy.STRIPED, 4, 10 * GB,
                                    1_000 * GB)
        assert p == pytest.approx(0.04)

    def test_replication_stores_one_copy(self):
        p = cache_capacity_fraction(CachePolicy.REPLICATED, 4, 10 * GB,
                                    1_000 * GB)
        assert p == pytest.approx(0.01)

    def test_clamped_at_one(self):
        assert cache_capacity_fraction(CachePolicy.STRIPED, 200, 10 * GB,
                                       1_000 * GB) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            cache_capacity_fraction(CachePolicy.STRIPED, 0, 1, 1)
        with pytest.raises(ConfigurationError):
            cache_capacity_fraction(CachePolicy.STRIPED, 1, 0, 1)


class TestDesign:
    @pytest.fixture
    def params(self, simple_params):
        return simple_params.replace(k=2, n_streams=50, r_disk=200 * MB)

    def test_population_split(self, params):
        popularity = BimodalPopularity(1, 99)
        design = design_mems_cache(params, CachePolicy.STRIPED, popularity)
        # Striped: p = 2*10GB/1TB = 2%; X=1% < p: beyond-class branch.
        assert design.cached_fraction == pytest.approx(0.02)
        expected_h = 0.99 + (0.02 - 0.01) / 0.99 * 0.01
        assert design.hit_rate == pytest.approx(expected_h)
        assert design.n_cache_streams == pytest.approx(50 * expected_h)
        assert design.n_disk_streams == pytest.approx(50 * (1 - expected_h))

    def test_dram_components(self, params):
        popularity = BimodalPopularity(10, 90)
        design = design_mems_cache(params, CachePolicy.REPLICATED,
                                   popularity)
        expected_disk = min_buffer_direct(design.n_disk_streams, 1 * MB,
                                          200 * MB, 10 * MS)
        assert design.s_disk_dram == pytest.approx(expected_disk)
        expected_total = (design.n_cache_streams * design.s_mems_dram
                          + design.n_disk_streams * design.s_disk_dram)
        assert design.total_dram == pytest.approx(expected_total)

    def test_requires_finite_sizes(self, params):
        with pytest.raises(ConfigurationError):
            design_mems_cache(params.replace(size_mems=None),
                              CachePolicy.STRIPED, BimodalPopularity(1, 99))
        with pytest.raises(ConfigurationError):
            design_mems_cache(params.replace(size_disk=None),
                              CachePolicy.STRIPED, BimodalPopularity(1, 99))

    def test_skew_shrinks_disk_population(self, params):
        heavy = design_mems_cache(params, CachePolicy.STRIPED,
                                  BimodalPopularity(1, 99))
        light = design_mems_cache(params, CachePolicy.STRIPED,
                                  BimodalPopularity(20, 80))
        assert heavy.n_disk_streams < light.n_disk_streams
