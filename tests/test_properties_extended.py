"""Property-based tests for the extension modules and device statistics."""

import random

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.parameters import SystemParameters
from repro.core.write_streams import design_mixed_streams
from repro.devices.catalog import FUTURE_DISK_2007, MEMS_G3
from repro.devices.mems_placement import (
    expected_seek_time,
    organ_pipe_layout,
    sequential_layout,
)
from repro.errors import AdmissionError, CapacityError
from repro.scheduling.elevator import ElevatorScheduler
from repro.scheduling.requests import IoKind, IoRequest
from repro.scheduling.sptf import (
    batch_positioning_time,
    sptf_order,
    x_elevator_order,
)
from repro.units import KB
from repro.workloads.arrivals import erlang_b


class TestErlangBProperties:
    @given(load=st.floats(min_value=0.0, max_value=500.0),
           capacity=st.integers(min_value=0, max_value=400))
    def test_is_a_probability(self, load, capacity):
        b = erlang_b(load, capacity)
        assert 0.0 <= b <= 1.0

    @given(load=st.floats(min_value=0.01, max_value=300.0),
           capacity=st.integers(min_value=1, max_value=300))
    def test_recurrence_identity(self, load, capacity):
        # B(c) = a·B(c-1) / (c + a·B(c-1)) — the defining recurrence.
        prev = erlang_b(load, capacity - 1)
        current = erlang_b(load, capacity)
        assert current == pytest.approx(
            load * prev / (capacity + load * prev), rel=1e-12)

    @given(load=st.floats(min_value=0.1, max_value=100.0),
           capacity=st.integers(min_value=1, max_value=100))
    def test_carried_load_below_capacity(self, load, capacity):
        carried = load * (1.0 - erlang_b(load, capacity))
        assert carried <= capacity + 1e-9


class TestElevatorOrderStatistics:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           queue=st.integers(min_value=4, max_value=128))
    @settings(max_examples=30)
    def test_sweep_visits_each_position_once(self, seed, queue):
        rng = random.Random(seed)
        requests = [IoRequest(deadline=1.0, stream_id=i, kind=IoKind.READ,
                              size=1.0, position=rng.random())
                    for i in range(queue)]
        scheduler = ElevatorScheduler(head_position=rng.random())
        ordered = scheduler.order(list(requests))
        assert sorted(r.request_id for r in ordered) == \
            sorted(r.request_id for r in requests)

    def test_mean_gap_matches_latency_model(self):
        # The scheduled_latency model assumes mean inter-service seek
        # distance 1/(q+1) of the stroke; verify by Monte Carlo.
        rng = random.Random(7)
        queue = 16
        gaps = []
        for _ in range(4_000):
            positions = sorted(rng.random() for _ in range(queue))
            gaps.append(positions[0])
            gaps.extend(b - a for a, b in zip(positions, positions[1:]))
        mean_gap = sum(gaps) / len(gaps)
        assert mean_gap == pytest.approx(1.0 / (queue + 1), rel=0.05)


class TestSptfProperties:
    @given(seed=st.integers(min_value=0, max_value=1_000),
           batch=st.integers(min_value=2, max_value=48))
    @settings(max_examples=25, deadline=None)
    def test_sptf_no_worse_than_submission_order(self, seed, batch):
        points = np.random.default_rng(seed).random((batch, 2))
        sptf = batch_positioning_time(MEMS_G3, points,
                                      sptf_order(MEMS_G3, points))
        fifo = batch_positioning_time(MEMS_G3, points, list(range(batch)))
        assert sptf <= fifo * (1 + 1e-9)

    @given(seed=st.integers(min_value=0, max_value=1_000),
           batch=st.integers(min_value=2, max_value=48))
    @settings(max_examples=25, deadline=None)
    def test_orders_are_permutations(self, seed, batch):
        points = np.random.default_rng(seed).random((batch, 2))
        assert sorted(sptf_order(MEMS_G3, points)) == list(range(batch))
        assert sorted(x_elevator_order(points)) == list(range(batch))


class TestPlacementProperties:
    @given(seed=st.integers(min_value=0, max_value=1_000),
           n=st.integers(min_value=2, max_value=24))
    @settings(max_examples=30)
    def test_organ_pipe_no_worse_than_sequential(self, seed, n):
        rng = np.random.default_rng(seed)
        weights = list(rng.random(n) + 0.01)
        tuned = expected_seek_time(organ_pipe_layout(weights), weights,
                                   MEMS_G3)
        naive = expected_seek_time(sequential_layout(n), weights, MEMS_G3)
        # Organ-pipe is optimal for seek costs linear in distance; the
        # calibrated curve is concave, so near-uniform weights at small
        # n can leave it a few percent behind sequential (worst ratio
        # over this strategy's whole domain: 1.035 at seed=388, n=4).
        assert tuned <= naive * 1.05

    @given(n=st.integers(min_value=1, max_value=24))
    def test_expected_seek_below_worst_case(self, n):
        weights = [1.0] * n
        value = expected_seek_time(sequential_layout(n), weights, MEMS_G3)
        assert 0.0 <= value <= MEMS_G3.max_access_time()


class TestMixedStreamProperties:
    @given(readers=st.integers(min_value=0, max_value=800),
           writers=st.integers(min_value=0, max_value=800))
    @settings(max_examples=40)
    def test_writers_never_cost_more_dram_than_readers(self, readers,
                                                       writers):
        assume(readers + writers >= 1)
        params = SystemParameters.table3_default(
            n_streams=1, bit_rate=100 * KB, k=2)
        n = readers + writers
        try:
            mixed = design_mixed_streams(params, n_readers=readers,
                                         n_writers=writers)
            all_readers = design_mixed_streams(params, n_readers=n,
                                               n_writers=0)
        except (AdmissionError, CapacityError):
            assume(False)
        # Swapping readers for writers relaxes the staging bound and
        # never increases the per-stream DRAM.
        assert mixed.s_dram <= all_readers.s_dram * (1 + 1e-9)

    @given(readers=st.integers(min_value=1, max_value=800))
    @settings(max_examples=30)
    def test_bank_requirement_monotone_in_readers(self, readers):
        params = SystemParameters.table3_default(
            n_streams=1, bit_rate=100 * KB, k=2)
        try:
            fewer = design_mixed_streams(params, n_readers=readers,
                                         n_writers=100)
            more = design_mixed_streams(params, n_readers=readers + 50,
                                        n_writers=100)
        except (AdmissionError, CapacityError):
            assume(False)
        # At the binding storage bound, both saturate the bank.
        assert fewer.bank_bytes_required == \
            pytest.approx(more.bank_bytes_required, rel=1e-9)


class TestMemsAccessStatistics:
    def test_average_access_matches_monte_carlo(self):
        # The quadrature in MemsDevice.average_access_time against a
        # direct Monte-Carlo of the same kinematic model.
        rng = np.random.default_rng(3)
        n = 200_000
        dx = np.abs(rng.random(n) - rng.random(n))
        dy = np.abs(rng.random(n) - rng.random(n))
        t_x = np.where(dx > 0, MEMS_G3.full_stroke_x * np.sqrt(dx)
                       + MEMS_G3.settle_x, 0.0)
        t_y = MEMS_G3.full_stroke_y * np.sqrt(dy)
        empirical = float(np.maximum(t_x, t_y).mean())
        assert MEMS_G3.average_access_time() == \
            pytest.approx(empirical, rel=0.01)

    def test_disk_average_seek_matches_monte_carlo(self):
        rng = np.random.default_rng(4)
        n = 200_000
        curve = FUTURE_DISK_2007.seek_curve
        distances = np.abs(rng.random(n) - rng.random(n)) \
            * curve.n_cylinders
        empirical = float(np.mean([curve.seek_time(float(d))
                                   for d in distances[:20_000]]))
        assert curve.average_seek_time() == \
            pytest.approx(empirical, rel=0.02)
