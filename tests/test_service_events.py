"""The typed event bus: dispatch order, typing, counters."""

import pytest

from repro.errors import ConfigurationError
from repro.service.events import (
    EVENT_TYPES,
    EventBus,
    EventCounter,
    EventLog,
    ReplanCompleted,
    ServiceEvent,
    SessionAdmitted,
    SessionRejected,
)


def _admitted(time=1.0, **overrides):
    fields = dict(time=time, ticket_id=0, session_id=0, title=3,
                  served_by="disk")
    fields.update(overrides)
    return SessionAdmitted(**fields)


class TestEventTypes:
    def test_every_type_is_a_frozen_service_event(self):
        for event_type in EVENT_TYPES:
            assert issubclass(event_type, ServiceEvent)
            assert event_type.__dataclass_params__.frozen

    def test_kind_is_the_class_name(self):
        assert _admitted().kind == "SessionAdmitted"

    def test_to_dict_carries_kind_and_fields(self):
        payload = _admitted(time=2.5).to_dict()
        assert payload["kind"] == "SessionAdmitted"
        assert payload["time"] == 2.5
        assert payload["served_by"] == "disk"


class TestEventBus:
    def test_typed_subscription_sees_only_its_type(self):
        bus = EventBus()
        seen = []
        bus.subscribe(SessionAdmitted, seen.append)
        bus.publish(_admitted())
        bus.publish(SessionRejected(time=2.0, ticket_id=1, title=4,
                                    reason="full"))
        assert len(seen) == 1
        assert isinstance(seen[0], SessionAdmitted)

    def test_wildcard_sees_everything_after_typed(self):
        bus = EventBus()
        order = []
        bus.subscribe(None, lambda e: order.append("wild"))
        bus.subscribe(SessionAdmitted, lambda e: order.append("typed"))
        bus.publish(_admitted())
        assert order == ["typed", "wild"]

    def test_publication_order_is_delivery_order(self):
        bus = EventBus()
        log = EventLog()
        bus.subscribe(None, log)
        events = [_admitted(time=float(i), ticket_id=i) for i in range(5)]
        for event in events:
            bus.publish(event)
        assert log.events == events

    def test_counts_published_events(self):
        bus = EventBus()
        assert bus.events_published == 0
        bus.publish(_admitted())
        bus.publish(_admitted(ticket_id=1))
        assert bus.events_published == 2

    def test_rejects_non_event_publish_and_bad_subscribe(self):
        bus = EventBus()
        with pytest.raises(ConfigurationError, match="ServiceEvent"):
            bus.publish("not an event")
        with pytest.raises(ConfigurationError, match="subscribe"):
            bus.subscribe(int, lambda e: None)


class TestSubscribers:
    def test_counter_rolls_up_per_kind(self):
        bus = EventBus()
        counter = EventCounter()
        bus.subscribe(None, counter)
        bus.publish(_admitted())
        bus.publish(_admitted(ticket_id=1))
        bus.publish(SessionRejected(time=3.0, ticket_id=2, title=1,
                                    reason="full"))
        assert counter.counts == {"SessionAdmitted": 2,
                                  "SessionRejected": 1}
        assert counter.total() == 3

    def test_log_filters_by_type(self):
        bus = EventBus()
        log = EventLog()
        bus.subscribe(None, log)
        bus.publish(_admitted())
        bus.publish(ReplanCompleted(time=2.0, reason="epoch", duration=0.0,
                                    capacity=10, pending_finalized=0))
        assert len(log.of_type(ReplanCompleted)) == 1
        assert len(log.of_type(SessionAdmitted)) == 1

    def test_log_is_a_bounded_ring(self):
        log = EventLog(capacity=3)
        assert log.capacity == 3
        for ticket in range(5):
            log(_admitted(time=float(ticket), ticket_id=ticket))
        # Only the newest three survive; the two shed off the head are
        # tallied, not silently lost.
        assert len(log) == 3
        assert [e.ticket_id for e in log.events] == [2, 3, 4]
        assert log.dropped == 2

    def test_log_under_capacity_drops_nothing(self):
        log = EventLog(capacity=10)
        for ticket in range(4):
            log(_admitted(ticket_id=ticket))
        assert len(log) == 4
        assert log.dropped == 0

    def test_log_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            EventLog(capacity=0)
