"""CLI control-plane surface: --emit-config / --config and name validation."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.cli import main
from repro.service.config import RuntimeConfig
from repro.service.scenarios import (
    SERVICE_SCENARIOS,
    require_known_scenario,
)


class TestScenarioValidation:
    """One canonical validator covers every spelling (satellite: the
    hyphen/underscore near-twins must both resolve, and a bad name must
    produce the same error text everywhere)."""

    def test_both_spellings_are_distinct_valid_scenarios(self):
        require_known_scenario("flash-crowd")
        require_known_scenario("flash_crowd")
        assert (SERVICE_SCENARIOS["flash-crowd"]
                is not SERVICE_SCENARIOS["flash_crowd"])

    def test_unknown_name_lists_the_catalog(self):
        with pytest.raises(ConfigurationError) as excinfo:
            require_known_scenario("flash")
        message = str(excinfo.value)
        assert "unknown scenario 'flash'" in message
        for name in SERVICE_SCENARIOS:
            assert name in message

    def test_legacy_catalog_routes_through_the_same_validator(self):
        from repro.runtime.scenarios import build_scenario

        with pytest.raises(ConfigurationError,
                           match="unknown scenario 'flash'"):
            build_scenario("flash")

    def test_cli_unknown_scenario_uses_the_canonical_text(self, capsys):
        assert main(["runtime", "flash"]) == 1
        err = capsys.readouterr().err
        assert "unknown scenario 'flash'" in err
        assert "flash-crowd" in err and "flash_crowd" in err

    def test_cli_accepts_both_spellings(self, capsys):
        assert main(["runtime", "flash-crowd", "--horizon", "600"]) == 0
        assert main(["runtime", "flash_crowd", "--horizon", "600"]) == 0


class TestEmitConfig:
    def test_emit_to_stdout_is_valid_config_json(self, capsys):
        assert main(["runtime", "overload", "--emit-config", "-",
                     "--horizon", "900"]) == 0
        out = capsys.readouterr().out
        config = RuntimeConfig.from_json(out)
        assert config.horizon == 900.0
        assert json.loads(out)["schema"] == 1

    def test_emit_then_run_config_round_trip(self, capsys, tmp_path):
        path = tmp_path / "steady.json"
        assert main(["runtime", "steady-disk", "--emit-config", str(path),
                     "--horizon", "800"]) == 0
        capsys.readouterr()
        json_path = tmp_path / "result.json"
        assert main(["runtime", "--config", str(path),
                     "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "sessions:" in out
        payload = json.loads(json_path.read_text())
        assert payload["schema"] >= 1
        assert payload["events"]

    def test_config_run_matches_named_scenario_run(self, capsys, tmp_path):
        config_path = tmp_path / "scenario.json"
        service_json = tmp_path / "service.json"
        legacy_json = tmp_path / "legacy.json"
        assert main(["runtime", "device-failure", "--emit-config",
                     str(config_path), "--horizon", "1500"]) == 0
        assert main(["runtime", "--config", str(config_path),
                     "--json", str(service_json)]) == 0
        assert main(["runtime", "device-failure", "--horizon", "1500",
                     "--json", str(legacy_json)]) == 0
        capsys.readouterr()
        assert (json.loads(service_json.read_text())
                == json.loads(legacy_json.read_text()))

    def test_config_excludes_scenario_and_emit(self, capsys, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("{}")
        assert main(["runtime", "steady-disk",
                     "--config", str(path)]) == 1
        assert "--config" in capsys.readouterr().err

    def test_runtime_without_scenario_or_config_errors(self, capsys):
        assert main(["runtime"]) == 1
        assert "scenario" in capsys.readouterr().err

    def test_runtime_list_names_all_nine(self, capsys):
        assert main(["runtime", "list"]) == 0
        out = capsys.readouterr().out
        for name in SERVICE_SCENARIOS:
            assert name in out
