"""MEMS bank policies: routing, latency, capacity, seek accounting."""

import pytest

from repro.devices.bank import BankPolicy, MemsBank
from repro.devices.catalog import MEMS_G3
from repro.errors import ConfigurationError
from repro.units import GB, MB


@pytest.fixture(params=[1, 2, 4])
def k(request) -> int:
    return request.param


class TestAggregates:
    def test_bandwidth_scales_with_k_in_every_policy(self, k):
        for policy in BankPolicy:
            bank = MemsBank(device=MEMS_G3, k=k, policy=policy)
            assert bank.aggregate_bandwidth == k * 320 * MB

    def test_usable_capacity_by_policy(self):
        striped = MemsBank(device=MEMS_G3, k=4, policy=BankPolicy.STRIPED)
        replicated = MemsBank(device=MEMS_G3, k=4,
                              policy=BankPolicy.REPLICATED)
        round_robin = MemsBank(device=MEMS_G3, k=4,
                               policy=BankPolicy.ROUND_ROBIN)
        assert striped.usable_capacity == 40 * GB
        assert round_robin.usable_capacity == 40 * GB
        assert replicated.usable_capacity == 10 * GB  # redundancy cost
        assert replicated.raw_capacity == 40 * GB

    def test_per_device_cost_model(self, k):
        bank = MemsBank(device=MEMS_G3, k=k)
        assert bank.cost == pytest.approx(10.0 * k)


class TestEffectiveLatency:
    def test_striping_keeps_single_device_latency(self):
        # Corollary 3: lock-step access, latency unchanged.
        bank = MemsBank(device=MEMS_G3, k=4, policy=BankPolicy.STRIPED)
        assert bank.effective_max_latency() == MEMS_G3.max_access_time()

    @pytest.mark.parametrize("policy", [BankPolicy.ROUND_ROBIN,
                                        BankPolicy.REPLICATED])
    def test_partitioned_policies_divide_latency(self, policy):
        # Corollaries 2 and 4: k-fold smaller effective latency.
        bank = MemsBank(device=MEMS_G3, k=4, policy=policy)
        assert bank.effective_max_latency() == \
            pytest.approx(MEMS_G3.max_access_time() / 4)


class TestSeekAccounting:
    def test_striped_costs_k_seeks_per_stream(self):
        # Section 3.2.1: k * Nm seeks per IO cycle.
        bank = MemsBank(device=MEMS_G3, k=3, policy=BankPolicy.STRIPED)
        assert bank.seeks_per_cycle(10) == 30

    def test_replicated_costs_one_seek_per_stream(self):
        # Section 3.2.2: only Nm seeks per IO cycle.
        bank = MemsBank(device=MEMS_G3, k=3, policy=BankPolicy.REPLICATED)
        assert bank.seeks_per_cycle(10) == 10

    def test_negative_streams_rejected(self):
        with pytest.raises(ConfigurationError):
            MemsBank(device=MEMS_G3, k=2).seeks_per_cycle(-1)


class TestRouting:
    def test_round_robin_every_kth_io_same_device(self):
        # Section 3.1.2: "Every k-th disk IO is routed to the same
        # MEMS device."
        bank = MemsBank(device=MEMS_G3, k=3)
        devices = [bank.device_for_io(i) for i in range(9)]
        assert devices == [0, 1, 2, 0, 1, 2, 0, 1, 2]

    def test_device_for_io_requires_round_robin(self):
        bank = MemsBank(device=MEMS_G3, k=3, policy=BankPolicy.STRIPED)
        with pytest.raises(ConfigurationError):
            bank.device_for_io(0)

    def test_stream_partitioning(self):
        bank = MemsBank(device=MEMS_G3, k=3, policy=BankPolicy.REPLICATED)
        assignments = [bank.device_for_stream(i, 7) for i in range(7)]
        assert assignments == [0, 1, 2, 0, 1, 2, 0]

    def test_streams_per_device_balanced(self):
        bank = MemsBank(device=MEMS_G3, k=3, policy=BankPolicy.REPLICATED)
        assert bank.streams_per_device(7) == [3, 2, 2]
        striped = MemsBank(device=MEMS_G3, k=3, policy=BankPolicy.STRIPED)
        assert striped.streams_per_device(7) == [7, 7, 7]  # lock step

    def test_stripe_unit(self):
        bank = MemsBank(device=MEMS_G3, k=4, policy=BankPolicy.STRIPED)
        assert bank.stripe_unit(4 * MB) == 1 * MB
        rr = MemsBank(device=MEMS_G3, k=4)
        with pytest.raises(ConfigurationError):
            rr.stripe_unit(4 * MB)


class TestTransferTime:
    def test_striping_divides_transfer_time(self):
        bank = MemsBank(device=MEMS_G3, k=4, policy=BankPolicy.STRIPED)
        assert bank.io_transfer_time(4 * MB) == \
            pytest.approx(MEMS_G3.transfer_time(1 * MB))

    def test_whole_io_policies_use_device_rate(self):
        bank = MemsBank(device=MEMS_G3, k=4)
        assert bank.io_transfer_time(4 * MB) == \
            pytest.approx(MEMS_G3.transfer_time(4 * MB))


class TestValidation:
    def test_k_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            MemsBank(device=MEMS_G3, k=0)

    def test_device_type_checked(self):
        with pytest.raises(ConfigurationError):
            MemsBank(device="not a device", k=2)  # type: ignore[arg-type]
