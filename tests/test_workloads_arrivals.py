"""Session arrivals, Erlang-B, and the blocking simulation."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.arrivals import (
    BlockingStats,
    erlang_b,
    simulate_blocking,
)


class TestErlangB:
    def test_zero_capacity_blocks_everything(self):
        assert erlang_b(5.0, 0) == 1.0

    def test_single_server_closed_form(self):
        # B(a, 1) = a / (1 + a).
        assert erlang_b(2.0, 1) == pytest.approx(2.0 / 3.0)

    def test_two_servers_closed_form(self):
        # B(a, 2) = a^2/2 / (1 + a + a^2/2).
        a = 3.0
        expected = (a * a / 2) / (1 + a + a * a / 2)
        assert erlang_b(a, 2) == pytest.approx(expected)

    def test_monotone_in_capacity(self):
        values = [erlang_b(50.0, c) for c in (40, 50, 60, 80)]
        assert values == sorted(values, reverse=True)

    def test_monotone_in_load(self):
        values = [erlang_b(a, 50) for a in (30.0, 45.0, 60.0)]
        assert values == sorted(values)

    def test_light_load_negligible_blocking(self):
        assert erlang_b(1.0, 50) < 1e-10

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            erlang_b(-1.0, 10)
        with pytest.raises(ConfigurationError):
            erlang_b(1.0, -1)


class TestBlockingSimulation:
    def test_matches_erlang_b(self):
        # 80 Erlangs on 90 servers: theory 2.6%; simulation converges.
        stats = simulate_blocking(capacity=90, arrival_rate=80 / 600,
                                  mean_holding=600, horizon=600 * 3_000,
                                  seed=3)
        theory = erlang_b(80.0, 90)
        assert stats.blocking_probability == pytest.approx(theory, abs=0.01)

    def test_occupancy_near_carried_load(self):
        stats = simulate_blocking(capacity=200, arrival_rate=0.1,
                                  mean_holding=600, horizon=600 * 2_000,
                                  seed=7)
        # Offered 60 Erlangs, negligible blocking: occupancy ~ 60.
        assert stats.mean_occupancy == pytest.approx(60.0, rel=0.1)
        assert stats.peak_occupancy <= 200

    def test_zero_capacity(self):
        stats = simulate_blocking(capacity=0, arrival_rate=1.0,
                                  mean_holding=10.0, horizon=1_000.0,
                                  seed=1)
        assert stats.blocked == stats.arrivals > 0
        assert stats.blocking_probability == 1.0

    def test_reproducible(self):
        kwargs = dict(capacity=10, arrival_rate=0.05, mean_holding=100,
                      horizon=50_000.0, seed=11)
        a = simulate_blocking(**kwargs)
        b = simulate_blocking(**kwargs)
        assert a == b

    def test_capacity_relieves_blocking(self):
        kwargs = dict(arrival_rate=0.2, mean_holding=600,
                      horizon=600 * 500, seed=5)
        tight = simulate_blocking(capacity=100, **kwargs)
        roomy = simulate_blocking(capacity=160, **kwargs)
        assert roomy.blocking_probability < tight.blocking_probability

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            simulate_blocking(capacity=-1, arrival_rate=1, mean_holding=1,
                              horizon=10)
        with pytest.raises(ConfigurationError):
            simulate_blocking(capacity=1, arrival_rate=0, mean_holding=1,
                              horizon=10)
        with pytest.raises(ConfigurationError):
            simulate_blocking(capacity=1, arrival_rate=1, mean_holding=0,
                              horizon=10)
        with pytest.raises(ConfigurationError):
            simulate_blocking(capacity=1, arrival_rate=1, mean_holding=1,
                              horizon=0)


class TestBlockingStats:
    def test_probability_with_no_arrivals(self):
        stats = BlockingStats(arrivals=0, blocked=0, mean_occupancy=0.0,
                              peak_occupancy=0, horizon=1.0)
        assert stats.blocking_probability == 0.0
