"""Backpressure governor: monotone classification, hysteresis, events."""

import itertools

import pytest

from repro.errors import ConfigurationError
from repro.service.backpressure import (
    BackpressureConfig,
    BackpressureGovernor,
    ServiceState,
    severity,
)
from repro.service.events import BackpressureChanged, EventBus, EventLog


def _loads(step=0.05, top=1.5):
    n = int(round(top / step))
    return [round(i * step, 10) for i in range(n + 1)]


class TestConfig:
    def test_default_band_ordering_holds(self):
        cfg = BackpressureConfig()
        assert (cfg.throttle_exit < cfg.throttle_enter
                <= cfg.shed_exit < cfg.shed_enter)

    def test_rejects_inverted_bands(self):
        with pytest.raises(ConfigurationError, match="throttle_exit"):
            BackpressureConfig(throttle_enter=0.5, throttle_exit=0.5)
        with pytest.raises(ConfigurationError, match="shed_exit"):
            BackpressureConfig(shed_enter=0.9, shed_exit=0.9)
        with pytest.raises(ConfigurationError, match="throttle_enter"):
            BackpressureConfig(throttle_enter=0.97, shed_exit=0.95)
        with pytest.raises(ConfigurationError, match=">= 0"):
            BackpressureConfig(throttle_exit=-0.1)


class TestMonotone:
    def test_classification_is_monotone_in_load(self):
        governor = BackpressureGovernor()
        ranks = [severity(governor.classify(load)) for load in _loads(0.01)]
        assert ranks == sorted(ranks)

    def test_classification_hits_all_three_states(self):
        governor = BackpressureGovernor()
        assert governor.classify(0.0) is ServiceState.ACCEPTING
        assert governor.classify(0.85) is ServiceState.THROTTLED
        assert governor.classify(1.0) is ServiceState.SHEDDING
        assert governor.classify(3.0) is ServiceState.SHEDDING

    def test_update_never_skips_below_classify_floor(self):
        # From any start state, a load at/above an enter threshold lands
        # at least as severe as the fresh classification of that load.
        for start, load in itertools.product(ServiceState, _loads()):
            governor = BackpressureGovernor()
            governor._state = start
            governor.update(load)
            fresh = BackpressureGovernor().classify(load)
            if load >= governor.config.shed_enter:
                assert governor.state is ServiceState.SHEDDING
            elif load <= governor.config.throttle_exit:
                assert governor.state is ServiceState.ACCEPTING
            else:  # inside a hysteresis band: between fresh and start
                low = min(severity(fresh), severity(start))
                high = max(severity(fresh), severity(start))
                assert low <= severity(governor.state) <= high

    def test_rejects_negative_load(self):
        governor = BackpressureGovernor()
        with pytest.raises(ConfigurationError, match="load"):
            governor.classify(-0.1)
        with pytest.raises(ConfigurationError, match="load"):
            governor.update(-0.1)


class TestHysteresis:
    def test_noise_around_enter_threshold_does_not_flap(self):
        # Oscillating just under/over throttle_enter: one transition in,
        # none back out, because exit sits strictly lower.
        governor = BackpressureGovernor()
        transitions = []
        for load in [0.84, 0.86, 0.84, 0.86, 0.84]:
            change = governor.update(load)
            if change is not None:
                transitions.append(change)
        assert transitions == [
            (ServiceState.ACCEPTING, ServiceState.THROTTLED)]
        assert governor.state is ServiceState.THROTTLED

    def test_exit_requires_dropping_below_the_lower_threshold(self):
        governor = BackpressureGovernor()
        governor.update(0.9)
        assert governor.state is ServiceState.THROTTLED
        assert governor.update(0.75) is None  # above throttle_exit
        assert governor.update(0.70) == (
            ServiceState.THROTTLED, ServiceState.ACCEPTING)

    def test_shed_recovery_steps_down_through_throttled(self):
        governor = BackpressureGovernor()
        governor.update(1.2)
        assert governor.state is ServiceState.SHEDDING
        assert governor.update(0.97) is None  # above shed_exit: still shed
        assert governor.update(0.90) == (
            ServiceState.SHEDDING, ServiceState.THROTTLED)
        assert governor.update(0.60) == (
            ServiceState.THROTTLED, ServiceState.ACCEPTING)

    def test_steady_load_never_transitions(self):
        for load in _loads():
            governor = BackpressureGovernor()
            governor.update(load)
            assert all(governor.update(load) is None for _ in range(5))


class TestEventDiscipline:
    def test_exactly_one_event_per_transition(self):
        # Drive a load sawtooth through a bus-publishing wrapper and
        # check the event stream is exactly the transition stream.
        bus = EventBus()
        log = EventLog()
        bus.subscribe(BackpressureChanged, log)
        governor = BackpressureGovernor()
        ramp = _loads(0.05, 1.4)
        expected = []
        for time, load in enumerate(ramp + ramp[::-1] + ramp):
            change = governor.update(load)
            if change is not None:
                prev, new = change
                expected.append((prev.value, new.value))
                bus.publish(BackpressureChanged(
                    time=float(time), previous=prev.value, state=new.value,
                    load=load))
        published = [(e.previous, e.state) for e in log.events]
        assert published == expected
        assert len(published) == 6  # two full up-down-up sweeps
        for prev, new in published:
            assert prev != new
