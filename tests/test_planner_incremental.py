"""Warm-start search engine: bit-identical to cold, and cheaper.

The contract of :mod:`repro.planner.incremental` is absolute: for any
monotone predicate and ANY hint — exact, stale, misleading, negative,
or non-finite — the hinted searches return exactly (``==``, not
approximately) what the cold searches in :mod:`repro.planner.search`
return.  The hypothesis properties here drive that over arbitrary
thresholds and adversarial hints; the rest of the module covers the
probe-count savings, the planner's warm-start state and probe
counters, and the pinned ``_demand`` memo regression.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parameters import SystemParameters
from repro.errors import ConfigurationError
from repro.planner import (
    Configuration,
    PlanCache,
    Planner,
    hinted_max_feasible_int,
    hinted_max_feasible_real,
    max_feasible_int,
    max_feasible_real,
)
from repro.units import GB, KB, MB

# -- Strategies ---------------------------------------------------------------

# Feasibility thresholds across the doubling range (the cold search
# covers [0, 2**80); anything past the threshold is infeasible).
thresholds = st.one_of(
    st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
    st.floats(min_value=0.0, max_value=1e-3, allow_nan=False),
    st.just(0.0))

# Hints including the adversarial cases the contract calls out.
real_hints = st.one_of(
    st.none(),
    st.floats(min_value=-1e15, max_value=1e15, allow_nan=False),
    st.just(float("nan")),
    st.just(float("inf")),
    st.just(float("-inf")),
    st.just(0.0),
    st.just(1e300))

int_hints = st.one_of(
    st.none(),
    st.integers(min_value=-10**9, max_value=10**9),
    st.just(float("nan")),
    st.just(float("inf")),
    st.just(float("-inf")))

# Monotone predicate shapes: all strictly increasing transforms, so
# `transform(x) <= threshold` is true exactly on an interval [0, x*].
TRANSFORMS = {
    "linear": lambda x: x,
    "affine": lambda x: 3.0 * x + 1.0,
    "quadratic": lambda x: x * x,
}


class TestRealEquivalence:
    @settings(max_examples=300, deadline=None)
    @given(threshold=thresholds, hint=real_hints,
           shape=st.sampled_from(sorted(TRANSFORMS)))
    def test_hinted_matches_cold_exactly(self, threshold, hint, shape):
        transform = TRANSFORMS[shape]
        cold = max_feasible_real(lambda x: transform(x) <= threshold)
        warm = hinted_max_feasible_real(lambda x: transform(x) <= threshold,
                                        hint=hint)
        assert warm == cold

    @settings(max_examples=100, deadline=None)
    @given(threshold=thresholds, hint=real_hints)
    def test_none_hint_probes_exactly_like_cold(self, threshold, hint):
        # hint=None IS the cold search: same answer, same probe trace.
        del hint
        cold_trace, warm_trace = [], []

        def record(trace):
            def predicate(x):
                trace.append(x)
                return x <= threshold
            return predicate

        cold = max_feasible_real(record(cold_trace))
        warm = hinted_max_feasible_real(record(warm_trace), hint=None)
        assert warm == cold
        assert warm_trace == cold_trace

    def test_unbounded_predicate_raises_like_cold(self):
        with pytest.raises(ConfigurationError, match="unbounded"):
            hinted_max_feasible_real(lambda x: True, hint=1e9)
        with pytest.raises(ConfigurationError, match="unbounded"):
            hinted_max_feasible_real(lambda x: True)


class TestIntEquivalence:
    @settings(max_examples=300, deadline=None)
    @given(answer=st.integers(min_value=0, max_value=10**6),
           hint=int_hints,
           limit=st.integers(min_value=1, max_value=10**6))
    def test_hinted_matches_cold_exactly(self, answer, hint, limit):
        cold = max_feasible_int(lambda n: n <= answer, limit=limit)
        warm = hinted_max_feasible_int(lambda n: n <= answer, hint=hint,
                                       limit=limit)
        assert warm == cold

    @settings(max_examples=100, deadline=None)
    @given(answer=st.integers(min_value=0, max_value=10**4),
           limit=st.integers(min_value=1, max_value=10**4))
    def test_none_hint_probes_exactly_like_cold(self, answer, limit):
        cold_trace, warm_trace = [], []

        def record(trace):
            def predicate(n):
                trace.append(n)
                return n <= answer
            return predicate

        cold = max_feasible_int(record(cold_trace), limit=limit)
        warm = hinted_max_feasible_int(record(warm_trace), hint=None,
                                       limit=limit)
        assert warm == cold
        assert warm_trace == cold_trace


class TestProbeSavings:
    def test_exact_int_hint_costs_two_probes(self):
        trace = []

        def predicate(n):
            trace.append(n)
            return n <= 1_000

        assert hinted_max_feasible_int(predicate, hint=1_000) == 1_000
        assert trace == [1_000, 1_001]

    def test_near_real_hint_beats_cold_by_5x(self):
        threshold = 12_345.678
        cold_trace, warm_trace = [], []

        def record(trace):
            def predicate(x):
                trace.append(x)
                return x <= threshold
            return predicate

        cold = max_feasible_real(record(cold_trace))
        warm = hinted_max_feasible_real(record(warm_trace), hint=cold)
        assert warm == cold
        assert 5 * len(warm_trace) <= len(cold_trace)

    def test_off_by_one_int_hint_stays_logarithmic(self):
        trace = []

        def predicate(n):
            trace.append(n)
            return n <= 499

        assert hinted_max_feasible_int(predicate, hint=500) == 499
        assert len(trace) <= 4


class TestPlannerWarmStart:
    def _params(self):
        return SystemParameters.table3_default(n_streams=1,
                                               bit_rate=500 * KB, k=2)

    def test_budget_sweep_matches_cold_planner(self):
        params = self._params()
        spec = Configuration.buffer()
        warm = Planner(warm_start=True)
        cold = Planner(warm_start=False)
        for i in range(6):
            budget = 1 * GB + i * 9 * MB
            assert (warm.max_streams(params, spec, budget)
                    == cold.max_streams(params, spec, budget))
            assert (warm.capacity(params, spec, budget)
                    == cold.capacity(params, spec, budget))
        warm_stats, cold_stats = warm.stats(), cold.stats()
        assert warm_stats["solves_warm"] == 10  # all but the first pair
        assert cold_stats["solves_warm"] == 0
        warm_probes = warm_stats["probes_cold"] + warm_stats["probes_warm"]
        cold_probes = cold_stats["probes_cold"] + cold_stats["probes_warm"]
        assert warm_probes * 3 <= cold_probes

    def test_explicit_hint_never_changes_the_answer(self):
        params = self._params()
        spec = Configuration.buffer()
        reference = Planner(warm_start=False).capacity(params, spec, 1 * GB)
        for hint in (reference, reference + 123, 1, 10**9, -7):
            assert Planner().capacity(params, spec, 1 * GB,
                                      hint=hint) == reference

    def test_warm_start_off_ignores_explicit_hints(self):
        params = self._params()
        spec = Configuration.buffer()
        planner = Planner(warm_start=False)
        assert not planner.warm_start
        planner.capacity(params, spec, 1 * GB, hint=50)
        assert planner.stats()["solves_warm"] == 0

    def test_stats_exposes_probe_counters(self):
        planner = Planner()
        stats = planner.stats()
        assert {"probes_cold", "probes_warm", "solves_cold",
                "solves_warm"} <= stats.keys()
        assert stats["probes_cold"] == 0
        planner.capacity(self._params(), Configuration.buffer(), 1 * GB)
        after = planner.stats()
        assert after["probes_cold"] > 0
        assert after["solves_cold"] == 1

    def test_direct_closed_form_probes_nothing(self):
        planner = Planner()
        planner.max_streams(self._params(), Configuration.direct(), 1 * GB)
        stats = planner.stats()
        assert stats["probes_cold"] == stats["probes_warm"] == 0
        assert stats["solves_cold"] == stats["solves_warm"] == 0


class TestDemandMemoPinning:
    def test_demand_memo_survives_lru_pressure(self):
        # Regression: with maxsize=4 the plan() insertions of a single
        # search overflow the cache; before pinning they evicted the
        # live ``("demand", ...)`` dict mid-search, silently detaching
        # it.  Pinned, the axis entry must survive the whole solve and
        # stay the identical object across follow-up solves.
        params = SystemParameters.table3_default(n_streams=1,
                                                 bit_rate=500 * KB, k=2)
        spec = Configuration.buffer()
        planner = Planner(cache=PlanCache(maxsize=4), warm_start=False)
        planner.max_streams(params, spec, 500 * MB)
        axis = ("demand", params.replace(n_streams=0), spec)
        assert axis in planner.cache
        memo = planner.cache.get_or_compute(axis, dict)
        assert memo  # populated by the search, not rebuilt empty
        points = set(memo)
        planner.max_streams(params, spec, 600 * MB)
        again = planner.cache.get_or_compute(axis, dict)
        assert again is memo
        assert set(again) >= points

    def test_pinned_entries_skip_eviction(self):
        cache = PlanCache(maxsize=2)
        cache.get_or_compute("axis", dict, pin=True)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("c", lambda: 3)
        assert "axis" in cache
        assert "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1

    def test_all_pinned_cache_grows_past_maxsize(self):
        cache = PlanCache(maxsize=1)
        cache.get_or_compute("a", dict, pin=True)
        cache.get_or_compute("b", dict, pin=True)
        assert len(cache) == 2
        assert cache.evictions == 0

    def test_clear_drops_pins(self):
        cache = PlanCache(maxsize=1)
        cache.get_or_compute("a", dict, pin=True)
        cache.clear()
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("c", lambda: 3)
        assert len(cache) == 1
