"""Property-based tests (hypothesis) on the analytical core.

These check structural invariants over wide parameter ranges rather
than hand-picked values: monotonicity, positivity, tight feasibility
boundaries, hit-rate laws, and exactness of the inverse solvers.
"""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.buffer_model import (
    design_mems_buffer,
    disk_cycle_bounds,
    mems_cycle_floor,
)
from repro.core.cache_model import (
    replicated_cache_buffer,
    striped_cache_buffer,
)
from repro.core.parameters import SystemParameters
from repro.core.popularity import BimodalPopularity, ZipfPopularity
from repro.core.theorems import max_streams_direct, min_buffer_direct
from repro.devices.disk import SeekCurve
from repro.devices.disk_geometry import DiskGeometry
from repro.devices.mems_geometry import MemsGeometry
from repro.errors import AdmissionError
from repro.simulation.streams import StreamBuffer
from repro.units import GB, KB, MB, MS

# -- Strategies ---------------------------------------------------------------

bit_rates = st.floats(min_value=1 * KB, max_value=20 * MB)
rates = st.floats(min_value=10 * MB, max_value=1_000 * MB)
latencies = st.floats(min_value=0.0, max_value=20 * MS)
stream_counts = st.integers(min_value=1, max_value=100_000)
ks = st.integers(min_value=1, max_value=16)
fractions = st.floats(min_value=0.0, max_value=1.0)


# -- Theorem 1 -----------------------------------------------------------------

class TestTheorem1Properties:
    @given(n=stream_counts, b=bit_rates, r=rates, latency=latencies)
    def test_positive_when_feasible(self, n, b, r, latency):
        assume(n * b < r * 0.999)
        s = min_buffer_direct(n, b, r, latency)
        assert s >= 0.0
        assert math.isfinite(s)

    @given(n=stream_counts, b=bit_rates, r=rates, latency=latencies)
    def test_monotone_in_streams(self, n, b, r, latency):
        assume((n + 1) * b < r * 0.999)
        assert min_buffer_direct(n + 1, b, r, latency) >= \
            min_buffer_direct(n, b, r, latency)

    @given(n=stream_counts, b=bit_rates, r=rates, latency=latencies)
    def test_monotone_in_latency(self, n, b, r, latency):
        assume(n * b < r * 0.999)
        assert min_buffer_direct(n, b, r, latency + 1 * MS) >= \
            min_buffer_direct(n, b, r, latency)

    @given(n=stream_counts, b=bit_rates, r=rates, latency=latencies)
    def test_fixed_point_identity(self, n, b, r, latency):
        assume(n * b < r * 0.999)
        s = min_buffer_direct(n, b, r, latency)
        t = n * (latency + s / r)
        assert s == pytest.approx(b * t, rel=1e-9, abs=1e-9)

    @given(n=stream_counts, b=bit_rates, r=rates, latency=latencies)
    def test_infeasible_raises(self, n, b, r, latency):
        assume(n * b >= r)
        with pytest.raises(AdmissionError):
            min_buffer_direct(n, b, r, latency)

    @given(b=bit_rates, r=rates, latency=st.floats(min_value=1e-5,
                                                   max_value=20 * MS),
           budget=st.floats(min_value=1 * MB, max_value=1_000 * GB))
    def test_inverse_solver_exact(self, b, r, latency, budget):
        n = max_streams_direct(b, r, latency, budget)
        assume(n > 1e-6)
        if n < r / b * (1 - 1e-6):
            # Near saturation the quadratic root suffers catastrophic
            # cancellation, hence the modest tolerance.
            total = n * min_buffer_direct(n, b, r, latency)
            assert total == pytest.approx(budget, rel=1e-4)


# -- Theorem 2 -----------------------------------------------------------------

class TestTheorem2Properties:
    @given(n=st.integers(min_value=2, max_value=500), k=ks,
           b=st.floats(min_value=10 * KB, max_value=1 * MB))
    @settings(max_examples=60)
    def test_design_internally_consistent(self, n, k, b):
        params = SystemParameters(
            n_streams=n, bit_rate=b, r_disk=300 * MB, r_mems=320 * MB,
            l_disk=3 * MS, l_mems=0.59 * MS, k=k, size_mems=10 * GB)
        doubled = 2 * (n + k - 1) * b
        assume(doubled < k * 320 * MB * 0.99)
        assume(n * b < 300 * MB * 0.99)
        lower, upper = disk_cycle_bounds(params)
        assume(upper > lower and upper > mems_cycle_floor(params) * 1.01)
        design = design_mems_buffer(params, quantise=False)
        assert design.s_mems_dram > 0
        assert design.t_disk >= lower
        # Eq. 7 holds at the operating point.
        assert 2 * n * b * design.t_disk <= k * 10 * GB * (1 + 1e-9)

    @given(n=st.integers(min_value=2, max_value=300),
           b=st.floats(min_value=10 * KB, max_value=500 * KB))
    @settings(max_examples=60)
    def test_quantised_m_in_range(self, n, b):
        params = SystemParameters(
            n_streams=n, bit_rate=b, r_disk=300 * MB, r_mems=320 * MB,
            l_disk=3 * MS, l_mems=0.59 * MS, k=2, size_mems=10 * GB)
        try:
            design = design_mems_buffer(params)
        except Exception:
            assume(False)
        if design.m is not None:
            assert 1 <= design.m < n
            assert design.t_mems == pytest.approx(
                design.m / n * design.t_disk)

    @given(n=st.integers(min_value=2, max_value=400), k=ks,
           b=st.floats(min_value=10 * KB, max_value=1 * MB))
    @settings(max_examples=60)
    def test_more_devices_never_hurt(self, n, k, b):
        def dram(k_val: int) -> float:
            params = SystemParameters(
                n_streams=n, bit_rate=b, r_disk=300 * MB, r_mems=320 * MB,
                l_disk=3 * MS, l_mems=0.59 * MS, k=k_val, size_mems=None)
            return design_mems_buffer(params, quantise=False).total_dram

        doubled = 2 * (n + k - 1) * b
        assume(doubled < k * 320 * MB * 0.99)
        assume(n * b < 300 * MB * 0.99)
        # Adding a device to an *unlimited-storage* design never
        # increases the DRAM requirement.
        assert dram(k + 1) <= dram(k) * (1 + 1e-9)


# -- Cache buffers --------------------------------------------------------------

class TestCacheProperties:
    @given(n=st.integers(min_value=1, max_value=200), k=ks, b=bit_rates)
    def test_striped_positive_and_monotone(self, n, k, b):
        assume((n + 1) * b < k * 320 * MB * 0.99)
        small = striped_cache_buffer(n, b, k, 320 * MB, 0.59 * MS)
        large = striped_cache_buffer(n + 1, b, k, 320 * MB, 0.59 * MS)
        assert 0 <= small <= large

    @given(n=st.integers(min_value=1, max_value=200), k=ks, b=bit_rates)
    def test_replication_beats_striping_above_k_streams(self, n, k, b):
        assume(n >= k)
        assume((n + k) * b < k * 320 * MB * 0.99)
        replicated = replicated_cache_buffer(n, b, k, 320 * MB, 0.59 * MS)
        striped = striped_cache_buffer(n, b, k, 320 * MB, 0.59 * MS)
        # With at least k streams the (n+k-1)/k per-device load never
        # exceeds the striped n seeks; replication needs no more DRAM.
        assert replicated <= striped * (1 + 1e-9)


# -- Popularity ------------------------------------------------------------------

class TestPopularityProperties:
    @given(x=st.floats(min_value=0.5, max_value=50),
           extra=st.floats(min_value=0.0, max_value=49),
           p1=fractions, p2=fractions)
    def test_bimodal_monotone_and_bounded(self, x, extra, p1, p2):
        y = min(x + extra + 0.5, 99.0)
        assume(y >= x)
        dist = BimodalPopularity(x, y)
        lo, hi = sorted((p1, p2))
        assert 0.0 <= dist.hit_rate(lo) <= dist.hit_rate(hi) <= 1.0

    @given(x=st.floats(min_value=1, max_value=49))
    def test_bimodal_endpoint_identities(self, x):
        dist = BimodalPopularity(x, 100 - x if 100 - x > x else x)
        assert dist.hit_rate(0.0) == 0.0
        assert dist.hit_rate(1.0) == pytest.approx(1.0)

    @given(alpha=st.floats(min_value=0.0, max_value=2.0),
           n=st.integers(min_value=1, max_value=2_000),
           p1=fractions, p2=fractions)
    @settings(max_examples=60)
    def test_zipf_monotone_and_bounded(self, alpha, n, p1, p2):
        dist = ZipfPopularity(alpha=alpha, n_titles=n)
        lo, hi = sorted((p1, p2))
        assert 0.0 <= dist.hit_rate(lo) <= dist.hit_rate(hi) + 1e-12
        assert dist.hit_rate(hi) <= 1.0

    @given(x=st.floats(min_value=1, max_value=49), p=fractions)
    def test_skew_never_reduces_hit_rate(self, x, p):
        # At the same cached fraction, a more skewed distribution hits
        # at least as often (for p below the popular-class size).
        mild = BimodalPopularity(x, 60.0)
        sharp = BimodalPopularity(x, 95.0)
        assert sharp.hit_rate(p) >= mild.hit_rate(p) - 1e-12


# -- Device geometry --------------------------------------------------------------

class TestGeometryProperties:
    @given(lba_seed=st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=40)
    def test_disk_lba_roundtrip(self, lba_seed):
        geo = DiskGeometry.synthesize(capacity_bytes=100 * GB,
                                      n_cylinders=5_000)
        lba = lba_seed % geo.total_sectors
        assert geo.physical_to_lba(geo.lba_to_physical(lba)) == lba

    @given(block_seed=st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=40)
    def test_mems_block_roundtrip(self, block_seed):
        geo = MemsGeometry.synthesize(capacity_bytes=1 * GB)
        block = block_seed % geo.sectors_total
        assert geo.sector_to_block(geo.block_to_sector(block)) == block

    @given(avg=st.floats(min_value=0.5 * MS, max_value=10 * MS),
           spread=st.floats(min_value=1.3, max_value=5.0))
    def test_seek_curve_calibration_recovers_average(self, avg, spread):
        curve = SeekCurve.calibrate(average_seek=avg,
                                    full_stroke_seek=avg * spread,
                                    n_cylinders=10_000)
        assert curve.average_seek_time() == pytest.approx(avg, rel=1e-6)

    @given(avg=st.floats(min_value=0.5 * MS, max_value=10 * MS),
           spread=st.floats(min_value=1.3, max_value=5.0),
           d1=st.integers(min_value=0, max_value=10_000),
           d2=st.integers(min_value=0, max_value=10_000))
    def test_seek_curve_monotone(self, avg, spread, d1, d2):
        curve = SeekCurve.calibrate(average_seek=avg,
                                    full_stroke_seek=avg * spread,
                                    n_cylinders=10_000)
        lo, hi = sorted((d1, d2))
        assert curve.seek_time(lo) <= curve.seek_time(hi) + 1e-15


# -- Stream buffer conservation -----------------------------------------------------

class TestStreamBufferProperties:
    @given(credits=st.lists(
        st.tuples(st.floats(min_value=0.01, max_value=5.0),
                  st.floats(min_value=0.0, max_value=5e6)),
        min_size=1, max_size=30))
    @settings(max_examples=60)
    def test_byte_conservation(self, credits):
        """credited == level + consumed + deficit at all times."""
        buf = StreamBuffer(0, bit_rate=1e6)
        clock = 0.0
        total_credited = 0.0
        buf.credit(0.0, 1e6)
        total_credited += 1e6
        buf.start_playback(0.0)
        for gap, amount in credits:
            clock += gap
            buf.credit(clock, amount)
            total_credited += amount
        level = buf.level(clock)
        deficit = sum(u.deficit for u in buf.underflows)
        consumed = 1e6 * clock - deficit
        assert total_credited == pytest.approx(level + consumed,
                                               rel=1e-6, abs=10.0)
