"""Scalar-vs-batch bit-identity for the vectorized planner.

The contract (same as the PR 4 parallel sweep and the PR 5 device fast
paths): :mod:`repro.planner.batch` replicates the exact floating-point
operation order of the scalar planner, so every batch answer equals the
scalar answer to the last bit — demand curves elementwise against
:meth:`Planner.plan` (with ``inf`` for infeasible points, the
``Planner._demand`` convention) and :func:`batch_max_streams` against
:meth:`Planner.max_streams`.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache_model import CachePolicy
from repro.core.parameters import SystemParameters
from repro.core.popularity import BimodalPopularity
from repro.errors import ConfigurationError
from repro.planner import Configuration, Planner
from repro.planner.batch import batch_max_streams, demand_at, demand_curve

_POLICIES = st.sampled_from([CachePolicy.STRIPED, CachePolicy.REPLICATED])
_POPULARITIES = st.sampled_from(
    ["1:99", "5:95", "10:90", "20:80", "50:50"]).map(BimodalPopularity.parse)


@st.composite
def _params(draw, *, finite_sizes: bool = False) -> SystemParameters:
    size_mems = st.floats(1e8, 1e11, allow_nan=False)
    if not finite_sizes:
        size_mems = st.one_of(st.none(), size_mems)
    return SystemParameters(
        n_streams=1.0,
        bit_rate=draw(st.floats(1e3, 1e6, allow_nan=False)),
        r_disk=draw(st.floats(1e6, 1e9, allow_nan=False)),
        r_mems=draw(st.floats(1e6, 1e9, allow_nan=False)),
        l_disk=draw(st.floats(0.0, 0.05, allow_nan=False)),
        l_mems=draw(st.floats(0.0, 0.05, allow_nan=False)),
        k=draw(st.integers(1, 6)),
        size_mems=draw(size_mems),
        size_disk=draw(st.floats(1e10, 1e13, allow_nan=False)),
    )


@st.composite
def _lane(draw) -> tuple[SystemParameters, Configuration]:
    kind = draw(st.sampled_from(
        ["direct", "buffer", "cache", "prefix", "hybrid"]))
    explicit_k = draw(st.one_of(st.none(), st.integers(1, 6)))
    if kind == "direct":
        return draw(_params()), Configuration.direct()
    if kind == "buffer":
        return draw(_params()), Configuration.buffer(explicit_k)
    policy = draw(_POLICIES)
    popularity = draw(_POPULARITIES)
    params = draw(_params(finite_sizes=True))
    if kind == "cache":
        return params, Configuration.cache(policy, popularity, explicit_k)
    if kind == "prefix":
        return params, Configuration.prefix(
            policy, draw(st.floats(0.0, 1.0, allow_nan=False)),
            fanout=draw(st.floats(1.0, 50.0, allow_nan=False)))
    return params, Configuration.hybrid(
        draw(st.integers(0, 3)), draw(st.integers(0, 3)), policy, popularity)


_POPULATIONS = st.lists(
    st.one_of(st.floats(0.0, 1e6, allow_nan=False),
              st.integers(0, 10**6).map(float)),
    min_size=1, max_size=8)


class TestDemandCurveBitIdentity:
    @settings(max_examples=60, deadline=None)
    @given(lane=_lane(), populations=_POPULATIONS)
    def test_matches_scalar_plans_elementwise(self, lane, populations):
        params, configuration = lane
        planner = Planner()
        totals = demand_curve(params, configuration, populations)
        for n, total in zip(populations, totals):
            plan = planner.plan(params.replace(n_streams=n), configuration)
            expected = plan.total_dram if plan.feasible else math.inf
            # Degenerate corners (0 * inf slack at denormal populations)
            # are NaN in BOTH paths; NaN != NaN needs the explicit arm.
            assert float(total) == expected or (
                math.isnan(total) and math.isnan(expected))

    def test_negative_population_rejected(self):
        params = SystemParameters.table3_default(n_streams=1, bit_rate=1e5)
        with pytest.raises(ConfigurationError):
            demand_curve(params, Configuration.direct(), [1.0, -2.0])

    def test_cache_without_sizes_rejected_like_scalar(self):
        params = SystemParameters.table3_default(
            n_streams=1, bit_rate=1e5, size_mems_unlimited=True)
        configuration = Configuration.cache(
            CachePolicy.STRIPED, BimodalPopularity.parse("10:90"))
        with pytest.raises(ConfigurationError):
            Planner().plan(params, configuration).require()
        with pytest.raises(ConfigurationError):
            demand_curve(params, configuration, [10.0])


class TestDemandAtBitIdentity:
    @settings(max_examples=40, deadline=None)
    @given(lanes=st.lists(_lane(), min_size=1, max_size=5),
           population=st.floats(0.0, 1e6, allow_nan=False))
    def test_matches_scalar_plans_per_lane(self, lanes, population):
        totals = demand_at(lanes, population)
        planner = Planner()
        for (params, configuration), total in zip(lanes, totals):
            plan = planner.plan(params.replace(n_streams=population),
                                configuration)
            expected = plan.total_dram if plan.feasible else math.inf
            assert float(total) == expected or (
                math.isnan(total) and math.isnan(expected))

    def test_mixed_kind_slate_keeps_lane_order(self):
        params = SystemParameters.table3_default(n_streams=1, bit_rate=1e5,
                                                 k=2)
        popularity = BimodalPopularity.parse("10:90")
        lanes = [
            (params, Configuration.cache(CachePolicy.REPLICATED,
                                         popularity)),
            (params, Configuration.prefix(CachePolicy.STRIPED, 0.4)),
            (params, Configuration.cache(CachePolicy.STRIPED, popularity)),
            (params, Configuration.buffer()),
        ]
        totals = demand_at(lanes, 40.0)
        planner = Planner(warm_start=False)
        for (p, c), total in zip(lanes, totals):
            plan = planner.plan(p.replace(n_streams=40.0), c)
            expected = plan.total_dram if plan.feasible else math.inf
            assert float(total) == expected

    def test_negative_population_rejected(self):
        params = SystemParameters.table3_default(n_streams=1, bit_rate=1e5)
        with pytest.raises(ConfigurationError):
            demand_at([(params, Configuration.direct())], -1.0)


class TestBatchMaxStreamsBitIdentity:
    @settings(max_examples=40, deadline=None)
    @given(lanes=st.lists(_lane(), min_size=1, max_size=4),
           budgets=st.lists(st.floats(0.0, 1e13, allow_nan=False),
                            min_size=4, max_size=4))
    def test_matches_scalar_inverse_solves(self, lanes, budgets):
        items = [(params, configuration, budget)
                 for (params, configuration), budget in zip(lanes, budgets)]
        got = batch_max_streams(items)
        # A shared scalar planner replays the same lanes with its warm
        # per-axis hints active — hinted answers are bit-identical to
        # cold by the PR 5 contract, so one batch replay answers both.
        planner = Planner()
        for (params, configuration, budget), value in zip(items, got):
            assert value == planner.max_streams(params, configuration,
                                                budget)

    def test_mixed_kind_lanes_keep_their_order(self):
        direct = SystemParameters.table3_default(n_streams=1, bit_rate=1e5,
                                                 k=1)
        cached = SystemParameters.table3_default(n_streams=1, bit_rate=1e5,
                                                 k=2)
        popularity = BimodalPopularity.parse("10:90")
        items = [
            (direct, Configuration.direct(), 5e9),
            (cached, Configuration.cache(CachePolicy.STRIPED, popularity),
             5e9),
            (direct, Configuration.direct(), 1e9),
            (cached, Configuration.buffer(), 5e9),
        ]
        got = batch_max_streams(items)
        planner = Planner(warm_start=False)
        expected = [planner.max_streams(p, c, b) for p, c, b in items]
        assert got == expected

    def test_negative_budget_rejected(self):
        params = SystemParameters.table3_default(n_streams=1, bit_rate=1e5)
        with pytest.raises(ConfigurationError):
            batch_max_streams([(params, Configuration.direct(), -1.0)])
