"""Popularity distributions and the Eq. 11 hit-rate map."""

import pytest

from repro.core.popularity import (
    PAPER_DISTRIBUTIONS,
    BimodalPopularity,
    EmpiricalPopularity,
    UniformPopularity,
    ZipfPopularity,
    paper_distributions,
)
from repro.errors import ConfigurationError


class TestBimodalConstruction:
    def test_parse(self):
        dist = BimodalPopularity.parse("5:95")
        assert dist.x_percent == 5 and dist.y_percent == 95

    def test_parse_rejects_garbage(self):
        for bad in ("5-95", "5", "a:b", ""):
            with pytest.raises(ConfigurationError):
                BimodalPopularity.parse(bad)

    @pytest.mark.parametrize("x,y", [(0, 99), (100, 99), (1, 0), (1, 100)])
    def test_bounds(self, x, y):
        with pytest.raises(ConfigurationError):
            BimodalPopularity(x, y)

    def test_popular_class_must_be_popular(self):
        with pytest.raises(ConfigurationError):
            BimodalPopularity(99, 1)  # Y < X means inverted classes

    def test_str_roundtrip(self):
        assert str(BimodalPopularity.parse("10:90")) == "10:90"

    def test_paper_distributions(self):
        dists = paper_distributions()
        assert [str(d) for d in dists] == list(PAPER_DISTRIBUTIONS)


class TestEquation11:
    def test_caching_whole_popular_class(self):
        # p = X/100 exactly: hit rate is Y/100.
        dist = BimodalPopularity(10, 90)
        assert dist.hit_rate(0.10) == pytest.approx(0.90)

    def test_within_popular_class_linear(self):
        # p <= X: h = (p / X%) * Y%.
        dist = BimodalPopularity(10, 90)
        assert dist.hit_rate(0.05) == pytest.approx(0.45)

    def test_beyond_popular_class(self):
        # p > X: h = Y% + (p - X%)/(1 - X%) * (1 - Y%).
        dist = BimodalPopularity(10, 90)
        expected = 0.90 + (0.55 - 0.10) / 0.90 * 0.10
        assert dist.hit_rate(0.55) == pytest.approx(expected)

    def test_boundary_values(self):
        dist = BimodalPopularity(5, 95)
        assert dist.hit_rate(0.0) == 0.0
        assert dist.hit_rate(1.0) == pytest.approx(1.0)

    def test_monotone_nondecreasing(self):
        dist = BimodalPopularity(1, 99)
        points = [dist.hit_rate(p / 100) for p in range(101)]
        assert all(a <= b + 1e-12 for a, b in zip(points, points[1:]))

    def test_fifty_fifty_is_uniform(self):
        dist = BimodalPopularity(50, 50)
        assert dist.is_uniform
        for p in (0.1, 0.33, 0.8):
            assert dist.hit_rate(p) == pytest.approx(p)

    def test_skew_metric(self):
        # 1:99 means the popular 1% is 99x99/1 = 9801x denser.
        assert BimodalPopularity(1, 99).skew == pytest.approx(9801.0)
        assert BimodalPopularity(50, 50).skew == pytest.approx(1.0)

    def test_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            BimodalPopularity(10, 90).hit_rate(1.5)
        with pytest.raises(ConfigurationError):
            BimodalPopularity(10, 90).hit_rate(-0.1)


class TestUniform:
    def test_identity(self):
        dist = UniformPopularity()
        for p in (0.0, 0.25, 1.0):
            assert dist.hit_rate(p) == p


class TestZipf:
    def test_bounds(self):
        dist = ZipfPopularity(alpha=0.8, n_titles=100)
        assert dist.hit_rate(0.0) == 0.0
        assert dist.hit_rate(1.0) == pytest.approx(1.0)

    def test_monotone(self):
        dist = ZipfPopularity(alpha=1.0, n_titles=500)
        points = [dist.hit_rate(p / 50) for p in range(51)]
        assert all(a <= b + 1e-12 for a, b in zip(points, points[1:]))

    def test_head_concentration(self):
        # A strongly skewed Zipf gives the top 10% much more than 10%.
        dist = ZipfPopularity(alpha=1.0, n_titles=1_000)
        assert dist.hit_rate(0.10) > 0.5

    def test_alpha_zero_is_uniform(self):
        dist = ZipfPopularity(alpha=0.0, n_titles=100)
        assert dist.hit_rate(0.3) == pytest.approx(0.3)

    def test_title_probability_sums_to_one(self):
        dist = ZipfPopularity(alpha=0.9, n_titles=50)
        total = sum(dist.title_probability(r) for r in range(1, 51))
        assert total == pytest.approx(1.0)

    def test_title_probability_decreasing(self):
        dist = ZipfPopularity(alpha=0.9, n_titles=50)
        assert dist.title_probability(1) > dist.title_probability(2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ZipfPopularity(alpha=-1, n_titles=10)
        with pytest.raises(ConfigurationError):
            ZipfPopularity(alpha=1, n_titles=0)
        with pytest.raises(ConfigurationError):
            ZipfPopularity(alpha=1, n_titles=10).title_probability(11)


class TestEmpiricalUnderDrift:
    """Edge cases the runtime's drift scenarios push the fit through."""

    def test_all_mass_on_one_title(self):
        # A fully focused flash crowd: every observation hits one title.
        dist = EmpiricalPopularity.from_counts([0.0, 0.0, 25.0, 0.0])
        assert dist.weights[0] == pytest.approx(1.0)
        assert all(w == pytest.approx(0.0) for w in dist.weights[1:])
        # Caching that single title is a perfect cache...
        assert dist.hit_rate(0.25) == pytest.approx(1.0)
        # ...and a partial prefix of it scales linearly.
        assert dist.hit_rate(0.125) == pytest.approx(0.5)
        assert dist.hit_rate(1.0) == pytest.approx(1.0)

    def test_empty_observation_window(self):
        # No counts at all is a configuration error...
        with pytest.raises(ConfigurationError):
            EmpiricalPopularity.from_counts([])
        # ...but an epoch with zero observed traffic (all-zero counts)
        # degrades to uniform rather than dividing by zero.
        dist = EmpiricalPopularity.from_counts([0.0, 0.0, 0.0, 0.0])
        assert dist.weights == (0.25,) * 4
        assert dist.hit_rate(0.5) == pytest.approx(0.5)

    def test_drift_rotation_is_rank_invariant(self):
        # Rotating which titles carry the head (the DriftEvent model)
        # must not change the fitted rank curve: hit_rate consumes
        # sorted shares.
        before = EmpiricalPopularity.from_counts([8.0, 4.0, 2.0, 1.0])
        after = EmpiricalPopularity.from_counts([1.0, 8.0, 4.0, 2.0])
        assert before.weights == after.weights
        for p in (0.1, 0.25, 0.5, 0.9):
            assert before.hit_rate(p) == pytest.approx(after.hit_rate(p))

    def test_unsorted_direct_construction_rejected(self):
        with pytest.raises(ConfigurationError):
            EmpiricalPopularity(weights=(0.2, 0.8))


class TestBimodalSkewBoundary:
    """``skew``/``is_uniform`` across the 50:50 uniform boundary."""

    def test_uniform_boundary(self):
        dist = BimodalPopularity.parse("50:50")
        assert dist.is_uniform
        assert dist.skew == pytest.approx(1.0)
        assert dist.hit_rate(0.3) == pytest.approx(0.3)

    def test_just_across_the_boundary(self):
        dist = BimodalPopularity.parse("49:51")
        assert not dist.is_uniform
        assert dist.skew > 1.0
        assert dist.hit_rate(0.49) == pytest.approx(0.51)

    def test_crossing_below_uniform_rejected(self):
        # 51:49 would give the "popular" class less than its uniform
        # share; the constructor (and therefore parse) refuses.
        with pytest.raises(ConfigurationError):
            BimodalPopularity.parse("51:49")

    def test_skew_grows_with_concentration(self):
        skews = [BimodalPopularity.parse(spec).skew
                 for spec in ("50:50", "20:80", "5:95", "1:99")]
        assert skews == sorted(skews)
        assert skews[0] == pytest.approx(1.0)
