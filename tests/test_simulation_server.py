"""StreamingServer facade."""

import pytest

from repro.core.cache_model import CachePolicy
from repro.core.popularity import BimodalPopularity
from repro.errors import ConfigurationError
from repro.core.parameters import SystemParameters
from repro.simulation.server import ServerConfig, StreamingServer
from repro.units import GB, MB


@pytest.fixture
def base_params() -> SystemParameters:
    return SystemParameters.table3_default(n_streams=1, bit_rate=1 * MB, k=2)


class TestConfigValidation:
    def test_cache_needs_policy(self, base_params):
        with pytest.raises(ConfigurationError):
            ServerConfig(params=base_params, dram_budget=1 * GB,
                         configuration="cache")

    def test_unknown_configuration(self, base_params):
        with pytest.raises(ConfigurationError):
            ServerConfig(params=base_params, dram_budget=1 * GB,
                         configuration="other")

    def test_budget_positive(self, base_params):
        with pytest.raises(ConfigurationError):
            ServerConfig(params=base_params, dram_budget=0)


class TestLifecycle:
    def test_fill_then_simulate_plain(self, base_params):
        server = StreamingServer(ServerConfig(params=base_params,
                                              dram_budget=1 * GB))
        n = server.fill()
        assert n > 0
        assert server.dram_required() <= 1 * GB
        report = server.simulate(n_cycles=8)
        assert report.jitter_free

    def test_fill_then_simulate_buffer(self, base_params):
        server = StreamingServer(ServerConfig(params=base_params,
                                              dram_budget=200 * 1e6,
                                              configuration="buffer"))
        n = server.fill()
        assert n > 0
        design = server.buffer_design()
        assert design.total_dram <= 200 * 1e6 * (1 + 1e6)
        report = server.simulate(n_cycles=4)
        assert report.jitter_free

    def test_fill_then_simulate_cache(self, base_params):
        config = ServerConfig(params=base_params, dram_budget=1 * GB,
                              configuration="cache",
                              policy=CachePolicy.REPLICATED,
                              popularity=BimodalPopularity(5, 95))
        server = StreamingServer(config)
        n = server.fill()
        assert n > 0
        design = server.cache_design()
        assert design.hit_rate > 0
        report = server.simulate(n_cycles=8)
        assert report.jitter_free

    def test_admit_counts_successes(self, base_params):
        server = StreamingServer(ServerConfig(params=base_params,
                                              dram_budget=1 * GB))
        assert server.admit(5) == 5
        assert server.admitted_streams == 5

    def test_admit_stops_at_capacity(self, base_params):
        server = StreamingServer(ServerConfig(params=base_params,
                                              dram_budget=1 * GB))
        capacity = server.fill()
        assert server.admit(10) == 0
        assert server.admitted_streams == capacity

    def test_design_accessors_require_matching_config(self, base_params):
        server = StreamingServer(ServerConfig(params=base_params,
                                              dram_budget=1 * GB))
        server.admit(3)
        with pytest.raises(ConfigurationError):
            server.buffer_design()
        with pytest.raises(ConfigurationError):
            server.cache_design()

    def test_simulate_requires_streams(self, base_params):
        server = StreamingServer(ServerConfig(params=base_params,
                                              dram_budget=1 * GB))
        with pytest.raises(ConfigurationError):
            server.simulate()
