"""Admission control against the analytical bounds."""

import pytest

from repro.core.cache_model import CachePolicy
from repro.core.capacity import streams_supported
from repro.core.parameters import SystemParameters
from repro.core.popularity import BimodalPopularity
from repro.errors import ConfigurationError
from repro.scheduling.admission import AdmissionController
from repro.units import GB, KB, MB


@pytest.fixture
def params() -> SystemParameters:
    return SystemParameters.table3_default(n_streams=1, bit_rate=1 * MB, k=2)


class TestBasicAdmission:
    def test_starts_empty(self, params):
        controller = AdmissionController(params, 1 * GB)
        assert controller.admitted_streams == 0

    def test_admits_first_stream(self, params):
        controller = AdmissionController(params, 1 * GB)
        decision = controller.try_admit()
        assert decision.admitted
        assert decision.n_streams == 1
        assert decision.dram_required is not None

    def test_fill_matches_capacity_solver(self, params):
        controller = AdmissionController(params, 1 * GB)
        filled = controller.fill()
        assert filled == streams_supported(params, 1 * GB)

    def test_rejection_reason_mentions_dram(self):
        tiny = SystemParameters.table3_default(n_streams=1,
                                               bit_rate=100 * KB, k=2)
        controller = AdmissionController(tiny, 10 * 1e6)  # 10 MB only
        controller.fill()
        decision = controller.try_admit()
        assert not decision.admitted
        assert "DRAM" in decision.reason

    def test_bandwidth_rejection(self, params):
        # Huge DRAM: the rejection must come from the device bandwidth.
        controller = AdmissionController(params, 1e15)
        controller.fill()
        decision = controller.try_admit()
        assert not decision.admitted
        assert decision.dram_required is None  # feasibility failure

    def test_release_returns_capacity(self, params):
        controller = AdmissionController(params, 1 * GB)
        filled = controller.fill()
        controller.release(5)
        assert controller.admitted_streams == filled - 5
        assert controller.try_admit().admitted

    def test_release_validation(self, params):
        controller = AdmissionController(params, 1 * GB)
        with pytest.raises(ConfigurationError):
            controller.release(1)


class TestArrivalFastPath:
    def test_readmission_after_release_probes_nothing(self, params):
        from repro.planner import Planner

        planner = Planner()
        controller = AdmissionController(params, 1 * GB, planner=planner)
        controller.fill()
        controller.release(3)
        before = planner.stats()
        for _ in range(3):
            assert controller.try_admit().admitted
        after = planner.stats()
        # Capacity is cached on the controller: the churn above costs
        # zero planner probes and zero additional solves.
        assert after["probes_cold"] == before["probes_cold"]
        assert after["probes_warm"] == before["probes_warm"]
        assert (after["solves_cold"] + after["solves_warm"]
                == before["solves_cold"] + before["solves_warm"])

    def test_reconfigure_invalidates_cached_capacity(self, params):
        controller = AdmissionController(params, 1 * GB)
        small = controller.capacity()
        controller.reconfigure(dram_budget=2 * GB)
        assert controller.capacity() > small

    def test_warm_and_cold_controllers_decide_identically(self, params):
        from repro.planner import Planner

        warm = AdmissionController(params, 1 * GB,
                                   planner=Planner(warm_start=True))
        cold = AdmissionController(params, 1 * GB,
                                   planner=Planner(warm_start=False))
        for controller in (warm, cold):
            controller.reconfigure(dram_budget=1 * GB * (1.0 + 1e-6))
        for _ in range(warm.capacity() + 3):  # run past capacity
            a, b = warm.try_admit(), cold.try_admit()
            assert a.admitted == b.admitted
            assert a.n_streams == b.n_streams
            assert a.reason == b.reason

    def test_rejection_reason_unchanged_by_fast_path(self):
        tiny = SystemParameters.table3_default(n_streams=1,
                                               bit_rate=100 * KB, k=2)
        controller = AdmissionController(tiny, 10 * 1e6)
        controller.fill()
        decision = controller.try_admit()
        assert not decision.admitted
        assert "exceeds the budget" in decision.reason


class TestWarmStartHints:
    """Regression: a kind swap must re-key the warm-start hint.

    ``reconfigure`` used to leave ``_capacity_hint`` holding the *old*
    model's capacity, so the next solve for the new kind was seeded
    with a different demand model's answer.
    """

    def test_kind_change_parks_the_old_hint(self, params):
        controller = AdmissionController(params, 1 * GB)
        plain = controller.capacity()
        assert controller._capacity_hint == plain
        controller.reconfigure(configuration="buffer")
        # The new kind has no parked hint; the old one is parked.
        assert controller._capacity_hint is None
        assert controller._capacity_hints["none"] == plain

    def test_swapping_back_restores_the_parked_hint(self, params):
        controller = AdmissionController(params, 1 * GB)
        plain = controller.capacity()
        controller.reconfigure(configuration="buffer")
        buffered = controller.capacity()
        controller.reconfigure(configuration="none")
        assert controller._capacity_hint == plain
        assert controller._capacity_hints["buffer"] == buffered

    def test_same_kind_reconfigure_keeps_the_hint(self, params):
        controller = AdmissionController(params, 1 * GB)
        plain = controller.capacity()
        controller.reconfigure(dram_budget=1 * GB * (1.0 + 1e-9))
        # A budget nudge is not a kind change: warm start survives.
        assert controller._capacity_hint == plain

    def test_hints_never_change_the_answer(self, params):
        churned = AdmissionController(params, 1 * GB)
        churned.capacity()
        churned.reconfigure(configuration="buffer")
        churned.capacity()
        churned.reconfigure(configuration="none")
        fresh = AdmissionController(params, 1 * GB)
        assert churned.capacity() == fresh.capacity()


class TestConfigurations:
    def test_buffer_admits_more_than_plain_when_dram_bound(self):
        params = SystemParameters.table3_default(n_streams=1,
                                                 bit_rate=100 * KB, k=2)
        plain = AdmissionController(params, 1 * GB).fill()
        buffered = AdmissionController(params, 1 * GB,
                                       configuration="buffer").fill()
        assert buffered > plain

    def test_cache_configuration(self, params):
        controller = AdmissionController(
            params, 1 * GB, configuration="cache",
            policy=CachePolicy.REPLICATED,
            popularity=BimodalPopularity(5, 95))
        assert controller.fill() > 0

    def test_cache_requires_policy(self, params):
        with pytest.raises(ConfigurationError):
            AdmissionController(params, 1 * GB, configuration="cache")

    def test_unknown_configuration(self, params):
        with pytest.raises(ConfigurationError):
            AdmissionController(params, 1 * GB, configuration="magic")

    def test_negative_budget(self, params):
        with pytest.raises(ConfigurationError):
            AdmissionController(params, -1.0)
