"""Exception hierarchy contract."""

import pytest

from repro.errors import (
    AdmissionError,
    CapacityError,
    ConfigurationError,
    ReproError,
    SchedulingError,
    SimulationError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc_type", [
        ConfigurationError, AdmissionError, CapacityError, SchedulingError,
        SimulationError,
    ])
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_repro_error_is_an_exception(self):
        assert issubclass(ReproError, Exception)

    def test_single_catch_covers_library_failures(self):
        for exc_type in (ConfigurationError, AdmissionError, CapacityError):
            with pytest.raises(ReproError):
                raise exc_type("boom")


class TestAdmissionError:
    def test_carries_load_and_capacity(self):
        err = AdmissionError("over capacity", load=2e8, capacity=1e8)
        assert err.load == 2e8
        assert err.capacity == 1e8
        assert "over capacity" in str(err)

    def test_defaults_are_none(self):
        err = AdmissionError("plain")
        assert err.load is None
        assert err.capacity is None
