"""Multi-class populations and spare-capacity accounting."""

import math

import pytest

from repro.core.buffer_model import design_mems_buffer
from repro.core.multiclass import (
    StreamClass,
    admit_class,
    design_multiclass_buffer,
    design_multiclass_direct,
)
from repro.core.parameters import SystemParameters
from repro.core.spare import best_effort_iops, spare_capacity
from repro.core.theorems import min_buffer_direct
from repro.errors import AdmissionError, ConfigurationError
from repro.units import GB, KB, MB, MS


@pytest.fixture
def mixed_classes() -> list[StreamClass]:
    return [
        StreamClass("mp3", 10 * KB, 2_000),
        StreamClass("DivX", 100 * KB, 500),
        StreamClass("DVD", 1 * MB, 50),
    ]


class TestMulticlassDirect:
    def test_homogeneous_reduces_to_theorem1(self):
        classes = [StreamClass("DVD", 1 * MB, 40)]
        design = design_multiclass_direct(classes, rate=300 * MB,
                                          latency=3 * MS)
        expected = min_buffer_direct(40, 1 * MB, 300 * MB, 3 * MS)
        assert design.buffers[0] == pytest.approx(expected)

    def test_cycle_depends_on_aggregates_only(self, mixed_classes):
        # Replace the mix by one class with the same count and load:
        # the cycle must be identical.
        n = sum(c.count for c in mixed_classes)
        load = sum(c.load for c in mixed_classes)
        merged = [StreamClass("avg", load / n, n)]
        mixed = design_multiclass_direct(mixed_classes, rate=300 * MB,
                                         latency=3 * MS)
        averaged = design_multiclass_direct(merged, rate=300 * MB,
                                            latency=3 * MS)
        assert mixed.t_cycle == pytest.approx(averaged.t_cycle)
        assert mixed.total_dram == pytest.approx(averaged.total_dram)

    def test_per_class_buffers_scale_with_bitrate(self, mixed_classes):
        design = design_multiclass_direct(mixed_classes, rate=300 * MB,
                                          latency=3 * MS)
        assert design.buffer_for("DVD") == pytest.approx(
            100 * design.buffer_for("mp3"))
        assert design.buffer_for("DivX") == pytest.approx(
            10 * design.buffer_for("mp3"))

    def test_aggregate_saturation_rejected(self):
        classes = [StreamClass("DVD", 1 * MB, 200),
                   StreamClass("HDTV", 10 * MB, 15)]
        with pytest.raises(AdmissionError):
            design_multiclass_direct(classes, rate=300 * MB, latency=3 * MS)

    def test_empty_population(self):
        design = design_multiclass_direct(
            [StreamClass("DVD", 1 * MB, 0)], rate=300 * MB, latency=3 * MS)
        assert design.total_dram == 0.0

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            design_multiclass_direct(
                [StreamClass("a", 1 * MB, 1), StreamClass("a", 2 * MB, 1)],
                rate=300 * MB, latency=3 * MS)

    def test_unknown_class_lookup(self, mixed_classes):
        design = design_multiclass_direct(mixed_classes, rate=300 * MB,
                                          latency=3 * MS)
        with pytest.raises(ConfigurationError):
            design.buffer_for("Betamax")


class TestMulticlassBuffer:
    @pytest.fixture
    def params(self) -> SystemParameters:
        return SystemParameters.table3_default(n_streams=1,
                                               bit_rate=100 * KB, k=2)

    def test_homogeneous_matches_theorem2(self, params):
        classes = [StreamClass("DivX", 100 * KB, 1_000)]
        multi = design_multiclass_buffer(classes, params)
        mono = design_mems_buffer(params.replace(n_streams=1_000),
                                  quantise=False)
        assert multi.total_dram == pytest.approx(mono.total_dram)
        assert multi.t_cycle == pytest.approx(mono.t_disk)

    def test_mixed_population(self, params, mixed_classes):
        design = design_multiclass_buffer(mixed_classes, params)
        assert design.total_dram > 0
        # Buffered DRAM is far below the direct requirement.
        direct = design_multiclass_direct(mixed_classes, rate=params.r_disk,
                                          latency=params.l_disk)
        assert design.total_dram < direct.total_dram / 3

    def test_bank_saturation_rejected(self, params):
        classes = [StreamClass("HDTV", 10 * MB, 33)]
        with pytest.raises(AdmissionError):
            design_multiclass_buffer(classes, params)

    def test_unlimited_bank(self, params, mixed_classes):
        design = design_multiclass_buffer(mixed_classes,
                                          params.replace(size_mems=None))
        assert math.isinf(design.t_cycle)
        assert design.total_dram > 0


class TestAdmitClass:
    def test_admits_within_budget(self, mixed_classes):
        assert admit_class(mixed_classes,
                           StreamClass("DVD", 1 * MB, 10),
                           rate=300 * MB, latency=3 * MS,
                           dram_budget=100 * GB)

    def test_rejects_on_bandwidth(self, mixed_classes):
        assert not admit_class(mixed_classes,
                               StreamClass("HDTV", 10 * MB, 30),
                               rate=300 * MB, latency=3 * MS,
                               dram_budget=100 * GB)

    def test_rejects_on_dram(self, mixed_classes):
        assert not admit_class(mixed_classes,
                               StreamClass("DVD", 1 * MB, 100),
                               rate=300 * MB, latency=3 * MS,
                               dram_budget=1 * KB)

    def test_inconsistent_redefinition_rejected(self, mixed_classes):
        with pytest.raises(ConfigurationError):
            admit_class(mixed_classes, StreamClass("DVD", 2 * MB, 1),
                        rate=300 * MB, latency=3 * MS, dram_budget=1 * GB)


class TestSpareCapacity:
    @pytest.fixture
    def design(self):
        params = SystemParameters.table3_default(n_streams=100,
                                                 bit_rate=1 * MB, k=2)
        return design_mems_buffer(params)

    def test_light_load_leaves_spare(self):
        params = SystemParameters.table3_default(n_streams=20,
                                                 bit_rate=1 * MB, k=2)
        spare = spare_capacity(design_mems_buffer(params))
        assert spare.bandwidth > 0
        assert 0 < spare.idle_fraction < 1
        # At the Eq. 7-maximal disk cycle the staging uses the whole
        # bank, so spare *storage* is zero by construction.
        assert spare.storage == pytest.approx(0.0, abs=1.0)

    def test_bandwidth_accounting(self, design):
        spare = spare_capacity(design)
        params = design.params
        assert spare.bandwidth == pytest.approx(
            params.mems_bank_bandwidth - 2 * 100 * 1 * MB)

    def test_heavier_load_less_idle(self):
        light = SystemParameters.table3_default(n_streams=50,
                                                bit_rate=1 * MB, k=2)
        heavy = light.replace(n_streams=250)
        spare_light = spare_capacity(design_mems_buffer(light))
        spare_heavy = spare_capacity(design_mems_buffer(heavy))
        assert spare_heavy.idle_fraction < spare_light.idle_fraction
        assert spare_heavy.bandwidth < spare_light.bandwidth

    def test_unbounded_design_rejected(self):
        params = SystemParameters.table3_default(
            n_streams=50, bit_rate=1 * MB, k=2, size_mems_unlimited=True)
        with pytest.raises(ConfigurationError):
            spare_capacity(design_mems_buffer(params, quantise=False))

    def test_best_effort_iops(self, design):
        iops = best_effort_iops(design, io_size=1 * MB)
        assert iops > 0
        # Bigger best-effort IOs take longer each: fewer per second.
        assert best_effort_iops(design, io_size=10 * MB) < iops

    def test_best_effort_validation(self, design):
        with pytest.raises(ConfigurationError):
            best_effort_iops(design, io_size=0)
