"""Fixture: float comparisons ``float-equality`` must flag.

Lives under an ``experiments/`` directory: the rule extends to the
runners that assemble figures/tables from planner floats.
"""


def classify(value: float) -> str:
    if value == 0.0:
        return "zero"
    if value == float("inf"):
        return "unbounded"
    if int(value) == 0:
        return "fractional"
    return "other"
