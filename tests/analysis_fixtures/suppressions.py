"""Fixture: the same violation three times, suppressed two ways.

Line 6 carries a named suppression, line 7 a bare ``disable``; line 8
is identical to line 6 but unsuppressed and must still be flagged.
"""
SIZE_A = 4 * 1e6  # repro-lint: disable=unit-literals
SIZE_B = 4 * 1e6  # repro-lint: disable
SIZE_C = 4 * 1e6
