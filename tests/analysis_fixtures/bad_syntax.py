"""Fixture: not valid Python; the engine must emit ``parse-error``."""
def broken(:
