"""Fixture: banned raises ``exception-hygiene`` must flag.

The ``ValueError`` and ``Exception`` raises are violations;
``RuntimeError`` and re-raising a pre-built object are allowed.
"""


def reject(value, failure):
    if value < 0:
        raise ValueError(f"negative: {value}")
    if value == 0:
        raise Exception
    if value > 100:
        raise RuntimeError("internal invariant")
    if failure is not None:
        raise failure
    return value
