"""Fixture: float comparisons ``float-equality`` must flag.

Lives under a ``service/`` directory because the rule is path-scoped:
backpressure thresholds and load fractions are float chains, so exact
equality there is the classic hysteresis-flapping bug.  The three
module-level comparisons are violations; the integer comparison in
``no_pending`` is not.
"""
AT_THRESHOLD = 0.85 + 0.1 == 0.95
LOAD = float("inf") != float("inf")
EXIT_BAND = -0.7 == -0.7


def no_pending(n):
    return n == 0
