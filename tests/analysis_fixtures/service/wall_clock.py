"""Fixture: seed-guarantee breaches ``determinism`` must flag.

Lives under a ``service/`` directory because the rule is path-scoped:
the control plane timestamps events with *simulated* time and replays
traffic from one seeded generator, so it carries the same bans as
``runtime/`` — an event bus that read the wall clock would break the
byte-identical parity guarantee.
"""
import random
import time

import numpy as np


def ticket_stamp():
    issued_at = time.time()
    ticket_jitter = random.random()
    draw = np.random.uniform()
    rng = np.random.default_rng(7)
    return issued_at, ticket_jitter, draw, rng.random()
