"""Fixture: magic unit literals ``unit-literals`` must flag.

The five constants below the docstring are violations; the two at the
bottom are spellings the rule deliberately leaves alone (a plain count
and a tolerance).
"""
DECIMAL_MB = 4 * 1e6
DECIMAL_UNDERSCORE = 1_000_000
BINARY_KB = 1024
BINARY_SHIFT = 1 << 20
KILO_CONVERSION = 3.5 * 1e3

# Not flagged: plain-spelled counts and sub-unity tolerances.
N_ITERATIONS = 1000
TOLERANCE = 1e-6
