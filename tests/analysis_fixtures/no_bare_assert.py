"""Fixture: bare asserts that ``no-bare-assert`` must flag."""


def check_invariant(value):
    assert value is not None
    assert value > 0, "value must be positive"
    return value
