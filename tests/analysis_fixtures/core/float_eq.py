"""Fixture: float comparisons ``float-equality`` must flag.

Lives under a ``core/`` directory because the rule is path-scoped.
The three module-level comparisons are violations; the integer
comparison in ``empty`` is not.
"""
EXACT = 0.1 + 0.2 == 0.3
SENTINEL = float("inf") != float("inf")
NEGATED = -1.5 == -1.5


def empty(n):
    return n == 0
