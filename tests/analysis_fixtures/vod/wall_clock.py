"""Fixture: seed-guarantee breaches ``determinism`` must flag.

Lives under a ``vod/`` directory because the rule is path-scoped: the
prefix/multicast subsystem feeds the seeded runtime, so it carries the
same bans as ``runtime/``.
"""
import random
import time

import numpy as np


def batch_stamp():
    opened_at = time.monotonic()
    jitter = random.random()
    draw = np.random.uniform()
    rng = np.random.default_rng(11)
    return opened_at, jitter, draw, rng.random()
