"""Fixture: float comparisons ``float-equality`` must flag.

Lives under a ``vod/`` directory because the rule is path-scoped: the
prefix sizing and byte-fraction chains are float arithmetic.  The
three module-level comparisons are violations; the integer comparison
in ``no_streams`` is not.
"""
FULL_PREFIX = 0.5 + 0.5 == 1.0
WINDOW = float("inf") != float("inf")
FRACTION = -0.25 == -0.25


def no_streams(n):
    return n == 0
