"""Fixture: perf/-scoped breaches ``determinism`` must flag.

Ad-hoc pools and wall-clock reads are banned in ``perf/`` like in the
other seeded layers; the sanctioned escapes (``sweep_map``'s pool, the
bench timer) carry reviewed inline suppressions in the real modules.
"""
import time
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import Pool


def naughty(items):
    start = time.perf_counter()
    with ProcessPoolExecutor(max_workers=2) as executor:
        results = list(executor.map(str, items))
    with Pool(2) as pool:
        results += pool.map(str, items)
    return time.perf_counter() - start, results
