"""Fixture package root."""
