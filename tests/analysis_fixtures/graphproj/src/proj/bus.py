"""The publisher: instantiating an event type publishes it."""

import proj.events as events

__all__ = ["publish_all"]


def publish_all() -> list:
    return [events.Fired(), events.Parade(), events.Smoke()]
