"""Event vocabulary; three of the five types violate the contract."""

__all__ = ["Event", "Fired", "Ghost", "Parade", "Quiet", "Smoke"]


class Event:
    pass


class Fired(Event):  # published (bus) and consumed (watcher): clean
    pass


class Ghost(Event):  # VIOLATION: never published, never consumed
    pass


class Parade(Event):  # published (bus), documented (docs/NOTES.md): clean
    pass


class Quiet(Event):  # VIOLATION: consumed (watcher) but never published
    pass


class Smoke(Event):  # VIOLATION: published (bus) but never consumed
    pass
