"""Declared a pure re-export shim of ``proj.beta.util`` — but stale."""

from proj.beta.util import helper

__all__ = ["compat", "helper", "stale"]

compat = helper


def stale() -> int:  # VIOLATION: logic added to a declared shim
    return helper() + 1
