"""A consumer: imports-and-reads event types off the bus."""

from proj.events import Fired, Quiet

__all__ = ["HANDLED"]

HANDLED = (Fired, Quiet)
