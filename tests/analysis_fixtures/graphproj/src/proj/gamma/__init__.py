"""The gamma layer (declared; imports nothing)."""
