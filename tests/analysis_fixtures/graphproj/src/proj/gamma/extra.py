"""Imported by alpha (which is not allowed to)."""


def thing() -> int:
    return 3
