"""The metric sink: its string constants are the visible surface."""

from proj.beta.producer import Meter

TEMPLATE = "beta_ticks {0} beta_level {1}"


def render(meter: Meter) -> str:
    return TEMPLATE.format(meter, meter)
