"""The beta layer (imports nothing)."""
