"""Exports counters and gauges; ``beta_lost`` reaches no sink or doc."""


class Meter:
    def __init__(self, counters) -> None:
        self.counters = counters

    def tick(self) -> dict:
        self.counters.count("beta_ticks")
        self.counters.count("beta_lost")  # VIOLATION: invisible counter
        gauges = {"beta_level": 1.0}
        gauges["beta_depth"] = 2.0
        return gauges
