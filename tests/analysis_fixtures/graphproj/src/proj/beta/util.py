"""``helper`` has importers; ``orphan`` is a dead-export violation."""


def helper() -> int:
    return 2


def orphan() -> int:  # VIOLATION: nothing imports, uses, or exports this
    return 4


def _private() -> int:
    return 8
