"""Imports alpha from the root layer — carried by a named exception."""

from proj.alpha.work import use

__all__ = ["run_all"]


def run_all() -> int:
    return use()
