"""Any import from an undeclared layer is a finding."""

from proj.beta.util import helper  # VIOLATION: layer delta is undeclared

__all__ = ["combined"]


def combined() -> int:
    return helper()
