"""The delta layer — deliberately missing from the declared DAG."""
