"""The alpha layer (may import beta only)."""
