"""Imports beta (allowed) and gamma (a layer-boundaries violation)."""

from proj.beta.util import helper
from proj.gamma.extra import thing  # VIOLATION: alpha may not import gamma


def use() -> int:
    return helper() + thing()
