"""Entry-point module: ``main`` is live via [project.scripts]."""

from proj.beta.producer import Meter
from proj.beta.sink import render


def main() -> str:
    meter = Meter(counters=None)
    meter.tick()
    return render(meter)
