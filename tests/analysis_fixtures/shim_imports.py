"""Fixture: deprecated-shim imports ``no-shim-imports`` must flag."""
import repro.core.capacity
from repro.core import hybrid
from repro.core.capacity import streams_supported

USES = (repro.core.capacity, hybrid, streams_supported)
