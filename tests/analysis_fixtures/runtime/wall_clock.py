"""Fixture: seed-guarantee breaches ``determinism`` must flag.

Lives under a ``runtime/`` directory because the rule is path-scoped.
"""
import random
import time
from datetime import datetime

import numpy as np


def stamp():
    started = time.time()
    today = datetime.now()
    jitter = random.random()
    draw = np.random.uniform()
    rng = np.random.default_rng(7)
    return started, today, jitter, draw, rng.random()
