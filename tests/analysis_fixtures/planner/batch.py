"""Fixture: file-scoped ``determinism`` breaches in the batch planner.

Named ``planner/batch.py`` because the rule scopes that one file by
its path tail (the vectorized kernels must replay the scalar solver
bit for bit, so ad-hoc entropy and clocks are banned), not by
directory.  Also exercises the sanctioned inline suppression.
"""
import time

import numpy as np


def jittered_lanes(lanes):
    noise = np.random.uniform(size=len(lanes))
    stamp = time.monotonic()
    return lanes + noise, stamp


def sanctioned_timer():
    return time.perf_counter()  # repro-lint: disable=determinism (fixture: reviewed escape)
