"""Fixture: file-scoped ``determinism`` breaches in the warm-start engine.

Named ``planner/incremental.py`` because the rule scopes that one file
by its path tail (the warm-start replay must be bit-reproducible), not
by directory.  Also exercises the sanctioned inline suppression.
"""
import random
import time


def jittered_hint(hint):
    nudge = random.random()
    deadline = time.monotonic()
    return hint + nudge, deadline


def sanctioned_timer():
    return time.perf_counter()  # repro-lint: disable=determinism (fixture: reviewed escape)
