"""Theorem 1 / Corollary 1 and their inverses."""


import pytest

from repro.core.parameters import SystemParameters
from repro.core.theorems import (
    io_cycle_direct,
    max_streams_direct,
    min_buffer_direct,
    min_buffer_disk_dram,
    min_buffer_mems_dram,
)
from repro.errors import AdmissionError, ConfigurationError
from repro.units import GB, KB, MB, MS


class TestTheorem1ClosedForm:
    def test_hand_computed_value(self):
        # N=10, L=10ms, R=100MB/s, B=1MB/s:
        # S = 10 * 0.01 * 1e8 * 1e6 / (1e8 - 1e7) = 1e13 / 9e7.
        s = min_buffer_direct(10, 1 * MB, 100 * MB, 10 * MS)
        assert s == pytest.approx(1e13 / 9e7)

    def test_fixed_point_property(self):
        # S = B * T where T = N * (L + S / R): the defining recurrence.
        n, b, r, latency = 25, 2 * MB, 200 * MB, 5 * MS
        s = min_buffer_direct(n, b, r, latency)
        t = n * (latency + s / r)
        assert s == pytest.approx(b * t)

    def test_zero_streams_zero_buffer(self):
        assert min_buffer_direct(0, 1 * MB, 100 * MB, 10 * MS) == 0.0

    def test_zero_latency_zero_buffer(self):
        assert min_buffer_direct(10, 1 * MB, 100 * MB, 0.0) == 0.0

    def test_fractional_streams_supported(self):
        # The cache model evaluates expected sub-populations.
        s_half = min_buffer_direct(10.5, 1 * MB, 100 * MB, 10 * MS)
        s10 = min_buffer_direct(10, 1 * MB, 100 * MB, 10 * MS)
        s11 = min_buffer_direct(11, 1 * MB, 100 * MB, 10 * MS)
        assert s10 < s_half < s11

    def test_saturation_raises_admission_error(self):
        with pytest.raises(AdmissionError) as excinfo:
            min_buffer_direct(100, 1 * MB, 100 * MB, 10 * MS)
        assert excinfo.value.load == pytest.approx(100 * MB)
        assert excinfo.value.capacity == pytest.approx(100 * MB)

    def test_above_saturation_raises(self):
        with pytest.raises(AdmissionError):
            min_buffer_direct(101, 1 * MB, 100 * MB, 10 * MS)

    def test_blows_up_near_saturation(self):
        s90 = min_buffer_direct(90, 1 * MB, 100 * MB, 10 * MS)
        s99 = min_buffer_direct(99, 1 * MB, 100 * MB, 10 * MS)
        assert s99 > 9 * s90

    @pytest.mark.parametrize("kwargs", [
        {"n_streams": -1, "bit_rate": 1e6, "rate": 1e8, "latency": 0.01},
        {"n_streams": 1, "bit_rate": 0, "rate": 1e8, "latency": 0.01},
        {"n_streams": 1, "bit_rate": 1e6, "rate": 0, "latency": 0.01},
        {"n_streams": 1, "bit_rate": 1e6, "rate": 1e8, "latency": -0.01},
    ])
    def test_invalid_inputs(self, kwargs):
        with pytest.raises(ConfigurationError):
            min_buffer_direct(**kwargs)


class TestPaperHeadlineNumbers:
    def test_terabyte_dram_for_mp3_at_full_utilization(self):
        # Section 5.1.1: "the DRAM requirement for a fully utilized
        # disk ranges from 1GB for 10MB/s streams to 1TB for 10KB/s".
        params = SystemParameters.table3_default(
            n_streams=29_100, bit_rate=10 * KB, size_mems_unlimited=True)
        total = 29_100 * min_buffer_disk_dram(params)
        assert 0.3e12 < total < 3e12  # ~1 TB scale

    def test_gigabyte_dram_for_hdtv(self):
        params = SystemParameters.table3_default(
            n_streams=29, bit_rate=10 * MB, size_mems_unlimited=True)
        total = 29 * min_buffer_disk_dram(params)
        assert 0.3e9 < total < 3e9  # ~1 GB scale


class TestIoCycle:
    def test_cycle_is_buffer_over_bitrate(self):
        n, b, r, latency = 10, 1 * MB, 100 * MB, 10 * MS
        s = min_buffer_direct(n, b, r, latency)
        assert io_cycle_direct(n, b, r, latency) == pytest.approx(s / b)

    def test_zero_streams(self):
        assert io_cycle_direct(0, 1 * MB, 100 * MB, 10 * MS) == 0.0

    def test_cycle_grows_with_n(self):
        cycles = [io_cycle_direct(n, 1 * MB, 100 * MB, 10 * MS)
                  for n in (10, 50, 90)]
        assert cycles == sorted(cycles)


class TestMaxStreamsDirect:
    def test_bandwidth_bound_without_budget(self):
        assert max_streams_direct(1 * MB, 100 * MB, 10 * MS) == \
            pytest.approx(100.0)

    def test_budget_inverts_forward_model(self):
        budget = 1 * GB
        n = max_streams_direct(1 * MB, 100 * MB, 10 * MS, budget)
        total = n * min_buffer_direct(n, 1 * MB, 100 * MB, 10 * MS)
        assert total == pytest.approx(budget, rel=1e-9)

    def test_budget_solution_below_bandwidth_bound(self):
        n = max_streams_direct(1 * MB, 100 * MB, 10 * MS, 1 * GB)
        assert n < 100.0

    def test_zero_budget(self):
        assert max_streams_direct(1 * MB, 100 * MB, 10 * MS, 0.0) == 0.0

    def test_zero_latency_hits_bandwidth_bound(self):
        assert max_streams_direct(1 * MB, 100 * MB, 0.0, 1 * KB) == \
            pytest.approx(100.0)

    def test_huge_budget_approaches_bandwidth_bound(self):
        n = max_streams_direct(1 * MB, 100 * MB, 10 * MS, 1e18)
        assert n == pytest.approx(100.0, rel=1e-3)

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            max_streams_direct(1 * MB, 100 * MB, 10 * MS, -1.0)


class TestParameterWrappers:
    def test_disk_wrapper(self, simple_params):
        assert min_buffer_disk_dram(simple_params) == pytest.approx(
            min_buffer_direct(10, 1 * MB, 100 * MB, 10 * MS))

    def test_mems_wrapper_uses_mems_parameters(self, simple_params):
        # Corollary 1: same closed form with MEMS rate and latency.
        assert min_buffer_mems_dram(simple_params) == pytest.approx(
            min_buffer_direct(10, 1 * MB, 200 * MB, 1 * MS))

    def test_mems_buffer_smaller_for_faster_device(self, simple_params):
        assert min_buffer_mems_dram(simple_params) < \
            min_buffer_disk_dram(simple_params)
