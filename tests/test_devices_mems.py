"""MEMS device kinematics and the G3 reference figures."""

import pytest

from repro.devices.catalog import MEMS_G1, MEMS_G2, MEMS_G3
from repro.devices.mems import MemsDevice
from repro.devices.mems_geometry import TipSector
from repro.errors import ConfigurationError
from repro.units import GB, MB, MS


class TestG3ReferenceValues:
    def test_table3_figures(self):
        assert MEMS_G3.transfer_rate == 320 * MB
        assert MEMS_G3.capacity == 10 * GB
        assert MEMS_G3.cost_per_device == pytest.approx(10.0)

    def test_max_access_time_is_full_stroke_plus_settle(self):
        # 0.45 ms X full stroke + 0.14 ms settle (Y overlaps X).
        assert MEMS_G3.max_access_time() == pytest.approx(0.59 * MS)

    def test_average_below_max(self):
        avg = MEMS_G3.average_access_time()
        assert 0 < avg < MEMS_G3.max_access_time()

    def test_average_in_table1_band(self):
        # Table 1 quotes 0.4-1 ms MEMS access for 2007; our mean of
        # max(t_x + settle, t_y) over random accesses sits inside it.
        assert 0.3 * MS < MEMS_G3.average_access_time() < 1.0 * MS


class TestKinematics:
    def test_zero_move_is_free(self):
        assert MEMS_G3.seek_time_x(0) == 0.0
        assert MEMS_G3.seek_time_y(0) == 0.0
        assert MEMS_G3.positioning_time(0, 0) == 0.0

    def test_x_move_includes_settle(self):
        quarter = MEMS_G3.seek_time_x(0.25)
        # sqrt(0.25) = 0.5 of the stroke time, plus settle.
        assert quarter == pytest.approx(0.5 * 0.45 * MS + 0.14 * MS)

    def test_y_move_has_no_settle(self):
        assert MEMS_G3.seek_time_y(1.0) == pytest.approx(0.45 * MS)

    def test_sqrt_profile(self):
        # Constant-acceleration spring sled: t ~ sqrt(distance).
        t1 = MEMS_G3.seek_time_y(0.01)
        t2 = MEMS_G3.seek_time_y(0.04)
        assert t2 / t1 == pytest.approx(2.0)

    def test_concurrent_xy_takes_max(self):
        tx = MEMS_G3.seek_time_x(0.5)
        ty = MEMS_G3.seek_time_y(0.9)
        assert MEMS_G3.positioning_time(0.5, 0.9) == max(tx, ty)

    def test_fraction_bounds_enforced(self):
        with pytest.raises(ConfigurationError):
            MEMS_G3.seek_time_x(1.5)
        with pytest.raises(ConfigurationError):
            MEMS_G3.seek_time_y(-0.1)

    def test_access_time_between_sectors(self):
        geo = MEMS_G3.geometry
        origin = TipSector(tip_group=0, x_index=0, y_index=0)
        near = TipSector(tip_group=0, x_index=1, y_index=1)
        far = TipSector(tip_group=0, x_index=geo.bits_per_tip_x - 1,
                        y_index=geo.sectors_per_sweep - 1)
        assert MEMS_G3.access_time(origin, near) < \
            MEMS_G3.access_time(origin, far)
        assert MEMS_G3.access_time(origin, far) == \
            pytest.approx(MEMS_G3.max_access_time())


class TestAccessFastPath:
    def test_table_is_bit_identical_to_kinematics(self):
        geo = MEMS_G3.geometry
        origin = TipSector(tip_group=0, x_index=5, y_index=2)
        denom_x = max(geo.bits_per_tip_x - 1, 1)
        denom_y = max(geo.sectors_per_sweep - 1, 1)
        for x in (0, 1, 5, 100, geo.bits_per_tip_x - 1):
            for y in range(geo.sectors_per_sweep):
                target = TipSector(tip_group=0, x_index=x, y_index=y)
                expected = max(
                    MEMS_G3.seek_time_x(abs(x - 5) / denom_x),
                    MEMS_G3.seek_time_y(abs(y - 2) / denom_y))
                assert MEMS_G3.access_time(origin, target) == expected

    def test_positioning_memo_is_stable(self):
        first = MEMS_G3.positioning_time(0.3, 0.7)
        assert MEMS_G3.positioning_time(0.3, 0.7) == first
        assert first == max(MEMS_G3.seek_time_x(0.3),
                            MEMS_G3.seek_time_y(0.7))

    def test_invalid_fractions_still_raise(self):
        with pytest.raises(ConfigurationError):
            MEMS_G3.positioning_time(-0.1, 0.0)
        with pytest.raises(ConfigurationError):
            MEMS_G3.positioning_time(0.0, 1.5)


class TestServiceTime:
    def test_worst_case_default(self):
        expected = MEMS_G3.max_access_time() + 1 * MB / (320 * MB)
        assert MEMS_G3.service_time(1 * MB) == pytest.approx(expected)

    def test_average_mode(self):
        assert MEMS_G3.service_time(1 * MB, worst_case=False) < \
            MEMS_G3.service_time(1 * MB)

    def test_transfer_time(self):
        assert MEMS_G3.transfer_time(320 * MB) == pytest.approx(1.0)
        with pytest.raises(ConfigurationError):
            MEMS_G3.transfer_time(-1)


class TestGenerations:
    def test_generations_improve_monotonically(self):
        for older, newer in ((MEMS_G1, MEMS_G2), (MEMS_G2, MEMS_G3)):
            assert newer.transfer_rate > older.transfer_rate
            assert newer.capacity > older.capacity
            assert newer.max_access_time() < older.max_access_time()
            assert newer.cost_per_byte < older.cost_per_byte

    def test_symmetric_y_stroke_default(self):
        assert MEMS_G3.full_stroke_y == MEMS_G3.full_stroke_x


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("nominal_bandwidth", 0), ("nominal_capacity", -1),
        ("full_stroke_x", 0), ("settle_x", -1e-6),
        ("dollars_per_byte", -1),
    ])
    def test_invalid_fields_rejected(self, field, value):
        kwargs = dict(name="bad", nominal_bandwidth=100 * MB,
                      nominal_capacity=1 * GB, full_stroke_x=1 * MS,
                      settle_x=0.1 * MS, dollars_per_byte=1.0 / GB)
        kwargs[field] = value
        with pytest.raises(ConfigurationError):
            MemsDevice(**kwargs)
