"""Write-stream extension (paper Section 3.1's noted generalisation)."""

import math

import pytest

from repro.core.buffer_model import design_mems_buffer
from repro.core.parameters import SystemParameters
from repro.core.write_streams import (
    design_mixed_streams,
    max_writers_supported,
)
from repro.errors import (
    AdmissionError,
    CapacityError,
    ConfigurationError,
)
from repro.units import GB, KB


@pytest.fixture
def params() -> SystemParameters:
    return SystemParameters.table3_default(n_streams=1, bit_rate=100 * KB,
                                           k=2)


class TestMixedDesign:
    def test_all_readers_matches_theorem2(self, params):
        # A pure-reader population degenerates to Theorem 2 exactly.
        mixed = design_mixed_streams(params, n_readers=800, n_writers=0)
        pure = design_mems_buffer(params.replace(n_streams=800),
                                  quantise=False)
        assert mixed.s_dram == pytest.approx(pure.s_mems_dram)
        assert mixed.t_disk == pytest.approx(pure.t_disk)

    def test_symmetric_buffer_for_writers(self, params):
        # Readers and writers at the same bit-rate get the same buffer.
        design = design_mixed_streams(params, n_readers=400, n_writers=400)
        assert design.total_dram == pytest.approx(800 * design.s_dram)

    def test_writers_relax_the_storage_bound(self, params):
        # Writers are single-buffered on the bank, so a writer-heavy
        # population sustains a longer disk cycle (less DRAM) than the
        # same-size reader population.
        readers = design_mixed_streams(params, n_readers=1000, n_writers=0)
        writers = design_mixed_streams(params, n_readers=0, n_writers=1000)
        assert writers.t_disk > readers.t_disk
        assert writers.s_dram < readers.s_dram

    def test_bank_bytes_weighting(self, params):
        design = design_mixed_streams(params, n_readers=300, n_writers=100)
        expected = (2 * 300 + 100) * params.bit_rate * design.t_disk
        assert design.bank_bytes_required == pytest.approx(expected)
        # The storage bound is met with equality at the chosen cycle.
        assert design.bank_bytes_required == pytest.approx(
            params.mems_bank_capacity)

    def test_unlimited_bank(self, params):
        unlimited = params.replace(size_mems=None)
        design = design_mixed_streams(unlimited, n_readers=100,
                                      n_writers=100)
        assert math.isinf(design.t_disk)
        assert design.s_dram > 0

    def test_bandwidth_saturation(self, params):
        # 2 * N * B beyond the bank rate is inadmissible regardless of
        # the read/write split.
        with pytest.raises(AdmissionError):
            design_mixed_streams(params, n_readers=1600, n_writers=1600)

    def test_capacity_failure(self, params):
        tiny = params.replace(size_mems=0.01 * GB)
        with pytest.raises(CapacityError):
            design_mixed_streams(tiny, n_readers=500, n_writers=500)

    def test_validation(self, params):
        with pytest.raises(ConfigurationError):
            design_mixed_streams(params, n_readers=-1, n_writers=1)
        with pytest.raises(ConfigurationError):
            design_mixed_streams(params, n_readers=0, n_writers=0)


class TestMaxWriters:
    def test_inverse_of_forward_model(self, params):
        budget = 500e6
        n_writers = max_writers_supported(params, n_readers=500,
                                          dram_budget=budget)
        assert n_writers > 0
        at_limit = design_mixed_streams(params, n_readers=500,
                                        n_writers=n_writers)
        beyond = design_mixed_streams(params, n_readers=500,
                                      n_writers=n_writers + 1)
        assert at_limit.total_dram <= budget
        assert beyond.total_dram > budget

    def test_zero_when_readers_exhaust_budget(self, params):
        n_writers = max_writers_supported(params, n_readers=3_000,
                                          dram_budget=1.0)
        assert n_writers == 0

    def test_negative_budget_rejected(self, params):
        with pytest.raises(ConfigurationError):
            max_writers_supported(params, n_readers=1, dram_budget=-1)
