"""Unit tests for the runtime's building blocks.

Covers the pieces added for the online runtime: the empirical
popularity model, adaptive placement, failure recovery planning, live
admission reconfiguration, the periodic engine helper, bank shrinkage,
and the time-varying session workload.
"""

import numpy as np
import pytest

from repro.core.cache_model import CachePolicy
from repro.core.parameters import SystemParameters
from repro.core.popularity import EmpiricalPopularity, ZipfPopularity
from repro.devices.bank import BankPolicy, MemsBank
from repro.devices.catalog import MEMS_G3
from repro.errors import ConfigurationError, SimulationError
from repro.runtime.failures import plan_recovery
from repro.runtime.placement import AdaptivePlacement
from repro.runtime.sessions import SessionWorkload
from repro.scheduling.admission import AdmissionController
from repro.simulation.engine import Simulator
from repro.units import GB, KB, MB
from repro.workloads.arrivals import erlang_b, predicted_blocking


@pytest.fixture
def params() -> SystemParameters:
    return SystemParameters.table3_default(
        n_streams=1, bit_rate=500 * KB, k=2).replace(size_disk=200 * GB)


class TestEmpiricalPopularity:
    def test_hit_rate_endpoints_and_monotonicity(self):
        pop = EmpiricalPopularity.from_counts([5, 1, 9, 3, 0])
        values = [pop.hit_rate(p) for p in np.linspace(0, 1, 21)]
        assert values[0] == 0.0
        assert values[-1] == pytest.approx(1.0)
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_head_concentration(self):
        pop = EmpiricalPopularity.from_counts([90, 5, 3, 2])
        assert pop.hit_rate(0.25) == pytest.approx(0.9)

    def test_zero_counts_degrade_to_uniform(self):
        pop = EmpiricalPopularity.from_counts([0, 0, 0, 0])
        assert pop.hit_rate(0.5) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EmpiricalPopularity.from_counts([])
        with pytest.raises(ConfigurationError):
            EmpiricalPopularity.from_counts([1, -2])
        with pytest.raises(ConfigurationError):
            EmpiricalPopularity(weights=(0.2, 0.8))  # not sorted


class TestAdaptivePlacement:
    def test_caches_the_observed_head(self, params):
        placement = AdaptivePlacement(20)
        for _ in range(50):
            placement.observe(7)
        for _ in range(10):
            placement.observe(3)
        decision = placement.replan(params, 10.0)
        assert decision.cached_titles
        assert 7 in decision.cached_titles
        assert decision.migrations_in == decision.cached_titles

    def test_decay_evicts_stale_titles(self, params):
        placement = AdaptivePlacement(20, decay=0.1)
        for _ in range(50):
            placement.observe(0)
        placement.replan(params, 10.0)
        assert 0 in placement.cached_titles
        for _ in range(3):  # several epochs of silence for title 0
            for _ in range(50):
                placement.observe(11)
            decision = placement.replan(params, 10.0)
        assert 11 in decision.cached_titles
        assert 0 in decision.migrations_out or 0 not in decision.cached_titles

    def test_design_matches_live_population(self, params):
        placement = AdaptivePlacement(
            20, prior_weights=np.full(20, 0.05))
        decision = placement.replan(params, 42.0)
        assert decision.design is not None
        assert decision.design.params.n_streams == 42.0
        assert decision.design.total_dram > 0

    def test_prior_weights_shape_checked(self):
        with pytest.raises(ConfigurationError):
            AdaptivePlacement(5, prior_weights=np.ones(3))

    def test_replan_with_budget_reports_capacity(self, params):
        from repro.planner import Configuration, Planner

        planner = Planner()
        placement = AdaptivePlacement(20, planner=planner)
        for _ in range(30):
            placement.observe(4)
        decision = placement.replan(params, 10.0, dram_budget=1 * GB)
        assert decision.capacity is not None
        assert decision.capacity > 0
        # The reported capacity is the planner's own answer for the
        # chosen configuration — a pure cache hit to re-ask.
        expected = planner.capacity(
            params,
            Configuration.cache(decision.policy, decision.popularity),
            1 * GB)
        assert decision.capacity == expected

    def test_replan_without_budget_leaves_capacity_unset(self, params):
        decision = AdaptivePlacement(20).replan(params, 10.0)
        assert decision.capacity is None

    def test_epoch_replans_warm_the_planner(self, params):
        from repro.planner import Planner

        planner = Planner()
        placement = AdaptivePlacement(20, planner=planner)
        for epoch in range(4):
            for _ in range(10):
                placement.observe((4 + epoch) % 20)
            placement.replan(params, 10.0 + epoch, dram_budget=1 * GB)
        stats = planner.stats()
        assert stats["solves_warm"] > 0


class TestRecoveryPlanning:
    def test_healthy_population_survives_device_loss(self, params):
        popularity = ZipfPopularity(alpha=1.0, n_titles=100)
        plan = plan_recovery(params, 50 * MB, 50, popularity, k_active=1)
        assert plan.n_dropped == 0
        assert plan.capacity >= 50
        assert plan.dram_required <= 50 * MB

    def test_bank_loss_falls_back_to_direct_disk(self, params):
        popularity = ZipfPopularity(alpha=1.0, n_titles=100)
        plan = plan_recovery(params, 50 * MB, 10, popularity, k_active=0)
        assert plan.mode == "none"
        assert plan.policy is None

    def test_overload_sheds_to_the_best_rung(self, params):
        popularity = ZipfPopularity(alpha=1.0, n_titles=100)
        plan = plan_recovery(params, 4 * MB, 10_000, popularity, k_active=1)
        assert plan.n_dropped > 0
        assert plan.capacity == 10_000 - plan.n_dropped
        # The chosen rung is the one that saves the most sessions.
        for mode in ("cache", "buffer", "none"):
            alternative = plan_recovery(params, 4 * MB, plan.capacity,
                                        popularity, k_active=1)
            assert alternative.capacity <= plan.capacity or mode != plan.mode

    def test_validation(self, params):
        popularity = ZipfPopularity(alpha=1.0, n_titles=100)
        with pytest.raises(ConfigurationError):
            plan_recovery(params, 1 * MB, -1, popularity, k_active=1)
        with pytest.raises(ConfigurationError):
            plan_recovery(params, 1 * MB, 1, popularity, k_active=1,
                          r_mems_factor=0.0)


class TestAdmissionReconfigure:
    def test_reconfigure_preserves_the_population(self, params):
        controller = AdmissionController(params, 50 * MB,
                                         configuration="buffer")
        for _ in range(20):
            assert controller.try_admit().admitted
        controller.reconfigure(configuration="none")
        assert controller.admitted_streams == 20
        assert controller.configuration == "none"

    def test_reconfigure_changes_the_demand_model(self, params):
        controller = AdmissionController(params, 50 * MB,
                                         configuration="buffer")
        before = controller.dram_required(100)
        controller.reconfigure(configuration="none")
        assert controller.dram_required(100) != before

    def test_capacity_monotone_in_budget(self, params):
        capacities = [
            AdmissionController(params, budget * MB,
                                configuration="buffer").capacity()
            for budget in (5, 20, 80)]
        assert capacities == sorted(capacities)
        assert capacities[0] > 0

    def test_capacity_is_exactly_the_admission_limit(self, params):
        controller = AdmissionController(params, 20 * MB,
                                         configuration="none")
        capacity = controller.capacity()
        assert controller.dram_required(capacity) <= 20 * MB
        assert controller.dram_required(capacity + 1) > 20 * MB

    def test_zero_budget_capacity(self, params):
        controller = AdmissionController(params, 0.0, configuration="none")
        assert controller.capacity() == 0

    def test_cache_reconfigure_requires_policy_and_popularity(self, params):
        controller = AdmissionController(params, 50 * MB,
                                         configuration="none")
        with pytest.raises(ConfigurationError):
            controller.reconfigure(configuration="cache")
        controller.reconfigure(
            configuration="cache", policy=CachePolicy.REPLICATED,
            popularity=ZipfPopularity(alpha=1.0, n_titles=100))
        assert controller.configuration == "cache"


class TestPeriodicEvents:
    def test_every_fires_on_the_grid(self):
        sim = Simulator()
        fired: list[float] = []
        sim.every(10.0, lambda s: fired.append(s.now))
        sim.run(until=35.0)
        assert fired == [10.0, 20.0, 30.0]

    def test_every_with_explicit_start(self):
        sim = Simulator()
        fired: list[float] = []
        sim.every(10.0, lambda s: fired.append(s.now), start=5.0)
        sim.run(until=30.0)
        assert fired == [5.0, 15.0, 25.0]

    def test_every_rejects_nonpositive_interval(self):
        with pytest.raises(SimulationError):
            Simulator().every(0.0, lambda s: None)


class TestBankFailure:
    def test_without_failed_shrinks_the_bank(self):
        bank = MemsBank(MEMS_G3, 4, BankPolicy.ROUND_ROBIN)
        survivor = bank.without_failed(3)
        assert survivor.k == 1
        assert survivor.policy is bank.policy
        assert survivor.aggregate_bandwidth == pytest.approx(
            bank.aggregate_bandwidth / 4)

    def test_losing_the_whole_bank_is_an_error(self):
        bank = MemsBank(MEMS_G3, 2)
        with pytest.raises(ConfigurationError):
            bank.without_failed(2)
        with pytest.raises(ConfigurationError):
            bank.without_failed(-1)


class TestSessionWorkload:
    @pytest.fixture
    def workload(self) -> SessionWorkload:
        return SessionWorkload(arrival_rate=0.1, mean_holding=600.0,
                               n_titles=50,
                               popularity=ZipfPopularity(alpha=1.0,
                                                         n_titles=50))

    def test_offered_load_follows_the_surge(self, workload):
        assert workload.offered_load == pytest.approx(60.0)
        workload.scale_rate(2.0)
        assert workload.offered_load == pytest.approx(120.0)
        with pytest.raises(ConfigurationError):
            workload.scale_rate(0.0)

    def test_rotation_moves_the_head(self, workload):
        head_weight = workload.title_weight(0)
        workload.rotate_popularity(10)
        assert workload.title_weight(10) == pytest.approx(head_weight)
        assert workload.title_weight(0) < head_weight

    def test_sampling_is_deterministic_per_seed(self, workload):
        a = np.random.default_rng(9)
        b = np.random.default_rng(9)
        sequence_a = [workload.next_title(a) for _ in range(50)]
        sequence_b = [workload.next_title(b) for _ in range(50)]
        assert sequence_a == sequence_b

    def test_rotation_shifts_sampled_titles(self, workload):
        before = [workload.next_title(np.random.default_rng(3))
                  for _ in range(1)]
        workload.rotate_popularity(7)
        after = [workload.next_title(np.random.default_rng(3))
                 for _ in range(1)]
        assert after[0] == (before[0] + 7) % 50

    def test_predicted_blocking_wraps_erlang_b(self):
        assert predicted_blocking(0.5, 100.0, 40) == pytest.approx(
            erlang_b(50.0, 40))
