"""MEMS sled data placement (the paper's future-work direction #2)."""

import pytest

from repro.devices.catalog import MEMS_G3
from repro.devices.mems_placement import (
    SledLayout,
    expected_seek_time,
    organ_pipe_layout,
    placement_improvement,
    sequential_layout,
)
from repro.errors import ConfigurationError


class TestSledLayout:
    def test_positions_are_band_centres(self):
        layout = SledLayout(band_of=(0, 2), n_bands=4)
        assert layout.position_of(0) == pytest.approx(0.125)
        assert layout.position_of(1) == pytest.approx(0.625)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SledLayout(band_of=(0, 0), n_bands=4)   # duplicate band
        with pytest.raises(ConfigurationError):
            SledLayout(band_of=(0, 4), n_bands=4)   # out of range
        with pytest.raises(ConfigurationError):
            SledLayout(band_of=(0, 1, 2), n_bands=2)  # too many items


class TestSequentialLayout:
    def test_identity_assignment(self):
        layout = sequential_layout(5)
        assert layout.band_of == (0, 1, 2, 3, 4)
        assert layout.n_bands == 5

    def test_wider_band_space(self):
        layout = sequential_layout(3, n_bands=10)
        assert layout.n_bands == 10


class TestOrganPipe:
    def test_heaviest_item_takes_centre(self):
        layout = organ_pipe_layout([1.0, 10.0, 2.0])
        centre = layout.n_bands // 2
        assert layout.band_of[1] == centre

    def test_alternates_outward_by_weight(self):
        weights = [40.0, 30.0, 20.0, 10.0]
        layout = organ_pipe_layout(weights)
        centre = layout.n_bands // 2
        distances = [abs(layout.band_of[i] - centre)
                     for i in range(len(weights))]
        # Heavier items sit closer to the centre.
        assert distances == sorted(distances)

    def test_all_bands_distinct(self):
        layout = organ_pipe_layout(list(range(20, 0, -1)))
        assert len(set(layout.band_of)) == 20

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            organ_pipe_layout([])
        with pytest.raises(ConfigurationError):
            organ_pipe_layout([-1.0, 2.0])
        with pytest.raises(ConfigurationError):
            organ_pipe_layout([1.0, 2.0, 3.0], n_bands=2)


class TestExpectedSeek:
    def test_single_item_never_seeks(self):
        layout = sequential_layout(1)
        assert expected_seek_time(layout, [1.0], MEMS_G3) == 0.0

    def test_bounded_by_max_access(self):
        weights = [1.0] * 16
        layout = sequential_layout(16)
        expected = expected_seek_time(layout, weights, MEMS_G3)
        assert 0 < expected < MEMS_G3.max_access_time()

    def test_concentrated_weight_reduces_seeks(self):
        layout = sequential_layout(8)
        uniform = expected_seek_time(layout, [1.0] * 8, MEMS_G3)
        skewed = expected_seek_time(layout, [100.0] + [1.0] * 7, MEMS_G3)
        assert skewed < uniform

    def test_weight_length_checked(self):
        with pytest.raises(ConfigurationError):
            expected_seek_time(sequential_layout(3), [1.0, 2.0], MEMS_G3)

    def test_zero_total_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            expected_seek_time(sequential_layout(2), [0.0, 0.0], MEMS_G3)


class TestImprovement:
    def test_skewed_popularity_gains(self):
        weights = [2.0 ** -i for i in range(16)]
        assert placement_improvement(weights, MEMS_G3) > 1.05

    def test_gain_peaks_at_moderate_skew(self):
        # Non-monotone in the skew: at uniform weights every layout is
        # equivalent, and at extreme skew most accesses repeat the same
        # item (no repositioning at all), so layout matters most in
        # between.
        uniform = placement_improvement([1.0] * 16, MEMS_G3)
        moderate = placement_improvement([1.5 ** -i for i in range(16)],
                                         MEMS_G3)
        extreme = placement_improvement([8.0 ** -i for i in range(16)],
                                        MEMS_G3)
        assert moderate > extreme > uniform * (1 - 1e-9)
        assert moderate > 1.05 and extreme > 1.0

    def test_uniform_weights_no_regression(self):
        # Organ-pipe never loses to the sequential baseline.
        assert placement_improvement([1.0] * 12, MEMS_G3) >= 1.0 - 1e-9
