"""Hybrid buffer+cache partitioning of the MEMS bank (future work)."""

import pytest

from repro.core.cache_model import CachePolicy
from repro.core.hybrid import (
    hybrid_split_curve,
    hybrid_streams_supported,
    hybrid_throughput,
    optimize_hybrid_split,
)
from repro.core.parameters import SystemParameters
from repro.core.popularity import BimodalPopularity
from repro.errors import ConfigurationError
from repro.units import GB, KB


@pytest.fixture
def params() -> SystemParameters:
    return SystemParameters.table3_default(n_streams=1, bit_rate=100 * KB,
                                           k=4)


class TestHybridThroughput:
    def test_pure_buffer_split(self, params):
        design = hybrid_throughput(params, k_cache=0,
                                   policy=CachePolicy.REPLICATED,
                                   popularity=BimodalPopularity(5, 95),
                                   dram_budget=2 * GB)
        assert design.hit_rate == 0.0
        assert design.k_buffer == 4
        assert design.max_streams > 0

    def test_pure_cache_split(self, params):
        design = hybrid_throughput(params, k_cache=4,
                                   policy=CachePolicy.STRIPED,
                                   popularity=BimodalPopularity(5, 95),
                                   dram_budget=2 * GB)
        assert design.k_buffer == 0
        assert design.hit_rate > 0

    def test_k_cache_bounds(self, params):
        with pytest.raises(ConfigurationError):
            hybrid_throughput(params, k_cache=5,
                              policy=CachePolicy.STRIPED,
                              popularity=BimodalPopularity(5, 95),
                              dram_budget=1 * GB)

    def test_requires_finite_sizes(self, params):
        with pytest.raises(ConfigurationError):
            hybrid_throughput(params.replace(size_mems=None), k_cache=2,
                              policy=CachePolicy.STRIPED,
                              popularity=BimodalPopularity(5, 95),
                              dram_budget=1 * GB)


class TestOptimizer:
    def test_optimizer_at_least_as_good_as_pure_splits(self, params):
        popularity = BimodalPopularity(5, 95)
        best = optimize_hybrid_split(params, policy=CachePolicy.STRIPED,
                                     popularity=popularity,
                                     dram_budget=2 * GB)
        curve = hybrid_split_curve(params, policy=CachePolicy.STRIPED,
                                   popularity=popularity,
                                   dram_budget=2 * GB)
        assert best.max_streams == pytest.approx(
            max(d.max_streams for d in curve))

    def test_skewed_popularity_favours_some_cache(self, params):
        best = optimize_hybrid_split(params, policy=CachePolicy.STRIPED,
                                     popularity=BimodalPopularity(1, 99),
                                     dram_budget=2 * GB)
        assert best.k_cache >= 1

    def test_uniform_popularity_favours_pure_buffer(self, params):
        best = optimize_hybrid_split(params, policy=CachePolicy.STRIPED,
                                     popularity=BimodalPopularity(50, 50),
                                     dram_budget=2 * GB)
        # At uniform popularity the cache cannot earn its capacity: the
        # optimizer leans to buffering (allows at most one cache device).
        assert best.k_cache <= 1

    def test_curve_length(self, params):
        curve = hybrid_split_curve(params, policy=CachePolicy.REPLICATED,
                                   popularity=BimodalPopularity(5, 95),
                                   dram_budget=2 * GB)
        assert len(curve) == params.k + 1
        assert [d.k_cache for d in curve] == [0, 1, 2, 3, 4]

    def test_streams_supported_floor(self, params):
        best = optimize_hybrid_split(params, policy=CachePolicy.STRIPED,
                                     popularity=BimodalPopularity(5, 95),
                                     dram_budget=2 * GB)
        assert hybrid_streams_supported(best) == int(best.max_streams + 1e-9)
