"""Figure 7 sensitivity machinery."""

import numpy as np
import pytest

from repro.core.parameters import SystemParameters
from repro.core.sensitivity import (
    cost_reduction_at_ratio,
    cost_reduction_grid,
    latency_ratio_sweep,
)
from repro.errors import ConfigurationError
from repro.units import GB, KB, MB


@pytest.fixture
def base() -> SystemParameters:
    return SystemParameters.table3_default(n_streams=1, bit_rate=100 * KB,
                                           k=2)


class TestSinglePoint:
    def test_ratio_applied(self, base):
        point = cost_reduction_at_ratio(base, 5.0, 5 * GB)
        assert point.latency_ratio == 5.0
        assert point.n_streams > 0
        assert point.dram_with < point.dram_without

    def test_percent_reduction_consistent(self, base):
        point = cost_reduction_at_ratio(base, 5.0, 5 * GB)
        expected = 100 * (point.cost_without - point.cost_with) \
            / point.cost_without
        assert point.percent_reduction == pytest.approx(expected)

    def test_mems_bank_cost_included(self, base):
        point = cost_reduction_at_ratio(base, 5.0, 5 * GB)
        assert point.cost_with >= base.mems_bank_cost

    def test_dram_cap_respected(self, base):
        point = cost_reduction_at_ratio(base, 5.0, 5 * GB)
        assert point.dram_without <= 5 * GB * (1 + 1e-6)

    def test_requires_finite_mems(self, base):
        with pytest.raises(ConfigurationError):
            cost_reduction_at_ratio(base.replace(size_mems=None), 5.0,
                                    5 * GB)

    def test_dram_capacity_positive(self, base):
        with pytest.raises(ConfigurationError):
            cost_reduction_at_ratio(base, 5.0, 0.0)


class TestSweep:
    def test_reduction_improves_with_ratio(self, base):
        points = latency_ratio_sweep(base, [1.0, 3.0, 5.0, 8.0, 10.0],
                                     5 * GB)
        reductions = [p.percent_reduction for p in points]
        assert reductions == sorted(reductions)

    def test_reduction_capped_below_full_budget(self, base):
        # The $20 bank is sunk cost: reduction can never reach 100%.
        points = latency_ratio_sweep(base, [10.0], 5 * GB)
        assert points[0].percent_reduction < 100.0

    def test_paper_shape_low_rates_save_most(self):
        # Design principle (i): buffer only low and medium bit-rates.
        reductions = {}
        for name, rate in (("mp3", 10 * KB), ("DVD", 1 * MB),
                           ("HDTV", 10 * MB)):
            b = SystemParameters.table3_default(n_streams=1, bit_rate=rate,
                                                k=2)
            reductions[name] = cost_reduction_at_ratio(
                b, 5.0, 5 * GB).percent_reduction
        assert reductions["mp3"] > 50
        assert reductions["DVD"] > 50
        assert reductions["HDTV"] < reductions["DVD"]

    def test_empty_ratio_list_rejected(self, base):
        with pytest.raises(ConfigurationError):
            latency_ratio_sweep(base, [], 5 * GB)


class TestGrid:
    def test_shape_and_orientation(self, base):
        bit_rates = np.array([10 * KB, 1 * MB])
        ratios = np.array([1.0, 5.0, 10.0])
        grid = cost_reduction_grid(base, bit_rates, ratios, 5 * GB)
        assert grid.shape == (2, 3)
        # Rows vary by bit-rate, columns by ratio; within a row the
        # reduction grows with the ratio.
        assert grid[0, 0] <= grid[0, -1]

    def test_contains_paper_regions(self, base):
        # At low bit-rate and high ratio the reduction exceeds 50%.
        bit_rates = np.array([10 * KB])
        ratios = np.array([8.0])
        grid = cost_reduction_grid(base, bit_rates, ratios, 5 * GB)
        assert grid[0, 0] > 50
