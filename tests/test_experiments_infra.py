"""Experiment infrastructure: result containers, ASCII charts, CLI."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.ascii_plot import render_chart, render_contours
from repro.experiments.base import ExperimentResult, Series, Table
from repro.experiments.cli import main


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            Series(label="x", x=[1, 2], y=[1])


class TestTable:
    def test_row_width_checked(self):
        with pytest.raises(ConfigurationError):
            Table(columns=["a", "b"], rows=[[1]])

    def test_render_aligns_columns(self):
        table = Table(columns=["name", "value"],
                      rows=[["alpha", 1.0], ["b", 123456.789]])
        rendered = table.render()
        lines = rendered.splitlines()
        assert len({len(line) for line in lines if line.strip()}) == 1
        assert "alpha" in rendered
        assert "1.235e+05" in rendered  # compact float formatting


class TestExperimentResult:
    @pytest.fixture
    def result(self) -> ExperimentResult:
        return ExperimentResult(
            experiment_id="demo", title="Demo", x_label="N", y_label="GB",
            series=[Series(label="a", x=[1.0, 10.0], y=[2.0, 20.0])],
            log_x=True, log_y=True)

    def test_csv_long_format(self, result):
        csv_text = result.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "series,N,GB"
        assert len(lines) == 3

    def test_csv_table_format(self):
        result = ExperimentResult(
            experiment_id="t", title="T",
            table=Table(columns=["c1"], rows=[["v"]]))
        assert result.to_csv().splitlines()[0] == "c1"

    def test_write_csv(self, result, tmp_path):
        path = result.write_csv(tmp_path / "out.csv")
        assert path.read_text() == result.to_csv()

    def test_render_includes_title_and_legend(self, result):
        text = result.render()
        assert "demo" in text
        assert "a" in text


class TestAsciiChart:
    def test_basic_chart_dimensions(self):
        result = ExperimentResult(
            experiment_id="d", title="d",
            series=[Series(label="s", x=[0.0, 1.0], y=[0.0, 1.0])])
        chart = render_chart(result, width=40, height=10)
        # 10 grid rows + axis + labels + legend.
        assert len(chart.splitlines()) >= 12

    def test_log_scale_drops_nonpositive_points(self):
        result = ExperimentResult(
            experiment_id="d", title="d", log_y=True,
            series=[Series(label="s", x=[1.0, 2.0], y=[0.0, 10.0])])
        chart = render_chart(result)
        assert "(no drawable points)" not in chart

    def test_empty_series(self):
        result = ExperimentResult(experiment_id="d", title="d",
                                  series=[Series(label="s", x=[], y=[])])
        assert "(no drawable points)" in render_chart(result)

    def test_size_validation(self):
        result = ExperimentResult(experiment_id="d", title="d")
        with pytest.raises(ConfigurationError):
            render_chart(result, width=5, height=5)

    def test_contours_band_markers(self):
        grid = [[10.0, 60.0], [30.0, 90.0]]
        text = render_contours(grid, [1.0, 2.0], [1.0, 2.0], [25.0, 75.0])
        assert "." in text  # below first level
        assert "1" in text and "2" in text

    def test_contours_validation(self):
        with pytest.raises(ConfigurationError):
            render_contours([], [], [], [25.0])
        with pytest.raises(ConfigurationError):
            render_contours([[1.0]], [1.0], [1.0], list(range(10)))


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure6a" in out and "table1" in out

    def test_run_single(self, capsys):
        assert main(["run", "table3"]) == 0
        out = capsys.readouterr().out
        assert "FutureDisk" in out

    def test_run_with_csv(self, capsys, tmp_path):
        target = tmp_path / "fig2.csv"
        assert main(["run", "figure2", "--csv", str(target)]) == 0
        assert target.exists()
        assert "MEMS" in target.read_text()

    def test_unknown_experiment_exits_nonzero(self, capsys):
        assert main(["run", "figure99"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_design_requirements_report(self, capsys):
        assert main(["design", "--streams", "500", "--bitrate", "100"]) == 0
        out = capsys.readouterr().out
        assert "plain disk-to-DRAM" in out
        assert "MEMS buffer" in out
        assert "MEMS cache (replicated)" in out
        assert "Throughput" not in out  # no budget given

    def test_design_with_budget_reports_throughput(self, capsys):
        assert main(["design", "--streams", "500", "--bitrate", "100",
                     "--budget", "150"]) == 0
        out = capsys.readouterr().out
        assert "Throughput at a $150 total budget" in out
        assert "<- requested" in out

    def test_design_popularity_knob(self, capsys):
        assert main(["design", "--streams", "100", "--bitrate", "1000",
                     "--popularity", "1:99", "--devices", "4"]) == 0
        out = capsys.readouterr().out
        assert "k=4" in out

    def test_design_infeasible_load_reports_error(self, capsys):
        # 1000 HDTV streams exceed the disk's bandwidth outright.
        assert main(["design", "--streams", "1000",
                     "--bitrate", "10000"]) == 1
        assert "error:" in capsys.readouterr().err
