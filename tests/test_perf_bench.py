"""Benchmark harness: records, persistence, and the regression gate."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.cli import main
from repro.perf.bench import (
    BENCH_SCHEMA_VERSION,
    METRIC_DIRECTIONS,
    WORKLOADS,
    BenchRecord,
    compare_records,
    load_records,
    run_workloads,
    write_records,
)


def _slowed(record: BenchRecord, factor: float = 1.5) -> BenchRecord:
    """A synthetic slowdown: times up, rates down by ``factor``."""
    metrics = {}
    for name, value in record.metrics.items():
        direction = METRIC_DIRECTIONS.get(name)
        if direction == "lower":
            metrics[name] = value * factor
        elif direction == "higher":
            metrics[name] = value / factor
        else:
            metrics[name] = value
    return BenchRecord(name=record.name, preset=record.preset,
                       metrics=metrics)


class TestBenchRecord:
    def test_roundtrip(self):
        record = BenchRecord(name="event_loop", preset="tiny",
                             metrics={"wall_time_s": 0.5,
                                      "events_per_sec": 1e6})
        payload = json.loads(record.to_json())
        assert payload["schema"] == BENCH_SCHEMA_VERSION
        assert BenchRecord.from_dict(payload) == record

    def test_unknown_schema_rejected(self):
        with pytest.raises(ConfigurationError):
            BenchRecord.from_dict({"schema": 99, "name": "x",
                                   "preset": "tiny", "metrics": {}})

    def test_filename(self):
        record = BenchRecord(name="planner_cold", preset="tiny", metrics={})
        assert record.filename == "BENCH_planner_cold.json"


class TestRunWorkloads:
    def test_event_loop_tiny(self):
        (record,) = run_workloads(["event_loop"], preset="tiny")
        assert record.name == "event_loop"
        assert record.preset == "tiny"
        assert record.metrics["wall_time_s"] > 0
        assert record.metrics["events_per_sec"] > 0
        assert record.metrics["events_executed"] >= 5_000

    def test_planner_workloads_tiny(self):
        cold, warm = run_workloads(["planner_cold", "planner_warm"],
                                   preset="tiny")
        assert cold.metrics["planner_hit_rate"] == 0.0
        assert warm.metrics["planner_hit_rate"] == 1.0
        assert warm.metrics["solves_per_sec"] > cold.metrics["solves_per_sec"]

    def test_repeats_keep_best(self):
        (record,) = run_workloads(["event_loop"], preset="tiny", repeats=2)
        assert record.metrics["wall_time_s"] > 0

    def test_default_selection_is_every_workload(self):
        assert set(WORKLOADS) == {"event_loop", "figure6_sweep",
                                  "batch_sweep", "runtime_scenario",
                                  "million_sessions", "planner_cold",
                                  "planner_warm", "admission_storm",
                                  "replan_epochs", "flash_crowd",
                                  "service_churn", "lint"}

    def test_runtime_scenario_tiny(self):
        (record,) = run_workloads(["runtime_scenario"], preset="tiny")
        # The gated rate counts session-lifecycle events, not the
        # table core's handful of control-timer calendar entries.
        assert record.metrics["session_events"] > 0
        assert (record.metrics["events_per_sec"]
                == pytest.approx(record.metrics["session_events"]
                                 / record.metrics["wall_time_s"]))
        assert (record.metrics["events_executed"]
                < record.metrics["session_events"])

    def test_million_sessions_tiny(self):
        (record,) = run_workloads(["million_sessions"], preset="tiny")
        assert record.metrics["sessions"] > 1_000
        # The torrent shape keeps the population far under capacity:
        # every arrival admits.
        assert record.metrics["sessions"] == record.metrics["arrivals"]
        assert record.metrics["sessions_per_sec"] > 0

    def test_batch_sweep_tiny(self):
        (record,) = run_workloads(["batch_sweep"], preset="tiny")
        assert record.metrics["wall_time_s"] > 0
        assert record.metrics["solves_per_sec"] > 0
        assert record.metrics["demand_points"] >= 10_000
        assert record.metrics["inverse_lanes"] >= 16

    def test_admission_storm_tiny(self):
        (record,) = run_workloads(["admission_storm"], preset="tiny")
        assert record.metrics["probe_ratio"] >= 5.0
        assert record.metrics["planner_probes_warm_run"] > 0
        assert (record.metrics["planner_probes_cold_run"]
                > record.metrics["planner_probes_warm_run"])
        assert record.metrics["admissions"] > 0
        assert record.metrics["solves_per_sec"] > 0

    def test_replan_epochs_tiny(self):
        (record,) = run_workloads(["replan_epochs"], preset="tiny")
        assert record.metrics["probe_ratio"] > 1.0
        assert record.metrics["planner_probes_warm_run"] > 0
        assert record.metrics["solves_per_sec"] > 0

    def test_flash_crowd_tiny(self):
        (record,) = run_workloads(["flash_crowd"], preset="tiny")
        for key in ("wall_time_s", "events_per_sec", "fanout_ratio",
                    "sessions_prefix", "sessions_whole", "batched_joins",
                    "io_streams", "prefix_probes_cold_run",
                    "prefix_probes_warm_run", "probe_ratio"):
            assert key in record.metrics
        assert record.metrics["fanout_ratio"] > 1.0
        assert record.metrics["batched_joins"] > 0
        # Hinted epoch replans must replay warm, and cheaper than cold.
        assert record.metrics["prefix_probes_warm_run"] > 0
        assert (record.metrics["prefix_probes_warm_run"]
                < record.metrics["prefix_probes_cold_run"])

    def test_service_churn_tiny(self):
        (record,) = run_workloads(["service_churn"], preset="tiny")
        assert record.metrics["ops"] > 0
        assert record.metrics["ops_per_sec"] > 0
        # The churn drives real EVENT_FLOW traffic: admits parked in
        # replan windows must get finalized by replan-done events.
        assert record.metrics["pending_finalized"] > 0
        assert record.metrics["events_published"] >= record.metrics["ops"]

    def test_lint_tiny(self):
        (record,) = run_workloads(["lint"], preset="tiny")
        assert record.metrics["wall_time_s"] > 0
        assert record.metrics["files_parsed_cold"] > 0
        assert (record.metrics["files_checked"]
                == record.metrics["files_parsed_cold"])
        # The warm pass over an untouched tree replays entirely from
        # the content-hash cache: nothing is re-parsed.
        assert record.metrics["files_parsed_warm"] == 0.0
        assert (record.metrics["cache_hits_warm"]
                == record.metrics["files_checked"])
        # The repository lints clean against its own rules.
        assert record.metrics["findings"] == 0.0

    def test_unknown_workload(self):
        with pytest.raises(ConfigurationError):
            run_workloads(["nope"], preset="tiny")

    def test_unknown_preset(self):
        with pytest.raises(ConfigurationError):
            run_workloads(["event_loop"], preset="huge")

    def test_repeats_validated(self):
        with pytest.raises(ConfigurationError):
            run_workloads(["event_loop"], preset="tiny", repeats=0)


class TestPersistence:
    def test_write_and_load(self, tmp_path):
        records = [BenchRecord(name="event_loop", preset="tiny",
                               metrics={"wall_time_s": 0.25}),
                   BenchRecord(name="planner_cold", preset="tiny",
                               metrics={"solves_per_sec": 100.0})]
        paths = write_records(records, tmp_path)
        assert sorted(p.name for p in paths) == [
            "BENCH_event_loop.json", "BENCH_planner_cold.json"]
        loaded = load_records(tmp_path)
        assert loaded == {record.name: record for record in records}

    def test_load_single_file(self, tmp_path):
        record = BenchRecord(name="event_loop", preset="tiny",
                             metrics={"wall_time_s": 0.25})
        (path,) = write_records([record], tmp_path)
        assert load_records(path) == {"event_loop": record}

    def test_load_empty_dir_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_records(tmp_path)

    def test_load_missing_path_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_records(tmp_path / "nope")


class TestCompareRecords:
    BASE = {"event_loop": BenchRecord(
        name="event_loop", preset="tiny",
        metrics={"wall_time_s": 1.0, "events_per_sec": 1e6,
                 "events_executed": 5_000.0})}

    def test_self_comparison_is_clean(self):
        comparisons, regressions = compare_records(self.BASE, self.BASE)
        assert len(comparisons) == 2  # the two gated metrics
        assert regressions == []

    def test_synthetic_slowdown_flagged(self):
        slow = {name: _slowed(record)
                for name, record in self.BASE.items()}
        _, regressions = compare_records(slow, self.BASE,
                                         tolerance_pct=10.0)
        flagged = {(r.workload, r.metric) for r in regressions}
        assert ("event_loop", "wall_time_s") in flagged
        assert ("event_loop", "events_per_sec") in flagged

    def test_within_tolerance_passes(self):
        mild = {name: _slowed(record, factor=1.05)
                for name, record in self.BASE.items()}
        _, regressions = compare_records(mild, self.BASE,
                                         tolerance_pct=10.0)
        assert regressions == []

    def test_improvement_never_flagged(self):
        fast = {name: _slowed(record, factor=0.5)  # 2x faster
                for name, record in self.BASE.items()}
        _, regressions = compare_records(fast, self.BASE,
                                         tolerance_pct=0.0)
        assert regressions == []

    def test_disjoint_workloads_ignored(self):
        other = {"planner_cold": BenchRecord(
            name="planner_cold", preset="tiny",
            metrics={"wall_time_s": 9.0})}
        comparisons, regressions = compare_records(other, self.BASE)
        assert comparisons == [] and regressions == []

    def test_informational_metrics_not_gated(self):
        worse_info = dict(self.BASE["event_loop"].metrics)
        worse_info["events_executed"] *= 100
        current = {"event_loop": BenchRecord(
            name="event_loop", preset="tiny", metrics=worse_info)}
        _, regressions = compare_records(current, self.BASE,
                                         tolerance_pct=0.0)
        assert regressions == []

    def test_tolerance_validated(self):
        with pytest.raises(ConfigurationError):
            compare_records(self.BASE, self.BASE, tolerance_pct=-1.0)


class TestBenchCli:
    def _record(self, tmp_path, subdir):
        out = tmp_path / subdir
        code = main(["bench", "--preset", "tiny", "--workload",
                     "event_loop", "--out", str(out)])
        assert code == 0
        return out

    def test_record_emits_schema_versioned_json(self, tmp_path):
        out = self._record(tmp_path, "run")
        payload = json.loads((out / "BENCH_event_loop.json").read_text())
        assert payload["schema"] == BENCH_SCHEMA_VERSION
        assert payload["name"] == "event_loop"
        assert payload["metrics"]["wall_time_s"] > 0

    def test_replay_self_comparison_exits_zero(self, tmp_path):
        out = self._record(tmp_path, "run")
        # Replaying the recorded files against themselves is exact, so
        # the gate must pass at any tolerance — the non-flaky CI shape.
        assert main(["bench", "--replay", str(out), "--compare",
                     str(out), "--tolerance", "0"]) == 0

    def test_synthetic_slowdown_exits_nonzero(self, tmp_path):
        out = self._record(tmp_path, "run")
        slow_dir = tmp_path / "slow"
        slowed = [_slowed(record)  # 50% slower than the baseline
                  for record in load_records(out).values()]
        write_records(slowed, slow_dir)
        assert main(["bench", "--replay", str(slow_dir), "--compare",
                     str(out), "--tolerance", "10"]) == 1

    def test_unknown_workload_is_an_error(self, tmp_path):
        assert main(["bench", "--preset", "tiny", "--workload",
                     "nope"]) == 1
