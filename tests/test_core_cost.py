"""Cost models: Equations 1, 2 and 9, and the comparison helpers."""

import pytest

from repro.core.cache_model import CachePolicy
from repro.core.cost import (
    buffering_cost_with_mems,
    buffering_cost_without_mems,
    cache_cost_with_mems,
    compare_buffer_costs,
    optimal_disk_cycle_per_byte_cost,
)
from repro.core.buffer_model import design_mems_buffer, disk_cycle_bounds
from repro.core.parameters import SystemParameters
from repro.core.popularity import BimodalPopularity
from repro.core.theorems import min_buffer_disk_dram
from repro.errors import ConfigurationError
from repro.units import KB, MB


class TestEquation1:
    def test_equals_n_times_cdram_times_buffer(self, simple_params):
        expected = (10 * simple_params.c_dram
                    * min_buffer_disk_dram(simple_params))
        assert buffering_cost_without_mems(simple_params) == \
            pytest.approx(expected)

    def test_zero_streams_free(self, simple_params):
        assert buffering_cost_without_mems(
            simple_params.replace(n_streams=0)) == 0.0


class TestEquation2:
    def test_bank_plus_dram(self, simple_params):
        design = design_mems_buffer(simple_params, quantise=False)
        expected = (simple_params.mems_bank_cost
                    + 10 * simple_params.c_dram * design.s_mems_dram)
        assert buffering_cost_with_mems(simple_params) == \
            pytest.approx(expected)

    def test_charged_per_device_even_if_underused(self, simple_params):
        # Section 4: the bank costs k*C_mems*Size_mems regardless of use.
        cheap_load = simple_params.replace(n_streams=1)
        cost = buffering_cost_with_mems(cheap_load)
        assert cost >= cheap_load.mems_bank_cost

    def test_requires_finite_size(self, simple_params):
        with pytest.raises(ConfigurationError):
            buffering_cost_with_mems(simple_params.replace(size_mems=None))


class TestEquation9:
    def test_cache_cost_components(self, simple_params):
        params = simple_params.replace(k=2, n_streams=50, r_disk=200 * MB)
        popularity = BimodalPopularity(10, 90)
        from repro.core.cache_model import design_mems_cache

        design = design_mems_cache(params, CachePolicy.STRIPED, popularity)
        expected = params.mems_bank_cost + params.c_dram * design.total_dram
        assert cache_cost_with_mems(params, CachePolicy.STRIPED,
                                    popularity) == pytest.approx(expected)


class TestPerDeviceComparison:
    def test_headline_case_paper_section_511(self):
        # High utilisation at a low bit-rate: the MEMS buffer wins big.
        params = SystemParameters.table3_default(n_streams=10_000,
                                                 bit_rate=10 * KB, k=2)
        comparison = compare_buffer_costs(params)
        assert comparison.is_cost_effective
        assert comparison.percent_reduction > 50
        assert comparison.dram_reduction_factor > 5

    def test_low_load_mems_not_worth_it(self):
        params = SystemParameters.table3_default(n_streams=10,
                                                 bit_rate=10 * KB, k=2)
        comparison = compare_buffer_costs(params)
        assert not comparison.is_cost_effective
        assert comparison.savings < 0

    def test_requires_finite_size(self, simple_params):
        with pytest.raises(ConfigurationError):
            compare_buffer_costs(simple_params.replace(size_mems=None))

    def test_accessors_consistent(self, simple_params):
        comparison = compare_buffer_costs(simple_params)
        assert comparison.savings == pytest.approx(
            comparison.cost_without - comparison.cost_with)
        assert comparison.percent_reduction == pytest.approx(
            100 * comparison.savings / comparison.cost_without)


class TestPerByteComparison:
    def test_optimal_cycle_exceeds_floor(self):
        params = SystemParameters.table3_default(
            n_streams=5_000, bit_rate=10 * KB, k=2,
            size_mems_unlimited=True)
        from repro.core.buffer_model import mems_cycle_floor

        t_star = optimal_disk_cycle_per_byte_cost(params)
        assert t_star > mems_cycle_floor(params)

    def test_optimal_cycle_is_cost_minimum(self):
        params = SystemParameters.table3_default(
            n_streams=5_000, bit_rate=10 * KB, k=2,
            size_mems_unlimited=True)
        t_star = optimal_disk_cycle_per_byte_cost(params)
        lower, _ = disk_cycle_bounds(params)
        t_star = max(t_star, lower)

        def total_cost(t):
            design = design_mems_buffer(params, t_disk=t, quantise=False)
            mems_bytes = 2 * params.n_streams * params.bit_rate * t
            return (params.c_mems * mems_bytes
                    + params.c_dram * design.total_dram)

        at_star = total_cost(t_star)
        assert at_star <= total_cost(t_star * 1.3) + 1e-9
        if t_star > lower:
            assert at_star <= total_cost(max(t_star * 0.7, lower)) + 1e-9

    def test_figure8_scale(self):
        # Section 5.1.2: tens of thousands of dollars for mp3 near
        # full utilisation.
        params = SystemParameters.table3_default(n_streams=29_100,
                                                 bit_rate=10 * KB, k=2)
        comparison = compare_buffer_costs(params, pricing="per_byte")
        assert comparison.savings > 5_000

    def test_free_mems_rejected(self, simple_params):
        with pytest.raises(ConfigurationError):
            optimal_disk_cycle_per_byte_cost(simple_params.replace(c_mems=0))

    def test_unknown_pricing_rejected(self, simple_params):
        with pytest.raises(ConfigurationError):
            compare_buffer_costs(simple_params, pricing="free")
