"""Tests for :mod:`repro.analysis` — the ``mems-repro lint`` gate.

Each checker runs against a deliberately-broken fixture under
``tests/analysis_fixtures/`` and must report exactly the expected
findings; the suite also pins the suppression semantics, the reporter
schemas and exit codes, and — the gate's own gate — that the shipped
``src/`` tree is clean.
"""

import io
import json
from pathlib import Path

import pytest

from repro.analysis import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    all_rules,
    analyze_file,
    analyze_paths,
    get_checker,
    render_json,
    render_text,
)
from repro.analysis.base import Finding
from repro.analysis.cli import run_lint
from repro.analysis.engine import PARSE_ERROR_RULE, parse_suppressions
from repro.errors import ConfigurationError

REPO = Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "analysis_fixtures"


def findings_for(fixture, rule=None):
    rules = [rule] if rule else None
    return analyze_paths([FIXTURES / fixture], rules=rules)


class TestRegistry:
    def test_all_six_rules_registered(self):
        assert set(all_rules()) >= {
            "no-bare-assert", "determinism", "unit-literals",
            "no-shim-imports", "float-equality", "exception-hygiene"}

    def test_unknown_rule_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError):
            get_checker("no-such-rule")


class TestNoBareAssert:
    def test_flags_every_assert(self):
        found = findings_for("no_bare_assert.py", rule="no-bare-assert")
        assert [f.line for f in found] == [5, 6]
        assert all(f.rule == "no-bare-assert" for f in found)
        assert "python -O" in found[0].message

    def test_message_names_the_condition(self):
        found = findings_for("no_bare_assert.py", rule="no-bare-assert")
        assert "value is not None" in found[0].message


class TestDeterminism:
    def test_flags_clocks_and_global_rng(self):
        found = findings_for("runtime/wall_clock.py", rule="determinism")
        assert [f.line for f in found] == [13, 14, 15, 16]
        messages = " / ".join(f.message for f in found)
        assert "time.time" in messages
        assert "datetime" in messages
        assert "random" in messages
        assert "numpy.random.uniform" in messages

    def test_default_rng_is_allowed(self):
        found = findings_for("runtime/wall_clock.py", rule="determinism")
        assert not any("default_rng(7)" in f.message for f in found)

    def test_rule_is_path_scoped(self):
        checker = get_checker("determinism")
        assert checker.applies_to(Path("src/repro/runtime/runtime.py"))
        assert not checker.applies_to(Path("src/repro/core/theorems.py"))

    def test_perf_layer_is_in_scope(self):
        checker = get_checker("determinism")
        assert checker.applies_to(Path("src/repro/perf/bench.py"))
        assert checker.applies_to(Path("src/repro/perf/parallel.py"))

    def test_flags_pools_and_clocks_in_perf(self):
        found = findings_for("perf/pool_and_clock.py", rule="determinism")
        assert [f.line for f in found] == [13, 14, 16, 18]
        messages = " / ".join(f.message for f in found)
        assert "time.perf_counter" in messages
        assert "ProcessPoolExecutor" in messages
        assert "multiprocessing.Pool" in messages
        assert "sweep_map" in messages

    def test_planner_incremental_is_file_scoped(self):
        checker = get_checker("determinism")
        assert checker.applies_to(Path("src/repro/planner/incremental.py"))
        # The rest of the planner package stays out of scope.
        assert not checker.applies_to(Path("src/repro/planner/solver.py"))
        assert not checker.applies_to(Path("src/repro/planner/search.py"))

    def test_planner_batch_is_file_scoped(self):
        checker = get_checker("determinism")
        assert checker.applies_to(Path("src/repro/planner/batch.py"))

    def test_flags_breaches_in_planner_batch(self):
        found = findings_for("planner/batch.py", rule="determinism")
        assert [f.line for f in found] == [14, 15]
        messages = " / ".join(f.message for f in found)
        assert "numpy.random.uniform" in messages
        assert "time.monotonic" in messages
        # The sanctioned suppression on the reviewed escape holds.
        assert not any("perf_counter" in f.message for f in found)

    def test_flags_breaches_in_planner_incremental(self):
        found = findings_for("planner/incremental.py", rule="determinism")
        assert [f.line for f in found] == [12, 13]
        messages = " / ".join(f.message for f in found)
        assert "random" in messages
        assert "time.monotonic" in messages

    def test_planner_incremental_suppression_works(self):
        found = findings_for("planner/incremental.py", rule="determinism")
        assert not any("perf_counter" in f.message for f in found)

    def test_vod_layer_is_in_scope(self):
        checker = get_checker("determinism")
        assert checker.applies_to(Path("src/repro/vod/multicast.py"))
        assert checker.applies_to(Path("src/repro/vod/placement.py"))

    def test_flags_clocks_and_global_rng_in_vod(self):
        found = findings_for("vod/wall_clock.py", rule="determinism")
        assert [f.line for f in found] == [14, 15, 16]
        messages = " / ".join(f.message for f in found)
        assert "time.monotonic" in messages
        assert "random" in messages
        assert "numpy.random.uniform" in messages
        assert not any("default_rng(11)" in f.message for f in found)

    def test_service_layer_is_in_scope(self):
        checker = get_checker("determinism")
        assert checker.applies_to(Path("src/repro/service/facade.py"))
        assert checker.applies_to(Path("src/repro/service/events.py"))

    def test_flags_clocks_and_global_rng_in_service(self):
        found = findings_for("service/wall_clock.py", rule="determinism")
        assert [f.line for f in found] == [16, 17, 18]
        messages = " / ".join(f.message for f in found)
        assert "time.time" in messages
        assert "random" in messages
        assert "numpy.random.uniform" in messages
        assert not any("default_rng(7)" in f.message for f in found)

    def test_sanctioned_perf_escapes_are_suppressed_inline(self):
        # The real pool (parallel.py) and timer (bench.py) carry
        # reviewed suppressions; the modules must scan clean.
        perf = REPO / "src" / "repro" / "perf"
        found = analyze_paths([perf], rules=["determinism"])
        assert found == []


class TestUnitLiterals:
    def test_flags_magic_spellings_only(self):
        found = findings_for("unit_literals.py", rule="unit-literals")
        assert [f.line for f in found] == [7, 8, 9, 10, 11]

    def test_decimal_magnitudes_name_the_constant(self):
        found = findings_for("unit_literals.py", rule="unit-literals")
        by_line = {f.line: f.message for f in found}
        assert "repro.units.MB" in by_line[7]
        assert "repro.units.MB" in by_line[8]
        assert "binary-convention" in by_line[9]
        assert "1 << 20" in by_line[10]
        assert "repro.units.KB" in by_line[11]

    def test_units_module_is_exempt(self):
        checker = get_checker("unit-literals")
        assert not checker.applies_to(Path("src/repro/units.py"))
        assert checker.applies_to(Path("src/repro/core/theorems.py"))


class TestNoShimImports:
    def test_flags_all_three_import_forms(self):
        found = findings_for("shim_imports.py", rule="no-shim-imports")
        assert [f.line for f in found] == [2, 3, 4]
        messages = " / ".join(f.message for f in found)
        assert "repro.planner.throughput" in messages
        assert "repro.planner.hybrid" in messages

    def test_shim_modules_themselves_are_exempt(self):
        checker = get_checker("no-shim-imports")
        assert not checker.applies_to(Path("src/repro/core/capacity.py"))
        assert not checker.applies_to(Path("src/repro/core/hybrid.py"))
        assert checker.applies_to(Path("src/repro/core/regions.py"))


class TestFloatEquality:
    def test_flags_float_comparisons(self):
        found = findings_for("core/float_eq.py", rule="float-equality")
        assert [f.line for f in found] == [7, 8, 9]

    def test_inf_comparison_suggests_isinf(self):
        found = findings_for("core/float_eq.py", rule="float-equality")
        by_line = {f.line: f.message for f in found}
        assert "math.isclose" in by_line[7]
        assert "math.isinf" in by_line[8]

    def test_integer_comparisons_pass(self):
        found = findings_for("core/float_eq.py", rule="float-equality")
        assert all(f.line <= 9 for f in found)

    def test_experiments_layer_is_in_scope(self):
        checker = get_checker("float-equality")
        assert checker.applies_to(Path("src/repro/experiments/base.py"))
        assert not checker.applies_to(Path("src/repro/simulation/engine.py"))

    def test_flags_float_comparisons_in_experiments(self):
        found = findings_for("experiments/float_eq.py",
                             rule="float-equality")
        assert [f.line for f in found] == [9, 11]
        # int(...) == 0 on line 13 is a count comparison and passes.

    def test_vod_layer_is_in_scope(self):
        checker = get_checker("float-equality")
        assert checker.applies_to(Path("src/repro/vod/prefix.py"))
        assert not checker.applies_to(Path("src/repro/runtime/metrics.py"))

    def test_flags_float_comparisons_in_vod(self):
        found = findings_for("vod/float_eq.py", rule="float-equality")
        assert [f.line for f in found] == [8, 9, 10]
        by_line = {f.line: f.message for f in found}
        assert "math.isclose" in by_line[8]
        assert "math.isinf" in by_line[9]

    def test_service_layer_is_in_scope(self):
        checker = get_checker("float-equality")
        assert checker.applies_to(Path("src/repro/service/backpressure.py"))
        assert checker.applies_to(Path("src/repro/service/parity.py"))

    def test_flags_float_comparisons_in_service(self):
        found = findings_for("service/float_eq.py", rule="float-equality")
        assert [f.line for f in found] == [9, 10, 11]
        by_line = {f.line: f.message for f in found}
        assert "math.isclose" in by_line[9]
        assert "math.isinf" in by_line[10]


class TestExceptionHygiene:
    def test_flags_banned_builtin_raises(self):
        found = findings_for("exception_hygiene.py",
                             rule="exception-hygiene")
        assert [f.line for f in found] == [10, 12]
        assert "raise ValueError" in found[0].message
        assert "raise Exception" in found[1].message

    def test_runtime_error_and_reraise_allowed(self):
        found = findings_for("exception_hygiene.py",
                             rule="exception-hygiene")
        assert not any("RuntimeError" in f.message.split(":")[0]
                       for f in found)


class TestSuppressions:
    def test_named_and_bare_suppress_exactly_their_line(self):
        found = findings_for("suppressions.py", rule="unit-literals")
        assert [f.line for f in found] == [8]

    def test_parse_suppressions_map(self):
        source = ("x = 1  # repro-lint: disable=unit-literals,determinism\n"
                  "y = 2  # repro-lint: disable\n"
                  "z = '# repro-lint: disable'\n")
        suppressed = parse_suppressions(source)
        assert suppressed[1] == frozenset({"unit-literals", "determinism"})
        assert suppressed[2] == frozenset({"*"})
        assert 3 not in suppressed  # '#' inside a string is not a comment


class TestEngine:
    def test_syntax_error_becomes_parse_error_finding(self):
        found = findings_for("bad_syntax.py")
        assert len(found) == 1
        assert found[0].rule == PARSE_ERROR_RULE

    def test_missing_path_becomes_parse_error_finding(self):
        found = analyze_paths([FIXTURES / "does_not_exist.py"])
        assert [f.rule for f in found] == [PARSE_ERROR_RULE]
        assert "no such file" in found[0].message

    def test_directory_walk_is_sorted_and_complete(self):
        found = analyze_paths([FIXTURES])
        assert found == sorted(found)
        assert {Path(f.path).name for f in found} >= {
            "no_bare_assert.py", "wall_clock.py", "unit_literals.py",
            "shim_imports.py", "float_eq.py", "exception_hygiene.py",
            "suppressions.py", "bad_syntax.py", "pool_and_clock.py",
            "incremental.py", "batch.py"}

    def test_rule_selection_limits_checkers(self):
        found = analyze_paths([FIXTURES / "no_bare_assert.py"],
                              rules=["unit-literals"])
        assert found == []


class TestReporters:
    def test_json_schema(self):
        found = findings_for("no_bare_assert.py", rule="no-bare-assert")
        payload = json.loads(render_json(found))
        assert payload["schema"] == 1
        assert payload["count"] == len(found) == len(payload["findings"])
        for entry in payload["findings"]:
            assert {"rule", "path", "line", "col",
                    "message"} <= entry.keys()
            assert isinstance(entry["line"], int)

    def test_text_report_is_gcc_style(self):
        found = findings_for("no_bare_assert.py", rule="no-bare-assert")
        text = render_text(found)
        assert ":5:" in text and "[no-bare-assert]" in text
        assert "2 findings" in text

    def test_clean_report(self):
        assert "clean" in render_text([])
        assert json.loads(render_json([]))["count"] == 0

    def test_findings_sort_by_location(self):
        late = Finding(path="b.py", line=9, col=0, rule="r", message="m")
        early = Finding(path="a.py", line=1, col=0, rule="r", message="m")
        assert sorted([late, early]) == [early, late]


class TestCli:
    def test_exit_clean_on_clean_tree(self):
        stream = io.StringIO()
        code = run_lint([str(REPO / "src" / "repro" / "errors.py")],
                        stream=stream)
        assert code == EXIT_CLEAN

    def test_exit_findings_on_dirty_fixture(self):
        stream = io.StringIO()
        code = run_lint([str(FIXTURES / "no_bare_assert.py")],
                        stream=stream)
        assert code == EXIT_FINDINGS
        assert "no-bare-assert" in stream.getvalue()

    def test_exit_usage_on_unknown_rule(self):
        stream = io.StringIO()
        code = run_lint([str(FIXTURES)], rules=["no-such-rule"],
                        stream=stream)
        assert code == EXIT_USAGE

    def test_json_output_round_trips(self):
        stream = io.StringIO()
        code = run_lint([str(FIXTURES / "suppressions.py")],
                        rules=["unit-literals"], json_output=True,
                        stream=stream)
        assert code == EXIT_FINDINGS
        payload = json.loads(stream.getvalue())
        assert payload["count"] == 1
        assert payload["findings"][0]["line"] == 8

    def test_list_rules(self):
        stream = io.StringIO()
        code = run_lint([], list_rules=True, stream=stream)
        assert code == EXIT_CLEAN
        for rule in all_rules():
            assert rule in stream.getvalue()


class TestSelfCheck:
    def test_shipped_library_is_clean(self):
        assert analyze_paths([REPO / "src"]) == []

    def test_analysis_package_checks_itself(self):
        package = REPO / "src" / "repro" / "analysis"
        for path in sorted(package.rglob("*.py")):
            assert analyze_file(path) == []
