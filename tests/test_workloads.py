"""Workload models: bit-rates, request sampling, stream sets, VBR."""

import numpy as np
import pytest

from repro.core.popularity import (
    BimodalPopularity,
    UniformPopularity,
    ZipfPopularity,
)
from repro.errors import ConfigurationError
from repro.units import KB, MB
from repro.workloads.bitrates import (
    DIVX,
    DVD,
    HDTV,
    MP3,
    MediaType,
    average_bit_rate,
    media_type_by_name,
)
from repro.workloads.popularity_gen import (
    RequestSampler,
    empirical_hit_rate,
    sample_title_requests,
)
from repro.workloads.streams_gen import StreamSet, Title, make_catalog
from repro.workloads.vbr import (
    VbrTrace,
    cushion_for_trace,
    make_vbr_trace,
    vbr_buffer_requirement,
)


class TestMediaTypes:
    def test_paper_bitrates(self):
        assert MP3.bit_rate == 10 * KB
        assert DIVX.bit_rate == 100 * KB
        assert DVD.bit_rate == 1 * MB
        assert HDTV.bit_rate == 10 * MB

    def test_lookup_by_name(self):
        assert media_type_by_name("dvd") is DVD
        assert media_type_by_name("MP3") is MP3
        with pytest.raises(ConfigurationError):
            media_type_by_name("betamax")

    def test_typical_size(self):
        assert DVD.typical_size == DVD.bit_rate * DVD.typical_duration

    def test_average_bit_rate_weighted(self):
        avg = average_bit_rate({MP3: 3, DVD: 1})
        assert avg == pytest.approx((3 * 10 * KB + 1 * MB) / 4)

    def test_average_bit_rate_validation(self):
        with pytest.raises(ConfigurationError):
            average_bit_rate({})
        with pytest.raises(ConfigurationError):
            average_bit_rate({MP3: 0})
        with pytest.raises(ConfigurationError):
            average_bit_rate({MP3: -1, DVD: 2})

    def test_media_type_validation(self):
        with pytest.raises(ConfigurationError):
            MediaType(name="x", bit_rate=0, typical_duration=10)


class TestRequestSampler:
    def test_bimodal_weights_match_classes(self):
        sampler = RequestSampler(BimodalPopularity(10, 90), n_titles=100,
                                 seed=1)
        weights = sampler.title_weights
        # 10 popular titles share 90% of the mass.
        assert weights[:10].sum() == pytest.approx(0.90)
        assert weights[10:].sum() == pytest.approx(0.10)

    def test_uniform_weights(self):
        sampler = RequestSampler(UniformPopularity(), n_titles=50)
        assert np.allclose(sampler.title_weights, 1 / 50)

    def test_zipf_title_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            RequestSampler(ZipfPopularity(alpha=1, n_titles=10), n_titles=20)

    def test_sample_range(self):
        requests = sample_title_requests(BimodalPopularity(5, 95), 100, 500,
                                         seed=3)
        assert requests.min() >= 0 and requests.max() < 100

    def test_reproducible_with_seed(self):
        a = sample_title_requests(BimodalPopularity(5, 95), 100, 50, seed=9)
        b = sample_title_requests(BimodalPopularity(5, 95), 100, 50, seed=9)
        assert np.array_equal(a, b)

    def test_empirical_hit_rate_matches_eq11(self):
        dist = BimodalPopularity(10, 90)
        for p in (0.05, 0.10, 0.30):
            empirical = empirical_hit_rate(dist, n_titles=1_000,
                                           cached_fraction=p, seed=5)
            assert empirical == pytest.approx(dist.hit_rate(p), abs=0.02)

    def test_zipf_empirical_hit_rate(self):
        dist = ZipfPopularity(alpha=0.9, n_titles=500)
        empirical = empirical_hit_rate(dist, n_titles=500,
                                       cached_fraction=0.1, seed=5)
        assert empirical == pytest.approx(dist.hit_rate(0.1), abs=0.02)


class TestCatalog:
    def test_total_size_pinned(self):
        catalog = make_catalog(DVD, n_titles=100, total_size=1e12)
        assert sum(t.size for t in catalog) == pytest.approx(1e12)

    def test_ranks_are_title_order(self):
        catalog = make_catalog(DVD, n_titles=10)
        assert [t.rank for t in catalog] == list(range(10))

    def test_duration_consistent(self):
        title = make_catalog(DVD, n_titles=1)[0]
        assert title.duration == pytest.approx(title.size / DVD.bit_rate)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_catalog(DVD, n_titles=0)
        with pytest.raises(ConfigurationError):
            make_catalog(DVD, n_titles=5, size_jitter=1.5)
        with pytest.raises(ConfigurationError):
            Title(title_id=0, media=DVD, size=-1, rank=0)


class TestStreamSet:
    @pytest.fixture
    def stream_set(self) -> StreamSet:
        catalog = make_catalog(DVD, n_titles=20, total_size=2e10, seed=2)
        return StreamSet(catalog=catalog,
                         requests=[0, 0, 1, 5, 5, 5, 19])

    def test_counts(self, stream_set):
        assert stream_set.n_streams == 7
        assert stream_set.catalog_size == pytest.approx(2e10)
        assert stream_set.average_bit_rate == DVD.bit_rate

    def test_prefix_hits(self, stream_set):
        assert stream_set.streams_hitting_prefix(1) == 2   # title 0
        assert stream_set.streams_hitting_prefix(6) == 6   # 0,1,5
        assert stream_set.streams_hitting_prefix(20) == 7

    def test_titles_fitting_greedy(self, stream_set):
        one_title = stream_set.catalog[0].size
        assert stream_set.titles_fitting(one_title * 1.01) >= 1
        assert stream_set.titles_fitting(0.0) == 0

    def test_request_bounds_validated(self):
        catalog = make_catalog(DVD, n_titles=3)
        with pytest.raises(ConfigurationError):
            StreamSet(catalog=catalog, requests=[3])


class TestVbr:
    def test_trace_statistics(self):
        trace = VbrTrace(rates=(1e6, 3e6, 2e6), window=2.0)
        assert trace.average_rate == pytest.approx(2e6)
        assert trace.peak_rate == 3e6
        assert trace.duration == 6.0

    def test_synthesized_trace_hits_average(self):
        trace = make_vbr_trace(average_rate=1 * MB, n_windows=500,
                               burstiness=0.4, seed=1)
        assert trace.average_rate == pytest.approx(1 * MB, rel=1e-9)

    def test_constant_trace_needs_no_cushion(self):
        trace = VbrTrace(rates=(1e6,) * 10, window=1.0)
        assert cushion_for_trace(trace) == 0.0

    def test_bursty_trace_needs_cushion(self):
        trace = make_vbr_trace(average_rate=1 * MB, n_windows=600,
                               burstiness=0.3, seed=4)
        assert cushion_for_trace(trace) > 0

    def test_cushion_grows_with_burstiness(self):
        cushions = [cushion_for_trace(make_vbr_trace(
            average_rate=1 * MB, n_windows=600, burstiness=b, seed=4))
            for b in (0.1, 0.3, 0.5)]
        assert cushions == sorted(cushions)

    def test_cushion_is_sufficient(self):
        # Prefilling the cushion and delivering at the average rate
        # never underflows over the trace.
        trace = make_vbr_trace(average_rate=1 * MB, n_windows=400,
                               burstiness=0.4, seed=8)
        cushion = cushion_for_trace(trace)
        level = cushion
        for rate in trace.rates:
            level += (trace.average_rate - rate) * trace.window
            assert level >= -1e-6

    def test_buffer_requirement_adds_cushion(self):
        trace = make_vbr_trace(average_rate=1 * MB, n_windows=100,
                               burstiness=0.3, seed=2)
        assert vbr_buffer_requirement(1e6, trace) == \
            pytest.approx(1e6 + cushion_for_trace(trace))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            VbrTrace(rates=(), window=1.0)
        with pytest.raises(ConfigurationError):
            VbrTrace(rates=(1e6,), window=0)
        with pytest.raises(ConfigurationError):
            make_vbr_trace(average_rate=0)
        with pytest.raises(ConfigurationError):
            make_vbr_trace(average_rate=1e6, burstiness=1.5)
        with pytest.raises(ConfigurationError):
            vbr_buffer_requirement(-1, VbrTrace(rates=(1e6,), window=1.0))
