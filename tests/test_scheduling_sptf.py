"""SPTF scheduling on MEMS devices."""

import numpy as np
import pytest

from repro.devices.catalog import MEMS_G3
from repro.errors import ConfigurationError
from repro.scheduling.sptf import (
    batch_positioning_time,
    positioning_time_matrix,
    sptf_order,
    sptf_speedup,
    x_elevator_order,
)


@pytest.fixture
def points() -> np.ndarray:
    return np.random.default_rng(5).random((32, 2))


class TestMatrix:
    def test_symmetric_zero_diagonal(self, points):
        matrix = positioning_time_matrix(MEMS_G3, points)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_entries_match_device_model(self, points):
        matrix = positioning_time_matrix(MEMS_G3, points)
        i, j = 3, 17
        dx = abs(points[i, 0] - points[j, 0])
        dy = abs(points[i, 1] - points[j, 1])
        assert matrix[i, j] == pytest.approx(
            MEMS_G3.positioning_time(dx, dy))

    def test_bounded_by_max_access(self, points):
        matrix = positioning_time_matrix(MEMS_G3, points)
        assert matrix.max() <= MEMS_G3.max_access_time() + 1e-12

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            positioning_time_matrix(MEMS_G3, np.zeros((3, 3)))
        with pytest.raises(ConfigurationError):
            positioning_time_matrix(MEMS_G3, np.array([[0.5, 1.5]]))


class TestOrders:
    def test_sptf_is_a_permutation(self, points):
        order = sptf_order(MEMS_G3, points)
        assert sorted(order) == list(range(len(points)))

    def test_sptf_first_pick_is_cheapest_from_start(self, points):
        order = sptf_order(MEMS_G3, points, start=(0.5, 0.0))
        costs = [MEMS_G3.positioning_time(abs(p[0] - 0.5), abs(p[1]))
                 for p in points]
        assert order[0] == int(np.argmin(costs))

    def test_elevator_sweeps_ascending_x(self, points):
        order = x_elevator_order(points, head_x=0.0)
        xs = [points[i, 0] for i in order]
        assert xs == sorted(xs)

    def test_elevator_wraps(self):
        pts = np.array([[0.2, 0.5], [0.8, 0.5], [0.4, 0.5]])
        order = x_elevator_order(pts, head_x=0.5)
        assert order == [1, 0, 2]

    def test_empty_batch(self):
        assert sptf_order(MEMS_G3, np.zeros((0, 2))) == []
        assert x_elevator_order(np.zeros((0, 2))) == []

    def test_start_validated(self, points):
        with pytest.raises(ConfigurationError):
            sptf_order(MEMS_G3, points, start=(2.0, 0.0))


class TestBatchTime:
    def test_respects_order(self, points):
        sptf = batch_positioning_time(MEMS_G3, points,
                                      sptf_order(MEMS_G3, points))
        reverse = batch_positioning_time(
            MEMS_G3, points, list(reversed(range(len(points)))))
        assert sptf <= reverse

    def test_permutation_checked(self, points):
        with pytest.raises(ConfigurationError):
            batch_positioning_time(MEMS_G3, points, [0, 0, 1])


class TestSpeedup:
    def test_sptf_beats_x_elevator(self):
        # Griffin et al.'s qualitative finding: single-axis orderings
        # are suboptimal on a sled that moves both axes concurrently.
        assert sptf_speedup(MEMS_G3, batch_size=48, n_batches=8) > 1.05

    def test_deterministic_for_seed(self):
        a = sptf_speedup(MEMS_G3, batch_size=16, n_batches=4, seed=2)
        b = sptf_speedup(MEMS_G3, batch_size=16, n_batches=4, seed=2)
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sptf_speedup(MEMS_G3, batch_size=0)
