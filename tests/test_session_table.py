"""The struct-of-arrays session core against its object-path oracle.

The table core (``session_core="table"``) must be *observably
indistinguishable* from the per-object core: same admits, same
rejects, same departure order, byte-identical metrics JSON.  These
tests hold that equivalence under randomized workloads (hypothesis),
under adversarial edge shapes (zero-duration holds, simultaneous
departures, a mid-run focused flash crowd), and for the facade's bulk
``admit_block`` path against one-at-a-time ``admit`` calls.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.runtime.parity import (
    compare_config,
    run_both_cores,
    verify_all_cores,
)
from repro.runtime.runtime import FocusEvent
from repro.runtime.sessions import SessionSampler, SessionTable
from repro.service import scenarios as service_scenarios
from repro.service.config import WorkloadConfig
from repro.service.facade import MediaService


def _random_config(base_name, workload, *, seed, horizon):
    """A legacy RuntimeConfig with the given declarative workload."""
    factory = getattr(service_scenarios, base_name)
    declarative = factory(seed=seed, horizon=horizon)
    return dataclasses.replace(
        declarative, workload=workload, horizon=horizon).to_legacy()


def _popularity(spec):
    from repro.service.config import PopularityConfig

    if spec == "uniform":
        return PopularityConfig(kind="uniform")
    return PopularityConfig(kind="zipf",
                            alpha=float(spec.split("-", 1)[1]))


workloads = st.builds(
    WorkloadConfig,
    arrival_rate=st.floats(min_value=0.05, max_value=2.0),
    mean_holding=st.floats(min_value=2.0, max_value=400.0),
    n_titles=st.integers(min_value=1, max_value=50),
    popularity=st.sampled_from(
        ["zipf-0.271", "zipf-0.8", "uniform"]).map(_popularity),
)


class TestRandomWorkloadParity:
    @settings(max_examples=12, deadline=None)
    @given(workload=workloads, seed=st.integers(min_value=0, max_value=999),
           base=st.sampled_from(["steady_disk", "adaptive_cache"]))
    def test_cores_agree_on_random_workloads(self, workload, seed, base):
        config = _random_config(base, workload, seed=seed, horizon=400.0)
        report = compare_config("random", config)
        # Byte-identical result JSON: every admit/reject/teardown in
        # the event log, every counter, every gauge sample.
        assert report.matches, report.first_divergence()

    @settings(max_examples=6, deadline=None)
    @given(workload=workloads, seed=st.integers(min_value=0, max_value=99))
    def test_metrics_json_bytes_identical(self, workload, seed):
        config = _random_config("steady_disk", workload,
                                seed=seed, horizon=400.0)
        objects, table = run_both_cores(config)
        assert objects.metrics.to_json() == table.metrics.to_json()


class TestEdgeShapes:
    def test_zero_duration_holds(self, monkeypatch):
        # Every session departs at the instant it arrives: the table
        # core must replay each departure inside the same drain window
        # (the ``extra`` heap path) exactly where the object core's
        # calendar would have.
        monkeypatch.setattr(SessionSampler, "next_holding",
                            lambda self: 0.0)
        config = _random_config(
            "steady_disk",
            WorkloadConfig(arrival_rate=0.8, mean_holding=10.0,
                           n_titles=5, popularity=_popularity("uniform")),
            seed=3, horizon=500.0)
        report = compare_config("zero-holds", config)
        assert report.matches, report.first_divergence()
        _, table = run_both_cores(config)
        totals = table.totals
        assert totals["departures"] == totals["admits"] > 0

    def test_simultaneous_departures_resolve_in_admit_order(self):
        table = SessionTable(capacity=2)
        for sid in range(4):
            table.add(sid, title=sid, arrival=float(sid),
                      holding=100.0 - sid, served_by="disk")
        # All four depart at t=100 (and the capacity-2 table grew).
        rows = table.harvest(100.0, inclusive=True)
        assert list(rows) == [0, 1, 2, 3]
        table.mark_departed(0)
        assert table.active_count == 3
        assert list(table.harvest(100.0)) == [1, 2, 3]

    def test_equal_holding_parity(self, monkeypatch):
        # Constant holding times make whole cohorts depart together —
        # the harvest's (time, admit order) sort must match the object
        # calendar's FIFO tie-break.
        monkeypatch.setattr(SessionSampler, "next_holding",
                            lambda self: 60.0)
        config = _random_config(
            "adaptive_cache",
            WorkloadConfig(arrival_rate=1.5, mean_holding=10.0,
                           n_titles=8, popularity=_popularity("zipf-0.8")),
            seed=11, horizon=600.0)
        report = compare_config("equal-holds", config)
        assert report.matches, report.first_divergence()

    def test_focus_title_mid_run(self):
        config = _random_config(
            "adaptive_cache",
            WorkloadConfig(arrival_rate=1.0, mean_holding=80.0,
                           n_titles=12, popularity=_popularity("zipf-0.8")),
            seed=7, horizon=900.0)
        config.focuses = (FocusEvent(time=300.0, title=2, weight=0.7),
                          FocusEvent(time=600.0, title=2, weight=0.0))
        report = compare_config("focus-mid-run", config)
        assert report.matches, report.first_divergence()
        _, table = run_both_cores(config)
        assert table.totals["arrivals"] > 0

    def test_all_named_scenarios_stay_byte_identical(self):
        reports = verify_all_cores(seed=0, horizon=700.0)
        assert all(r.matches for r in reports.values()), {
            n: r.first_divergence()
            for n, r in reports.items() if not r.matches}


def _drive(service, *, bulk, bursts=4, burst=25):
    """Admit bursts + teardowns; returns (tickets, bus event dicts)."""
    from repro.service.events import EventLog

    log = EventLog()
    service.bus.subscribe(None, log)
    sim = service.sim
    tickets = []
    live = []
    for cycle in range(bursts):
        if bulk:
            batch = service.admit_block(count=burst)
        else:
            batch = [service.admit() for _ in range(burst)]
        tickets.extend(batch)
        live.extend(t.session_id for t in batch if t.admitted)
        for session_id in live[::2]:
            service.teardown(session_id)
        live = live[1::2]
        sim.run(until=sim.now + 50.0)
    return tickets, [e.to_dict() for e in log.events]


class TestAdmitBlockEquivalence:
    def test_block_equals_sequential_admits(self):
        # Identical config, identical seed: a burst through the fused
        # admit_block path must produce the same tickets AND the same
        # bus event stream (ordering, loads, backpressure transitions)
        # as one-at-a-time admit calls.
        def build():
            config = dataclasses.replace(
                service_scenarios.steady_disk(seed=5, horizon=5_000.0),
                session_core="table")
            return MediaService(config)

        block_tickets, block_events = _drive(build(), bulk=True)
        seq_tickets, seq_events = _drive(build(), bulk=False)
        assert [dataclasses.asdict(t) for t in block_tickets] \
            == [dataclasses.asdict(t) for t in seq_tickets]
        assert block_events == seq_events

    def test_block_validates_inputs(self):
        config = dataclasses.replace(
            service_scenarios.steady_disk(seed=5, horizon=5_000.0),
            session_core="table")
        service = MediaService(config)
        with pytest.raises(ConfigurationError):
            service.admit_block()
        with pytest.raises(ConfigurationError):
            service.admit_block(count=2, titles=[1])

    def test_block_with_explicit_titles(self):
        config = dataclasses.replace(
            service_scenarios.steady_disk(seed=5, horizon=5_000.0),
            session_core="table")
        service = MediaService(config)
        tickets = service.admit_block(titles=[0, 1, 0])
        assert [t.title for t in tickets] == [0, 1, 0]
        assert all(t.admitted for t in tickets)
