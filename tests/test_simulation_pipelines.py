"""Pipeline simulations cross-validate the analytical bounds."""

import pytest

from repro.core.buffer_model import design_mems_buffer
from repro.core.cache_model import CachePolicy, design_mems_cache
from repro.core.parameters import SystemParameters
from repro.core.popularity import BimodalPopularity
from repro.devices.catalog import FUTURE_DISK_2007
from repro.errors import ConfigurationError
from repro.simulation.pipelines import (
    simulate_buffer_pipeline,
    simulate_cache_pipeline,
    simulate_direct_pipeline,
)
from repro.units import MB


@pytest.fixture
def direct_params() -> SystemParameters:
    return SystemParameters.table3_default(n_streams=50, bit_rate=1 * MB,
                                           k=2)


@pytest.fixture
def buffer_design():
    params = SystemParameters.table3_default(n_streams=40, bit_rate=1 * MB,
                                             k=2)
    return design_mems_buffer(params)


class TestDirectPipeline:
    def test_exact_buffers_are_jitter_free(self, direct_params):
        report = simulate_direct_pipeline(direct_params, n_cycles=30)
        assert report.jitter_free
        assert report.resources["disk"].cycle_overruns == 0

    def test_cycle_fully_utilised_at_minimum(self, direct_params):
        # The minimal Theorem 1 cycle has zero slack by construction.
        report = simulate_direct_pipeline(direct_params, n_cycles=10)
        assert report.resources["disk"].worst_cycle_utilization == \
            pytest.approx(1.0, rel=1e-9)

    def test_undersized_buffers_starve(self, direct_params):
        report = simulate_direct_pipeline(direct_params, n_cycles=30,
                                          buffer_scale=0.8)
        assert not report.jitter_free
        assert report.total_underflow_time > 0

    def test_oversized_buffers_still_clean(self, direct_params):
        report = simulate_direct_pipeline(direct_params, n_cycles=30,
                                          buffer_scale=2.0)
        assert report.jitter_free

    def test_peak_level_matches_theorem1(self, direct_params):
        from repro.core.theorems import min_buffer_disk_dram

        report = simulate_direct_pipeline(direct_params, n_cycles=30)
        expected = min_buffer_disk_dram(direct_params)
        assert report.peak_stream_level <= expected * (1 + 1e-9)
        assert report.peak_stream_level >= expected * 0.99

    def test_delivered_bytes_accounted(self, direct_params):
        report = simulate_direct_pipeline(direct_params, n_cycles=30)
        # All 50 streams consume 1 MB/s for nearly the whole horizon.
        expected = 50 * 1 * MB * report.horizon
        assert report.bytes_delivered == pytest.approx(expected, rel=0.1)

    def test_sampled_latencies_cause_bounded_jitter(self, direct_params):
        exact = simulate_direct_pipeline(
            direct_params, n_cycles=40, latency_model="sampled",
            disk=FUTURE_DISK_2007, seed=7)
        padded = simulate_direct_pipeline(
            direct_params, n_cycles=40, latency_model="sampled",
            disk=FUTURE_DISK_2007, seed=7, buffer_scale=2.0)
        # Headroom strictly reduces starvation under stochastic latencies.
        assert padded.total_underflow_time < exact.total_underflow_time \
            or exact.total_underflow_time == 0

    def test_sampled_rates_follow_zones(self, direct_params):
        import numpy as np

        from repro.simulation.pipelines import _disk_cycle_service
        from repro.units import MB

        rng = np.random.default_rng(1)
        latencies, rates = _disk_cycle_service(
            200, direct_params, "sampled", FUTURE_DISK_2007, rng)
        # Zone rates span Table 1's 170-300 MB/s band, never above peak.
        assert rates.min() >= 165 * MB
        # Sector rounding puts the outer zone a hair above the nominal
        # 300 MB/s.
        assert rates.max() <= 301 * MB
        assert rates.max() > rates.min()  # both zone extremes sampled
        assert (latencies > 0).all()

    def test_deterministic_rates_are_peak(self, direct_params):
        from repro.simulation.pipelines import _disk_cycle_service

        latencies, rates = _disk_cycle_service(
            10, direct_params, "deterministic", None, None)
        assert (rates == direct_params.r_disk).all()
        assert (latencies == direct_params.l_disk).all()

    def test_sampled_needs_disk_model(self, direct_params):
        with pytest.raises(ConfigurationError):
            simulate_direct_pipeline(direct_params,
                                     latency_model="sampled")

    def test_unknown_latency_model(self, direct_params):
        with pytest.raises(ConfigurationError):
            simulate_direct_pipeline(direct_params, latency_model="magic")

    def test_parameter_validation(self, direct_params):
        with pytest.raises(ConfigurationError):
            simulate_direct_pipeline(direct_params, n_cycles=0)
        with pytest.raises(ConfigurationError):
            simulate_direct_pipeline(direct_params, buffer_scale=0)


class TestBufferPipeline:
    def test_exact_design_is_jitter_free(self, buffer_design):
        report = simulate_buffer_pipeline(buffer_design, n_hyper_periods=3)
        assert report.jitter_free
        assert report.notes["steady_short_reads"] == 0

    def test_mems_cycles_never_overrun(self, buffer_design):
        report = simulate_buffer_pipeline(buffer_design, n_hyper_periods=3)
        for name, usage in report.resources.items():
            if name.startswith("mems"):
                assert usage.cycle_overruns == 0

    def test_eq7_occupancy_bound_holds(self, buffer_design):
        report = simulate_buffer_pipeline(buffer_design, n_hyper_periods=3)
        params = buffer_design.params
        bound = 2 * params.n_streams * params.bit_rate * buffer_design.t_disk
        assert report.peak_mems_occupancy <= bound * (1 + 1e-9)
        assert report.peak_mems_occupancy <= params.mems_bank_capacity

    def test_all_disk_reads_land(self, buffer_design):
        report = simulate_buffer_pipeline(buffer_design, n_hyper_periods=2)
        assert report.notes["unwritten_reads"] == 0

    def test_undersized_dram_starves(self, buffer_design):
        report = simulate_buffer_pipeline(buffer_design, n_hyper_periods=3,
                                          buffer_scale=0.5)
        assert not report.jitter_free

    def test_warmup_short_reads_only(self, buffer_design):
        report = simulate_buffer_pipeline(buffer_design, n_hyper_periods=3)
        # Short reads may occur while the pipeline fills, never after.
        assert report.notes["short_reads"] >= \
            report.notes["steady_short_reads"]

    def test_validation(self, buffer_design):
        with pytest.raises(ConfigurationError):
            simulate_buffer_pipeline(buffer_design, n_hyper_periods=0)


class TestCachePipeline:
    @pytest.fixture
    def cache_params(self) -> SystemParameters:
        return SystemParameters.table3_default(n_streams=200,
                                               bit_rate=1 * MB, k=2)

    @pytest.mark.parametrize("policy", [CachePolicy.STRIPED,
                                        CachePolicy.REPLICATED])
    def test_exact_design_is_jitter_free(self, cache_params, policy):
        design = design_mems_cache(cache_params, policy,
                                   BimodalPopularity(5, 95))
        report = simulate_cache_pipeline(design, n_cycles=20)
        assert report.jitter_free

    @pytest.mark.parametrize("policy", [CachePolicy.STRIPED,
                                        CachePolicy.REPLICATED])
    def test_undersized_buffers_starve(self, cache_params, policy):
        design = design_mems_cache(cache_params, policy,
                                   BimodalPopularity(5, 95))
        report = simulate_cache_pipeline(design, n_cycles=20,
                                         buffer_scale=0.7)
        assert not report.jitter_free

    def test_stream_split_reported(self, cache_params):
        design = design_mems_cache(cache_params, CachePolicy.STRIPED,
                                   BimodalPopularity(5, 95))
        report = simulate_cache_pipeline(design, n_cycles=10)
        assert report.notes["n_cache_streams"] + \
            report.notes["n_disk_streams"] == 200

    def test_striped_bank_is_one_resource(self, cache_params):
        design = design_mems_cache(cache_params, CachePolicy.STRIPED,
                                   BimodalPopularity(5, 95))
        report = simulate_cache_pipeline(design, n_cycles=10)
        assert "mems_bank" in report.resources

    def test_replicated_devices_are_separate_resources(self, cache_params):
        design = design_mems_cache(cache_params, CachePolicy.REPLICATED,
                                   BimodalPopularity(5, 95))
        report = simulate_cache_pipeline(design, n_cycles=10)
        assert "mems0" in report.resources and "mems1" in report.resources
