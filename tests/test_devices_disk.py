"""Disk drive model: seek curve calibration, latency, zoned transfer."""

import pytest

from repro.devices.catalog import FUTURE_DISK_2007
from repro.devices.disk import DiskDrive, SeekCurve, future_disk_like
from repro.errors import ConfigurationError
from repro.units import GB, MB, MS


class TestSeekCurveCalibration:
    def test_matches_datasheet_average(self):
        curve = SeekCurve.calibrate(average_seek=2.8 * MS,
                                    full_stroke_seek=7.0 * MS,
                                    n_cylinders=50_000)
        assert curve.average_seek_time() == pytest.approx(2.8 * MS)

    def test_matches_full_stroke(self):
        curve = FUTURE_DISK_2007.seek_curve
        assert curve.seek_time(curve.n_cylinders) == pytest.approx(7.0 * MS)

    def test_zero_distance_is_free(self):
        assert FUTURE_DISK_2007.seek_curve.seek_time(0) == 0.0

    def test_single_cylinder_seek_is_minimum(self):
        curve = FUTURE_DISK_2007.seek_curve
        assert curve.seek_time(1) == pytest.approx(curve.t_min, rel=0.05)

    def test_monotone_and_concave(self):
        curve = FUTURE_DISK_2007.seek_curve
        distances = [100, 1_000, 10_000, 25_000, 50_000]
        times = [curve.seek_time(d) for d in distances]
        assert times == sorted(times)
        # Concavity: marginal cost per cylinder falls with distance.
        slopes = [(t2 - t1) / (d2 - d1) for (d1, t1), (d2, t2)
                  in zip(zip(distances, times), zip(distances[1:], times[1:]))]
        assert slopes == sorted(slopes, reverse=True)

    def test_distance_beyond_stroke_clamps(self):
        curve = FUTURE_DISK_2007.seek_curve
        assert curve.seek_time(10 * curve.n_cylinders) == \
            pytest.approx(curve.t_full)

    def test_negative_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            FUTURE_DISK_2007.seek_curve.seek_time(-1)

    def test_inconsistent_datasheet_rejected(self):
        with pytest.raises(ConfigurationError):
            SeekCurve.calibrate(average_seek=7 * MS, full_stroke_seek=2 * MS,
                                n_cylinders=1000)

    def test_min_seek_must_be_below_average(self):
        with pytest.raises(ConfigurationError):
            SeekCurve.calibrate(average_seek=2 * MS, full_stroke_seek=7 * MS,
                                n_cylinders=1000, min_seek=3 * MS)


class TestSeekFastPath:
    def test_integer_table_is_bit_identical_to_closed_form(self):
        curve = FUTURE_DISK_2007.seek_curve
        for d in [1, 2, 7, 100, 1_000, 25_000, curve.n_cylinders]:
            expected = curve.t_min + ((curve.t_full - curve.t_min)
                                      * (d / curve.n_cylinders) ** curve.alpha)
            assert curve.seek_time(d) == expected  # exact, not approx

    def test_int_and_float_distances_agree_exactly(self):
        curve = FUTURE_DISK_2007.seek_curve
        for d in [1, 13, 999, 12_345, curve.n_cylinders]:
            assert curve.seek_time(d) == curve.seek_time(float(d))

    def test_wide_curve_skips_the_table(self):
        curve = SeekCurve.calibrate(average_seek=2.8 * MS,
                                    full_stroke_seek=7.0 * MS,
                                    n_cylinders=1_000_000)
        assert curve._integer_table() is None
        assert curve.seek_time(1_000) > 0

    def test_scheduled_latency_memo_is_stable(self):
        disk = future_disk_like()
        first = disk.scheduled_latency(8)
        assert disk.scheduled_latency(8) == first
        fresh = future_disk_like()
        assert fresh.scheduled_latency(8) == first


class TestDiskLatencies:
    def test_rotation_time_from_rpm(self):
        assert FUTURE_DISK_2007.rotation_time() == pytest.approx(3 * MS)

    def test_average_access_is_seek_plus_half_rotation(self):
        disk = FUTURE_DISK_2007
        expected = disk.seek_curve.average_seek_time() + 1.5 * MS
        assert disk.average_access_time() == pytest.approx(expected)

    def test_max_access_is_full_stroke_plus_full_rotation(self):
        assert FUTURE_DISK_2007.max_access_time() == \
            pytest.approx(7.0 * MS + 3.0 * MS)

    def test_elevator_beats_random_access(self):
        disk = FUTURE_DISK_2007
        assert disk.scheduled_latency(8) < disk.average_access_time()

    def test_elevator_improves_with_queue_depth(self):
        disk = FUTURE_DISK_2007
        latencies = [disk.scheduled_latency(q) for q in (1, 4, 16, 64)]
        assert latencies == sorted(latencies, reverse=True)

    def test_latency_ratio_near_paper_value(self):
        # Section 5.1: "around 5 for the FutureDisk and the G3 MEMS".
        from repro.devices.catalog import MEMS_G3

        ratio = (FUTURE_DISK_2007.scheduled_latency()
                 / MEMS_G3.max_access_time())
        assert 4.0 < ratio < 6.0

    def test_queue_depth_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FUTURE_DISK_2007.scheduled_latency(0)


class TestAccessAndTransfer:
    def test_access_time_uses_cylinder_distance(self):
        disk = FUTURE_DISK_2007
        near = disk.access_time(1_000, 1_100)
        far = disk.access_time(1_000, 45_000)
        assert near < far

    def test_rotation_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            FUTURE_DISK_2007.access_time(0, 1, rotation_fraction=1.5)

    def test_transfer_time_peak_rate(self):
        assert FUTURE_DISK_2007.transfer_time(300 * MB) == pytest.approx(1.0)

    def test_zoned_transfer_slower_on_inner_cylinders(self):
        disk = FUTURE_DISK_2007
        outer = disk.transfer_time(100 * MB, cylinder=0)
        inner = disk.transfer_time(100 * MB,
                                   cylinder=disk.geometry.n_cylinders - 1)
        assert inner > outer

    def test_service_time_combines_latency_and_transfer(self):
        disk = FUTURE_DISK_2007
        assert disk.service_time(3 * MB) == pytest.approx(
            disk.scheduled_latency() + 0.01)


class TestConstruction:
    def test_future_disk_matches_table3(self):
        disk = future_disk_like()
        assert disk.transfer_rate == 300 * MB
        assert disk.capacity == 1_000 * GB
        assert disk.cost_per_byte * GB == pytest.approx(0.2)
        assert disk.rpm == 20_000

    @pytest.mark.parametrize("field,value", [
        ("rpm", 0), ("max_bandwidth", -1), ("capacity_bytes", 0),
        ("dollars_per_byte", -0.1),
    ])
    def test_invalid_parameters_rejected(self, field, value):
        kwargs = dict(name="bad", rpm=10_000, max_bandwidth=100 * MB,
                      seek_curve=FUTURE_DISK_2007.seek_curve,
                      capacity_bytes=100 * GB, dollars_per_byte=1.0 / GB)
        kwargs[field] = value
        with pytest.raises(ConfigurationError):
            DiskDrive(**kwargs)
