"""Parity harness: the service path is byte-identical to the legacy loop.

The tentpole guarantee of the control-plane refactor: driving every
named scenario through ``MediaService`` + ``TrafficProgram`` (built
from the declarative :class:`RuntimeConfig`) produces the *same JSON
document* as the pre-refactor ``run_runtime`` loop — same admissions,
same rejections, same metrics, same seq numbers.  Horizons are trimmed
for test-suite speed; the CLI smoke step in CI re-proves one scenario
at a longer horizon.
"""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.runtime import run_runtime
from repro.service.config import ControlConfig
from repro.service.parity import (
    compare_config,
    compare_scenario,
    verify_all,
)
from repro.service.scenarios import (
    SERVICE_SCENARIOS,
    build_service_scenario,
)
from repro.service.traffic import run_service

#: Per-scenario horizons: long enough to cross epochs, failures, and
#: every timeline event, short enough for the suite.
_HORIZONS = {
    "steady-disk": 2_500.0,
    "adaptive-cache": 4_000.0,
    "device-failure": 2_500.0,
    "degraded-bandwidth": 2_500.0,
    "flash-crowd": 2_500.0,
    "overload": 1_500.0,
    "flash_crowd": 2_500.0,
    "diurnal_drift": 3_000.0,
    "long_tail": 2_500.0,
}


class TestParity:
    @pytest.mark.parametrize("name", sorted(SERVICE_SCENARIOS))
    def test_scenario_is_byte_identical(self, name):
        report = compare_scenario(name, seed=0, horizon=_HORIZONS[name])
        assert report.matches, report.first_divergence()

    def test_parity_survives_a_different_seed(self):
        report = compare_scenario("adaptive-cache", seed=11,
                                  horizon=3_000.0)
        assert report.matches, report.first_divergence()

    def test_verify_all_covers_every_scenario(self):
        reports = verify_all(seed=0, horizon=1_200.0)
        assert sorted(reports) == sorted(SERVICE_SCENARIOS)
        assert all(r.matches for r in reports.values())

    def test_report_pinpoints_a_divergence(self):
        # Same scenario, different seeds: a real divergence the report
        # must localize rather than just flag.
        base = build_service_scenario("steady-disk", horizon=1_500.0)
        legacy_json = run_runtime(base.to_legacy()).to_json(indent=None)
        other = base.replace(seed=9)
        report = compare_config("steady-disk", other)
        report = type(report)(name="steady-disk", matches=False,
                              legacy_json=legacy_json,
                              service_json=report.service_json)
        divergence = report.first_divergence()
        assert "at byte" in divergence
        assert "legacy" in divergence and "service" in divergence

    def test_timeline_events_fire_identically(self):
        # The scenario whose timeline carries every event family.
        report = compare_scenario("flash_crowd", seed=0, horizon=4_000.0)
        assert report.matches, report.first_divergence()


class TestEventFlowEquivalence:
    def test_replan_latency_changes_the_path_not_the_plans(self):
        # With a replan window the service parks admits, so the RNG
        # schedule differs from legacy — but the run still completes
        # and serves comparable traffic under the same plans.
        config = build_service_scenario(
            "adaptive-cache", horizon=4_000.0)
        windowed = config.replace(control=ControlConfig(
            epoch=config.control.epoch,
            metrics_interval=config.control.metrics_interval,
            replan_latency=10.0))
        result = run_service(windowed)
        baseline = run_service(config)
        totals = result.totals
        assert totals.get("arrivals", 0) > 0
        assert totals.get("admits", 0) > 0
        ratio = (totals.get("admits", 0)
                 / max(1, baseline.totals.get("admits", 0)))
        assert 0.5 < ratio < 1.5


class TestScenarioValidation:
    def test_unknown_scenario_lists_the_catalog(self):
        with pytest.raises(ConfigurationError, match="steady-disk"):
            build_service_scenario("no-such-thing")

    def test_bad_horizon_is_rejected(self):
        with pytest.raises(ConfigurationError, match="horizon"):
            build_service_scenario("steady-disk", horizon=0.0)
