"""Startup-latency analysis, cross-validated against the simulator."""

import pytest

from repro.core.buffer_model import design_mems_buffer
from repro.core.cache_model import CachePolicy, design_mems_cache
from repro.core.parameters import SystemParameters
from repro.core.popularity import BimodalPopularity
from repro.core.startup import (
    buffered_startup,
    cache_startup,
    direct_startup,
    startup_comparison,
    StartupLatency,
)
from repro.errors import ConfigurationError
from repro.simulation.pipelines import (
    simulate_buffer_pipeline,
    simulate_direct_pipeline,
)
from repro.units import MB


@pytest.fixture
def params() -> SystemParameters:
    return SystemParameters.table3_default(n_streams=60, bit_rate=1 * MB,
                                           k=2)


class TestBounds:
    def test_worst_at_least_expected(self, params):
        result = direct_startup(params)
        assert result.worst >= result.expected > 0

    def test_cache_is_fastest(self, params):
        design = design_mems_buffer(params)
        cache = design_mems_cache(params, CachePolicy.REPLICATED,
                                  BimodalPopularity(5, 95))
        comparison = startup_comparison(params, design, cache)
        by_config = {r.configuration: r for r in comparison}
        assert by_config["cache"].worst < by_config["direct"].worst

    def test_pipeline_fill_is_slowest(self, params):
        design = design_mems_buffer(params)
        naive = buffered_startup(design, bypass=False)
        bypass = buffered_startup(design, bypass=True)
        direct = direct_startup(params)
        assert naive.worst > bypass.worst
        assert naive.worst > direct.worst
        # The naive fill pays ~three disk cycles.
        assert naive.worst == pytest.approx(
            3 * design.t_disk + design.t_mems)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StartupLatency(worst=1.0, expected=2.0, configuration="x")

    def test_cache_startup_requires_cache_streams(self, params):
        cache = design_mems_cache(params, CachePolicy.REPLICATED,
                                  BimodalPopularity(5, 95))
        zero = cache.__class__(params=cache.params, policy=cache.policy,
                               cached_fraction=cache.cached_fraction,
                               hit_rate=0.0, n_cache_streams=0.0,
                               n_disk_streams=60.0,
                               s_mems_dram=0.0,
                               s_disk_dram=cache.s_disk_dram)
        with pytest.raises(ConfigurationError):
            cache_startup(zero)


class TestAgainstSimulator:
    def test_direct_startup_within_analytic_worst(self, params):
        report = simulate_direct_pipeline(params, n_cycles=5)
        bound = direct_startup(params)
        assert report.playback_starts
        assert max(report.playback_starts) <= bound.worst * (1 + 1e-9)

    def test_buffered_startup_matches_pipeline_fill(self, params):
        design = design_mems_buffer(params)
        report = simulate_buffer_pipeline(design, n_hyper_periods=2)
        naive = buffered_startup(design, bypass=False)
        assert report.playback_starts
        latest = max(report.playback_starts)
        # The simulator implements the naive (no-bypass) policy: its
        # worst observed startup sits between one and the bound's two
        # disk cycles.
        assert design.t_disk * 0.9 <= latest <= naive.worst * (1 + 1e-9)

    def test_buffer_startup_much_slower_than_direct(self, params):
        # The DRAM-saving pipeline costs startup latency: a documented
        # trade-off the bypass policy addresses.
        design = design_mems_buffer(params)
        direct_report = simulate_direct_pipeline(params, n_cycles=5)
        buffer_report = simulate_buffer_pipeline(design, n_hyper_periods=2)
        assert max(buffer_report.playback_starts) > \
            5 * max(direct_report.playback_starts)
