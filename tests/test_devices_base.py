"""StorageDevice interface and the Figure 2 throughput curve."""

import pytest

from repro.devices.base import effective_throughput, io_size_for_throughput
from repro.devices.catalog import FUTURE_DISK_2007, MEMS_G3
from repro.errors import ConfigurationError
from repro.units import KB, MB


class TestEffectiveThroughput:
    def test_zero_io_size_yields_zero(self):
        assert effective_throughput(0, 0.003, 300 * MB) == 0.0

    def test_zero_latency_reaches_media_rate(self):
        assert effective_throughput(1 * MB, 0.0, 300 * MB) == \
            pytest.approx(300 * MB)

    def test_known_value(self):
        # 1 MB IO, 1 ms latency, 100 MB/s: 1 MB / (1 ms + 10 ms).
        assert effective_throughput(1 * MB, 0.001, 100 * MB) == \
            pytest.approx(1 * MB / 0.011)

    def test_monotone_in_io_size(self):
        values = [effective_throughput(s, 0.003, 300 * MB)
                  for s in (10 * KB, 100 * KB, 1 * MB, 10 * MB)]
        assert values == sorted(values)
        assert values[-1] < 300 * MB  # never exceeds media rate

    @pytest.mark.parametrize("kwargs", [
        {"io_size": -1, "latency": 0.001, "transfer_rate": 1e8},
        {"io_size": 1e6, "latency": -0.001, "transfer_rate": 1e8},
        {"io_size": 1e6, "latency": 0.001, "transfer_rate": 0},
    ])
    def test_invalid_inputs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            effective_throughput(**kwargs)


class TestIoSizeForThroughput:
    def test_inverts_effective_throughput(self):
        size = io_size_for_throughput(150 * MB, 0.003, 300 * MB)
        assert effective_throughput(size, 0.003, 300 * MB) == \
            pytest.approx(150 * MB)

    def test_target_at_or_above_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            io_size_for_throughput(300 * MB, 0.003, 300 * MB)

    def test_zero_target_rejected(self):
        with pytest.raises(ConfigurationError):
            io_size_for_throughput(0, 0.003, 300 * MB)


class TestDeviceThroughputMethods:
    def test_figure2_ordering_at_small_ios(self):
        # At small IOs the MEMS device (max latency) beats the disk
        # (avg latency) because its latency is ~5x smaller.
        io = 256 * KB
        mems = MEMS_G3.effective_throughput(io, worst_case=True)
        disk = FUTURE_DISK_2007.effective_throughput(io)
        assert mems > disk

    def test_io_size_for_utilization_bounds(self):
        with pytest.raises(ConfigurationError):
            MEMS_G3.io_size_for_utilization(0.0)
        with pytest.raises(ConfigurationError):
            MEMS_G3.io_size_for_utilization(1.0)

    def test_half_utilization_io_sizes(self):
        # The paper's Figure 2 point: masking overheads needs an order
        # of magnitude smaller IOs on MEMS than on disk.
        mems_io = MEMS_G3.io_size_for_utilization(0.5, worst_case=True)
        disk_io = FUTURE_DISK_2007.io_size_for_utilization(0.5)
        assert disk_io / mems_io > 4

    def test_cost_per_device(self):
        assert MEMS_G3.cost_per_device == pytest.approx(10.0)
