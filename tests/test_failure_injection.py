"""Failure injection: latency disturbances and schedule recovery."""

import pytest

from repro.core.parameters import SystemParameters
from repro.core.theorems import io_cycle_direct
from repro.errors import ConfigurationError
from repro.simulation.pipelines import simulate_direct_pipeline
from repro.units import MB


@pytest.fixture
def params() -> SystemParameters:
    return SystemParameters.table3_default(n_streams=50, bit_rate=1 * MB,
                                           k=2)


class TestDisturbances:
    def test_clean_run_has_no_jitter(self, params):
        report = simulate_direct_pipeline(params, n_cycles=20)
        assert report.jitter_free

    def test_latency_spike_causes_starvation(self, params):
        report = simulate_direct_pipeline(params, n_cycles=20,
                                          disturbances={5: 3.0})
        assert not report.jitter_free
        assert report.resources["disk"].cycle_overruns >= 1

    def test_starvation_confined_to_the_event(self, params):
        t_cycle = io_cycle_direct(params.n_streams, params.bit_rate,
                                  params.r_disk, params.l_disk)
        report = simulate_direct_pipeline(params, n_cycles=20,
                                          disturbances={5: 3.0})
        # All starvation lies within a small window after the disturbed
        # cycle: the schedule re-synchronises once the spike passes.
        window_start = 5 * t_cycle
        window_end = 10 * t_cycle
        for event in report.underflows:
            assert window_start <= event.start <= window_end

    def test_capacity_alone_does_not_absorb_spikes(self, params):
        # Extra buffer space never fills without a prefill policy (the
        # clamp caps each read at one cycle's worth), so scale alone
        # leaves the starvation unchanged.
        tight = simulate_direct_pipeline(params, n_cycles=20,
                                         disturbances={5: 1.5})
        padded = simulate_direct_pipeline(params, n_cycles=20,
                                          disturbances={5: 1.5},
                                          buffer_scale=2.0)
        assert padded.total_underflow_time == pytest.approx(
            tight.total_underflow_time)

    def test_prefill_cushion_absorbs_small_spikes(self, params):
        # One cycle of cushion (double buffer + one-cycle playback
        # delay) rides out a 1.5x latency event cleanly.
        report = simulate_direct_pipeline(
            params, n_cycles=20, disturbances={5: 1.5}, buffer_scale=2.0,
            playback_delay_cycles=1)
        assert report.jitter_free

    def test_cushion_has_limits(self, params):
        # The same cushion is not enough for a 3x event.
        report = simulate_direct_pipeline(
            params, n_cycles=20, disturbances={5: 3.0}, buffer_scale=2.0,
            playback_delay_cycles=1)
        assert not report.jitter_free

    def test_deeper_spike_hurts_more(self, params):
        mild = simulate_direct_pipeline(params, n_cycles=20,
                                        disturbances={5: 2.0})
        severe = simulate_direct_pipeline(params, n_cycles=20,
                                          disturbances={5: 5.0})
        assert severe.total_underflow_time > mild.total_underflow_time

    def test_multiple_disturbances(self, params):
        report = simulate_direct_pipeline(
            params, n_cycles=25, disturbances={5: 3.0, 15: 3.0})
        starts = sorted(e.start for e in report.underflows)
        t_cycle = io_cycle_direct(params.n_streams, params.bit_rate,
                                  params.r_disk, params.l_disk)
        # Two separate bursts of starvation.
        assert starts[0] < 8 * t_cycle
        assert starts[-1] > 14 * t_cycle

    def test_even_speedups_disturb_tight_buffers(self, params):
        # Counter-intuitive but real: with exactly one cycle of buffer,
        # a *faster* cycle bunches the credits early, the clamp forces
        # short reads, and the stream starves before the next on-time
        # credit.  Tight time-cycle schedules need exact pacing in both
        # directions; the prefill cushion fixes it.
        tight = simulate_direct_pipeline(params, n_cycles=20,
                                         disturbances={5: 0.0})
        assert not tight.jitter_free
        cushioned = simulate_direct_pipeline(
            params, n_cycles=20, disturbances={5: 0.0}, buffer_scale=2.0,
            playback_delay_cycles=1)
        assert cushioned.jitter_free

    def test_validation(self, params):
        with pytest.raises(ConfigurationError):
            simulate_direct_pipeline(params, disturbances={-1: 2.0})
        with pytest.raises(ConfigurationError):
            simulate_direct_pipeline(params, disturbances={1: -2.0})
