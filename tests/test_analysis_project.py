"""Tests for the whole-program analysis layer (PR 8).

The graph rules run against ``tests/analysis_fixtures/graphproj/`` — a
miniature project with its own ``pyproject.toml`` and one deliberate
violation per rule.  The suite also pins the declarative configuration
(byte-equal to the built-in defaults), the incremental cache (warm
runs re-parse nothing; findings are byte-identical cold vs warm and
serial vs parallel), the SARIF reporter, the ratchet baseline, the
``--rule``/``--changed`` CLI surface, and the logical-line suppression
semantics.
"""

import io
import json
import shutil
from dataclasses import replace
from pathlib import Path

import pytest

from repro.analysis import parse_suppressions, run_analysis
from repro.analysis.base import all_rules
from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    render_baseline,
)
from repro.analysis.cache import IncrementalCache, cache_fingerprint
from repro.analysis.cli import parse_porcelain, run_lint
from repro.analysis.config import (
    DEFAULT_LAYERS,
    LayerSpec,
    LintConfig,
    find_project,
    load_config,
)
from repro.analysis.engine import (
    UNKNOWN_SUPPRESSION_RULE,
    analyze_file,
    analyze_paths,
)
from repro.analysis.reporters import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    SARIF_VERSION,
    render_sarif,
)
from repro.errors import ConfigurationError

REPO = Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "analysis_fixtures"
GRAPHPROJ = FIXTURES / "graphproj"


def lint_graphproj(tmp_path, rules=None, *, jobs=1, root=GRAPHPROJ):
    """Run the engine over the fixture project with a throwaway cache."""
    return run_analysis([root / "src"], rules, jobs=jobs,
                        cache_path=tmp_path / "lint-cache.json")


def tails(findings, rule):
    """``(path tail, line)`` pairs of one rule's findings."""
    return [("/".join(Path(f.path).parts[-2:]), f.line)
            for f in findings if f.rule == rule]


class TestGraphRules:
    def test_fixture_project_findings(self, tmp_path):
        result = lint_graphproj(tmp_path)
        assert result.graph_modules > 0
        by_rule = {}
        for finding in result.findings:
            by_rule.setdefault(finding.rule, []).append(finding)
        assert set(by_rule) == {"layer-boundaries", "dead-export",
                                "shim-freshness", "event-contract"}

    def test_layer_boundaries(self, tmp_path):
        found = lint_graphproj(tmp_path, ["layer-boundaries"]).findings
        assert tails(found, "layer-boundaries") == [
            ("alpha/work.py", 4), ("delta/mod.py", 3)]
        assert "may not import layer 'gamma'" in found[0].message
        assert "allowed: beta" in found[0].message
        assert "layer 'delta' is not declared" in found[1].message

    def test_layer_exception_pardons_the_named_file(self, tmp_path):
        # pardoned.py imports alpha from root; only the named exception
        # in [layers.exceptions] keeps it clean.
        found = lint_graphproj(tmp_path, ["layer-boundaries"]).findings
        assert not any("pardoned" in f.path for f in found)

    def test_dead_export(self, tmp_path):
        found = lint_graphproj(tmp_path, ["dead-export"]).findings
        assert tails(found, "dead-export") == [("beta/util.py", 8)]
        assert "proj.beta.util.orphan" in found[0].message

    def test_dead_export_liveness_paths(self, tmp_path):
        # helper (imported), use (imported), main (entry point),
        # HANDLED (__all__), _private (underscore) are all live.
        found = lint_graphproj(tmp_path, ["dead-export"]).findings
        assert len(found) == 1

    def test_shim_freshness(self, tmp_path):
        found = lint_graphproj(tmp_path, ["shim-freshness"]).findings
        assert tails(found, "shim-freshness") == [("proj/shimmy.py", 10)]
        assert "pure re-export of proj.beta.util" in found[0].message

    def test_event_contract(self, tmp_path):
        found = lint_graphproj(tmp_path, ["event-contract"]).findings
        assert tails(found, "event-contract") == [
            ("beta/producer.py", 10), ("proj/events.py", 14),
            ("proj/events.py", 22), ("proj/events.py", 26)]
        messages = {f.line: f.message for f in found
                    if f.path.endswith("events.py")}
        assert "Ghost is never published" in messages[14]
        assert "Quiet is never published" in messages[22]
        assert "Smoke is published but never consumed" in messages[26]

    def test_event_contract_docs_count_as_consumption(self, tmp_path):
        # Parade is published and only documented; beta_depth reaches
        # only the docs; beta_ticks/beta_level reach the sink strings.
        found = lint_graphproj(tmp_path, ["event-contract"]).findings
        text = " ".join(f.message for f in found)
        for visible in ("Parade", "beta_depth", "beta_ticks",
                        "beta_level"):
            assert visible not in text
        assert "'beta_lost'" in text

    def test_graph_rules_report_only_requested_files(self, tmp_path):
        # Asking for one file runs the graph over the whole project but
        # reports only findings anchored in the requested file.
        result = run_analysis([GRAPHPROJ / "src" / "proj" / "shimmy.py"],
                              cache_path=tmp_path / "c.json")
        assert result.files_checked > 1  # universe expanded to src/
        assert {f.rule for f in result.findings} == {"shim-freshness"}


class TestParallelAndIncremental:
    def test_findings_identical_serial_vs_parallel(self, tmp_path):
        serial = run_analysis([GRAPHPROJ / "src"], jobs=1,
                              cache_path=tmp_path / "a.json").findings
        parallel = run_analysis([GRAPHPROJ / "src"], jobs=2,
                                cache_path=tmp_path / "b.json").findings
        assert serial == parallel

    def test_findings_identical_cold_vs_warm(self, tmp_path):
        cache = tmp_path / "lint-cache.json"
        cold = run_analysis([GRAPHPROJ / "src"], cache_path=cache)
        warm = run_analysis([GRAPHPROJ / "src"], cache_path=cache)
        assert cold.findings == warm.findings
        assert cold.files_parsed == cold.files_checked
        assert warm.files_parsed == 0
        assert warm.cache_hits == warm.files_checked

    def test_touched_file_is_the_only_reparse(self, tmp_path):
        root = tmp_path / "graphproj"
        shutil.copytree(GRAPHPROJ, root)
        cache = tmp_path / "lint-cache.json"
        run_analysis([root / "src"], cache_path=cache)
        target = root / "src" / "proj" / "gamma" / "extra.py"
        target.write_text(target.read_text(encoding="utf-8")
                          + "\n\ndef fresh_orphan() -> int:\n    return 5\n",
                          encoding="utf-8")
        warm = run_analysis([root / "src"], cache_path=cache)
        assert warm.files_parsed == 1
        assert any(f.rule == "dead-export" and "fresh_orphan" in f.message
                   for f in warm.findings)

    def test_config_change_discards_cache(self, tmp_path):
        config = find_project([GRAPHPROJ / "src"])
        edited = replace(config, src_root="other")
        assert cache_fingerprint(config) != cache_fingerprint(edited)
        cache = tmp_path / "lint-cache.json"
        run_analysis([GRAPHPROJ / "src"], cache_path=cache, config=config)
        reloaded = IncrementalCache.load(cache, edited)
        assert reloaded._entries == {}

    def test_no_cache_never_touches_disk(self, tmp_path):
        result = run_analysis([GRAPHPROJ / "src"], use_cache=False,
                              cache_path=tmp_path / "lint-cache.json")
        assert result.cache_hits == 0
        assert not (tmp_path / "lint-cache.json").exists()

    def test_self_lint_parallel_matches_serial(self):
        package = REPO / "src" / "repro" / "analysis"
        serial = analyze_paths([package], jobs=1, use_cache=False)
        parallel = analyze_paths([package], jobs=2, use_cache=False)
        assert serial == parallel == []


class TestConfig:
    def test_pyproject_matches_builtin_defaults(self):
        # Satellite 1: the declarative config is byte-equal to the
        # in-code defaults, so deleting the hardcoded checker scopes
        # changed nothing.
        loaded = load_config(REPO)
        assert loaded == replace(LintConfig(), root=str(REPO),
                                 baseline="lint-baseline.json")

    def test_findings_equal_between_loaded_and_builtin(self):
        loaded = load_config(REPO)
        builtin = replace(LintConfig(), root=str(REPO),
                          baseline="lint-baseline.json")
        target = FIXTURES / "suppressions.py"
        assert (analyze_paths([target], use_cache=False, config=loaded)
                == analyze_paths([target], use_cache=False, config=builtin))

    def test_repo_layer_dag_is_acyclic(self):
        DEFAULT_LAYERS.require_acyclic()

    def test_cyclic_layer_graph_is_rejected(self):
        spec = LayerSpec(allow=(("a", ("b",)), ("b", ("a",))))
        with pytest.raises(ConfigurationError, match="not a DAG"):
            spec.require_acyclic()

    def test_find_project_picks_nearest_pyproject(self):
        config = find_project([GRAPHPROJ / "src" / "proj" / "cli.py"])
        assert config.root == str(GRAPHPROJ.resolve())
        assert config.entry_points == (("proj.cli", "main"),)

    def test_no_project_disables_graph_rules(self, tmp_path):
        lone = tmp_path / "lone.py"
        lone.write_text("def nobody_uses_me():\n    return 1\n",
                        encoding="utf-8")
        result = run_analysis([lone], use_cache=False, config=LintConfig())
        assert result.graph_modules == 0
        assert result.findings == []

    def test_fallback_toml_parser_matches_tomllib(self):
        tomllib = pytest.importorskip("tomllib")
        from repro.analysis.config import _parse_toml_subset
        for pyproject in (REPO / "pyproject.toml",
                          GRAPHPROJ / "pyproject.toml"):
            text = pyproject.read_text(encoding="utf-8")
            with pyproject.open("rb") as handle:
                reference = tomllib.load(handle)
            parsed = _parse_toml_subset(text)
            assert (parsed["tool"]["mems-repro"]["lint"]
                    == reference["tool"]["mems-repro"]["lint"])
            assert (parsed["project"]["scripts"]
                    == reference["project"]["scripts"])

    def test_config_is_hashable_and_picklable(self):
        import pickle
        config = load_config(REPO)
        assert hash(config) == hash(pickle.loads(pickle.dumps(config)))
        assert config.fingerprint() == pickle.loads(
            pickle.dumps(config)).fingerprint()


class TestSarif:
    def test_sarif_schema(self, tmp_path):
        findings = lint_graphproj(tmp_path).findings
        payload = json.loads(render_sarif(findings))
        assert payload["version"] == SARIF_VERSION == "2.1.0"
        assert payload["$schema"].endswith("sarif-2.1.0.json")
        (run,) = payload["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "mems-repro-lint"
        assert {rule["id"] for rule in driver["rules"]} >= set(all_rules())
        assert len(run["results"]) == len(findings)
        result = run["results"][0]
        location = result["locations"][0]["physicalLocation"]
        region = location["region"]
        assert region["startLine"] == findings[0].line
        assert region["startColumn"] == findings[0].col + 1  # 1-based
        assert result["level"] == "error"

    def test_cli_writes_sarif_file(self, tmp_path):
        sarif = tmp_path / "lint.sarif"
        stream = io.StringIO()
        code = run_lint([str(GRAPHPROJ / "src")], stream=stream,
                        no_cache=True, sarif_path=str(sarif))
        assert code == EXIT_FINDINGS
        payload = json.loads(sarif.read_text(encoding="utf-8"))
        assert payload["version"] == "2.1.0"
        assert payload["runs"][0]["results"]


class TestBaseline:
    def test_write_then_enforce_round_trip(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        stream = io.StringIO()
        code = run_lint([str(GRAPHPROJ / "src")], stream=stream,
                        no_cache=True, write_baseline=str(baseline))
        assert code == EXIT_CLEAN
        accepted = load_baseline(baseline)
        assert accepted[("dead-export",
                         "src/proj/beta/util.py")] == 1
        # With the baseline applied the dirty fixture gates clean.
        stream = io.StringIO()
        code = run_lint([str(GRAPHPROJ / "src")], stream=stream,
                        no_cache=True, baseline=str(baseline))
        assert code == EXIT_CLEAN

    def test_new_violation_escapes_the_baseline(self, tmp_path):
        root = tmp_path / "graphproj"
        shutil.copytree(GRAPHPROJ, root)
        baseline = tmp_path / "baseline.json"
        run_lint([str(root / "src")], stream=io.StringIO(),
                 no_cache=True, write_baseline=str(baseline))
        target = root / "src" / "proj" / "gamma" / "extra.py"
        target.write_text(target.read_text(encoding="utf-8")
                          + "\n\ndef newly_dead() -> int:\n    return 6\n",
                          encoding="utf-8")
        result = run_analysis([root / "src"], use_cache=False,
                              baseline_path=baseline)
        assert [f.rule for f in result.findings] == ["dead-export"]
        assert "newly_dead" in result.findings[0].message

    def test_count_semantics_report_the_whole_debt(self):
        from repro.analysis.base import Finding
        findings = [
            Finding(path="a.py", line=1, col=0, rule="r", message="one"),
            Finding(path="a.py", line=9, col=0, rule="r", message="two"),
        ]
        # Over budget: every finding for the (rule, path) is reported.
        assert apply_baseline(findings, {("r", "a.py"): 1}) == findings
        assert apply_baseline(findings, {("r", "a.py"): 2}) == []
        rendered = render_baseline(findings)
        assert json.loads(rendered)["counts"]["r"]["a.py"] == 2

    def test_malformed_baseline_is_a_usage_error(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"schema": 99, "counts": {}}', encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_baseline(bad)
        bad.write_text('{"schema": 1, "counts": {"r": {"a.py": -1}}}',
                       encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_baseline(bad)

    def test_repo_baseline_is_empty(self):
        assert load_baseline(REPO / "lint-baseline.json") == {}


class TestCliFlags:
    def test_rule_flag_is_repeatable(self, tmp_path):
        stream = io.StringIO()
        code = run_lint([str(GRAPHPROJ / "src")],
                        rules=["dead-export", "shim-freshness"],
                        json_output=True, stream=stream, no_cache=True)
        assert code == EXIT_FINDINGS
        payload = json.loads(stream.getvalue())
        assert {f["rule"] for f in payload["findings"]} == {
            "dead-export", "shim-freshness"}

    def test_changed_lints_the_git_status_files(self, monkeypatch):
        fixture = FIXTURES / "no_bare_assert.py"
        porcelain = (f" M {fixture}\n"
                     f"D  {FIXTURES / 'deleted.py'}\n"
                     f"?? {FIXTURES / 'notes.txt'}\n")
        monkeypatch.setattr("repro.analysis.cli._git_status_porcelain",
                            lambda: porcelain)
        stream = io.StringIO()
        code = run_lint(["ignored-when-changed"], changed=True,
                        json_output=True, stream=stream, no_cache=True)
        assert code == EXIT_FINDINGS
        payload = json.loads(stream.getvalue())
        assert {Path(f["path"]).name for f in payload["findings"]} == {
            "no_bare_assert.py"}

    def test_changed_with_clean_tree_is_clean(self, monkeypatch):
        monkeypatch.setattr("repro.analysis.cli._git_status_porcelain",
                            lambda: "")
        stream = io.StringIO()
        assert run_lint([], changed=True, stream=stream,
                        no_cache=True) == EXIT_CLEAN

    def test_parse_porcelain_forms(self):
        text = (" M src/a.py\n"
                "A  src/b.py\n"
                "R  src/old.py -> src/new.py\n"
                "D  src/gone.py\n"
                "?? src/untracked.py\n"
                "?? README.md\n")
        assert parse_porcelain(text) == [
            "src/a.py", "src/b.py", "src/new.py", "src/untracked.py"]

    def test_exit_code_contract(self, tmp_path):
        assert (EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE) == (0, 1, 2)
        clean = tmp_path / "clean.py"
        clean.write_text('"""Nothing to see."""\n', encoding="utf-8")
        assert run_lint([str(clean)], stream=io.StringIO(),
                        no_cache=True) == 0
        assert run_lint([str(GRAPHPROJ / "src")], stream=io.StringIO(),
                        no_cache=True) == 1
        assert run_lint([str(clean)], rules=["no-such-rule"],
                        stream=io.StringIO(), no_cache=True) == 2


class TestSuppressionEdges:
    def test_comment_on_continuation_line_covers_the_statement(
            self, tmp_path):
        target = tmp_path / "multi.py"
        target.write_text(
            "SIZE = (1_000_000\n"
            "        * 3)  # repro-lint: disable=unit-literals\n",
            encoding="utf-8")
        assert analyze_file(target) == []

    def test_comment_on_first_line_covers_later_physical_lines(
            self, tmp_path):
        target = tmp_path / "multi.py"
        target.write_text(
            "SIZES = [  # repro-lint: disable=unit-literals\n"
            "    1_000_000,\n"
            "    2_000_000,\n"
            "]\n",
            encoding="utf-8")
        assert analyze_file(target) == []

    def test_standalone_comment_covers_only_its_own_line(self, tmp_path):
        target = tmp_path / "standalone.py"
        target.write_text(
            "# repro-lint: disable=unit-literals\n"
            "SIZE = 1_000_000\n",
            encoding="utf-8")
        found = analyze_file(target)
        assert [f.rule for f in found] == ["unit-literals"]

    def test_parse_suppressions_expands_logical_lines(self):
        source = ("value = compute(\n"
                  "    1, 2,\n"
                  ")  # repro-lint: disable=determinism\n")
        suppressed = parse_suppressions(source)
        assert suppressed[1] == frozenset({"determinism"})
        assert suppressed[2] == frozenset({"determinism"})
        assert suppressed[3] == frozenset({"determinism"})

    def test_unknown_rule_in_suppression_is_a_finding(self, tmp_path):
        target = tmp_path / "typo.py"
        target.write_text(
            "SIZE = 1_000_000  # repro-lint: disable=unit-litterals\n",
            encoding="utf-8")
        found = analyze_file(target)
        rules = [f.rule for f in found]
        assert UNKNOWN_SUPPRESSION_RULE in rules
        assert "unit-literals" in rules  # the typo silenced nothing
        message = next(f.message for f in found
                       if f.rule == UNKNOWN_SUPPRESSION_RULE)
        assert "unit-litterals" in message
        assert "known rules" in message
        assert run_lint([str(target)], stream=io.StringIO(),
                        no_cache=True) == EXIT_FINDINGS

    def test_correctly_named_suppression_still_works(self, tmp_path):
        target = tmp_path / "ok.py"
        target.write_text(
            "SIZE = 1_000_000  # repro-lint: disable=unit-literals\n",
            encoding="utf-8")
        assert analyze_file(target) == []
