#!/usr/bin/env python3
"""Quickstart: size a streaming server with and without a MEMS buffer.

Reproduces the paper's core result on one configuration: a 2007-class
server (FutureDisk + two G3 MEMS devices, Table 3) streaming 2,400
DivX (100 KB/s) streams — 80% of the disk's bandwidth, where efficient
buffering matters.  The MEMS buffer cuts the DRAM requirement and the
buffering cost by an order of magnitude.

Run:  python examples/quickstart.py
"""

from repro import SystemParameters, compare_buffer_costs, design_mems_buffer
from repro.core.theorems import min_buffer_disk_dram
from repro.units import KB, MB, bytes_to_human

N_STREAMS = 2_400
BIT_RATE = 100 * KB  # DivX / MPEG-4


def main() -> None:
    params = SystemParameters.table3_default(n_streams=N_STREAMS,
                                             bit_rate=BIT_RATE, k=2)
    print(f"Server: {N_STREAMS} streams at {BIT_RATE / KB:.0f} KB/s "
          f"({params.disk_utilization:.0%} of disk bandwidth)")
    print(f"Devices: disk {params.r_disk / MB:.0f} MB/s, "
          f"MEMS bank {params.mems_bank_bandwidth / MB:.0f} MB/s "
          f"(k={params.k}), latency ratio {params.latency_ratio:.1f}")
    print()

    # Without MEMS: Theorem 1.
    per_stream = min_buffer_disk_dram(params)
    total_without = N_STREAMS * per_stream
    print("Without MEMS buffer (Theorem 1):")
    print(f"  per-stream DRAM  {bytes_to_human(per_stream)}")
    print(f"  total DRAM       {bytes_to_human(total_without)}")
    print()

    # With the MEMS buffer: Theorem 2.
    design = design_mems_buffer(params)
    print("With 2x G3 MEMS buffer (Theorem 2):")
    print(f"  disk IO cycle    {design.t_disk:.2f} s "
          f"(disk IOs of {bytes_to_human(design.s_disk_mems)})")
    print(f"  MEMS IO cycle    {design.t_mems:.4f} s "
          f"(M={design.m} disk transfers per MEMS cycle)")
    print(f"  per-stream DRAM  {bytes_to_human(design.s_mems_dram)}")
    print(f"  total DRAM       {bytes_to_human(design.total_dram)}")
    print(f"  DRAM reduction   {total_without / design.total_dram:.1f}x")
    print()

    comparison = compare_buffer_costs(params)
    print("Buffering cost (Equations 1-2):")
    print(f"  without MEMS     ${comparison.cost_without:,.2f}")
    print(f"  with MEMS        ${comparison.cost_with:,.2f} "
          f"(incl. ${params.mems_bank_cost:.0f} MEMS bank)")
    print(f"  saving           ${comparison.savings:,.2f} "
          f"({comparison.percent_reduction:.0f}%)")


if __name__ == "__main__":
    main()
