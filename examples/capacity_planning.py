#!/usr/bin/env python3
"""Capacity planning: admission control, mixed media, and VBR cushions.

A server operator's view of the model:

  1. fill a fixed-DRAM server with streams through the admission
     controller (one stream at a time, as arrivals would),
  2. compare plain vs MEMS-buffered capacity for a *mixed* population
     (mp3 + DivX + DVD) via the average-bit-rate reduction, and
  3. size the extra per-stream cushion a VBR stream needs on top of
     the CBR buffer (footnote 1 of the paper).

Run:  python examples/capacity_planning.py
"""

from repro import SystemParameters
from repro.core.theorems import min_buffer_direct
from repro.scheduling import AdmissionController
from repro.units import GB, KB, MB, bytes_to_human
from repro.workloads import average_bit_rate
from repro.workloads.bitrates import DIVX, DVD, MP3
from repro.workloads.vbr import (
    cushion_for_trace,
    make_vbr_trace,
    vbr_buffer_requirement,
)

DRAM_BUDGET = 2 * GB


def main() -> None:
    # 1. Incremental admission at 100 KB/s.
    params = SystemParameters.table3_default(n_streams=1, bit_rate=100 * KB,
                                             k=2)
    plain = AdmissionController(params, DRAM_BUDGET, configuration="none")
    buffered = AdmissionController(params, DRAM_BUDGET,
                                   configuration="buffer")
    n_plain = plain.fill()
    n_buffered = buffered.fill()
    print(f"Admission with {DRAM_BUDGET / GB:.0f} GB DRAM at 100 KB/s:")
    print(f"  disk-to-DRAM: {n_plain} streams")
    print(f"  via 2x G3 MEMS buffer: {n_buffered} streams "
          f"({n_buffered / n_plain:.1f}x)")
    rejection = plain.try_admit()
    print(f"  next admission rejected because: {rejection.reason}")
    print()

    # 2. A mixed population: the paper's average-rate simplification
    # predicts the totals exactly, but per-class buffers need the exact
    # multi-class analysis (S_c = B_c * T, not B-bar * T).
    from repro.core.multiclass import StreamClass, design_multiclass_direct

    mix = {MP3: 2_000, DIVX: 500, DVD: 50}
    avg = average_bit_rate(mix)
    n_total = sum(mix.values())
    mixed = SystemParameters.table3_default(n_streams=n_total, bit_rate=avg,
                                            k=2)
    per_stream = min_buffer_direct(n_total, avg, mixed.r_disk, mixed.l_disk)
    print(f"Mixed population ({n_total} streams, "
          f"B-bar = {avg / KB:.1f} KB/s):")
    print(f"  average-rate model: {bytes_to_human(per_stream)}/stream; "
          f"total {bytes_to_human(n_total * per_stream)}")
    classes = [StreamClass(m.name, m.bit_rate, count)
               for m, count in mix.items()]
    exact = design_multiclass_direct(classes, rate=mixed.r_disk,
                                     latency=mixed.l_disk)
    print(f"  exact multi-class total {bytes_to_human(exact.total_dram)} "
          f"(identical), but per class:")
    for cls in classes:
        print(f"    {cls.name:>5}: {bytes_to_human(exact.buffer_for(cls.name))}"
              f" per stream")
    from repro.core.buffer_model import design_mems_buffer

    design = design_mems_buffer(mixed)
    print(f"  with MEMS buffer: total {bytes_to_human(design.total_dram)} "
          f"({n_total * per_stream / design.total_dram:.1f}x less)")
    print()

    # 3. VBR cushion (CBR + cushion model).
    print("VBR cushion on top of the CBR buffer (1 MB/s average):")
    cbr = min_buffer_direct(100, 1 * MB, mixed.r_disk, mixed.l_disk)
    for burstiness in (0.1, 0.3, 0.5):
        trace = make_vbr_trace(average_rate=1 * MB, n_windows=1_800,
                               burstiness=burstiness, seed=11)
        cushion = cushion_for_trace(trace)
        total = vbr_buffer_requirement(cbr, trace)
        print(f"  burstiness {burstiness:.0%}: peak rate "
              f"{trace.peak_rate / MB:.2f} MB/s, cushion "
              f"{bytes_to_human(cushion)} -> per-stream buffer "
              f"{bytes_to_human(total)} (CBR alone: {bytes_to_human(cbr)})")


if __name__ == "__main__":
    main()
