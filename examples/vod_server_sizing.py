#!/usr/bin/env python3
"""Video-on-demand server sizing: pick the best MEMS configuration.

Scenario from the paper's introduction: a VoD provider serves DVD
(1 MB/s) streams from a 1 TB catalog whose popularity follows a 10:90
distribution.  For a range of total buffering budgets, this example
compares the three architectures of the paper —

  1. plain disk-to-DRAM (all budget on DRAM),
  2. MEMS *buffer* between disk and DRAM,
  3. MEMS *cache* for popular titles (replicated and striped),

and prints the throughput each achieves, i.e. a buying guide.

Run:  python examples/vod_server_sizing.py
"""

from repro import (
    BimodalPopularity,
    CachePolicy,
    SystemParameters,
    max_streams_with_buffer,
    max_streams_with_cache,
    max_streams_without_mems,
)
from repro.devices.catalog import DRAM_2007, MEMS_G3
from repro.errors import AdmissionError, CapacityError
from repro.units import MB

BIT_RATE = 1 * MB
POPULARITY = BimodalPopularity.parse("10:90")
BUDGETS = (50.0, 100.0, 200.0, 400.0)
#: MEMS devices the buffer configuration uses (the bank must carry
#: twice the disk's streaming load, Section 3.1).
BUFFER_DEVICES = 2


def best_cache(total_budget: float, policy: CachePolicy) -> tuple[int, int]:
    """(streams, k) of the best cache size affordable within the budget."""
    best = (0, 0)
    k = 1
    while k * MEMS_G3.cost_per_device < total_budget:
        dram = (total_budget
                - k * MEMS_G3.cost_per_device) / DRAM_2007.cost_per_byte
        params = SystemParameters.table3_default(n_streams=1,
                                                 bit_rate=BIT_RATE, k=k)
        try:
            streams = int(max_streams_with_cache(params, policy, POPULARITY,
                                                 dram))
        except AdmissionError:
            streams = 0
        if streams > best[0]:
            best = (streams, k)
        k += 1
    return best


def main() -> None:
    print(f"Catalog: 1 TB of DVD titles, popularity {POPULARITY} "
          f"(skew {POPULARITY.skew:.0f}x)")
    print(f"{'budget':>8} | {'disk only':>9} | {'MEMS buffer':>11} | "
          f"{'repl. cache':>16} | {'striped cache':>16}")
    print("-" * 75)
    for budget in BUDGETS:
        plain_params = SystemParameters.table3_default(
            n_streams=1, bit_rate=BIT_RATE, k=1)
        plain = int(max_streams_without_mems(
            plain_params, budget / DRAM_2007.cost_per_byte))

        buffer_cost = BUFFER_DEVICES * MEMS_G3.cost_per_device
        if budget > buffer_cost:
            buffer_params = SystemParameters.table3_default(
                n_streams=1, bit_rate=BIT_RATE, k=BUFFER_DEVICES)
            dram = (budget - buffer_cost) / DRAM_2007.cost_per_byte
            try:
                buffered = int(max_streams_with_buffer(buffer_params, dram))
            except (AdmissionError, CapacityError):
                buffered = 0
        else:
            buffered = 0

        repl, repl_k = best_cache(budget, CachePolicy.REPLICATED)
        stri, stri_k = best_cache(budget, CachePolicy.STRIPED)
        print(f"{budget:>7.0f}$ | {plain:>9} | {buffered:>11} | "
              f"{repl:>10} (k={repl_k}) | {stri:>10} (k={stri_k})")
    print()
    print("Reading the table: the MEMS buffer wins when throughput is")
    print("buffer-bound (it makes the one disk efficient); the cache wins")
    print("once it can hold the popular titles, because cached streams")
    print("bypass the disk entirely and add the bank's bandwidth.")


if __name__ == "__main__":
    main()
