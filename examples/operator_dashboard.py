#!/usr/bin/env python3
"""Operator dashboard: blocking probability, recording, sled placement.

Three operator-level questions the core model answers when combined
with the extension modules:

  1. *How often do viewers get turned away?*  Convert each
     configuration's admission capacity into an Erlang blocking
     probability (validated against an arrival simulation).
  2. *How many camera (write) feeds can the server record alongside its
     viewers?*  (Section 3.1's write-stream generalisation.)
  3. *Does laying popular titles out near the sled centre pay off?*
     (Section 7's placement future work.)

Run:  python examples/operator_dashboard.py
"""

from repro import BimodalPopularity, CachePolicy, SystemParameters
from repro.core.capacity import streams_supported
from repro.core.write_streams import max_writers_supported
from repro.devices import MEMS_G3, organ_pipe_layout, placement_improvement
from repro.units import GB, KB, seconds_to_human
from repro.workloads import erlang_b, simulate_blocking
from repro.workloads.popularity_gen import RequestSampler

DRAM_BUDGET = 2 * GB
BIT_RATE = 200 * KB
MEAN_VIEWING = 40 * 60.0  # 40-minute sessions


def main() -> None:
    params = SystemParameters.table3_default(n_streams=1, bit_rate=BIT_RATE,
                                             k=2)
    popularity = BimodalPopularity.parse("5:95")

    capacities = {
        "disk only": streams_supported(params, DRAM_BUDGET),
        "MEMS buffer": streams_supported(params, DRAM_BUDGET,
                                         configuration="buffer"),
        "MEMS cache (repl.)": streams_supported(
            params, DRAM_BUDGET, configuration="cache",
            policy=CachePolicy.REPLICATED, popularity=popularity),
    }

    # 1. Blocking at an offered load just above the *disk-only* capacity.
    offered = 1.02 * capacities["disk only"]
    arrival_rate = offered / MEAN_VIEWING
    print(f"Offered load: {offered:.0f} Erlangs "
          f"({arrival_rate * 3600:.0f} sessions/hour, "
          f"{seconds_to_human(MEAN_VIEWING)} mean viewing)")
    print(f"{'configuration':>20} | {'capacity':>8} | {'Erlang-B':>9} | "
          f"{'simulated':>9}")
    print("-" * 58)
    for name, capacity in capacities.items():
        theory = erlang_b(offered, capacity)
        stats = simulate_blocking(capacity=capacity,
                                  arrival_rate=arrival_rate,
                                  mean_holding=MEAN_VIEWING,
                                  horizon=MEAN_VIEWING * 2_000, seed=13)
        print(f"{name:>20} | {capacity:>8} | {theory:>9.4f} | "
              f"{stats.blocking_probability:>9.4f}")
    print()

    # 2. Recording capacity alongside a fixed viewer population.
    viewers = capacities["disk only"] // 2
    writers = max_writers_supported(params, n_readers=viewers,
                                    dram_budget=DRAM_BUDGET)
    print(f"With {viewers} viewers admitted through the MEMS buffer, the "
          f"same {DRAM_BUDGET / GB:.0f} GB DRAM")
    print(f"also sustains {writers} recording feeds at "
          f"{BIT_RATE / KB:.0f} KB/s each (write streams are")
    print("single-buffered on the bank, so they are cheaper than viewers).")
    print()

    # 3. Sled placement for the cached titles.
    sampler = RequestSampler(popularity, n_titles=40, seed=21)
    weights = list(sampler.title_weights)
    layout = organ_pipe_layout(weights)
    gain = placement_improvement(weights, MEMS_G3)
    centre_item = layout.band_of.index(layout.n_bands // 2)
    print(f"Organ-pipe placement of 40 cached titles: most popular title "
          f"(#{centre_item}) at the sled centre;")
    print(f"expected inter-title seek improves {gain:.2f}x over "
          f"popularity-blind sequential placement.")


if __name__ == "__main__":
    main()
