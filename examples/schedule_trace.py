#!/usr/bin/env python3
"""Trace the two-level disk/MEMS IO schedule of Figures 4 and 5.

Builds the paper's illustrative configurations — N=10 streams on a
single-device MEMS buffer (Figure 4) and N=45 streams on a k=3 bank
(Figure 5) — materialises their hyper-period schedules, prints the
per-cycle operation mix, and executes them in the event simulator to
show the steady-state balance and jitter-freedom.

Run:  python examples/schedule_trace.py
"""

from collections import Counter

from repro import SystemParameters, design_mems_buffer
from repro.scheduling import OperationKind, build_buffer_schedule
from repro.simulation import simulate_buffer_pipeline, trace_buffer_schedule
from repro.units import GB, MB, bytes_to_human


def trace(n_streams: int, k: int, label: str) -> None:
    params = SystemParameters.table3_default(n_streams=n_streams,
                                             bit_rate=1 * MB, k=k)
    design = design_mems_buffer(params)
    schedule = build_buffer_schedule(design)
    print(f"--- {label}: N={n_streams}, k={k} ---")
    print(f"disk IO cycle  T_disk = {design.t_disk:.3f} s "
          f"({bytes_to_human(design.s_disk_mems)} per disk IO)")
    print(f"MEMS IO cycle  T_mems = {design.t_mems:.4f} s "
          f"(T_mems/T_disk = M/N = {design.m}/{n_streams})")
    print(f"hyper-period: {len(schedule.disk_cycles)} disk cycles / "
          f"{len(schedule.mems_cycles)} MEMS cycles "
          f"({schedule.hyper_period:.2f} s)")

    first = schedule.mems_cycles[0]
    mix = Counter(op.kind for op in first)
    print(f"one MEMS cycle services {mix[OperationKind.MEMS_READ]} "
          f"DRAM transfers + {mix[OperationKind.MEMS_WRITE]} disk transfers")
    per_device = Counter(op.device_index for op in first
                         if op.kind is OperationKind.MEMS_READ)
    print("DRAM transfers per device:",
          dict(sorted(per_device.items())))

    schedule.verify_steady_state()
    print("steady-state balance: OK "
          "(disk reads == MEMS writes == MEMS reads per hyper-period)")

    report = simulate_buffer_pipeline(design, n_hyper_periods=3)
    busiest = max(u.worst_cycle_utilization
                  for name, u in report.resources.items()
                  if name.startswith("mems"))
    print(f"simulated 3 hyper-periods: jitter-free={report.jitter_free}, "
          f"steady short reads={report.notes['steady_short_reads']:.0f}")
    print(f"busiest MEMS cycle at {busiest:.1%} of T_mems; "
          f"peak bank occupancy {report.peak_mems_occupancy / GB:.2f} GB "
          f"of {params.mems_bank_capacity / GB:.0f} GB (Eq. 7 bound: "
          f"{2 * n_streams * params.bit_rate * design.t_disk / GB:.2f} GB)")
    print()
    print("timeline (cf. the paper's figure):")
    trace_obj = trace_buffer_schedule(design, n_mems_cycles=3)
    print(trace_obj.render(width=72))
    print()


def main() -> None:
    trace(n_streams=10, k=1, label="Figure 4 (single MEMS device)")
    trace(n_streams=45, k=3, label="Figure 5 (three-device bank)")


if __name__ == "__main__":
    main()
