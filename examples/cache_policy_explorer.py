#!/usr/bin/env python3
"""Striped vs replicated cache management, analytically and empirically.

Section 3.2 of the paper proposes two ways to run a k-device MEMS
cache: bit-striping (k-fold bandwidth, single-device latency, full
capacity) and replication (k-fold bandwidth, k-fold fewer seeks per
device, single-device capacity).  This example

  1. sweeps the popularity skew and reports which policy serves more
     streams (Theorems 3-4),
  2. validates the analytical hit-rate (Eq. 11) against Monte-Carlo
     request sampling over a generated catalog, and
  3. executes both cache schedules in the event simulator to confirm
     they are jitter-free at the analytical DRAM sizes.

Run:  python examples/cache_policy_explorer.py
"""

from repro import BimodalPopularity, CachePolicy, SystemParameters
from repro.core.cache_model import cache_capacity_fraction, design_mems_cache
from repro.core.capacity import max_streams_with_cache
from repro.simulation import simulate_cache_pipeline
from repro.units import GB, KB
from repro.workloads import empirical_hit_rate

BIT_RATE = 100 * KB
K_DEVICES = 4
DRAM_BUDGET = 4 * GB
DISTRIBUTIONS = ("1:99", "5:95", "10:90", "20:80", "50:50")


def main() -> None:
    params = SystemParameters.table3_default(n_streams=1, bit_rate=BIT_RATE,
                                             k=K_DEVICES)

    print(f"k={K_DEVICES} G3 devices, {DRAM_BUDGET / GB:.0f} GB DRAM, "
          f"{BIT_RATE / KB:.0f} KB/s streams")
    print(f"{'popularity':>10} | {'p(striped)':>10} | {'p(repl.)':>9} | "
          f"{'striped N':>9} | {'replicated N':>12} | winner")
    print("-" * 72)
    for spec in DISTRIBUTIONS:
        popularity = BimodalPopularity.parse(spec)
        row = {}
        for policy in (CachePolicy.STRIPED, CachePolicy.REPLICATED):
            row[policy] = int(max_streams_with_cache(
                params, policy, popularity, DRAM_BUDGET))
        p_striped = cache_capacity_fraction(
            CachePolicy.STRIPED, K_DEVICES, params.size_mems,
            params.size_disk)
        p_repl = cache_capacity_fraction(
            CachePolicy.REPLICATED, K_DEVICES, params.size_mems,
            params.size_disk)
        winner = ("striped" if row[CachePolicy.STRIPED]
                  > row[CachePolicy.REPLICATED] else "replicated")
        print(f"{spec:>10} | {p_striped:>10.1%} | {p_repl:>9.1%} | "
              f"{row[CachePolicy.STRIPED]:>9} | "
              f"{row[CachePolicy.REPLICATED]:>12} | {winner}")
    print()

    # Eq. 11 vs Monte-Carlo sampling over a 1,000-title catalog.
    print("Hit-rate validation (Eq. 11 vs 100k sampled requests):")
    popularity = BimodalPopularity.parse("10:90")
    for cached_fraction in (0.01, 0.04, 0.10, 0.25):
        analytical = popularity.hit_rate(cached_fraction)
        empirical = empirical_hit_rate(popularity, n_titles=1_000,
                                       cached_fraction=cached_fraction,
                                       seed=7)
        print(f"  p={cached_fraction:>5.0%}: analytical {analytical:.3f}, "
              f"empirical {empirical:.3f}")
    print()

    # Execute both schedules at a moderate population.
    n = 400
    print(f"Simulating both cache schedules at N={n}:")
    for policy in (CachePolicy.STRIPED, CachePolicy.REPLICATED):
        design = design_mems_cache(params.replace(n_streams=n), policy,
                                   popularity)
        report = simulate_cache_pipeline(design, n_cycles=25)
        worst = max((u.worst_cycle_utilization
                     for u in report.resources.values()), default=0.0)
        print(f"  {policy.value:>10}: jitter-free={report.jitter_free}, "
              f"worst cycle utilisation {worst:.1%}, "
              f"{report.notes['n_cache_streams']:.0f} streams on the cache")


if __name__ == "__main__":
    main()
