"""Legacy setup shim.

Kept so that ``pip install -e .`` (and ``python setup.py develop``)
work in minimal environments that lack the ``wheel`` package needed by
PEP 660 editable builds; all project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
