"""Continuously-draining stream buffers.

Each media stream owns a DRAM buffer that is *credited* in bursts (when
its IO completes) and *drained* continuously at the stream's bit-rate
by the playback process.  Between discrete events the level is a linear
function of time, so the buffer is modelled exactly — no sampling
artifacts — by updating at credit/inspection times only.

A stream starts consuming at its ``playback_start`` (set when its first
IO completes, the standard time-cycle startup).  An *underflow* is any
interval where the level would go negative; its depth and duration are
recorded so tests can assert both absence (at the analytical buffer
size) and presence (below it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError, SimulationError


@dataclass(frozen=True, slots=True)
class UnderflowInterval:
    """One contiguous starvation interval of a stream buffer."""

    stream_id: int
    start: float
    #: Seconds the stream was starved within this drain step.
    duration: float
    #: Bytes of demand that could not be served.
    deficit: float


class StreamBuffer:
    """Exact piecewise-linear model of one stream's staging buffer."""

    __slots__ = ("stream_id", "bit_rate", "capacity", "_level", "_clock",
                 "_playing", "playback_start", "_underflows", "_min_level",
                 "_peak_level")

    def __init__(self, stream_id: int, bit_rate: float, *,
                 capacity: float = math.inf) -> None:
        if stream_id < 0:
            raise ConfigurationError(
                f"stream_id must be >= 0, got {stream_id!r}")
        if bit_rate <= 0:
            raise ConfigurationError(
                f"bit_rate must be > 0, got {bit_rate!r}")
        if capacity <= 0:
            raise ConfigurationError(
                f"capacity must be > 0, got {capacity!r}")
        self.stream_id = stream_id
        self.bit_rate = bit_rate
        self.capacity = capacity
        self._level = 0.0
        self._clock = 0.0
        self._playing = False
        self.playback_start: float | None = None
        self._underflows: list[UnderflowInterval] = []
        self._min_level = math.inf
        self._peak_level = 0.0

    # -- State ---------------------------------------------------------------

    @property
    def playing(self) -> bool:
        """True once playback has started."""
        return self._playing

    @property
    def underflows(self) -> list[UnderflowInterval]:
        """All starvation intervals observed so far."""
        return list(self._underflows)

    @property
    def min_level(self) -> float:
        """Lowest level observed while playing (inf if never played)."""
        return self._min_level

    @property
    def peak_level(self) -> float:
        """Highest level ever observed (bytes)."""
        return self._peak_level

    def level(self, time: float) -> float:
        """Buffer level at ``time`` (>= the last update)."""
        self._advance(time)
        return self._level

    # -- Transitions -----------------------------------------------------------

    def credit(self, time: float, n_bytes: float) -> None:
        """Deposit ``n_bytes`` at ``time`` (an IO completed)."""
        if n_bytes < 0:
            raise ConfigurationError(f"n_bytes must be >= 0, got {n_bytes!r}")
        self._advance(time)
        self._level += n_bytes
        if self._level > self.capacity * (1 + 1e-9):
            raise SimulationError(
                f"stream {self.stream_id} buffer overflow at t={time:.6g}s: "
                f"level {self._level:.6g} B exceeds capacity "
                f"{self.capacity:.6g} B")
        self._peak_level = max(self._peak_level, self._level)
        if self._playing:
            self._min_level = min(self._min_level, self._level)

    def start_playback(self, time: float) -> None:
        """Begin continuous consumption at ``time``."""
        self._advance(time)
        if self._playing:
            raise SimulationError(
                f"stream {self.stream_id} already playing")
        self._playing = True
        self.playback_start = time
        self._min_level = min(self._min_level, self._level)

    def _advance(self, time: float) -> None:
        """Drain the buffer from the internal clock up to ``time``."""
        if time < self._clock - 1e-12:
            raise SimulationError(
                f"stream {self.stream_id} observed time going backwards: "
                f"{self._clock:.9g} -> {time:.9g}")
        elapsed = max(0.0, time - self._clock)
        self._clock = max(self._clock, time)
        if not self._playing or elapsed == 0.0:
            return
        demand = self.bit_rate * elapsed
        # Forgive floating-point-epsilon deficits: the analytical bounds
        # are exactly tight, so the level legitimately touches zero at
        # every refill instant and accumulated rounding must not be
        # reported as starvation.
        tolerance = 1e-6 * max(demand, 1.0)
        if demand <= self._level + tolerance:
            self._level = max(self._level - demand, 0.0)
        else:
            deficit = demand - self._level
            starved_for = deficit / self.bit_rate
            self._underflows.append(UnderflowInterval(
                stream_id=self.stream_id,
                start=time - starved_for,
                duration=starved_for,
                deficit=deficit))
            self._level = 0.0
        self._min_level = min(self._min_level, self._level)
