"""Calendar-queue discrete-event simulation core.

The engine stores events in a bucketed timing wheel (a *calendar
queue*): absolute time is divided into fixed-width buckets, each bucket
holds an unsorted append-only list of entries, and a small min-heap of
bucket indices orders the buckets themselves.  The run loop drains one
bucket at a time — sort the bucket once, then walk it — so the common
mostly-monotone schedules the runtime generates cost O(1) per event
instead of the O(log n) heap sift of the previous design.

Entries are mutable lists ``[time, sequence, callback, label, period]``
ordered by ``(time, sequence)`` (the sequence is unique per entry, so a
comparison never reaches the callback).  Recurring events created with
:meth:`Simulator.every` carry their interval in the ``period`` slot and
are re-armed in place by the drain loop: the same list object, and the
same sequence number, hop from bucket to bucket with no allocation.  A
recurring event therefore keeps its *creation-order* identity for
FIFO tie-breaking across firings.

Two escape hatches keep pathological schedules correct:

* events at non-finite times cannot be bucketed — ``+inf`` entries park
  in a side heap drained after every finite bucket, and ``NaN`` is
  rejected at push time (it has no place in any total order);
* a schedule much sparser than the bucket width (average bucket
  occupancy below ``2`` over a 256-refill window) degrades the wheel
  into a plain binary heap, which is the better structure there.  The
  switch is sticky and invisible: ordering is identical in both modes.
  ``EventQueue(bucket_width=None)`` selects the heap mode directly —
  the equivalence tests use it as the oracle for the wheel.

All queue logic lives in :class:`EventQueue`; :meth:`Simulator.run`
delegates to the queue's drain primitive, and :meth:`EventQueue.pop`
rides the same refill machinery, so there is exactly one implementation
of the event order.  ``peek_time`` and ``len()`` are exact whenever the
queue is quiescent (between :meth:`Simulator.run` calls); inside a
running drain they may lag by the events of the current bucket.
"""

from __future__ import annotations

import heapq
import itertools
import math
from bisect import bisect_right, insort
from collections.abc import Callable
from typing import NamedTuple

from repro.errors import ConfigurationError, SimulationError

#: Signature of a scheduled callback: receives the simulator.
EventCallback = Callable[["Simulator"], None]

#: Default calendar bucket width, seconds.  Tuned to the runtime's
#: IO-cycle timescale; schedules sparser than this fall back to the
#: heap automatically.
DEFAULT_BUCKET_WIDTH = 0.001

#: Sparseness probe: every ``_SPARSE_WINDOW`` bucket refills, a drain
#: checks the mean bucket occupancy and falls back to the heap below
#: ``_SPARSE_OCCUPANCY`` events per bucket (the wheel's bucket-hop
#: overhead only amortises when buckets batch several events).
_SPARSE_WINDOW = 256
_SPARSE_OCCUPANCY = 2.0

_INF = float("inf")

#: Sentinel returned by the wheel drain after degrading to the heap.
_SWITCHED = object()


class _Event(NamedTuple):
    """Named view over one calendar entry (storage stays a plain list)."""

    time: float
    sequence: int
    callback: EventCallback
    label: str


class EventQueue:
    """Time-ordered event calendar (stable for simultaneous events)."""

    __slots__ = ("_scale", "_heap", "_cal", "_idx", "_batch", "_bi",
                 "_cur", "_far", "_counter", "_size")

    def __init__(self, bucket_width: float | None = DEFAULT_BUCKET_WIDTH,
                 ) -> None:
        if bucket_width is not None and not bucket_width > 0:
            raise ConfigurationError(
                f"bucket_width must be > 0 or None, got {bucket_width!r}")
        #: ``1 / bucket_width`` in wheel mode, None in heap mode.
        self._scale = None if bucket_width is None else 1.0 / bucket_width
        self._heap: list[list] = []  # heap mode storage
        self._cal: dict[int, list[list]] = {}  # bucket index -> entries
        self._idx: list[int] = []  # min-heap of non-empty bucket indices
        self._batch: list[list] = []  # bucket being drained, sorted
        self._bi = 0  # drain cursor into _batch
        self._cur = -1  # bucket index of _batch; lower times insort live
        self._far: list[list] = []  # +inf entries (cannot be bucketed)
        self._counter = itertools.count()
        self._size = 0

    @property
    def bucket_width(self) -> float | None:
        """Current bucket width, or None once in heap mode."""
        scale = self._scale
        return None if scale is None else 1.0 / scale

    def push(self, time: float, callback: EventCallback,
             label: str = "") -> None:
        """Schedule ``callback`` at absolute ``time``."""
        self._push(time, callback, label, None)

    def _push(self, time: float, callback: EventCallback, label: str,
              period: float | None) -> None:
        if math.isnan(time):
            raise SimulationError(
                f"event time must not be NaN ({label or 'unlabelled'})")
        self._size += 1
        self._insert([time, next(self._counter), callback, label, period])

    def _insert(self, entry: list) -> None:
        """Route one entry to its bucket / the live batch / a heap."""
        scale = self._scale
        if scale is None:
            heapq.heappush(self._heap, entry)
            return
        time = entry[0]
        if math.isfinite(time):
            i = int(time * scale)
            if i > self._cur:
                cal = self._cal
                bucket = cal.get(i)
                if bucket is None:
                    cal[i] = [entry]
                    heapq.heappush(self._idx, i)
                else:
                    bucket.append(entry)
            else:
                # At or before the bucket being drained: insert into the
                # live batch, past the cursor (never earlier than now).
                insort(self._batch, entry, self._bi)
        elif time > 0:
            heapq.heappush(self._far, entry)
        else:
            # -inf precedes every bucket: drain it from the live batch.
            insort(self._batch, entry, self._bi)

    def _settle(self) -> bool:
        """Refill the live batch if exhausted; True if it has an entry.

        The one refill primitive shared by :meth:`pop`,
        :meth:`peek_time`, and the drain loop: pop the earliest
        non-empty bucket, sort it once, make it the live batch.
        """
        if self._bi >= len(self._batch):
            if self._bi:
                self._batch = []
                self._bi = 0
            if not self._idx:
                return False
            i = heapq.heappop(self._idx)
            bucket = self._cal.pop(i)
            bucket.sort()
            self._batch = bucket
            self._cur = i
        return True

    def _pop_entry(self) -> list | None:
        """Remove and return the earliest raw entry, or None when empty."""
        if self._scale is None:
            if not self._heap:
                return None
            self._size -= 1
            return heapq.heappop(self._heap)
        if self._settle():
            entry = self._batch[self._bi]
            self._bi += 1
            self._size -= 1
            return entry
        if self._far:
            self._size -= 1
            return heapq.heappop(self._far)
        return None

    def pop(self) -> _Event:
        """Remove and return the earliest event.

        A recurring entry re-arms itself ``period`` seconds later (same
        sequence number), exactly as the drain loop would.
        """
        entry = self._pop_entry()
        if entry is None:
            # IndexError matches the container protocol (and the old
            # heapq-backed behaviour), not a configuration problem.
            raise IndexError(  # repro-lint: disable=exception-hygiene
                "pop from an empty event queue")
        event = _Event(entry[0], entry[1], entry[2], entry[3])
        period = entry[4]
        if period is not None:
            entry[0] = entry[0] + period
            self._size += 1
            self._insert(entry)
        return event

    def peek_time(self) -> float | None:
        """Time of the earliest event, or None when empty."""
        if self._scale is None:
            heap = self._heap
            return heap[0][0] if heap else None
        if self._settle():
            return self._batch[self._bi][0]
        far = self._far
        return far[0][0] if far else None

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def _to_heap(self) -> None:
        """Degrade the wheel into the plain heap (sparse schedules)."""
        entries = self._batch[self._bi:]
        for bucket in self._cal.values():
            entries.extend(bucket)
        entries.extend(self._far)
        heapq.heapify(entries)
        self._heap = entries
        self._scale = None
        self._cal = {}
        self._idx = []
        self._batch = []
        self._bi = 0
        self._far = []

    def _drain(self, sim: "Simulator", until: float | None) -> float:
        """Execute events against ``sim`` — the one run-loop primitive."""
        if self._scale is not None:
            result = self._wheel_drain(sim, until)
            if result is not _SWITCHED:
                return result
        return self._heap_drain(sim, until)

    def _wheel_drain(self, sim: "Simulator", until: float | None):
        # The per-event cost here dominates every simulation-backed
        # workload.  The loop drains one sorted bucket at a time in
        # chunks bounded by the horizon (one bisect per chunk, not a
        # compare per event) and the event budget; ``sim._now`` and the
        # drain cursor are written before each callback so re-entrant
        # reads and pushes stay exact, while ``sim._executed`` and the
        # size are synced at chunk boundaries and in the ``finally``.
        cal = self._cal
        idx = self._idx
        far = self._far
        scale = self._scale
        batch = self._batch
        bi = self._bi
        cur = self._cur
        limit = sim._max_events
        executed = sim._executed
        popped = 0
        heappop = heapq.heappop
        heappush = heapq.heappush
        last_i: int | None = None  # re-arm target bucket cache
        last_b: list | None = None
        w_refills = 0
        w_events = 0
        try:
            while True:
                blen = len(batch)
                if bi >= blen:
                    if bi:
                        self._batch = batch = []
                        self._bi = bi = 0
                    if idx:
                        i = heappop(idx)
                        bucket = cal.pop(i)
                        bucket.sort()
                        self._batch = batch = bucket
                        self._cur = cur = i
                        if last_i == i:
                            last_i = last_b = None
                        w_refills += 1
                        w_events += len(bucket)
                        if w_refills == _SPARSE_WINDOW:
                            if w_events < _SPARSE_OCCUPANCY * _SPARSE_WINDOW:
                                self._to_heap()
                                batch = self._batch
                                bi = 0
                                return _SWITCHED
                            w_refills = 0
                            w_events = 0
                        continue
                    if not far:
                        break
                    # Rare path: only +inf events remain.
                    t0 = far[0][0]
                    if until is not None and t0 > until:
                        sim._now = until
                        return until
                    entry = heappop(far)
                    sim._now = entry[0]
                    executed += 1
                    if executed > limit:
                        popped += 1
                        raise SimulationError(
                            f"event budget of {limit} exceeded at "
                            f"t={sim._now:.6g}s; runaway schedule?")
                    entry[2](sim)
                    if entry[4] is None:
                        popped += 1
                    else:
                        heappush(far, entry)  # inf + period == inf
                    continue
                t0 = batch[bi][0]
                if until is not None and t0 > until:
                    sim._now = until
                    return until
                rem = limit - executed
                if rem <= 0:
                    # Replicate the per-event loop: the over-budget
                    # event is consumed (clock advanced, count bumped)
                    # but its callback never runs.
                    entry = batch[bi]
                    bi += 1
                    sim._now = entry[0]
                    executed += 1
                    popped += 1
                    raise SimulationError(
                        f"event budget of {limit} exceeded at "
                        f"t={sim._now:.6g}s; runaway schedule?")
                take = blen - bi
                if take > rem:
                    take = rem
                if until is not None:
                    hi = bisect_right(batch, [until, _INF], bi, blen)
                    if hi - bi < take:
                        take = hi - bi
                # Events pushed by callbacks (or re-armed) into the
                # chunk's span insort past the cursor and extend the
                # walk naturally: batch[bi] is always the earliest
                # pending event, and displaced tail events are picked
                # up when the chunk bounds are recomputed.
                for _ in range(take):
                    entry = batch[bi]
                    bi += 1
                    now = entry[0]
                    sim._now = now
                    # The cursor must be exact before the callback:
                    # re-arms mutate consumed entries in place, so a
                    # push's insort may only ever search batch[bi:].
                    self._bi = bi
                    executed += 1
                    entry[2](sim)
                    period = entry[4]
                    if period is None:
                        popped += 1
                    else:
                        t = now + period
                        entry[0] = t
                        i = int(t * scale)
                        if i == last_i:
                            last_b.append(entry)
                        elif i > cur:
                            bucket = cal.get(i)
                            if bucket is None:
                                cal[i] = bucket = [entry]
                                heappush(idx, i)
                            else:
                                bucket.append(entry)
                            last_i = i
                            last_b = bucket
                        else:
                            insort(batch, entry, bi)
            if until is not None and until > sim._now:
                sim._now = until
            return sim._now
        finally:
            self._bi = bi
            self._size -= popped
            sim._executed = executed

    def _heap_drain(self, sim: "Simulator", until: float | None) -> float:
        # Heap mode: the previous engine's loop, plus in-place re-arm
        # of recurring entries.  Also the oracle for the wheel: both
        # modes execute the identical (time, sequence) total order.
        heap = self._heap
        limit = sim._max_events
        executed = sim._executed
        popped = 0
        heappop = heapq.heappop
        heappush = heapq.heappush
        try:
            while heap:
                if until is not None and heap[0][0] > until:
                    sim._now = until
                    return until
                entry = heappop(heap)
                now = entry[0]
                sim._now = now
                executed += 1
                if executed > limit:
                    popped += 1
                    raise SimulationError(
                        f"event budget of {limit} exceeded at "
                        f"t={sim._now:.6g}s; runaway schedule?")
                entry[2](sim)
                period = entry[4]
                if period is None:
                    popped += 1
                else:
                    entry[0] = now + period
                    heappush(heap, entry)
            if until is not None and until > sim._now:
                sim._now = until
            return sim._now
        finally:
            self._size -= popped
            sim._executed = executed


class Simulator:
    """Runs an event calendar until exhaustion or a time horizon."""

    __slots__ = ("_queue", "_now", "_max_events", "_executed")

    def __init__(self, *, max_events: int = 10_000_000,
                 bucket_width: float | None = DEFAULT_BUCKET_WIDTH) -> None:
        if max_events <= 0:
            raise ConfigurationError(
                f"max_events must be > 0, got {max_events!r}")
        self._queue = EventQueue(bucket_width)
        self._now = 0.0
        self._max_events = max_events
        self._executed = 0

    @property
    def now(self) -> float:
        """Current simulation time, seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events processed so far."""
        return self._executed

    def at(self, time: float, callback: EventCallback,
           label: str = "") -> None:
        """Schedule ``callback`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: now={self._now:.9g}, "
                f"requested {time:.9g} ({label or 'unlabelled'})")
        self._queue.push(time, callback, label)

    def after(self, delay: float, callback: EventCallback,
              label: str = "") -> None:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(
                f"delay must be >= 0, got {delay!r} ({label or 'unlabelled'})")
        self._queue.push(self._now + delay, callback, label)

    def every(self, interval: float, callback: EventCallback,
              label: str = "", *, start: float | None = None) -> None:
        """Schedule ``callback`` to recur every ``interval`` seconds.

        The first firing is at ``start`` (default ``now + interval``);
        the entry re-arms itself in place after each firing — same
        calendar entry, same tie-breaking sequence number — so a horizon
        passed to :meth:`run` bounds the recurrence naturally.
        """
        if not (0 < interval < _INF):
            raise SimulationError(
                f"interval must be > 0 and finite, got {interval!r} "
                f"({label or 'unlabelled'})")
        first = self._now + interval if start is None else start
        if first < self._now:
            raise SimulationError(
                f"cannot schedule into the past: now={self._now:.9g}, "
                f"requested {first:.9g} ({label or 'unlabelled'})")
        self._queue._push(first, callback, label, interval)

    def run(self, until: float | None = None) -> float:
        """Execute events (optionally only up to time ``until``).

        Returns the final simulation time.  Raises
        :class:`~repro.errors.SimulationError` if the event budget is
        exhausted (runaway schedule protection).
        """
        return self._queue._drain(self, until)
