"""Minimal discrete-event simulation core.

A classic event-calendar design: callbacks are scheduled at absolute
times and executed in time order (FIFO among equal times).  The
pipeline simulations in this package are cycle-structured, so the
engine stays deliberately small — an ordered calendar, a clock, and a
run loop with safety limits.

The calendar stores plain ``(time, sequence, callback, label)`` tuples
rather than objects: heap sift compares tuples at C speed on
``(time, sequence)`` (the sequence is unique, so the comparison never
reaches the callback), and the run loop indexes into the tuple instead
of chasing attributes.  :meth:`EventQueue.pop` re-wraps the raw tuple
in the :class:`_Event` named view for callers that inspect events.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from typing import NamedTuple

from repro.errors import ConfigurationError, SimulationError

#: Signature of a scheduled callback: receives the simulator.
EventCallback = Callable[["Simulator"], None]


class _Event(NamedTuple):
    """Named view over one calendar entry (still a plain tuple)."""

    time: float
    sequence: int
    callback: EventCallback
    label: str


class EventQueue:
    """Time-ordered event calendar (stable for simultaneous events)."""

    __slots__ = ("_heap", "_counter")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, EventCallback, str]] = []
        self._counter = itertools.count()

    def push(self, time: float, callback: EventCallback,
             label: str = "") -> None:
        """Schedule ``callback`` at absolute ``time``."""
        heapq.heappush(self._heap,
                       (time, next(self._counter), callback, label))

    def pop(self) -> _Event:
        """Remove and return the earliest event."""
        return _Event(*heapq.heappop(self._heap))

    def peek_time(self) -> float | None:
        """Time of the earliest event, or None when empty."""
        heap = self._heap
        return heap[0][0] if heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class Simulator:
    """Runs an event calendar until exhaustion or a time horizon."""

    __slots__ = ("_queue", "_now", "_max_events", "_executed")

    def __init__(self, *, max_events: int = 10_000_000) -> None:
        if max_events <= 0:
            raise ConfigurationError(
                f"max_events must be > 0, got {max_events!r}")
        self._queue = EventQueue()
        self._now = 0.0
        self._max_events = max_events
        self._executed = 0

    @property
    def now(self) -> float:
        """Current simulation time, seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events processed so far."""
        return self._executed

    def at(self, time: float, callback: EventCallback,
           label: str = "") -> None:
        """Schedule ``callback`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: now={self._now:.9g}, "
                f"requested {time:.9g} ({label or 'unlabelled'})")
        self._queue.push(time, callback, label)

    def after(self, delay: float, callback: EventCallback,
              label: str = "") -> None:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(
                f"delay must be >= 0, got {delay!r} ({label or 'unlabelled'})")
        self._queue.push(self._now + delay, callback, label)

    def every(self, interval: float, callback: EventCallback,
              label: str = "", *, start: float | None = None) -> None:
        """Schedule ``callback`` to recur every ``interval`` seconds.

        The first firing is at ``start`` (default ``now + interval``);
        the event re-arms itself after each firing, so a horizon passed
        to :meth:`run` bounds the recurrence naturally.
        """
        if interval <= 0:
            raise SimulationError(
                f"interval must be > 0, got {interval!r} "
                f"({label or 'unlabelled'})")

        def fire(sim: "Simulator") -> None:
            callback(sim)
            sim.after(interval, fire, label)

        self.at(self._now + interval if start is None else start, fire, label)

    def run(self, until: float | None = None) -> float:
        """Execute events (optionally only up to time ``until``).

        Returns the final simulation time.  Raises
        :class:`~repro.errors.SimulationError` if the event budget is
        exhausted (runaway schedule protection).
        """
        # The per-event cost here dominates every simulation-backed
        # workload, so the loop binds the heap list, heappop, and the
        # budget once and touches tuples by index; ``_now`` and
        # ``_executed`` are still written back before each callback so
        # re-entrant reads of ``now`` / ``events_executed`` stay exact.
        heap = self._queue._heap
        heappop = heapq.heappop
        max_events = self._max_events
        executed = self._executed
        while heap:
            if until is not None and heap[0][0] > until:
                self._now = until
                return until
            event = heappop(heap)
            self._now = event[0]
            executed += 1
            self._executed = executed
            if executed > max_events:
                raise SimulationError(
                    f"event budget of {max_events} exceeded at "
                    f"t={self._now:.6g}s; runaway schedule?")
            event[2](self)
        if until is not None and until > self._now:
            self._now = until
        return self._now
