"""Minimal discrete-event simulation core.

A classic event-calendar design: callbacks are scheduled at absolute
times and executed in time order (FIFO among equal times).  The
pipeline simulations in this package are cycle-structured, so the
engine stays deliberately small — an ordered calendar, a clock, and a
run loop with safety limits.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SimulationError, require

#: Signature of a scheduled callback: receives the simulator.
EventCallback = Callable[["Simulator"], None]


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    label: str = field(compare=False, default="")


class EventQueue:
    """Time-ordered event calendar (stable for simultaneous events)."""

    def __init__(self) -> None:
        self._heap: list[_Event] = []
        self._counter = itertools.count()

    def push(self, time: float, callback: EventCallback,
             label: str = "") -> None:
        """Schedule ``callback`` at absolute ``time``."""
        heapq.heappush(self._heap,
                       _Event(time, next(self._counter), callback, label))

    def pop(self) -> _Event:
        """Remove and return the earliest event."""
        return heapq.heappop(self._heap)

    def peek_time(self) -> float | None:
        """Time of the earliest event, or None when empty."""
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class Simulator:
    """Runs an event calendar until exhaustion or a time horizon."""

    def __init__(self, *, max_events: int = 10_000_000) -> None:
        if max_events <= 0:
            raise ConfigurationError(
                f"max_events must be > 0, got {max_events!r}")
        self._queue = EventQueue()
        self._now = 0.0
        self._max_events = max_events
        self._executed = 0

    @property
    def now(self) -> float:
        """Current simulation time, seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events processed so far."""
        return self._executed

    def at(self, time: float, callback: EventCallback,
           label: str = "") -> None:
        """Schedule ``callback`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: now={self._now:.9g}, "
                f"requested {time:.9g} ({label or 'unlabelled'})")
        self._queue.push(time, callback, label)

    def after(self, delay: float, callback: EventCallback,
              label: str = "") -> None:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(
                f"delay must be >= 0, got {delay!r} ({label or 'unlabelled'})")
        self._queue.push(self._now + delay, callback, label)

    def every(self, interval: float, callback: EventCallback,
              label: str = "", *, start: float | None = None) -> None:
        """Schedule ``callback`` to recur every ``interval`` seconds.

        The first firing is at ``start`` (default ``now + interval``);
        the event re-arms itself after each firing, so a horizon passed
        to :meth:`run` bounds the recurrence naturally.
        """
        if interval <= 0:
            raise SimulationError(
                f"interval must be > 0, got {interval!r} "
                f"({label or 'unlabelled'})")

        def fire(sim: "Simulator") -> None:
            callback(sim)
            sim.after(interval, fire, label)

        self.at(self._now + interval if start is None else start, fire, label)

    def run(self, until: float | None = None) -> float:
        """Execute events (optionally only up to time ``until``).

        Returns the final simulation time.  Raises
        :class:`~repro.errors.SimulationError` if the event budget is
        exhausted (runaway schedule protection).
        """
        while self._queue:
            next_time = self._queue.peek_time()
            require(next_time is not None,
                    "non-empty event queue reported no next time")
            if until is not None and next_time > until:
                self._now = until
                return self._now
            event = self._queue.pop()
            self._now = event.time
            self._executed += 1
            if self._executed > self._max_events:
                raise SimulationError(
                    f"event budget of {self._max_events} exceeded at "
                    f"t={self._now:.6g}s; runaway schedule?")
            event.callback(self)
        if until is not None and until > self._now:
            self._now = until
        return self._now
