"""Schedule tracing: record device activity and render it as a Gantt.

The paper's Figures 4 and 5 are timelines — disk head, MEMS tips, and
DRAM rows with seek/transfer segments.  This module reconstructs such a
timeline from a :class:`~repro.core.buffer_model.BufferDesign` by
replaying the two-level schedule deterministically, and renders it as
an ASCII Gantt chart so the figures can be *looked at*, not just
executed.

The trace is exact for the deterministic latency model (the same
arithmetic the simulator uses); it is a visualisation layer, while
:mod:`repro.simulation.pipelines` remains the source of truth for
underflow verification.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.buffer_model import BufferDesign
from repro.errors import ConfigurationError, SchedulingError, require
from repro.scheduling.time_cycle import (
    OperationKind,
    build_buffer_schedule,
)


@dataclass(frozen=True)
class TraceSegment:
    """One busy interval on one resource lane."""

    #: Lane name, e.g. ``"disk"``, ``"mems0"``.
    lane: str
    start: float
    end: float
    #: Activity class: ``"seek"``, ``"disk_xfer"``, ``"dram_xfer"``,
    #: or ``"write_xfer"``.
    activity: str
    #: Stream the payload belongs to.
    stream_id: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ConfigurationError(
                f"segment ends before it starts: {self.start!r}..{self.end!r}")


@dataclass
class ScheduleTrace:
    """A replayed window of the two-level schedule."""

    t_disk: float
    t_mems: float
    segments: list[TraceSegment] = field(default_factory=list)

    @property
    def lanes(self) -> list[str]:
        """Lane names in display order (disk first, then devices)."""
        names = {s.lane for s in self.segments}
        return sorted(names, key=lambda n: (n != "disk", n))

    @property
    def horizon(self) -> float:
        """End of the traced window."""
        return max((s.end for s in self.segments), default=0.0)

    def busy_time(self, lane: str) -> float:
        """Total busy seconds on a lane."""
        return sum(s.end - s.start for s in self.segments if s.lane == lane)

    def render(self, *, width: int = 76) -> str:
        """ASCII Gantt: one row per lane, one column per time slice.

        Characters: ``s`` seek, ``D`` disk transfer, ``d`` DRAM
        transfer, ``w`` disk-write landing, `` `` idle.  When multiple
        activities share a slice the busiest one wins.
        """
        if width < 10:
            raise ConfigurationError(f"width must be >= 10, got {width!r}")
        if not self.segments:
            return "(empty trace)"
        horizon = self.horizon
        slice_len = horizon / width
        glyphs = {"seek": "s", "disk_xfer": "D", "dram_xfer": "d",
                  "write_xfer": "w"}
        lines = []
        for lane in self.lanes:
            # Accumulate busy time per (slice, activity).
            occupancy: list[dict[str, float]] = [{} for _ in range(width)]
            for segment in self.segments:
                if segment.lane != lane:
                    continue
                first = min(int(segment.start / slice_len), width - 1)
                last = min(int(segment.end / slice_len), width - 1)
                for i in range(first, last + 1):
                    lo = max(segment.start, i * slice_len)
                    hi = min(segment.end, (i + 1) * slice_len)
                    if hi > lo:
                        bucket = occupancy[i]
                        bucket[segment.activity] = \
                            bucket.get(segment.activity, 0.0) + (hi - lo)
            row = []
            for bucket in occupancy:
                if not bucket:
                    row.append(" ")
                else:
                    activity = max(bucket, key=bucket.get)  # type: ignore[arg-type]
                    row.append(glyphs[activity])
            lines.append(f"{lane:>6} |" + "".join(row) + "|")
        lines.append(" " * 7 + f"0{'':{width - 8}}{horizon:.3g}s")
        lines.append(" " * 7 + "s=seek  D=disk transfer  d=DRAM transfer  "
                     "w=buffer write")
        return "\n".join(lines)


def trace_buffer_schedule(design: BufferDesign, *,
                          n_mems_cycles: int | None = None) -> ScheduleTrace:
    """Replay the opening of a two-level schedule into a trace.

    Covers ``n_mems_cycles`` MEMS cycles (default: one disk cycle's
    worth), starting from the pipeline steady state (the warm-up disk
    cycle is replayed but drawn at negative-free offsets: the disk lane
    shows cycle 0 while the MEMS lanes show the cycle servicing it,
    exactly like the paper's Figure 4).
    """
    params = design.params
    schedule = build_buffer_schedule(design)
    if design.m is None or design.t_mems is None:
        raise SchedulingError("trace needs a quantised design")
    if n_mems_cycles is None:
        n_mems_cycles = math.ceil(design.t_disk / design.t_mems)
    if n_mems_cycles < 1:
        raise ConfigurationError(
            f"n_mems_cycles must be >= 1, got {n_mems_cycles!r}")

    trace = ScheduleTrace(t_disk=design.t_disk, t_mems=design.t_mems)
    n = schedule.n_streams
    k = params.k

    # Disk lane: one cycle of N elevator-ordered reads.
    t = 0.0
    horizon = n_mems_cycles * design.t_mems
    while t < horizon:
        for op in schedule.disk_cycles[0]:
            if t >= horizon:
                break
            seek_end = t + params.l_disk
            xfer_end = seek_end + op.size / params.r_disk
            trace.segments.append(TraceSegment(
                lane="disk", start=t, end=seek_end, activity="seek",
                stream_id=op.stream_id))
            trace.segments.append(TraceSegment(
                lane="disk", start=seek_end, end=xfer_end,
                activity="disk_xfer", stream_id=op.stream_id))
            t = xfer_end
        t = max(t, design.t_disk)

    # MEMS lanes: cycles of N DRAM reads + M write landings.
    device_clock = [0.0] * k
    pattern = schedule.mems_cycles
    for cycle in range(n_mems_cycles):
        cycle_start = cycle * design.t_mems
        for d in range(k):
            device_clock[d] = max(device_clock[d], cycle_start)
        for op in pattern[cycle % len(pattern)]:
            d = op.device_index
            require(d is not None,
                    "MEMS operation scheduled without a device index")
            lane = f"mems{d}"
            start = device_clock[d]
            seek_end = start + params.l_mems
            activity = ("dram_xfer" if op.kind is OperationKind.MEMS_READ
                        else "write_xfer")
            xfer_end = seek_end + op.size / params.r_mems
            trace.segments.append(TraceSegment(
                lane=lane, start=start, end=seek_end, activity="seek",
                stream_id=op.stream_id))
            trace.segments.append(TraceSegment(
                lane=lane, start=seek_end, end=xfer_end, activity=activity,
                stream_id=op.stream_id))
            device_clock[d] = xfer_end
    return trace
