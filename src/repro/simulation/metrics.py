"""Simulation outcome reporting."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.simulation.streams import StreamBuffer, UnderflowInterval

#: Re-exported with the report for convenience.
UnderflowEvent = UnderflowInterval


@dataclass(slots=True)
class ResourceUsage:
    """Busy-time accounting for one device over the simulated horizon."""

    name: str
    busy_time: float = 0.0
    #: Number of IO operations serviced.
    operations: int = 0
    #: Number of cycles whose work exceeded the cycle length.
    cycle_overruns: int = 0
    #: Largest busy-time/cycle-length ratio observed.
    worst_cycle_utilization: float = 0.0

    def record_cycle(self, busy: float, cycle_length: float) -> None:
        """Account one IO cycle's busy time against its length."""
        self.busy_time += busy
        if cycle_length > 0:
            utilization = busy / cycle_length
            self.worst_cycle_utilization = max(self.worst_cycle_utilization,
                                               utilization)
            if busy > cycle_length * (1 + 1e-9):
                self.cycle_overruns += 1


@dataclass
class SimulationReport:
    """Everything a pipeline simulation observed."""

    #: Total simulated time, seconds.
    horizon: float
    #: Bytes delivered to playback across all streams.
    bytes_delivered: float
    #: Starvation intervals across all streams (empty = jitter-free).
    underflows: list[UnderflowInterval]
    #: Per-resource busy accounting, keyed by resource name.
    resources: dict[str, ResourceUsage]
    #: Minimum DRAM buffer level seen across playing streams, bytes.
    min_stream_level: float
    #: Peak per-stream DRAM level seen, bytes.
    peak_stream_level: float
    #: Peak simultaneous occupancy of the MEMS bank, bytes (0 when no
    #: bank participates).
    peak_mems_occupancy: float = 0.0
    #: Playback start times per stream (order matches stream ids within
    #: each pipeline class); empty when no stream started.
    playback_starts: list[float] = field(default_factory=list)
    #: Extra per-pipeline observations.
    notes: dict[str, float] = field(default_factory=dict)

    @property
    def jitter_free(self) -> bool:
        """True when no stream ever starved."""
        return not self.underflows

    @property
    def total_underflow_time(self) -> float:
        """Summed starvation seconds across streams."""
        return sum(u.duration for u in self.underflows)

    def utilization(self, resource: str) -> float:
        """Busy fraction of a resource over the horizon."""
        usage = self.resources[resource]
        if self.horizon == 0:
            return 0.0
        return usage.busy_time / self.horizon


def summarize_streams(buffers: list[StreamBuffer],
                      horizon: float) -> tuple[list[UnderflowInterval],
                                               float, float, float]:
    """Collect (underflows, delivered, min level, peak level) from buffers.

    ``delivered`` counts actual playback consumption: bit-rate times
    playing time, minus any starvation deficit.
    """
    underflows: list[UnderflowInterval] = []
    delivered = 0.0
    min_level = math.inf
    peak_level = 0.0
    for buffer in buffers:
        # Settle every buffer's drain to the horizon before reading.
        buffer.level(horizon)
        underflows.extend(buffer.underflows)
        min_level = min(min_level, buffer.min_level)
        peak_level = max(peak_level, buffer.peak_level)
    for buffer in buffers:
        deficit = sum(u.deficit for u in buffer.underflows)
        if buffer.playing and buffer.playback_start is not None:
            played = max(0.0, horizon - buffer.playback_start)
            delivered += buffer.bit_rate * played - deficit
    underflows.sort(key=lambda u: u.start)
    return underflows, delivered, min_level, peak_level
