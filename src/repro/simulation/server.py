"""User-facing streaming-server facade.

Bundles the analytical design, admission control, and event simulation
behind one object, so the examples and integration tests can say
"build a 2007 server with a 2-device MEMS buffer, fill it with DivX
streams, and prove the schedule jitter-free" in a few lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.buffer_model import BufferDesign, design_mems_buffer
from repro.core.cache_model import (
    CacheDesign,
    CachePolicy,
    design_mems_cache,
)
from repro.core.parameters import SystemParameters
from repro.core.popularity import PopularityDistribution
from repro.core.theorems import min_buffer_disk_dram
from repro.devices.disk import DiskDrive
from repro.errors import ConfigurationError, require
from repro.scheduling.admission import AdmissionController
from repro.simulation.metrics import SimulationReport
from repro.simulation.pipelines import (
    simulate_buffer_pipeline,
    simulate_cache_pipeline,
    simulate_direct_pipeline,
)


@dataclass(frozen=True)
class ServerConfig:
    """A streaming-server configuration to size and simulate.

    ``configuration`` is ``"none"``, ``"buffer"``, or ``"cache"``; the
    cache configuration also needs ``policy`` and ``popularity``.
    ``disk`` optionally supplies the physical disk model for sampled
    latencies.
    """

    params: SystemParameters
    dram_budget: float
    configuration: str = "none"
    policy: CachePolicy | None = None
    popularity: PopularityDistribution | None = None
    disk: DiskDrive | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.dram_budget <= 0:
            raise ConfigurationError(
                f"dram_budget must be > 0, got {self.dram_budget!r}")
        if self.configuration not in ("none", "buffer", "cache"):
            raise ConfigurationError(
                f"configuration must be 'none', 'buffer' or 'cache', "
                f"got {self.configuration!r}")
        if self.configuration == "cache" and (
                self.policy is None or self.popularity is None):
            raise ConfigurationError(
                "cache configuration needs policy and popularity")


class StreamingServer:
    """One sized server instance: admit streams, then simulate them."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self._controller = AdmissionController(
            config.params, config.dram_budget,
            configuration=config.configuration, policy=config.policy,
            popularity=config.popularity)

    @property
    def admitted_streams(self) -> int:
        """Streams admitted so far."""
        return self._controller.admitted_streams

    def fill(self) -> int:
        """Admit streams until the first rejection; return the count."""
        return self._controller.fill()

    def admit(self, count: int = 1) -> int:
        """Try to admit ``count`` more streams; return how many succeeded."""
        admitted = 0
        for _ in range(count):
            if not self._controller.try_admit().admitted:
                break
            admitted += 1
        return admitted

    # -- Design -----------------------------------------------------------

    def _params_at_load(self) -> SystemParameters:
        n = self._controller.admitted_streams
        if n < 1:
            raise ConfigurationError(
                "no streams admitted; call fill() or admit() first")
        return self.config.params.replace(n_streams=n)

    def dram_required(self) -> float:
        """Total DRAM the admitted population needs, bytes."""
        params = self._params_at_load()
        if self.config.configuration == "none":
            return params.n_streams * min_buffer_disk_dram(params)
        if self.config.configuration == "buffer":
            return design_mems_buffer(params, quantise=False).total_dram
        require(bool(self.config.policy and self.config.popularity),
                "cache ServerConfig validated without policy/popularity")
        return design_mems_cache(params, self.config.policy,
                                 self.config.popularity).total_dram

    def buffer_design(self) -> BufferDesign:
        """Theorem 2 design at the admitted load (buffer config only)."""
        if self.config.configuration != "buffer":
            raise ConfigurationError(
                f"buffer_design applies to the 'buffer' configuration, "
                f"not {self.config.configuration!r}")
        return design_mems_buffer(self._params_at_load())

    def cache_design(self) -> CacheDesign:
        """Theorem 3/4 design at the admitted load (cache config only)."""
        if self.config.configuration != "cache":
            raise ConfigurationError(
                f"cache_design applies to the 'cache' configuration, "
                f"not {self.config.configuration!r}")
        require(bool(self.config.policy and self.config.popularity),
                "cache ServerConfig validated without policy/popularity")
        return design_mems_cache(self._params_at_load(), self.config.policy,
                                 self.config.popularity)

    # -- Simulation -----------------------------------------------------------

    def simulate(self, *, n_cycles: int = 10,
                 latency_model: str = "deterministic",
                 buffer_scale: float = 1.0,
                 seed: int = 0) -> SimulationReport:
        """Execute the admitted population's schedule and report."""
        params = self._params_at_load()
        if self.config.configuration == "none":
            return simulate_direct_pipeline(
                params, n_cycles=n_cycles, latency_model=latency_model,
                buffer_scale=buffer_scale, disk=self.config.disk, seed=seed)
        if self.config.configuration == "buffer":
            design = design_mems_buffer(params)
            return simulate_buffer_pipeline(
                design, n_hyper_periods=max(1, n_cycles // 2),
                latency_model=latency_model, buffer_scale=buffer_scale,
                disk=self.config.disk, seed=seed)
        require(bool(self.config.policy and self.config.popularity),
                "cache ServerConfig validated without policy/popularity")
        design = design_mems_cache(params, self.config.policy,
                                   self.config.popularity)
        return simulate_cache_pipeline(
            design, n_cycles=n_cycles, latency_model=latency_model,
            buffer_scale=buffer_scale, disk=self.config.disk, seed=seed)
