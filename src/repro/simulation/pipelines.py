"""Event-driven execution of the three server configurations.

Each pipeline executes the time-cycle schedules of Section 3 against
stream buffers and device timelines, and returns a
:class:`~repro.simulation.metrics.SimulationReport`.  Two latency
models are supported:

* ``"deterministic"`` — every IO is charged the analytical latency
  (scheduler-determined disk average; maximum MEMS latency).  At the
  analytical buffer sizes this mode must be exactly jitter-free, which
  is how the tests cross-validate Theorems 1-4.
* ``"sampled"`` — per-IO disk latencies are drawn from the device
  model: requests get uniformly random positions, an elevator sweep
  orders them, seek times follow the calibrated seek curve, and
  rotational delay is uniform over a revolution.  MEMS IOs keep the
  worst-case latency (the paper's conservative treatment), so all
  schedule variance comes from the disk.

``buffer_scale`` scales the provisioned per-stream DRAM; a real server
cannot read more than its buffer has room for, so a scale below 1.0
forces short reads and (eventually) starvation — demonstrating that
the analytical sizes are tight, not just sufficient.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.buffer_model import BufferDesign
from repro.core.cache_model import CacheDesign, CachePolicy
from repro.core.parameters import SystemParameters
from repro.devices.disk import DiskDrive
from repro.errors import ConfigurationError, SimulationError, require
from repro.scheduling.time_cycle import (
    OperationKind,
    TimeCycleSchedule,
    build_buffer_schedule,
    build_direct_schedule,
)
from repro.simulation.metrics import (
    ResourceUsage,
    SimulationReport,
    summarize_streams,
)
from repro.simulation.streams import StreamBuffer

_LATENCY_MODELS = ("deterministic", "sampled")


def _check_latency_model(latency_model: str, disk: DiskDrive | None) -> None:
    if latency_model not in _LATENCY_MODELS:
        raise ConfigurationError(
            f"latency_model must be one of {_LATENCY_MODELS}, "
            f"got {latency_model!r}")
    if latency_model == "sampled" and disk is None:
        raise ConfigurationError(
            "sampled latencies need a DiskDrive model (pass disk=...)")


def _disk_cycle_latencies(n_ios: int, params: SystemParameters,
                          latency_model: str, disk: DiskDrive | None,
                          rng: np.random.Generator | None) -> np.ndarray:
    """Per-IO positioning times for one elevator-ordered disk cycle."""
    latencies, _ = _disk_cycle_service(n_ios, params, latency_model, disk,
                                       rng)
    return latencies


def _disk_cycle_service(n_ios: int, params: SystemParameters,
                        latency_model: str, disk: DiskDrive | None,
                        rng: np.random.Generator | None
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Per-IO (positioning time, media rate) for one disk cycle.

    Deterministic mode charges the analytical latency and the peak
    media rate.  Sampled mode draws uniformly random request positions,
    orders them into a C-LOOK sweep (seek = calibrated curve over the
    gap, rotation uniform over a revolution), and reads each IO at its
    *zone's* track rate — inner-zone requests transfer up to ~1.8x
    slower than outer-zone ones (Table 1's 170-300 MB/s spread).
    """
    if latency_model == "deterministic" or n_ios == 0:
        return (np.full(n_ios, params.l_disk),
                np.full(n_ios, params.r_disk))
    require(disk is not None and rng is not None,
            "sampled latency model needs a disk model and an rng")
    positions = np.sort(rng.random(n_ios))
    # C-LOOK sweep: first seek from the landing point of the previous
    # sweep (statistically a uniform point), then ascending gaps.
    gaps = np.diff(positions, prepend=positions[0] * 0.0)
    gaps[0] = positions[0]
    cylinders = gaps * disk.seek_curve.n_cylinders
    seeks = np.array([disk.seek_curve.seek_time(float(d)) for d in cylinders])
    rotations = rng.random(n_ios) * disk.rotation_time()
    geometry = disk.geometry
    rates = np.array([
        geometry.track_transfer_rate(
            min(int(p * geometry.n_cylinders), geometry.n_cylinders - 1),
            disk.rpm)
        for p in positions])
    return seeks + rotations, rates


def _starts(buffers: list[StreamBuffer]) -> list[float]:
    """Playback start times of the streams that began playing."""
    return [b.playback_start for b in buffers
            if b.playback_start is not None]


def _clamped_read(buffer: StreamBuffer, t_now: float, io_size: float,
                  latency: float, rate: float) -> tuple[float, float]:
    """Largest read <= ``io_size`` that fits the buffer *at completion*.

    The buffer keeps draining while the transfer is in flight, so the
    capacity constraint binds when the payload lands, not when the IO
    is issued: with pre-transfer level ``l``, drain rate ``b`` (zero
    before playback starts) and service time ``s(read)``, the landing
    level is ``max(l - b*s, 0) + read`` and must not exceed capacity.
    Solved in closed form.  Returns ``(read, service_time)``.
    """
    cap = buffer.capacity
    if math.isinf(cap):
        return io_size, latency + io_size / rate
    level = buffer.level(t_now)
    drain = buffer.bit_rate if buffer.playing else 0.0
    service = latency + io_size / rate
    if max(level - drain * service, 0.0) + io_size <= cap * (1 + 1e-12):
        return io_size, service
    # Clamped: the read lands exactly at capacity.
    if drain == 0.0:
        read = max(cap - level, 0.0)
    else:
        # Assume the buffer stays non-empty during the transfer:
        # level - drain*(latency + read/rate) + read = cap.
        read = (cap - level + drain * latency) / (1.0 - drain / rate)
        read = max(read, 0.0)
        if level - drain * (latency + read / rate) < 0:
            # It empties mid-transfer; the drained level clamps at 0.
            read = cap
    read = min(read, io_size)
    return read, latency + read / rate


@dataclass
class _MemsStore:
    """Byte accounting of stream data staged on the MEMS bank."""

    n_streams: int
    k: int

    def __post_init__(self) -> None:
        self.per_stream = [0.0] * self.n_streams
        self.per_device = [0.0] * self.k
        self.peak_occupancy = 0.0

    def deposit(self, stream_id: int, device: int, n_bytes: float) -> None:
        self.per_stream[stream_id] += n_bytes
        self.per_device[device] += n_bytes
        self.peak_occupancy = max(self.peak_occupancy, sum(self.per_device))

    def withdraw(self, stream_id: int, device: int, n_bytes: float) -> float:
        """Take up to ``n_bytes`` of the stream's staged data."""
        available = self.per_stream[stream_id]
        taken = min(n_bytes, available)
        self.per_stream[stream_id] -= taken
        self.per_device[device] -= taken
        return taken


def simulate_direct_pipeline(params: SystemParameters, *,
                             t_cycle: float | None = None,
                             buffer_scale: float = 1.0,
                             n_cycles: int = 20,
                             latency_model: str = "deterministic",
                             disk: DiskDrive | None = None,
                             seed: int = 0,
                             disturbances: dict[int, float] | None = None,
                             playback_delay_cycles: int = 0
                             ) -> SimulationReport:
    """Execute the plain disk-to-DRAM server (Theorem 1's schedule).

    Streams are provisioned ``buffer_scale`` times the analytical
    per-stream buffer; at 1.0 and deterministic latencies the run is
    jitter-free by Theorem 1.

    ``disturbances`` injects failures: a map from cycle index to a
    latency multiplier applied to every IO of that cycle (e.g.
    ``{5: 3.0}`` models a thermal-recalibration or vibration event
    tripling positioning times during cycle 5).  The report shows
    whether — and for how long — streams starve and how the schedule
    recovers.

    ``playback_delay_cycles`` delays each stream's playback start past
    its first credit, letting the (over-provisioned) buffer accumulate
    a cushion first — the standard deployment answer to latency
    variance.  With ``buffer_scale=1.0`` the cushion cannot accumulate
    (the clamp caps reads at the buffer), so pair it with a scale above
    one.
    """
    _check_latency_model(latency_model, disk)
    if n_cycles < 1:
        raise ConfigurationError(f"n_cycles must be >= 1, got {n_cycles!r}")
    if buffer_scale <= 0:
        raise ConfigurationError(
            f"buffer_scale must be > 0, got {buffer_scale!r}")
    if disturbances:
        for cycle_index, factor in disturbances.items():
            if cycle_index < 0 or factor < 0:
                raise ConfigurationError(
                    f"disturbances must map cycle >= 0 to factor >= 0, "
                    f"got {cycle_index!r}: {factor!r}")
    if playback_delay_cycles < 0:
        raise ConfigurationError(
            f"playback_delay_cycles must be >= 0, got "
            f"{playback_delay_cycles!r}")
    schedule = build_direct_schedule(params, t_cycle=t_cycle)
    n = schedule.n_streams
    io_size = params.bit_rate * schedule.t_disk
    capacity = max(io_size * buffer_scale, 1.0)
    buffers = [StreamBuffer(i, params.bit_rate, capacity=capacity)
               for i in range(n)]
    rng = np.random.default_rng(seed) if latency_model == "sampled" else None
    disk_usage = ResourceUsage(name="disk")

    clock = 0.0  # disk timeline; cycles may overrun and push successors
    for cycle in range(n_cycles):
        cycle_start = max(clock, cycle * schedule.t_disk)
        latencies, rates = _disk_cycle_service(n, params, latency_model,
                                               disk, rng)
        if disturbances and cycle in disturbances:
            latencies = latencies * disturbances[cycle]
        t = cycle_start
        busy = 0.0
        for i in range(n):
            read, service = _clamped_read(buffers[i], t, io_size,
                                          latencies[i], float(rates[i]))
            t += service
            busy += service
            disk_usage.operations += 1
            buffers[i].credit(t, read)
            if (not buffers[i].playing
                    and cycle >= playback_delay_cycles):
                buffers[i].start_playback(t)
        disk_usage.record_cycle(busy, schedule.t_disk)
        clock = t

    horizon = clock
    underflows, delivered, min_level, peak_level = summarize_streams(
        buffers, horizon)
    return SimulationReport(horizon=horizon, bytes_delivered=delivered,
                            underflows=underflows,
                            resources={"disk": disk_usage},
                            min_stream_level=min_level,
                            peak_stream_level=peak_level,
                            playback_starts=_starts(buffers))


def simulate_buffer_pipeline(design: BufferDesign, *,
                             buffer_scale: float = 1.0,
                             n_hyper_periods: int = 4,
                             latency_model: str = "deterministic",
                             disk: DiskDrive | None = None,
                             seed: int = 0) -> SimulationReport:
    """Execute the disk -> MEMS bank -> DRAM pipeline (Figures 4-5).

    The disk runs its ``T_disk`` cycles from t=0; the MEMS bank starts
    its ``T_mems`` cycles one disk cycle later (prefill warm-up).  Each
    MEMS device executes its share of DRAM reads and disk-write
    landings sequentially within every MEMS cycle, charging the
    worst-case MEMS latency per operation.  Verifies Eq. 7 empirically
    via the bank's peak occupancy.
    """
    _check_latency_model(latency_model, disk)
    if n_hyper_periods < 1:
        raise ConfigurationError(
            f"n_hyper_periods must be >= 1, got {n_hyper_periods!r}")
    if buffer_scale <= 0:
        raise ConfigurationError(
            f"buffer_scale must be > 0, got {buffer_scale!r}")
    schedule = build_buffer_schedule(design)
    params = design.params
    n = schedule.n_streams
    k = params.k
    require(schedule.t_mems is not None,
            "buffer schedule built without a MEMS cycle")
    dram_io = params.bit_rate * schedule.t_mems
    discrete = design.s_mems_dram_discrete
    require(discrete is not None,
            "buffer design carries no discrete DRAM size")
    capacity = max(discrete * buffer_scale, 1.0)
    buffers = [StreamBuffer(i, params.bit_rate, capacity=capacity)
               for i in range(n)]
    store = _MemsStore(n_streams=n, k=k)
    rng = np.random.default_rng(seed) if latency_model == "sampled" else None
    disk_usage = ResourceUsage(name="disk")
    mems_usage = [ResourceUsage(name=f"mems{d}") for d in range(k)]
    l_mems = params.l_mems

    n_disk_cycles = len(schedule.disk_cycles) * n_hyper_periods
    n_mems_cycles = len(schedule.mems_cycles) * n_hyper_periods

    # --- Disk timeline: compute every read's completion (landing) time.
    landing_times: list[float] = []  # indexed in global disk-read order
    clock = 0.0
    for cycle in range(n_disk_cycles):
        ops = schedule.disk_cycles[cycle % len(schedule.disk_cycles)]
        cycle_start = max(clock, cycle * schedule.t_disk)
        latencies, rates = _disk_cycle_service(len(ops), params,
                                               latency_model, disk, rng)
        t = cycle_start
        busy = 0.0
        for op, latency, rate in zip(ops, latencies, rates):
            service = latency + op.size / float(rate)
            t += service
            busy += service
            landing_times.append(t)
            disk_usage.operations += 1
        disk_usage.record_cycle(busy, schedule.t_disk)
        clock = t
    disk_horizon = clock

    # --- MEMS timelines: one per device, cycles offset by one T_disk.
    offset = schedule.t_disk
    device_clock = [offset] * k
    write_cursor = 0  # next global disk read to land into the bank
    short_reads = 0
    steady_short_reads = 0  # short reads after the warm-up window
    # Double buffering (the reason Eq. 7 provisions 2*N*B*T_disk): a
    # stream's DRAM reads begin one full disk cycle after its first
    # write lands, so the bank always holds between one and two disk
    # IOs per stream.  With single buffering the ceil-quantised landing
    # cadence (ceil(N/M) vs N/M MEMS cycles) runs streams dry one read
    # early.  Stream i's first write is global disk read i, processed
    # in MEMS cycle i // M.
    m = design.m
    require(m is not None,
            "buffer design carries no disk-transfer multiplicity m")
    cycles_per_disk_cycle = math.ceil(n / m)
    read_eligible_cycle = [i // m + cycles_per_disk_cycle for i in range(n)]
    # The steady state begins once every stream's reads are flowing and
    # one further disk cycle of landings has arrived.
    warmup_cycles = max(len(schedule.mems_cycles),
                        max(read_eligible_cycle) + cycles_per_disk_cycle)
    # Disk-side writes are *background transfers*: the controller seeks
    # to the staging region once per landed disk IO, then appends
    # whenever the cycle has slack left after the (deadline-bearing)
    # DRAM reads — possibly spanning several MEMS cycles.  This mirrors
    # Theorem 2's bandwidth-sharing analysis, where only the aggregate
    # write rate matters; forcing a whole B*T_disk write inside one
    # T_mems cycle would be an artificial constraint no real controller
    # has.  Stability (the backlog draining) is exactly the C bound and
    # is reported via ``max_write_backlog``.
    backlog: list[list[dict]] = [[] for _ in range(k)]
    max_backlog_bytes = 0.0

    def drain_backlog(d: int, until: float, busy: list[float]) -> None:
        clock = device_clock[d]
        queue = backlog[d]
        while queue and clock < until:
            entry = queue[0]
            if entry["landed"] > clock:
                if entry["landed"] >= until:
                    break
                clock = entry["landed"]
            if not entry["seek_charged"]:
                if clock + l_mems > until:
                    break
                clock += l_mems
                busy[d] += l_mems
                entry["seek_charged"] = True
                mems_usage[d].operations += 1
            writable = min(entry["remaining"],
                           (until - clock) * params.r_mems)
            if writable <= 0:
                break
            clock += writable / params.r_mems
            busy[d] += writable / params.r_mems
            entry["remaining"] -= writable
            store.deposit(entry["stream_id"], d, writable)
            if entry["remaining"] <= 1e-9:
                queue.pop(0)
        device_clock[d] = clock

    for cycle in range(n_mems_cycles):
        ops = schedule.mems_cycles[cycle % len(schedule.mems_cycles)]
        cycle_start = offset + cycle * (schedule.t_mems or 0.0)
        cycle_end = cycle_start + (schedule.t_mems or 0.0)
        cycle_busy = [0.0] * k
        for d in range(k):
            device_clock[d] = max(device_clock[d], cycle_start)
        for op in ops:
            d = op.device_index
            require(d is not None,
                    "MEMS operation scheduled without a device index")
            if op.kind is OperationKind.MEMS_WRITE:
                landed = landing_times[write_cursor]
                write_cursor += 1
                backlog[d].append({
                    "stream_id": op.stream_id,
                    "remaining": op.size,
                    "landed": landed,
                    "seek_charged": False,
                })
            elif op.kind is OperationKind.MEMS_READ:
                if cycle < read_eligible_cycle[op.stream_id]:
                    # Double-buffering warm-up: the scheduler does not
                    # issue reads for this stream yet (no charge).
                    continue
                # Clamp to both staged data and DRAM space.
                t_now = device_clock[d]
                want, _ = _clamped_read(buffers[op.stream_id], t_now,
                                        op.size, l_mems, params.r_mems)
                got = store.withdraw(op.stream_id, d, want)
                if got < op.size * (1 - 1e-9):
                    short_reads += 1
                    if cycle >= warmup_cycles:
                        steady_short_reads += 1
                service = l_mems + got / params.r_mems
                device_clock[d] += service
                cycle_busy[d] += service
                buffers[op.stream_id].credit(device_clock[d], got)
                if got > 0 and not buffers[op.stream_id].playing:
                    # Playback begins with the first real payload; during
                    # the pipeline warm-up (the stream's first disk read
                    # has not landed in the bank yet) reads come up empty.
                    buffers[op.stream_id].start_playback(device_clock[d])
                mems_usage[d].operations += 1
            else:  # pragma: no cover - schedule builder never emits these
                raise SimulationError(
                    f"unexpected {op.kind} in a MEMS cycle")
        for d in range(k):
            drain_backlog(d, cycle_end, cycle_busy)
            mems_usage[d].record_cycle(cycle_busy[d], schedule.t_mems or 0.0)
        pending = sum(entry["remaining"] for q in backlog for entry in q)
        max_backlog_bytes = max(max_backlog_bytes, pending)

    # Let the devices finish any residual backlog after the last cycle
    # so end-of-run accounting is clean.
    final_busy = [0.0] * k
    for d in range(k):
        drain_backlog(d, math.inf, final_busy)

    # Stream (underflow) accounting ends with the last scheduled refill
    # cycle: beyond it no reads are issued, so draining further would
    # report the shutdown itself as starvation.
    horizon = offset + n_mems_cycles * (schedule.t_mems or 0.0)
    underflows, delivered, min_level, peak_level = summarize_streams(
        buffers, horizon)
    resources = {"disk": disk_usage}
    resources.update({u.name: u for u in mems_usage})
    return SimulationReport(
        horizon=horizon, bytes_delivered=delivered, underflows=underflows,
        resources=resources, min_stream_level=min_level,
        peak_stream_level=peak_level,
        playback_starts=_starts(buffers),
        peak_mems_occupancy=store.peak_occupancy,
        notes={"short_reads": float(short_reads),
               "steady_short_reads": float(steady_short_reads),
               "unwritten_reads": float(len(landing_times) - write_cursor),
               "max_write_backlog": max_backlog_bytes})


def simulate_cache_pipeline(design: CacheDesign, *,
                            buffer_scale: float = 1.0,
                            n_cycles: int = 20,
                            latency_model: str = "deterministic",
                            disk: DiskDrive | None = None,
                            seed: int = 0) -> SimulationReport:
    """Execute the MEMS-cache server: two independent time-cycle loops.

    The disk class runs Theorem 1's schedule for the ``(1-h) N``
    disk-served streams; the cache class runs Theorem 3/4's schedule on
    the bank.  Stream counts are rounded to integers (``floor`` for the
    cache side, remainder to the disk side) so the schedule is
    executable.
    """
    _check_latency_model(latency_model, disk)
    if buffer_scale <= 0:
        raise ConfigurationError(
            f"buffer_scale must be > 0, got {buffer_scale!r}")
    params = design.params
    n_total = int(round(params.n_streams))
    n_cache = int(math.floor(design.n_cache_streams + 1e-9))
    n_disk = n_total - n_cache
    k = params.k

    reports: list[SimulationReport] = []
    if n_disk > 0:
        disk_params = params.replace(n_streams=n_disk)
        reports.append(simulate_direct_pipeline(
            disk_params, buffer_scale=buffer_scale, n_cycles=n_cycles,
            latency_model=latency_model, disk=disk, seed=seed))

    cache_resources: dict[str, ResourceUsage] = {}
    cache_report: SimulationReport | None = None
    if n_cache > 0:
        if design.policy is CachePolicy.STRIPED:
            # Lock-step bank: one shared timeline at k-fold rate.
            from repro.core.cache_model import striped_cache_buffer

            io_size = striped_cache_buffer(n_cache, params.bit_rate, k,
                                           params.r_mems, params.l_mems)
            t_cycle = io_size / params.bit_rate
            capacity = max(io_size * buffer_scale, 1.0)
            buffers = [StreamBuffer(i, params.bit_rate, capacity=capacity)
                       for i in range(n_cache)]
            usage = ResourceUsage(name="mems_bank")
            clock = 0.0
            for cycle in range(n_cycles):
                t = max(clock, cycle * t_cycle)
                busy = 0.0
                for i in range(n_cache):
                    read, service = _clamped_read(
                        buffers[i], t, io_size, params.l_mems,
                        k * params.r_mems)
                    t += service
                    busy += service
                    usage.operations += 1
                    buffers[i].credit(t, read)
                    if not buffers[i].playing:
                        buffers[i].start_playback(t)
                usage.record_cycle(busy, t_cycle)
                clock = t
            horizon = clock
            underflows, delivered, min_level, peak_level = summarize_streams(
                buffers, horizon)
            cache_resources["mems_bank"] = usage
            cache_report = SimulationReport(
                horizon=horizon, bytes_delivered=delivered,
                underflows=underflows, resources=dict(cache_resources),
                min_stream_level=min_level, peak_stream_level=peak_level,
                playback_starts=_starts(buffers))
        else:
            # Replicated: each device independently serves its share.
            from repro.core.cache_model import replicated_cache_buffer

            io_size = replicated_cache_buffer(n_cache, params.bit_rate, k,
                                              params.r_mems, params.l_mems)
            t_cycle = io_size / params.bit_rate
            capacity = max(io_size * buffer_scale, 1.0)
            buffers = [StreamBuffer(i, params.bit_rate, capacity=capacity)
                       for i in range(n_cache)]
            usages = [ResourceUsage(name=f"mems{d}") for d in range(k)]
            clocks = [0.0] * k
            for cycle in range(n_cycles):
                busy = [0.0] * k
                for d in range(k):
                    clocks[d] = max(clocks[d], cycle * t_cycle)
                for i in range(n_cache):
                    d = i % k
                    read, service = _clamped_read(
                        buffers[i], clocks[d], io_size, params.l_mems,
                        params.r_mems)
                    clocks[d] += service
                    busy[d] += service
                    usages[d].operations += 1
                    buffers[i].credit(clocks[d], read)
                    if not buffers[i].playing:
                        buffers[i].start_playback(clocks[d])
                for d in range(k):
                    usages[d].record_cycle(busy[d], t_cycle)
            horizon = max(clocks)
            underflows, delivered, min_level, peak_level = summarize_streams(
                buffers, horizon)
            cache_resources.update({u.name: u for u in usages})
            cache_report = SimulationReport(
                horizon=horizon, bytes_delivered=delivered,
                underflows=underflows, resources=dict(cache_resources),
                min_stream_level=min_level, peak_stream_level=peak_level,
                playback_starts=_starts(buffers))
        reports.append(cache_report)

    if not reports:
        return SimulationReport(horizon=0.0, bytes_delivered=0.0,
                                underflows=[], resources={},
                                min_stream_level=math.inf,
                                peak_stream_level=0.0)
    # Merge the class reports.
    horizon = max(r.horizon for r in reports)
    resources: dict[str, ResourceUsage] = {}
    for r in reports:
        resources.update(r.resources)
    return SimulationReport(
        horizon=horizon,
        bytes_delivered=sum(r.bytes_delivered for r in reports),
        underflows=sorted((u for r in reports for u in r.underflows),
                          key=lambda u: u.start),
        resources=resources,
        min_stream_level=min(r.min_stream_level for r in reports),
        peak_stream_level=max(r.peak_stream_level for r in reports),
        playback_starts=[t for r in reports for t in r.playback_starts],
        notes={"n_cache_streams": float(n_cache),
               "n_disk_streams": float(n_disk)})
