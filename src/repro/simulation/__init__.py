"""Discrete-event simulation of the streaming server.

The analytical model (Section 4) predicts buffer sizes and cycle times;
this package *executes* the resulting schedules against the device
models and checks the paper's invariants empirically:

* no stream ever underflows its DRAM buffer,
* device busy time fits inside every IO cycle,
* the MEMS bank's occupancy stays within Eq. 7's bound, and bytes
  written to the bank balance bytes read (steady state),
* shrinking the buffers below the analytical minimum *does* underflow
  (the bound is tight).

:mod:`~repro.simulation.engine` is a minimal event-calendar core;
:mod:`~repro.simulation.streams` models continuously-draining stream
buffers; :mod:`~repro.simulation.pipelines` executes the three server
configurations; :mod:`~repro.simulation.server` is the user-facing
facade.
"""

from repro.simulation.engine import EventQueue, Simulator
from repro.simulation.metrics import SimulationReport, UnderflowEvent
from repro.simulation.streams import StreamBuffer
from repro.simulation.pipelines import (
    simulate_buffer_pipeline,
    simulate_cache_pipeline,
    simulate_direct_pipeline,
)
from repro.simulation.server import ServerConfig, StreamingServer
from repro.simulation.tracing import (
    ScheduleTrace,
    TraceSegment,
    trace_buffer_schedule,
)

__all__ = [
    "ScheduleTrace",
    "TraceSegment",
    "trace_buffer_schedule",
    "EventQueue",
    "Simulator",
    "SimulationReport",
    "UnderflowEvent",
    "StreamBuffer",
    "simulate_buffer_pipeline",
    "simulate_cache_pipeline",
    "simulate_direct_pipeline",
    "ServerConfig",
    "StreamingServer",
]
