"""Spare MEMS capacity accounting (paper Section 3.1.2).

"Depending on the number and type of streams serviced and the capacity
of the MEMS device bank, spare storage and/or bandwidth might be
available at the MEMS device.  If additional storage is available ...
the operating system could use it for other non-real-time data ...
Spare bandwidth, if available, can be used for non-real-time traffic."

This module quantifies both leftovers for a
:class:`~repro.core.buffer_model.BufferDesign` and estimates the
best-effort IO throughput the spare bandwidth supports, so the
trade-off between real-time load and background work is explicit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.buffer_model import BufferDesign
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SpareCapacity:
    """What the real-time schedule leaves unused on the MEMS bank."""

    #: Unused bank bytes (beyond the Eq. 7 staging reservation).
    storage: float
    #: Unused aggregate media bandwidth, bytes/second.
    bandwidth: float
    #: Fraction of each MEMS cycle the devices sit idle.
    idle_fraction: float

    def __post_init__(self) -> None:
        if self.storage < -1e-6 or self.bandwidth < -1e-6:
            raise ConfigurationError(
                f"spare quantities must be >= 0, got storage="
                f"{self.storage!r}, bandwidth={self.bandwidth!r}")


def spare_capacity(design: BufferDesign) -> SpareCapacity:
    """Spare storage, bandwidth and cycle idle time of a buffer design.

    Storage: the bank holds at most ``2 N B̄ T_disk`` of staging
    (Eq. 7); anything beyond is free for caches, prefetch buffers, or
    persistent write-behind.  Bandwidth: the real-time traffic moves
    every byte twice, ``2 N B̄`` of the ``k R_mems`` aggregate.  Idle
    fraction: per MEMS cycle, the devices spend
    ``N·L̄ + 2 N B̄ T_mems / R_mems`` (aggregated) of ``k · T_mems``.
    Requires a finite design (``size_mems`` set).
    """
    params = design.params
    if params.size_mems is None or math.isinf(design.t_disk):
        raise ConfigurationError(
            "spare accounting needs a finite BufferDesign (size_mems set)")
    n = params.n_streams
    staging = 2.0 * n * params.bit_rate * design.t_disk
    storage = max(params.mems_bank_capacity - staging, 0.0)
    realtime_bandwidth = 2.0 * n * params.bit_rate
    bandwidth = max(params.mems_bank_bandwidth - realtime_bandwidth, 0.0)
    if design.t_mems is None or n == 0:
        idle_fraction = 1.0 if n == 0 else 0.0
    else:
        busy = (n * params.l_mems
                + 2.0 * n * params.bit_rate * design.t_mems / params.r_mems)
        idle_fraction = max(0.0, 1.0 - busy / (params.k * design.t_mems))
    return SpareCapacity(storage=storage, bandwidth=bandwidth,
                         idle_fraction=idle_fraction)


def best_effort_iops(design: BufferDesign, *, io_size: float) -> float:
    """Background IOs/second the spare cycle time supports.

    Best-effort requests are serviced in the idle tail of each MEMS
    cycle, each paying the worst-case positioning latency plus its
    transfer.  Zero when the cycle is fully consumed by real-time work.
    """
    if io_size <= 0:
        raise ConfigurationError(f"io_size must be > 0, got {io_size!r}")
    spare = spare_capacity(design)
    params = design.params
    if design.t_mems is None:
        return 0.0
    idle_per_cycle = spare.idle_fraction * params.k * design.t_mems
    per_io = params.l_mems + io_size / params.r_mems
    return (idle_per_cycle / per_io) / design.t_mems
