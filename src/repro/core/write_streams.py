"""Write streams and mixed read/write populations (paper Section 3.1).

The paper analyses read streams and notes that "this model can be
easily extended to address write streams".  This module makes the
extension concrete for a *recording* media server (surveillance,
broadcast capture, lecture archiving):

* a **write stream** produces data into DRAM at bit-rate ``B`` and the
  server must flush it in time-cycle order — through the MEMS buffer
  (DRAM -> MEMS -> disk) in the buffered configuration;
* the DRAM buffer for a writer is symmetric to a reader's: it
  accumulates one IO cycle's worth of produced data between flushes, so
  the same closed forms apply with the transfer direction reversed;
* a **mixed population** of readers and writers shares the cycles: the
  disk does one IO per stream per cycle regardless of direction, and
  the MEMS bank still moves every byte exactly twice (disk->MEMS->DRAM
  for reads, DRAM->MEMS->disk for writes), so Theorem 2's bandwidth
  term ``2 (N + k - 1) B`` is unchanged with ``N = N_r + N_w``.

The one asymmetry: a *reader* may be double-buffered on the MEMS bank
(Eq. 7's factor of two), while a *writer's* staging is single-buffered
— its data leaves the bank as soon as the disk consumes it, so mixed
populations need only ``(2 N_r + N_w) B T_disk`` of bank capacity,
slightly relaxing Eq. 7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.buffer_model import mems_cycle_floor
from repro.core.parameters import SystemParameters
from repro.core.theorems import io_cycle_direct
from repro.errors import AdmissionError, CapacityError, ConfigurationError


@dataclass(frozen=True)
class MixedStreamDesign:
    """Operating point for a reader+writer population on a MEMS buffer."""

    params: SystemParameters
    n_readers: int
    n_writers: int
    #: Disk IO cycle, seconds.
    t_disk: float
    #: MEMS cycle feasibility floor, seconds.
    cycle_floor: float
    #: Per-stream DRAM buffer (same for readers and writers), bytes.
    s_dram: float

    @property
    def n_total(self) -> int:
        return self.n_readers + self.n_writers

    @property
    def total_dram(self) -> float:
        """Aggregate DRAM across both classes, bytes."""
        return self.n_total * self.s_dram

    @property
    def bank_bytes_required(self) -> float:
        """MEMS staging for the population: ``(2 N_r + N_w) B T_disk``.

        Readers are double-buffered (Eq. 7); writers single-buffered.
        """
        return ((2 * self.n_readers + self.n_writers)
                * self.params.bit_rate * self.t_disk)


def design_mixed_streams(params: SystemParameters, *, n_readers: int,
                         n_writers: int) -> MixedStreamDesign:
    """Size a MEMS-buffered server for a mixed read/write population.

    ``params.n_streams`` is ignored; the population is
    ``n_readers + n_writers`` at ``params.bit_rate`` each.  Solves the
    same structure as Theorem 2 but with the relaxed storage bound for
    the write share.

    Raises :class:`~repro.errors.AdmissionError` when the disk or the
    bank lacks bandwidth, :class:`~repro.errors.CapacityError` when the
    staging does not fit the bank.
    """
    if n_readers < 0 or n_writers < 0:
        raise ConfigurationError(
            f"stream counts must be >= 0, got {n_readers!r}/{n_writers!r}")
    n = n_readers + n_writers
    if n == 0:
        raise ConfigurationError("population must contain a stream")
    at_n = params.replace(n_streams=n)
    # Disk real-time bound (Eq. 6): one IO per stream per cycle,
    # direction-independent.
    lower = io_cycle_direct(n, params.bit_rate, params.r_disk, params.l_disk)
    # MEMS feasibility floor (Theorem 2): every byte crosses the bank
    # twice regardless of direction.
    floor = mems_cycle_floor(at_n)
    # Storage bound, write share single-buffered.
    if params.size_mems is None:
        t_disk = math.inf
    else:
        weight = (2 * n_readers + n_writers) * params.bit_rate
        t_disk = params.mems_bank_capacity / weight
        if t_disk < lower:
            raise CapacityError(
                f"bank of {params.mems_bank_capacity:.6g} B cannot stage "
                f"{weight:.6g} B/s of read+write traffic at the minimal "
                f"disk cycle {lower:.6g}s")
    slack = 1.0 + (2.0 * params.k - 2.0) / n
    if math.isinf(t_disk):
        s_dram = params.bit_rate * floor * slack
    else:
        if t_disk <= floor:
            raise AdmissionError(
                f"T_disk={t_disk:.6g}s does not exceed the MEMS cycle "
                f"floor C={floor:.6g}s")
        s_dram = (params.bit_rate * floor * slack
                  * t_disk / (t_disk - floor))
    return MixedStreamDesign(params=at_n, n_readers=n_readers,
                             n_writers=n_writers, t_disk=t_disk,
                             cycle_floor=floor, s_dram=s_dram)


def max_writers_supported(params: SystemParameters, *, n_readers: int,
                          dram_budget: float) -> int:
    """Largest writer population admissible alongside ``n_readers``.

    Monotone feasibility in the writer count, so a linear-free
    bisection applies; returns an integer count (0 when even one writer
    does not fit).
    """
    if dram_budget < 0:
        raise ConfigurationError(
            f"dram_budget must be >= 0, got {dram_budget!r}")

    def feasible(n_writers: int) -> bool:
        try:
            design = design_mixed_streams(params, n_readers=n_readers,
                                          n_writers=n_writers)
        except (AdmissionError, CapacityError):
            return False
        return design.total_dram <= dram_budget

    if not feasible(1):
        return 0
    lo, hi = 1, 2
    while feasible(hi):
        lo = hi
        hi *= 2
        if hi > 10**9:  # pragma: no cover - absurd configuration guard
            raise ConfigurationError("writer population appears unbounded")
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if feasible(mid):
            lo = mid
        else:
            hi = mid
    return lo
