"""Heterogeneous stream populations (multi-class time-cycle analysis).

The paper simplifies to a single average bit-rate B̄ (Table 2).  The
time-cycle algebra generalises exactly to per-class rates: with classes
``c`` of ``N_c`` streams at ``B_c`` bytes/second on a device of rate
``R`` and latency ``L̄``,

    T = L̄ · N_tot · R / (R − Σ_c N_c B_c),
    S_c = B_c · T,

so the *cycle* depends only on the aggregate count and load (which is
why the paper's average-rate simplification predicts throughput
correctly), but the *per-class buffers* scale with each class's own
bit-rate — an HDTV stream in a mixed population needs 1000x the buffer
of an mp3 stream, which matters for per-session memory accounting and
admission pricing.

The same generalisation applies to the MEMS-buffer configuration: the
bank's cycle floor uses the aggregate doubled load, and each class's
DRAM share is ``B_c``-proportional.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.parameters import SystemParameters
from repro.errors import AdmissionError, CapacityError, ConfigurationError


@dataclass(frozen=True)
class StreamClass:
    """One homogeneous class of streams."""

    name: str
    bit_rate: float
    count: int

    def __post_init__(self) -> None:
        if self.bit_rate <= 0:
            raise ConfigurationError(
                f"bit_rate must be > 0, got {self.bit_rate!r}")
        if self.count < 0:
            raise ConfigurationError(
                f"count must be >= 0, got {self.count!r}")

    @property
    def load(self) -> float:
        """Aggregate class bandwidth, bytes/second."""
        return self.count * self.bit_rate


def _aggregate(classes: list[StreamClass]) -> tuple[int, float]:
    if not classes:
        raise ConfigurationError("at least one stream class is required")
    names = [c.name for c in classes]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate class names in {names!r}")
    n_total = sum(c.count for c in classes)
    load = sum(c.load for c in classes)
    return n_total, load


@dataclass(frozen=True)
class MulticlassDesign:
    """Per-class buffer sizing for one device and population."""

    classes: tuple[StreamClass, ...]
    #: IO cycle, seconds.
    t_cycle: float
    #: Per-class per-stream buffer, bytes (aligned with ``classes``).
    buffers: tuple[float, ...]

    @property
    def total_dram(self) -> float:
        """Aggregate DRAM over all classes, bytes."""
        return sum(c.count * s for c, s in zip(self.classes, self.buffers))

    def buffer_for(self, name: str) -> float:
        """Per-stream buffer of the named class, bytes."""
        for cls, size in zip(self.classes, self.buffers):
            if cls.name == name:
                return size
        raise ConfigurationError(f"unknown class {name!r}")


def design_multiclass_direct(classes: list[StreamClass], *, rate: float,
                             latency: float) -> MulticlassDesign:
    """Exact multi-class Theorem 1.

    Raises :class:`~repro.errors.AdmissionError` when the aggregate
    load reaches the device rate.
    """
    if rate <= 0:
        raise ConfigurationError(f"rate must be > 0, got {rate!r}")
    if latency < 0:
        raise ConfigurationError(f"latency must be >= 0, got {latency!r}")
    n_total, load = _aggregate(classes)
    if n_total == 0:
        return MulticlassDesign(classes=tuple(classes), t_cycle=0.0,
                                buffers=tuple(0.0 for _ in classes))
    if load >= rate:
        raise AdmissionError(
            f"aggregate load {load:.6g} B/s is not below the device rate "
            f"{rate:.6g} B/s", load=load, capacity=rate)
    t_cycle = latency * n_total * rate / (rate - load)
    buffers = tuple(c.bit_rate * t_cycle for c in classes)
    return MulticlassDesign(classes=tuple(classes), t_cycle=t_cycle,
                            buffers=buffers)


def design_multiclass_buffer(classes: list[StreamClass],
                             params: SystemParameters
                             ) -> MulticlassDesign:
    """Multi-class Theorem 2: per-class DRAM behind a MEMS buffer.

    ``params`` supplies the devices (``r_disk``, ``r_mems``, latencies,
    ``k``, ``size_mems``); its ``n_streams``/``bit_rate`` are ignored.
    The bank carries the doubled aggregate load; the disk cycle takes
    the largest value allowed by the staging capacity (Eq. 7 with the
    aggregate load); each class's DRAM is its own rate times the
    effective MEMS cycle.
    """
    n_total, load = _aggregate(classes)
    if n_total == 0:
        return MulticlassDesign(classes=tuple(classes), t_cycle=0.0,
                                buffers=tuple(0.0 for _ in classes))
    mean_rate = load / n_total
    bank_rate = params.mems_bank_bandwidth
    doubled = 2.0 * (load + (params.k - 1) * mean_rate)
    if doubled >= bank_rate:
        raise AdmissionError(
            f"MEMS bank must sustain twice the aggregate load: need "
            f"{doubled:.6g} B/s of {bank_rate:.6g} B/s",
            load=doubled, capacity=bank_rate)
    if load >= params.r_disk:
        raise AdmissionError(
            f"aggregate load {load:.6g} B/s saturates the disk "
            f"({params.r_disk:.6g} B/s)", load=load,
            capacity=params.r_disk)
    floor = (n_total * params.l_mems * params.r_mems) / (bank_rate - doubled)
    # Disk cycle bounds: Eq. 6 with the aggregate, Eq. 7 with the load.
    lower = (n_total * params.l_disk * params.r_disk
             / (params.r_disk - load))
    if params.size_mems is None:
        t_disk = math.inf
        effective_cycle = floor
    else:
        t_disk = params.mems_bank_capacity / (2.0 * load)
        if t_disk < lower:
            raise CapacityError(
                f"the bank cannot stage the minimal disk cycle: "
                f"T_min={lower:.6g}s needs {2 * load * lower:.6g} B of "
                f"{params.mems_bank_capacity:.6g} B")
        if t_disk <= floor:
            raise AdmissionError(
                f"T_disk={t_disk:.6g}s does not exceed the MEMS cycle "
                f"floor C={floor:.6g}s")
        effective_cycle = floor * t_disk / (t_disk - floor)
    slack = 1.0 + (2.0 * params.k - 2.0) / n_total
    buffers = tuple(c.bit_rate * effective_cycle * slack for c in classes)
    return MulticlassDesign(classes=tuple(classes), t_cycle=t_disk,
                            buffers=buffers)


def admit_class(classes: list[StreamClass], addition: StreamClass, *,
                rate: float, latency: float,
                dram_budget: float) -> bool:
    """Would adding ``addition`` keep the direct population feasible?

    Checks both bandwidth slack and the DRAM budget with exact
    multi-class sizing (no averaging error).
    """
    if dram_budget < 0:
        raise ConfigurationError(
            f"dram_budget must be >= 0, got {dram_budget!r}")
    merged: list[StreamClass] = []
    added = False
    for cls in classes:
        if cls.name == addition.name:
            if cls.bit_rate != addition.bit_rate:
                raise ConfigurationError(
                    f"class {cls.name!r} redefined with a different "
                    f"bit-rate")
            merged.append(StreamClass(cls.name, cls.bit_rate,
                                      cls.count + addition.count))
            added = True
        else:
            merged.append(cls)
    if not added:
        merged.append(addition)
    try:
        design = design_multiclass_direct(merged, rate=rate,
                                          latency=latency)
    except AdmissionError:
        return False
    return design.total_dram <= dram_budget
