"""System parameter set (the paper's Table 2).

:class:`SystemParameters` bundles every symbol of the analytical model:
stream population (``N``, ``B̄``), device rates and latencies, the MEMS
bank size ``k``, unit costs, and device capacities.  All values are in
base units (bytes, bytes/second, seconds, dollars) — see
:mod:`repro.units`.

Instances are immutable; :meth:`SystemParameters.replace` derives
variants, and :meth:`SystemParameters.table3_default` builds the
paper's 2007 case-study configuration from the device catalog.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SystemParameters:
    """All inputs of the analytical model (Table 2 of the paper).

    Attributes use the paper's symbols:

    * ``n_streams`` — N, number of continuous-media streams.
    * ``bit_rate`` — B̄, average stream bit-rate in bytes/second.
    * ``k`` — number of MEMS devices in the system.
    * ``r_disk`` / ``r_mems`` — media transfer rates in bytes/second.
    * ``l_disk`` — L̄_disk, scheduler-determined average disk latency.
    * ``l_mems`` — L̄_mems, per-IO MEMS latency; the paper always uses
      the *maximum* device latency here.
    * ``c_dram`` / ``c_mems`` — unit costs in dollars per byte.
    * ``size_mems`` / ``size_disk`` — per-device capacities in bytes.
      ``size_mems=None`` models the paper's "unlimited MEMS storage"
      relaxation (Sections 5.1.1-5.1.2).
    """

    #: Number of streams; fractional values are allowed because the
    #: analysis routinely evaluates expected sub-populations (``h * N``)
    #: and the capacity solvers invert the model over a continuous N.
    n_streams: float
    bit_rate: float
    r_disk: float
    r_mems: float
    l_disk: float
    l_mems: float
    k: int = 1
    c_dram: float = 0.0
    c_mems: float = 0.0
    size_mems: float | None = None
    size_disk: float | None = None

    def __post_init__(self) -> None:
        if self.n_streams < 0:
            raise ConfigurationError(
                f"n_streams must be >= 0, got {self.n_streams!r}")
        if self.bit_rate <= 0:
            raise ConfigurationError(
                f"bit_rate must be > 0, got {self.bit_rate!r}")
        for label, value in (("r_disk", self.r_disk), ("r_mems", self.r_mems)):
            if value <= 0:
                raise ConfigurationError(
                    f"{label} must be > 0, got {value!r}")
        for label, value in (("l_disk", self.l_disk), ("l_mems", self.l_mems)):
            if value < 0:
                raise ConfigurationError(
                    f"{label} must be >= 0, got {value!r}")
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k!r}")
        for label, value in (("c_dram", self.c_dram), ("c_mems", self.c_mems)):
            if value < 0:
                raise ConfigurationError(
                    f"{label} must be >= 0, got {value!r}")
        for label, value in (("size_mems", self.size_mems),
                             ("size_disk", self.size_disk)):
            if value is not None and value <= 0:
                raise ConfigurationError(
                    f"{label} must be > 0 or None, got {value!r}")

    # -- Derived quantities ----------------------------------------------

    @property
    def offered_load(self) -> float:
        """Aggregate stream bandwidth ``N * B̄`` in bytes/second."""
        return self.n_streams * self.bit_rate

    @property
    def disk_utilization(self) -> float:
        """Fraction of disk media bandwidth consumed by the streams."""
        return self.offered_load / self.r_disk

    @property
    def mems_bank_bandwidth(self) -> float:
        """Aggregate MEMS bank media rate ``k * R_mems``."""
        return self.k * self.r_mems

    @property
    def mems_bank_capacity(self) -> float | None:
        """Aggregate MEMS bank capacity ``k * Size_mems`` (None if unlimited)."""
        if self.size_mems is None:
            return None
        return self.k * self.size_mems

    @property
    def mems_bank_cost(self) -> float:
        """Purchase cost of the MEMS bank under the per-device cost model.

        Section 4: "The k MEMS devices cost k x C_mems x Size_mems even
        if the system does not utilize all the available MEMS storage."
        Requires a finite ``size_mems``.
        """
        if self.size_mems is None:
            raise ConfigurationError(
                "mems_bank_cost requires a finite size_mems")
        return self.k * self.c_mems * self.size_mems

    @property
    def latency_ratio(self) -> float:
        """The paper's sensitivity knob: ``L̄_disk / L̄_mems``."""
        if self.l_mems == 0:
            return math.inf
        return self.l_disk / self.l_mems

    # -- Constructors and derivation ----------------------------------------

    @classmethod
    def table3_default(cls, *, n_streams: int, bit_rate: float, k: int = 2,
                       size_mems_unlimited: bool = False,
                       elevator_queue_depth: int | None = None) -> "SystemParameters":
        """The paper's 2007 case-study configuration (Table 3).

        FutureDisk + G3 MEMS + 2007 DRAM prices; MEMS latency is the G3
        worst case; disk latency is the elevator-scheduled average.
        ``size_mems_unlimited=True`` reproduces the relaxation used in
        the Figure 6/8 experiments.
        """
        # Imported here to avoid a devices <-> core import cycle at load.
        from repro.devices.catalog import DRAM_2007, FUTURE_DISK_2007, MEMS_G3

        disk = FUTURE_DISK_2007
        mems = MEMS_G3
        if elevator_queue_depth is None:
            l_disk = disk.scheduled_latency()
        else:
            l_disk = disk.scheduled_latency(elevator_queue_depth)
        return cls(
            n_streams=n_streams,
            bit_rate=bit_rate,
            k=k,
            r_disk=disk.transfer_rate,
            r_mems=mems.transfer_rate,
            l_disk=l_disk,
            l_mems=mems.max_access_time(),
            c_dram=DRAM_2007.cost_per_byte,
            c_mems=mems.cost_per_byte,
            size_mems=None if size_mems_unlimited else mems.capacity,
            size_disk=disk.capacity,
        )

    def replace(self, **changes: object) -> "SystemParameters":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def with_latency_ratio(self, ratio: float) -> "SystemParameters":
        """Copy with ``l_mems`` set so that ``l_disk / l_mems == ratio``.

        This is how the Figure 7 sensitivity study varies the MEMS
        device speed while holding the disk fixed.
        """
        if ratio <= 0:
            raise ConfigurationError(
                f"latency ratio must be > 0, got {ratio!r}")
        return self.replace(l_mems=self.l_disk / ratio)
