"""Deprecated shim over :mod:`repro.planner.hybrid`.

.. deprecated::
    The hybrid buffer+cache partitioning of the MEMS bank (paper
    Section 7, future work) lives in :mod:`repro.planner.hybrid` with
    the rest of the planning layer; this module is a pure re-export
    kept for the stable public API.  Internal code imports from the
    planner (the ``no-shim-imports`` lint rule enforces it).
"""

from __future__ import annotations

from repro.planner.hybrid import (
    HybridDesign,
    hybrid_split_curve,
    hybrid_streams_supported,
    hybrid_throughput,
    optimize_hybrid_split,
)

__all__ = [
    "HybridDesign",
    "hybrid_throughput",
    "optimize_hybrid_split",
    "hybrid_split_curve",
    "hybrid_streams_supported",
]
