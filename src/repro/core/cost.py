"""Buffering-cost models (Equations 1, 2 and 9 of the paper).

All costs are in dollars.  The MEMS bank is charged per *device*
(Section 4): ``k * C_mems * Size_mems`` regardless of how much of the
bank the workload actually uses, while DRAM is charged per byte of
buffer actually required.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.buffer_model import design_mems_buffer
from repro.core.cache_model import CachePolicy, design_mems_cache
from repro.core.parameters import SystemParameters
from repro.core.popularity import PopularityDistribution
from repro.core.theorems import min_buffer_disk_dram
from repro.errors import ConfigurationError


def buffering_cost_without_mems(params: SystemParameters) -> float:
    """Equation 1: ``N * C_dram * S_disk-dram`` for direct streaming."""
    if params.n_streams == 0:
        return 0.0
    return params.n_streams * params.c_dram * min_buffer_disk_dram(params)


def buffering_cost_with_mems(params: SystemParameters) -> float:
    """Equation 2: MEMS bank cost plus the reduced DRAM cost.

    ``k * C_mems * Size_mems + N * C_dram * S_mems-dram`` with
    ``S_mems-dram`` from Theorem 2.  Requires finite ``size_mems``
    (the bank must be purchasable to be priced).
    """
    if params.size_mems is None:
        raise ConfigurationError(
            "buffering_cost_with_mems requires a finite size_mems")
    design = design_mems_buffer(params, quantise=False)
    return (params.mems_bank_cost
            + params.n_streams * params.c_dram * design.s_mems_dram)


def cache_cost_with_mems(params: SystemParameters, policy: CachePolicy,
                         popularity: PopularityDistribution) -> float:
    """Equation 9: MEMS bank cost plus DRAM for both stream classes.

    ``k*C_mems*Size_mems + h*N*C_dram*S_mems-dram
    + (1-h)*N*C_dram*S_disk-dram``.
    """
    design = design_mems_cache(params, policy, popularity)
    return params.mems_bank_cost + params.c_dram * design.total_dram


@dataclass(frozen=True)
class BufferCostComparison:
    """Side-by-side buffering costs with and without the MEMS buffer."""

    params: SystemParameters
    #: Equation 1 cost, dollars.
    cost_without: float
    #: Equation 2 cost, dollars.
    cost_with: float
    #: Total DRAM without the MEMS buffer, bytes.
    dram_without: float
    #: Total DRAM with the MEMS buffer, bytes.
    dram_with: float

    @property
    def savings(self) -> float:
        """Absolute cost reduction in dollars (negative if MEMS loses)."""
        return self.cost_without - self.cost_with

    @property
    def percent_reduction(self) -> float:
        """Relative cost reduction in percent of the no-MEMS cost."""
        if self.cost_without == 0:
            return 0.0
        return 100.0 * self.savings / self.cost_without

    @property
    def dram_reduction_factor(self) -> float:
        """How many times less DRAM the MEMS configuration needs."""
        if self.dram_with == 0:
            return float("inf")
        return self.dram_without / self.dram_with

    @property
    def is_cost_effective(self) -> bool:
        """Section 4's criterion: ``COST_with < COST_without``."""
        return self.cost_with < self.cost_without


def optimal_disk_cycle_per_byte_cost(params: SystemParameters) -> float:
    """Cost-optimal ``T_disk`` under per-byte MEMS pricing.

    Section 5.1.2 relaxes the per-device pricing to a cost-per-byte
    model with unlimited MEMS storage.  The MEMS bytes in flight are
    ``2 N B T_disk`` (Eq. 7 with equality) while the DRAM term falls as
    ``T/(T-C)``, so the total buffering cost is minimised at::

        T* = C * (1 + sqrt(C_dram * slack / (2 * C_mems)))

    with ``slack = 1 + (2k-2)/N`` (set ``d/dT = 0`` of
    ``2 N B C_mems T + N B C_dram C slack T/(T-C)``).  Requires a
    positive ``c_mems`` (free MEMS would push ``T`` to infinity).
    """
    from repro.core.buffer_model import mems_cycle_floor

    if params.c_mems <= 0:
        raise ConfigurationError(
            "per-byte MEMS pricing requires c_mems > 0")
    if params.n_streams == 0:
        return 0.0
    floor = mems_cycle_floor(params)
    slack = 1.0 + (2.0 * params.k - 2.0) / params.n_streams
    return floor * (1.0 + math.sqrt(
        params.c_dram * slack / (2.0 * params.c_mems)))


def compare_buffer_costs(params: SystemParameters, *,
                         pricing: str = "per_device") -> BufferCostComparison:
    """Evaluate Equations 1 and 2 for one parameter set.

    ``pricing`` selects the MEMS cost model:

    * ``"per_device"`` — Equation 2 exactly (``k * C_mems * Size_mems``),
      with ``T_disk`` maximised under the Eq. 7 storage bound.  Requires
      a finite ``size_mems``.
    * ``"per_byte"`` — the Section 5.1.2 relaxation used for Figure 8:
      unlimited MEMS storage priced per byte actually in flight, with
      the cost-optimal ``T_disk`` from
      :func:`optimal_disk_cycle_per_byte_cost`.
    """
    s_without = min_buffer_disk_dram(params) if params.n_streams else 0.0
    dram_without = params.n_streams * s_without
    cost_without = params.c_dram * dram_without

    if pricing == "per_device":
        if params.size_mems is None:
            raise ConfigurationError(
                "per-device pricing requires a finite size_mems; use "
                "pricing='per_byte' for the unlimited-storage relaxation")
        design = design_mems_buffer(params, quantise=False)
        dram_with = design.total_dram
        cost_with = params.mems_bank_cost + params.c_dram * dram_with
    elif pricing == "per_byte":
        unlimited = params.replace(size_mems=None)
        if params.n_streams == 0:
            dram_with = 0.0
            cost_with = 0.0
        else:
            from repro.core.buffer_model import disk_cycle_bounds

            # The cost-optimal cycle must still satisfy the disk's
            # real-time lower bound (Eq. 6), which binds at high
            # utilisation.
            lower, _ = disk_cycle_bounds(unlimited)
            t_star = max(optimal_disk_cycle_per_byte_cost(unlimited), lower)
            design = design_mems_buffer(unlimited, t_disk=t_star,
                                        quantise=False)
            dram_with = design.total_dram
            mems_bytes = (2.0 * params.n_streams * params.bit_rate * t_star)
            cost_with = (params.c_mems * mems_bytes
                         + params.c_dram * dram_with)
    else:
        raise ConfigurationError(
            f"pricing must be 'per_device' or 'per_byte', got {pricing!r}")

    return BufferCostComparison(
        params=params,
        cost_without=cost_without,
        cost_with=cost_with,
        dram_without=dram_without,
        dram_with=dram_with,
    )
