"""Inverse solvers: the server throughput of a configuration.

The paper's Figures 9 and 10 report *server throughput* — the maximum
number of streams a configuration can admit — for a fixed buffering
budget.  The forward models (Theorems 1-4) map ``N`` to a DRAM
requirement; these solvers invert them.  Every forward model's DRAM
requirement is strictly increasing in ``N`` (more streams, longer
cycles, bigger buffers), so a bracketed bisection on the feasibility
predicate is exact up to the requested tolerance.
"""

from __future__ import annotations

import math
from collections.abc import Callable

from repro.core.buffer_model import design_mems_buffer
from repro.core.cache_model import CachePolicy, design_mems_cache
from repro.core.parameters import SystemParameters
from repro.core.popularity import PopularityDistribution
from repro.core.theorems import max_streams_direct
from repro.errors import AdmissionError, CapacityError, ConfigurationError

#: Relative tolerance of the bisection solvers.
_REL_TOL = 1e-9
_MAX_DOUBLINGS = 80
_MAX_BISECTIONS = 120


def _max_feasible(predicate: Callable[[float], bool]) -> float:
    """Largest ``n >= 0`` with ``predicate(n)`` true, by doubling + bisection.

    ``predicate`` must be monotone (true on an interval ``[0, n*]``).
    Returns 0.0 when even a vanishing load is infeasible.
    """
    if not predicate(1e-6):
        return 0.0
    lo = 1e-6
    hi = 1.0
    for _ in range(_MAX_DOUBLINGS):
        if not predicate(hi):
            break
        lo = hi
        hi *= 2.0
    else:  # pragma: no cover - would need absurd parameters
        raise ConfigurationError(
            "feasible region appears unbounded; check the budget constraint")
    for _ in range(_MAX_BISECTIONS):
        mid = 0.5 * (lo + hi)
        if predicate(mid):
            lo = mid
        else:
            hi = mid
        if hi - lo <= _REL_TOL * max(hi, 1.0):
            break
    return lo


def max_streams_without_mems(params: SystemParameters,
                             dram_budget: float) -> float:
    """Throughput of the plain disk-to-DRAM server (Theorem 1 inverse).

    Closed form; ``params.n_streams`` is ignored.
    """
    if dram_budget < 0:
        raise ConfigurationError(
            f"dram_budget must be >= 0, got {dram_budget!r}")
    return max_streams_direct(params.bit_rate, params.r_disk, params.l_disk,
                              dram_budget)


def max_streams_with_buffer(params: SystemParameters,
                            dram_budget: float) -> float:
    """Throughput of the MEMS-buffered server (Theorem 2 inverse).

    The feasibility predicate combines the disk and MEMS bandwidth
    limits, the MEMS storage bound (Eq. 7 vs Eq. 6 compatibility), and
    the DRAM budget.  ``params.n_streams`` is ignored.
    """
    if dram_budget < 0:
        raise ConfigurationError(
            f"dram_budget must be >= 0, got {dram_budget!r}")

    def feasible(n: float) -> bool:
        try:
            design = design_mems_buffer(params.replace(n_streams=n),
                                        quantise=False)
        except (AdmissionError, CapacityError):
            return False
        return design.total_dram <= dram_budget

    return _max_feasible(feasible)


def max_streams_with_cache(params: SystemParameters, policy: CachePolicy,
                           popularity: PopularityDistribution,
                           dram_budget: float) -> float:
    """Throughput of the MEMS-cached server (Theorems 3/4 inverse).

    Streams split ``h : (1-h)`` between cache and disk (the hit rate
    depends only on capacities, not on ``N``); feasibility requires
    both device classes to admit their share and the combined DRAM to
    fit the budget.  ``params.n_streams`` is ignored.
    """
    if dram_budget < 0:
        raise ConfigurationError(
            f"dram_budget must be >= 0, got {dram_budget!r}")

    def feasible(n: float) -> bool:
        try:
            design = design_mems_cache(params.replace(n_streams=n), policy,
                                       popularity)
        except AdmissionError:
            return False
        return design.total_dram <= dram_budget

    return _max_feasible(feasible)


def streams_supported(params: SystemParameters, dram_budget: float, *,
                      configuration: str = "none",
                      policy: CachePolicy | None = None,
                      popularity: PopularityDistribution | None = None) -> int:
    """Integer server throughput for any of the three configurations.

    ``configuration`` is ``"none"`` (plain disk), ``"buffer"``, or
    ``"cache"`` (which additionally needs ``policy`` and
    ``popularity``).  Returns ``floor`` of the continuous solution.
    """
    if configuration == "none":
        n = max_streams_without_mems(params, dram_budget)
    elif configuration == "buffer":
        n = max_streams_with_buffer(params, dram_budget)
    elif configuration == "cache":
        if policy is None or popularity is None:
            raise ConfigurationError(
                "cache configuration needs policy and popularity")
        n = max_streams_with_cache(params, policy, popularity, dram_budget)
    else:
        raise ConfigurationError(
            f"configuration must be 'none', 'buffer' or 'cache', "
            f"got {configuration!r}")
    return int(math.floor(n + 1e-9))
