"""Deprecated shim over :mod:`repro.planner.throughput`.

.. deprecated::
    Since the unified planning layer landed, this module is a pure
    re-export kept for the stable public API.  The solvers live in
    :mod:`repro.planner.throughput`; internal code imports them from
    there (the ``no-shim-imports`` lint rule enforces it).  The private
    ``_max_feasible`` alias and tolerance constants remain for
    historical callers.
"""

from __future__ import annotations

from repro.planner.search import (
    MAX_BISECTIONS as _MAX_BISECTIONS,  # noqa: F401  (compat re-export)
    MAX_DOUBLINGS as _MAX_DOUBLINGS,  # noqa: F401  (compat re-export)
    REL_TOL as _REL_TOL,  # noqa: F401  (compat re-export)
    max_feasible_real,
)
from repro.planner.throughput import (
    max_streams_with_buffer,
    max_streams_with_cache,
    max_streams_without_mems,
    streams_supported,
)

__all__ = [
    "max_streams_without_mems",
    "max_streams_with_buffer",
    "max_streams_with_cache",
    "streams_supported",
]

#: Deprecated alias; the solver (and its tolerance constants
#: ``_REL_TOL`` etc., re-exported above) lives in the planning layer.
_max_feasible = max_feasible_real
