"""Theorem 2: a ``k``-device MEMS bank as a disk buffer.

In the buffer configuration every byte travels disk -> MEMS -> DRAM, so
the MEMS bank carries twice the stream load (one write per byte from
the disk side, one read per byte to the DRAM side).  Two nested IO
cycles exist (Figures 4 and 5 of the paper):

* the **disk IO cycle** ``T_disk``: one disk IO per stream, each of
  size ``B * T_disk``, routed whole to one MEMS device;
* the **MEMS IO cycle** ``T_mems``: one MEMS->DRAM transfer per stream
  plus ``M`` disk->MEMS transfers, with ``T_mems / T_disk = M / N`` for
  an integer ``M < N`` (Eq. 8).

The minimal feasible MEMS cycle is

    C = N * L_mems * R_mems / (k * R_mems - 2 (N + k - 1) * B)   (Thm 2)

and the per-stream DRAM buffer is

    S_mems-dram = B * C * (1 + (2k-2)/N) * T_disk / (T_disk - C)  (Eq. 5)

where ``T_disk`` is the *largest* cycle satisfying the real-time lower
bound (Eq. 6), the MEMS storage capacity bound
``2 N T_disk B <= k * Size_mems`` (Eq. 7), and Eq. 8.  Larger ``T_disk``
means larger disk IOs (better disk efficiency) *and* less DRAM, so the
storage bound is the binding one; with the paper's "unlimited MEMS"
relaxation ``T_disk -> inf`` and the DRAM term converges to
``B * C * (1 + (2k-2)/N)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.parameters import SystemParameters
from repro.core.theorems import io_cycle_direct
from repro.errors import AdmissionError, CapacityError, SchedulingError


def mems_cycle_floor(params: SystemParameters) -> float:
    """Minimal feasible MEMS IO cycle ``C`` (Theorem 2).

    Raises :class:`~repro.errors.AdmissionError` when the doubled
    stream load saturates the bank:
    ``k * R_mems <= 2 * (N + k - 1) * B``.
    """
    n = params.n_streams
    if n == 0:
        return 0.0
    doubled_load = 2.0 * (n + params.k - 1) * params.bit_rate
    bank_rate = params.mems_bank_bandwidth
    if doubled_load >= bank_rate:
        raise AdmissionError(
            f"MEMS bank must sustain twice the stream load: need "
            f"{doubled_load:.6g} B/s but the k={params.k} bank provides "
            f"{bank_rate:.6g} B/s",
            load=doubled_load, capacity=bank_rate)
    return (n * params.l_mems * params.r_mems) / (bank_rate - doubled_load)


def disk_cycle_bounds(params: SystemParameters) -> tuple[float, float]:
    """(lower, upper) bounds on ``T_disk`` from Eqs. 6 and 7.

    The lower bound is the disk's own real-time cycle (Eq. 6); the
    upper bound comes from fitting the in-flight data in the bank
    (Eq. 7) and is ``inf`` when ``size_mems`` is unlimited (None).
    """
    lower = io_cycle_direct(params.n_streams, params.bit_rate,
                            params.r_disk, params.l_disk)
    capacity = params.mems_bank_capacity
    if capacity is None or params.n_streams == 0:
        return lower, math.inf
    upper = capacity / (2.0 * params.n_streams * params.bit_rate)
    return lower, upper


def choose_disk_transfers_per_mems_cycle(n_streams: int, t_disk: float,
                                         cycle_floor: float) -> int:
    """Integer ``M`` of Eq. 8: disk transfers per MEMS IO cycle.

    ``T_mems = (M / N) * T_disk`` must absorb, per cycle, the ``N``
    DRAM-transfer latencies *and* the ``M`` disk-write latencies plus
    the doubled byte traffic.  Working that service condition through
    gives ``T_mems >= C * T_disk / (T_disk - C)`` — precisely the
    ``T/(T-C)`` inflation that appears in Eq. 5 — i.e.
    ``M >= N * C / (T_disk - C)``.  A shorter MEMS cycle means less
    DRAM, so the smallest such ``M`` is chosen.  Raises
    :class:`~repro.errors.SchedulingError` when no integer ``1 <= M < N``
    works (the schedule of Theorem 2 requires ``M < N``).
    """
    if n_streams < 2:
        raise SchedulingError(
            f"the two-level schedule needs at least 2 streams, got {n_streams!r}")
    if t_disk <= 0 or not math.isfinite(t_disk):
        raise SchedulingError(
            f"t_disk must be positive and finite to quantise M, got {t_disk!r}")
    if cycle_floor < 0:
        raise SchedulingError(
            f"cycle_floor must be >= 0, got {cycle_floor!r}")
    if t_disk <= cycle_floor:
        raise SchedulingError(
            f"t_disk={t_disk:.6g}s does not exceed the MEMS cycle floor "
            f"C={cycle_floor:.6g}s")
    m = max(1, math.ceil(n_streams * cycle_floor / (t_disk - cycle_floor)))
    if m >= n_streams:
        raise SchedulingError(
            f"no integer M < N satisfies the MEMS service condition: "
            f"N={n_streams}, T_disk={t_disk:.6g}s, C={cycle_floor:.6g}s")
    return m


@dataclass(frozen=True)
class BufferDesign:
    """A feasible MEMS-buffer operating point (output of Theorem 2)."""

    #: The parameter set the design was computed for.
    params: SystemParameters
    #: Disk IO cycle, seconds (``inf`` under unlimited MEMS storage).
    t_disk: float
    #: Feasibility floor ``C`` of the MEMS IO cycle, seconds.
    cycle_floor: float
    #: Per-stream disk->MEMS IO size ``B * T_disk`` (``inf`` if unlimited).
    s_disk_mems: float
    #: Per-stream DRAM buffer (Eq. 5), bytes.
    s_mems_dram: float
    #: Disk transfers per MEMS cycle (Eq. 8), or None when ``T_disk`` is
    #: unbounded and the quantisation is vacuous.
    m: int | None
    #: Realised MEMS IO cycle ``(M / N) * T_disk`` (None when unbounded).
    t_mems: float | None

    @property
    def total_dram(self) -> float:
        """Aggregate DRAM requirement ``N * S_mems-dram``, bytes."""
        return self.params.n_streams * self.s_mems_dram

    @property
    def s_mems_dram_discrete(self) -> float | None:
        """Per-stream DRAM at the *quantised* MEMS cycle.

        ``B * T_mems * (1 + (2k-2)/N)`` with the integer-M cycle; None
        when ``T_disk`` is unbounded.  Differs from Eq. 5 only by the
        ceiling in M and is what the event simulator provisions.
        """
        if self.t_mems is None:
            return None
        n = self.params.n_streams
        slack = 1.0 + (2.0 * self.params.k - 2.0) / n
        return self.params.bit_rate * self.t_mems * slack


def design_mems_buffer(params: SystemParameters, *,
                       t_disk: float | None = None,
                       quantise: bool = True) -> BufferDesign:
    """Solve Theorem 2 for a parameter set.

    By default ``T_disk`` is the largest cycle allowed by Eqs. 6-7; a
    caller may pin it (e.g. to sweep the trade-off) via ``t_disk``.
    With ``quantise=True`` (default) the integer ``M`` of Eq. 8 is also
    computed whenever ``T_disk`` is finite.

    Raises
    ------
    AdmissionError
        If the disk or the MEMS bank lacks bandwidth for the load.
    CapacityError
        If the MEMS bank cannot hold the in-flight data of even the
        minimal disk cycle (Eq. 7 conflicts with Eq. 6).
    SchedulingError
        If quantisation is requested and no integer ``M < N`` exists.
    """
    n = params.n_streams
    if n == 0:
        return BufferDesign(params=params, t_disk=0.0, cycle_floor=0.0,
                            s_disk_mems=0.0, s_mems_dram=0.0, m=None,
                            t_mems=None)
    floor = mems_cycle_floor(params)
    lower, upper = disk_cycle_bounds(params)
    if t_disk is None:
        if upper < lower:
            raise CapacityError(
                f"k={params.k} MEMS devices cannot hold the in-flight data: "
                f"the minimal disk cycle {lower:.6g}s needs "
                f"{2 * n * params.bit_rate * lower:.6g} B but the bank holds "
                f"{params.mems_bank_capacity:.6g} B (Eq. 7)")
        t_disk = upper
    else:
        if t_disk < lower:
            raise AdmissionError(
                f"requested T_disk={t_disk:.6g}s is below the real-time "
                f"minimum {lower:.6g}s (Eq. 6)")
        if t_disk > upper:
            raise CapacityError(
                f"requested T_disk={t_disk:.6g}s exceeds the storage bound "
                f"{upper:.6g}s (Eq. 7)")

    slack = 1.0 + (2.0 * params.k - 2.0) / n
    if math.isinf(t_disk):
        s_mems_dram = params.bit_rate * floor * slack
        s_disk_mems = math.inf
        m = None
        t_mems = None
    else:
        if t_disk <= floor:
            raise AdmissionError(
                f"T_disk={t_disk:.6g}s does not exceed the MEMS cycle floor "
                f"C={floor:.6g}s; the bank cannot drain the disk in time")
        s_mems_dram = (params.bit_rate * floor * slack
                       * t_disk / (t_disk - floor))
        s_disk_mems = params.bit_rate * t_disk
        if quantise and n >= 2:
            # A single stream has no inner cycle to quantise (M < N needs
            # N >= 2); the closed form alone applies.
            m = choose_disk_transfers_per_mems_cycle(n, t_disk, floor)
            t_mems = (m / n) * t_disk
        else:
            m = None
            t_mems = None
    return BufferDesign(params=params, t_disk=t_disk, cycle_floor=floor,
                        s_disk_mems=s_disk_mems, s_mems_dram=s_mems_dram,
                        m=m, t_mems=t_mems)
