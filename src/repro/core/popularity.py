"""Content-popularity models and the cache hit-rate map (Eq. 11).

The paper specifies popularity as ``X:Y`` — X% of the titles receive
Y% of the accesses, uniformly within the popular and unpopular classes.
Given a cache holding the most popular fraction ``p`` of the content,
the hit rate is

    h = (p / (X/100)) * Y/100                      if p <= X/100,
    h = Y/100 + (p - X/100)/(1 - X/100) * (1-Y/100) otherwise,

i.e. the cache first absorbs the popular class, then dips into the
unpopular class.  ``50:50`` denotes the uniform distribution.

:class:`ZipfPopularity` is an extension beyond the paper: real VoD
popularity is often Zipf-like, and the cache analysis only consumes the
``hit_rate(p)`` map, so any distribution with that interface plugs in.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "BimodalPopularity",
    "EmpiricalPopularity",
    "PopularityDistribution",
    "UniformPopularity",
    "ZipfPopularity",
    "paper_distributions",
]


class PopularityDistribution(abc.ABC):
    """Maps a cached content fraction to an access hit rate."""

    @abc.abstractmethod
    def hit_rate(self, cached_fraction: float) -> float:
        """Fraction of accesses served by caching the ``cached_fraction``
        most popular content.  Monotone, with ``hit_rate(0) = 0`` and
        ``hit_rate(1) = 1``."""

    def _check_fraction(self, cached_fraction: float) -> float:
        if not 0 <= cached_fraction <= 1:
            raise ConfigurationError(
                f"cached fraction must be in [0, 1], got {cached_fraction!r}")
        return cached_fraction


@dataclass(frozen=True)
class BimodalPopularity(PopularityDistribution):
    """The paper's ``X:Y`` two-class popularity distribution.

    ``x_percent`` of the titles receive ``y_percent`` of the accesses;
    both classes are internally uniform.  The paper's experiments use
    1:99, 5:95, 10:90, 20:80 and the uniform 50:50.
    """

    x_percent: float
    y_percent: float

    def __post_init__(self) -> None:
        if not 0 < self.x_percent < 100:
            raise ConfigurationError(
                f"x_percent must be in (0, 100), got {self.x_percent!r}")
        if not 0 < self.y_percent < 100:
            raise ConfigurationError(
                f"y_percent must be in (0, 100), got {self.y_percent!r}")
        if self.y_percent < self.x_percent:
            raise ConfigurationError(
                f"a {self.x_percent}:{self.y_percent} distribution gives the "
                "popular class less than its uniform share; swap X and Y")

    @classmethod
    def parse(cls, spec: str) -> "BimodalPopularity":
        """Parse the paper's ``"X:Y"`` notation, e.g. ``"1:99"``."""
        try:
            x_text, y_text = spec.split(":")
            return cls(float(x_text), float(y_text))
        except ValueError as exc:
            raise ConfigurationError(
                f"popularity spec must look like 'X:Y', got {spec!r}") from exc

    @property
    def is_uniform(self) -> bool:
        """True for the 50:50 (uniform) distribution."""
        return math.isclose(self.x_percent, self.y_percent)

    @property
    def skew(self) -> float:
        """Access-density ratio between the popular and unpopular class."""
        x = self.x_percent / 100.0
        y = self.y_percent / 100.0
        return (y / x) / ((1.0 - y) / (1.0 - x))

    def hit_rate(self, cached_fraction: float) -> float:
        """Equation 11 of the paper."""
        p = self._check_fraction(cached_fraction)
        x = self.x_percent / 100.0
        y = self.y_percent / 100.0
        if p <= x:
            return (p / x) * y
        return y + (p - x) / (1.0 - x) * (1.0 - y)

    def __str__(self) -> str:
        return f"{self.x_percent:g}:{self.y_percent:g}"


@dataclass(frozen=True)
class UniformPopularity(PopularityDistribution):
    """All content equally popular: ``hit_rate(p) = p``."""

    def hit_rate(self, cached_fraction: float) -> float:
        return self._check_fraction(cached_fraction)


@dataclass(frozen=True)
class ZipfPopularity(PopularityDistribution):
    """Zipf-distributed title popularity (extension beyond the paper).

    Title ``i`` (1-based) of ``n_titles`` receives weight
    ``i ** -alpha``; caching the top fraction ``p`` captures the sum of
    the first ``ceil(p * n_titles)`` weights.  ``alpha ~ 0.7-1.0`` is
    typical for VoD traces.
    """

    alpha: float
    n_titles: int

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ConfigurationError(
                f"alpha must be >= 0, got {self.alpha!r}")
        if self.n_titles < 1:
            raise ConfigurationError(
                f"n_titles must be >= 1, got {self.n_titles!r}")

    def _weights(self) -> np.ndarray:
        ranks = np.arange(1, self.n_titles + 1, dtype=float)
        weights = ranks ** (-self.alpha)
        return weights / weights.sum()

    def hit_rate(self, cached_fraction: float) -> float:
        p = self._check_fraction(cached_fraction)
        n_cached = int(math.floor(p * self.n_titles + 1e-9))
        weights = self._weights()
        head = float(weights[:n_cached].sum())
        # Interpolate within the marginal title so hit_rate is continuous
        # in p (a partially cached title is modelled as proportionally hit).
        remainder = p * self.n_titles - n_cached
        if n_cached < self.n_titles and remainder > 0:
            head += remainder * float(weights[n_cached])
        return min(head, 1.0)

    def title_probability(self, rank: int) -> float:
        """Access probability of the ``rank``-th most popular title (1-based)."""
        if not 1 <= rank <= self.n_titles:
            raise ConfigurationError(
                f"rank must be in [1, {self.n_titles}], got {rank!r}")
        return float(self._weights()[rank - 1])


@dataclass(frozen=True)
class EmpiricalPopularity(PopularityDistribution):
    """Hit-rate map fitted to observed per-title access counts.

    The online runtime re-estimates popularity from the requests it has
    actually served (see :mod:`repro.runtime.placement`); the cache
    theorems only consume ``hit_rate(p)``, so an empirical curve plugs
    into :func:`~repro.core.cache_model.design_mems_cache` unchanged.

    ``weights`` are normalised access shares sorted most-popular-first.
    A partially cached marginal title is counted proportionally, making
    ``hit_rate`` continuous and monotone with ``hit_rate(0) = 0`` and
    ``hit_rate(1) = 1``.
    """

    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.weights:
            raise ConfigurationError("weights must be non-empty")
        if any(w < 0 for w in self.weights):
            raise ConfigurationError("weights must be >= 0")
        if any(b > a + 1e-12 for a, b in zip(self.weights,
                                             self.weights[1:])):
            raise ConfigurationError(
                "weights must be sorted most-popular-first")
        total = sum(self.weights)
        if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-12):
            raise ConfigurationError(
                f"weights must sum to 1, got {total!r}")

    @classmethod
    def from_counts(cls, counts) -> "EmpiricalPopularity":
        """Build from raw (unsorted, unnormalised) access counts.

        All-zero counts degrade to the uniform distribution — a cold
        server has no popularity signal yet.
        """
        values = sorted((float(c) for c in counts), reverse=True)
        if not values:
            raise ConfigurationError("counts must be non-empty")
        if any(v < 0 for v in values):
            raise ConfigurationError("counts must be >= 0")
        total = sum(values)
        if total <= 0:
            return cls(weights=(1.0 / len(values),) * len(values))
        return cls(weights=tuple(v / total for v in values))

    def hit_rate(self, cached_fraction: float) -> float:
        p = self._check_fraction(cached_fraction)
        scaled = p * len(self.weights)
        n_whole = int(math.floor(scaled + 1e-9))
        head = sum(self.weights[:n_whole])
        remainder = scaled - n_whole
        if n_whole < len(self.weights) and remainder > 1e-9:
            head += remainder * self.weights[n_whole]
        return min(head, 1.0)


#: The popularity distributions swept in Figures 9 and 10 of the paper.
PAPER_DISTRIBUTIONS: tuple[str, ...] = ("1:99", "5:95", "10:90", "20:80", "50:50")


def paper_distributions() -> list[BimodalPopularity]:
    """The five X:Y distributions used in the paper's experiments."""
    return [BimodalPopularity.parse(spec) for spec in PAPER_DISTRIBUTIONS]
