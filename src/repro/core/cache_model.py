"""Theorems 3-4: a ``k``-device MEMS bank as a content cache.

In the cache configuration (Section 3.2 / 4.2) the MEMS bank stores the
most popular streams in their entirety and services them directly,
while the disk services the rest.  Two independent time-cycle schedules
run, one per device class.  The per-stream DRAM buffers are

* striped cache (Theorem 3, Eq. 12)::

      S = n * L_mems * (k R_mems) * B / (k R_mems - n B)

  — the bank seeks in lock step so latency is that of one device, and
  every one of the ``n`` cached streams costs a seek on every device;

* replicated cache (Theorem 4, Eq. 13)::

      S = ((n+k-1)/k) * L_mems * (k R_mems) * B / (k R_mems - (n+k-1) B)

  — each device independently serves ``~n/k`` streams, so the bank's
  effective latency shrinks by ``k`` (up to the ``(n+k-1)`` rounding
  slack), at the price of caching only one device's worth of content.

The cached-content fraction ``p`` (Section 4.2) is
``k * Size_mems / Size_disk`` for striping and
``Size_mems / Size_disk`` for replication; the popularity model maps
``p`` to the hit rate ``h`` (Eq. 11), splitting the ``N`` streams into
``n = h N`` cache-served and ``(1-h) N`` disk-served.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.parameters import SystemParameters
from repro.core.popularity import PopularityDistribution
from repro.core.theorems import min_buffer_direct
from repro.errors import AdmissionError, ConfigurationError


class CachePolicy(enum.Enum):
    """Cache-management policy for a multi-device MEMS cache."""

    #: Bit/byte striping across all devices, lock-step access (Thm 3).
    STRIPED = "striped"
    #: Full replication, streams partitioned across devices (Thm 4).
    REPLICATED = "replicated"


def _validate(n_cached: float, bit_rate: float, k: int, r_mems: float,
              l_mems: float) -> None:
    if n_cached < 0:
        raise ConfigurationError(f"n_cached must be >= 0, got {n_cached!r}")
    if bit_rate <= 0:
        raise ConfigurationError(f"bit_rate must be > 0, got {bit_rate!r}")
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k!r}")
    if r_mems <= 0:
        raise ConfigurationError(f"r_mems must be > 0, got {r_mems!r}")
    if l_mems < 0:
        raise ConfigurationError(f"l_mems must be >= 0, got {l_mems!r}")


def striped_cache_buffer(n_cached: float, bit_rate: float, k: int,
                         r_mems: float, l_mems: float) -> float:
    """Per-stream DRAM buffer for a striped MEMS cache (Eq. 12).

    ``n_cached`` may be fractional (it is usually the expected value
    ``h * N``).  Raises :class:`~repro.errors.AdmissionError` when the
    cached load reaches the bank bandwidth ``k * r_mems``.
    """
    _validate(n_cached, bit_rate, k, r_mems, l_mems)
    if n_cached == 0:
        return 0.0
    bank_rate = k * r_mems
    load = n_cached * bit_rate
    if load >= bank_rate:
        raise AdmissionError(
            f"striped cache load {load:.6g} B/s is not below the bank rate "
            f"{bank_rate:.6g} B/s", load=load, capacity=bank_rate)
    return n_cached * l_mems * bank_rate * bit_rate / (bank_rate - load)


def replicated_cache_buffer(n_cached: float, bit_rate: float, k: int,
                            r_mems: float, l_mems: float) -> float:
    """Per-stream DRAM buffer for a replicated MEMS cache (Eq. 13)."""
    _validate(n_cached, bit_rate, k, r_mems, l_mems)
    if n_cached == 0:
        return 0.0
    bank_rate = k * r_mems
    effective_streams = n_cached + k - 1
    load = effective_streams * bit_rate
    if load >= bank_rate:
        raise AdmissionError(
            f"replicated cache load {load:.6g} B/s (incl. the k-1 rounding "
            f"slack) is not below the bank rate {bank_rate:.6g} B/s",
            load=load, capacity=bank_rate)
    return (effective_streams / k) * l_mems * bank_rate * bit_rate / (
        bank_rate - load)


def cache_buffer(policy: CachePolicy, n_cached: float, bit_rate: float,
                 k: int, r_mems: float, l_mems: float) -> float:
    """Dispatch to Eq. 12 or Eq. 13 by policy."""
    if policy is CachePolicy.STRIPED:
        return striped_cache_buffer(n_cached, bit_rate, k, r_mems, l_mems)
    if policy is CachePolicy.REPLICATED:
        return replicated_cache_buffer(n_cached, bit_rate, k, r_mems, l_mems)
    raise ConfigurationError(f"unknown cache policy {policy!r}")


def cache_capacity_fraction(policy: CachePolicy, k: int, size_mems: float,
                            size_disk: float) -> float:
    """Cached-content fraction ``p`` (Section 4.2), clamped to 1.

    Striping aggregates all ``k`` capacities; replication stores the
    same content on every device.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k!r}")
    if size_mems <= 0 or size_disk <= 0:
        raise ConfigurationError(
            f"sizes must be > 0, got size_mems={size_mems!r}, "
            f"size_disk={size_disk!r}")
    usable = k * size_mems if policy is CachePolicy.STRIPED else size_mems
    return min(usable / size_disk, 1.0)


@dataclass(frozen=True)
class CacheDesign:
    """A MEMS-cache operating point for a given stream population."""

    params: SystemParameters
    policy: CachePolicy
    #: Cached fraction of the content, ``p``.
    cached_fraction: float
    #: Hit rate ``h`` from the popularity model (Eq. 11).
    hit_rate: float
    #: Expected streams served from the cache, ``n = h * N``.
    n_cache_streams: float
    #: Expected streams served from the disk, ``(1 - h) * N``.
    n_disk_streams: float
    #: Per-stream DRAM buffer for cache-served streams (Eq. 12/13).
    s_mems_dram: float
    #: Per-stream DRAM buffer for disk-served streams (Theorem 1).
    s_disk_dram: float

    @property
    def total_dram(self) -> float:
        """Aggregate DRAM across both stream classes, bytes."""
        return (self.n_cache_streams * self.s_mems_dram
                + self.n_disk_streams * self.s_disk_dram)


def design_mems_cache(params: SystemParameters, policy: CachePolicy,
                      popularity: PopularityDistribution) -> CacheDesign:
    """Evaluate the cache model at ``params.n_streams`` total streams.

    Requires finite ``size_mems`` and ``size_disk`` (the hit rate comes
    from the capacity fraction).  Raises
    :class:`~repro.errors.AdmissionError` when either device class is
    over-committed.
    """
    if params.size_mems is None or params.size_disk is None:
        raise ConfigurationError(
            "the cache model needs finite size_mems and size_disk")
    p = cache_capacity_fraction(policy, params.k, params.size_mems,
                                params.size_disk)
    h = popularity.hit_rate(p)
    n = params.n_streams
    n_cache = h * n
    n_disk = (1.0 - h) * n
    s_mems = cache_buffer(policy, n_cache, params.bit_rate, params.k,
                          params.r_mems, params.l_mems)
    s_disk = min_buffer_direct(n_disk, params.bit_rate, params.r_disk,
                               params.l_disk)
    return CacheDesign(params=params, policy=policy, cached_fraction=p,
                       hit_rate=h, n_cache_streams=n_cache,
                       n_disk_streams=n_disk, s_mems_dram=s_mems,
                       s_disk_dram=s_disk)
