"""Operating regions: which configuration wins where.

The paper's design guidelines are regional statements ("buffer low and
medium bit-rates", "cache when popularity is skewed").  This module
computes them quantitatively: over a grid of (bit-rate, DRAM budget) —
or any two swept axes — it evaluates the admitted-stream throughput of
the plain, buffered, and cached configurations and labels each cell
with the winner, producing the data behind a Figure-7(b)-style regions
map for *configuration choice* rather than cost reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cache_model import CachePolicy
from repro.planner.throughput import (
    max_streams_with_buffer,
    max_streams_with_cache,
    max_streams_without_mems,
)
from repro.core.parameters import SystemParameters
from repro.core.popularity import PopularityDistribution
from repro.devices.catalog import DRAM_2007, MEMS_G3
from repro.errors import AdmissionError, CapacityError, ConfigurationError

#: Configuration labels in evaluation order.
CONFIGURATIONS: tuple[str, ...] = ("none", "buffer", "cache")


@dataclass(frozen=True)
class RegionCell:
    """Throughput of every configuration at one operating point."""

    bit_rate: float
    total_budget: float
    #: Admitted streams per configuration label.
    throughput: dict[str, float]

    @property
    def winner(self) -> str:
        """Configuration admitting the most streams (ties: paper order)."""
        best = max(self.throughput.values())
        for label in CONFIGURATIONS:
            if self.throughput.get(label, -1.0) >= best * (1 - 1e-12):
                return label
        raise RuntimeError(
            "winner scan matched no configuration")  # pragma: no cover

    @property
    def gain_over_plain(self) -> float:
        """Winner's throughput relative to the plain configuration."""
        plain = self.throughput.get("none", 0.0)
        if plain <= 0:
            return float("inf") if max(self.throughput.values()) > 0 else 1.0
        return max(self.throughput.values()) / plain


def evaluate_cell(bit_rate: float, total_budget: float, *,
                  popularity: PopularityDistribution,
                  policy: CachePolicy = CachePolicy.REPLICATED,
                  buffer_devices: int = 2,
                  cache_devices: int = 2) -> RegionCell:
    """Throughput of the three configurations at one budget point.

    The budget is *total* dollars: each MEMS configuration first buys
    its devices and spends the remainder on DRAM; the plain
    configuration spends everything on DRAM.
    """
    if bit_rate <= 0 or total_budget <= 0:
        raise ConfigurationError(
            f"bit_rate and total_budget must be > 0, got "
            f"{bit_rate!r} / {total_budget!r}")
    throughput: dict[str, float] = {}

    plain_params = SystemParameters.table3_default(n_streams=1,
                                                   bit_rate=bit_rate, k=1)
    throughput["none"] = max_streams_without_mems(
        plain_params, total_budget / DRAM_2007.cost_per_byte)

    for label, k, solver in (
            ("buffer", buffer_devices,
             lambda p, d: max_streams_with_buffer(p, d)),
            ("cache", cache_devices,
             lambda p, d: max_streams_with_cache(p, policy, popularity, d))):
        device_cost = k * MEMS_G3.cost_per_device
        if device_cost >= total_budget:
            throughput[label] = 0.0
            continue
        params = SystemParameters.table3_default(n_streams=1,
                                                 bit_rate=bit_rate, k=k)
        dram = (total_budget - device_cost) / DRAM_2007.cost_per_byte
        try:
            throughput[label] = solver(params, dram)
        except (AdmissionError, CapacityError):
            throughput[label] = 0.0
    return RegionCell(bit_rate=bit_rate, total_budget=total_budget,
                      throughput=throughput)


def configuration_map(bit_rates: np.ndarray, budgets: np.ndarray, *,
                      popularity: PopularityDistribution,
                      policy: CachePolicy = CachePolicy.REPLICATED,
                      buffer_devices: int = 2,
                      cache_devices: int = 2) -> list[list[RegionCell]]:
    """Winner map over a bit-rate x budget grid.

    ``result[i][j]`` is the cell at ``bit_rates[i]``, ``budgets[j]``.
    """
    if len(bit_rates) == 0 or len(budgets) == 0:
        raise ConfigurationError("grid axes must be non-empty")
    return [[evaluate_cell(float(bit_rate), float(budget),
                           popularity=popularity, policy=policy,
                           buffer_devices=buffer_devices,
                           cache_devices=cache_devices)
             for budget in budgets]
            for bit_rate in bit_rates]


def render_configuration_map(cells: list[list[RegionCell]]) -> str:
    """Character map: ``.`` plain wins, ``b`` buffer, ``c`` cache."""
    glyphs = {"none": ".", "buffer": "b", "cache": "c"}
    lines = []
    for row in reversed(cells):  # highest bit-rate on top
        rate = row[0].bit_rate
        cellstr = "".join(glyphs[cell.winner] for cell in row)
        lines.append(f"{rate / 1000:>10.3g} |{cellstr}")
    budgets = [cell.total_budget for cell in cells[0]]
    lines.append(" " * 10 + "-+" + "-" * len(budgets))
    lines.append(" " * 12 + f"${budgets[0]:g} .. ${budgets[-1]:g}")
    lines.append(" " * 12 + "rows: bit-rate (KB/s);  .=plain  b=buffer  "
                 "c=cache")
    return "\n".join(lines)
