"""Playback startup latency per server configuration.

The paper sizes for steady-state throughput; an interactive VoD user
also cares how long after pressing *play* the first frame arrives.
Time-cycle scheduling bounds this structurally:

* **direct** (disk -> DRAM): the new stream waits for its slot in the
  current IO cycle — at worst one full cycle ``T``, on average half.
* **MEMS buffer** (disk -> MEMS -> DRAM): data must traverse the
  pipeline.  With the double-buffered staging discipline that the
  real-time guarantee needs (see
  :mod:`repro.simulation.pipelines`), a stream's DRAM reads begin one
  disk cycle after its first disk IO lands — a worst case of about
  ``2 * T_disk + T_mems``.  Because ``T_disk`` is huge (that is the
  whole point of the buffer), a practical server *bypasses* the bank
  for a new stream's first cycles, serving it disk->DRAM until its
  pipeline warms; the bypass startup is one disk IO's service time
  plus the cycle-slot wait, the same order as the direct case.
* **MEMS cache** (cache hit): one cache cycle — the shortest of all,
  and one of the cache's under-advertised benefits: popular content
  starts nearly instantly.

All bounds are *worst case over arrival phase*; the expected value over
a uniformly random arrival is half the cycle-wait term.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.buffer_model import BufferDesign
from repro.core.cache_model import CacheDesign
from repro.core.parameters import SystemParameters
from repro.core.theorems import io_cycle_direct
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class StartupLatency:
    """Startup-latency bounds for one configuration, seconds."""

    #: Worst case over arrival phase.
    worst: float
    #: Expected value over a uniformly random arrival phase.
    expected: float
    #: Human-readable configuration label.
    configuration: str

    def __post_init__(self) -> None:
        if self.worst < self.expected - 1e-12:
            raise ConfigurationError(
                f"worst ({self.worst!r}) below expected ({self.expected!r})")


def direct_startup(params: SystemParameters) -> StartupLatency:
    """Startup of the plain disk-to-DRAM server.

    The arriving stream's first IO is scheduled in the next cycle slot:
    worst case one full cycle plus its own IO service, expected half a
    cycle plus the service.
    """
    t_cycle = io_cycle_direct(params.n_streams, params.bit_rate,
                              params.r_disk, params.l_disk)
    io_service = params.l_disk + params.bit_rate * t_cycle / params.r_disk
    return StartupLatency(worst=t_cycle + io_service,
                          expected=t_cycle / 2.0 + io_service,
                          configuration="direct")


def buffered_startup(design: BufferDesign, *,
                     bypass: bool = True) -> StartupLatency:
    """Startup of the MEMS-buffered server.

    ``bypass=True`` (default) models the practical policy: the new
    stream's first data is read disk->DRAM directly while its pipeline
    warms; startup is one disk cycle-slot wait plus one *small* direct
    IO (a MEMS cycle's worth, not a disk cycle's worth).
    ``bypass=False`` is the naive pipeline fill: the stream waits for
    its disk IO, its landing on the bank, and the double-buffer delay.
    """
    params = design.params
    if design.t_mems is None:
        # Unquantised/unbounded design: fall back on the floor cycle.
        t_mems = design.cycle_floor
    else:
        t_mems = design.t_mems
    if bypass:
        # One slot wait in the disk cycle, then a direct read of one
        # MEMS cycle's worth of data at the disk's service quality.
        slot_wait = 0.0 if math.isinf(design.t_disk) else design.t_disk
        io_service = params.l_disk + params.bit_rate * t_mems / params.r_disk
        return StartupLatency(worst=slot_wait + io_service,
                              expected=slot_wait / 2.0 + io_service,
                              configuration="buffer (bypass)")
    if math.isinf(design.t_disk):
        raise ConfigurationError(
            "naive pipeline-fill startup needs a finite disk cycle")
    # Three disk-cycle-scale stages: wait for a slot in the disk cycle
    # (up to T_disk), wait for the read to land on the bank (up to
    # another T_disk of landing cadence), and the double-buffer delay
    # (exactly one T_disk) before the stream's DRAM reads start.
    worst = 3.0 * design.t_disk + t_mems
    expected = 2.0 * design.t_disk + t_mems
    return StartupLatency(worst=worst, expected=expected,
                          configuration="buffer (pipeline fill)")


def cache_startup(design: CacheDesign) -> StartupLatency:
    """Startup of a cache-served stream: one cache IO cycle."""
    params = design.params
    if design.n_cache_streams <= 0:
        raise ConfigurationError(
            "no streams are served from the cache in this design")
    t_cycle = design.s_mems_dram / params.bit_rate
    io_service = params.l_mems + design.s_mems_dram / params.r_mems
    return StartupLatency(worst=t_cycle + io_service,
                          expected=t_cycle / 2.0 + io_service,
                          configuration="cache")


def startup_comparison(params: SystemParameters, design: BufferDesign,
                       cache: CacheDesign | None = None
                       ) -> list[StartupLatency]:
    """Side-by-side startup bounds for the available configurations."""
    results = [direct_startup(params),
               buffered_startup(design, bypass=True),
               buffered_startup(design, bypass=True)
               if math.isinf(design.t_disk) else
               buffered_startup(design, bypass=False)]
    if cache is not None and cache.n_cache_streams > 0:
        results.append(cache_startup(cache))
    return results
