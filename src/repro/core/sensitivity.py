"""Latency-ratio sensitivity study (the paper's Figure 7).

Section 5.1.3 fixes an "off-the-shelf" 2007 server — DRAM capped at
5 GB, a two-device G3 MEMS buffer (20 GB, $20) — and varies the
**latency ratio** ``L_disk / L_mems`` from 1 to 10 (about 5 for the
FutureDisk/G3 pair) to probe how sensitive the cost savings are to
MEMS device mis-prediction.

Methodology (as in the paper): for each bit-rate the server without a
MEMS buffer admits as many streams as the 5 GB DRAM (or the disk
bandwidth) allows; the MEMS configuration then serves the *same* number
of streams, and the two buffering costs are compared.  Beyond ~1 MB/s
the no-MEMS server is bandwidth-bound and leaves the 5 GB DRAM
under-used, which caps the achievable reduction (the paper's 30%
observation for HDTV); at every bit-rate the $20 MEMS bank bounds the
reduction below 100%.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.planner.throughput import max_streams_without_mems
from repro.core.parameters import SystemParameters
from repro.core.theorems import min_buffer_disk_dram
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LatencyRatioPoint:
    """One point of the Figure 7 sweep."""

    latency_ratio: float
    bit_rate: float
    #: Streams admitted by the no-MEMS server (integer).
    n_streams: int
    #: Total DRAM without / with the MEMS buffer, bytes.
    dram_without: float
    dram_with: float
    #: Buffering cost without / with the MEMS buffer, dollars.
    cost_without: float
    cost_with: float

    @property
    def percent_reduction(self) -> float:
        """Percentage reduction in total buffering cost."""
        if self.cost_without == 0:
            return 0.0
        return 100.0 * (self.cost_without - self.cost_with) / self.cost_without


def cost_reduction_at_ratio(base: SystemParameters, ratio: float,
                            dram_capacity: float) -> LatencyRatioPoint:
    """Evaluate the Figure 7 methodology at one (bit-rate, ratio) point.

    ``base`` supplies the disk, costs, ``k`` and ``size_mems`` (which
    must be finite — the bank is priced); its ``l_mems`` is overridden
    so that ``l_disk / l_mems == ratio``.
    """
    if dram_capacity <= 0:
        raise ConfigurationError(
            f"dram_capacity must be > 0, got {dram_capacity!r}")
    if base.size_mems is None:
        raise ConfigurationError(
            "Figure 7 prices the MEMS bank; size_mems must be finite")
    params = base.with_latency_ratio(ratio)

    n = math.floor(max_streams_without_mems(params, dram_capacity) + 1e-9)
    if n < 1:
        return LatencyRatioPoint(latency_ratio=ratio,
                                 bit_rate=params.bit_rate, n_streams=0,
                                 dram_without=0.0, dram_with=0.0,
                                 cost_without=0.0,
                                 cost_with=params.mems_bank_cost)
    # Imported lazily: the planner imports the core forward models, so
    # a module-level import here would be circular.
    from repro.planner.configuration import Configuration
    from repro.planner.solver import default_planner

    at_n = params.replace(n_streams=n)
    dram_without = n * min_buffer_disk_dram(at_n)
    cost_without = params.c_dram * dram_without
    plan = default_planner().plan(at_n, Configuration.buffer())
    if not plan.feasible:
        # The MEMS bank cannot carry this load at this ratio; the MEMS
        # configuration matches the baseline by not engaging the bank
        # (but its purchase cost is still sunk).
        dram_with = dram_without
        cost_with = params.mems_bank_cost + cost_without
    else:
        dram_with = plan.total_dram
        cost_with = params.mems_bank_cost + params.c_dram * dram_with
    return LatencyRatioPoint(latency_ratio=ratio, bit_rate=params.bit_rate,
                             n_streams=n, dram_without=dram_without,
                             dram_with=dram_with, cost_without=cost_without,
                             cost_with=cost_with)


def latency_ratio_sweep(base: SystemParameters, ratios: list[float],
                        dram_capacity: float) -> list[LatencyRatioPoint]:
    """Figure 7(a): one curve of percentage cost reduction vs ratio."""
    if not ratios:
        raise ConfigurationError("ratios must be non-empty")
    return [cost_reduction_at_ratio(base, r, dram_capacity) for r in ratios]


def cost_reduction_grid(base: SystemParameters, bit_rates: np.ndarray,
                        ratios: np.ndarray,
                        dram_capacity: float) -> np.ndarray:
    """Figure 7(b): percentage reduction over a bit-rate x ratio grid.

    Returns an array of shape ``(len(bit_rates), len(ratios))`` whose
    ``[i, j]`` entry is the percentage cost reduction at
    ``bit_rates[i]``, ``ratios[j]``.  Contour thresholds (25/50/75%) are
    applied by the plotting layer.
    """
    grid = np.empty((len(bit_rates), len(ratios)))
    for i, bit_rate in enumerate(bit_rates):
        at_rate = base.replace(bit_rate=float(bit_rate))
        for j, ratio in enumerate(ratios):
            point = cost_reduction_at_ratio(at_rate, float(ratio),
                                            dram_capacity)
            grid[i, j] = point.percent_reduction
    return grid
