"""The paper's analytical framework (Section 4).

This package implements every closed-form result of the paper:

* :mod:`~repro.core.parameters` — the Table 2 parameter set.
* :mod:`~repro.core.theorems` — Theorem 1 and Corollary 1 (direct
  streaming from one device to DRAM).
* :mod:`~repro.core.buffer_model` — Theorem 2 and Corollary 2 (a
  ``k``-device MEMS bank as a disk buffer).
* :mod:`~repro.core.popularity` — the X:Y popularity distribution and
  its hit-rate map (Equation 11), plus a Zipf extension.
* :mod:`~repro.core.cache_model` — Theorems 3 and 4 (striped and
  replicated MEMS caches) and the cache cost model (Equations 9-13).
* :mod:`~repro.core.cost` — buffering-cost comparisons (Equations 1-2).
* :mod:`~repro.core.capacity` — inverse solvers: the maximum number of
  streams a configuration supports under a DRAM/budget constraint.
* :mod:`~repro.core.sensitivity` — latency-ratio sweeps (Figure 7).
* :mod:`~repro.core.hybrid` — the paper's future-work combined
  buffer+cache partitioning of the MEMS bank.
"""

from repro.core.parameters import SystemParameters
from repro.core.theorems import (
    io_cycle_direct,
    max_streams_direct,
    min_buffer_direct,
    min_buffer_disk_dram,
    min_buffer_mems_dram,
)
from repro.core.buffer_model import (
    BufferDesign,
    choose_disk_transfers_per_mems_cycle,
    design_mems_buffer,
    mems_cycle_floor,
)
from repro.core.popularity import (
    BimodalPopularity,
    PopularityDistribution,
    UniformPopularity,
    ZipfPopularity,
)
from repro.core.cache_model import (
    CacheDesign,
    CachePolicy,
    cache_capacity_fraction,
    design_mems_cache,
    replicated_cache_buffer,
    striped_cache_buffer,
)
from repro.core.cost import (
    BufferCostComparison,
    buffering_cost_with_mems,
    buffering_cost_without_mems,
    cache_cost_with_mems,
    compare_buffer_costs,
)
from repro.planner.throughput import (
    max_streams_with_buffer,
    max_streams_with_cache,
    max_streams_without_mems,
)
from repro.core.sensitivity import (
    LatencyRatioPoint,
    cost_reduction_at_ratio,
    cost_reduction_grid,
    latency_ratio_sweep,
)
from repro.planner.hybrid import HybridDesign, optimize_hybrid_split
from repro.core.write_streams import (
    MixedStreamDesign,
    design_mixed_streams,
    max_writers_supported,
)
from repro.core.multiclass import (
    MulticlassDesign,
    StreamClass,
    admit_class,
    design_multiclass_buffer,
    design_multiclass_direct,
)
from repro.core.spare import SpareCapacity, best_effort_iops, spare_capacity
from repro.core.startup import (
    StartupLatency,
    buffered_startup,
    cache_startup,
    direct_startup,
    startup_comparison,
)
from repro.core.regions import (
    RegionCell,
    configuration_map,
    evaluate_cell,
    render_configuration_map,
)

__all__ = [
    "MulticlassDesign",
    "StreamClass",
    "admit_class",
    "design_multiclass_buffer",
    "design_multiclass_direct",
    "SpareCapacity",
    "best_effort_iops",
    "spare_capacity",
    "StartupLatency",
    "buffered_startup",
    "cache_startup",
    "direct_startup",
    "startup_comparison",
    "RegionCell",
    "configuration_map",
    "evaluate_cell",
    "render_configuration_map",
    "MixedStreamDesign",
    "design_mixed_streams",
    "max_writers_supported",
    "SystemParameters",
    "io_cycle_direct",
    "max_streams_direct",
    "min_buffer_direct",
    "min_buffer_disk_dram",
    "min_buffer_mems_dram",
    "BufferDesign",
    "choose_disk_transfers_per_mems_cycle",
    "design_mems_buffer",
    "mems_cycle_floor",
    "BimodalPopularity",
    "PopularityDistribution",
    "UniformPopularity",
    "ZipfPopularity",
    "CacheDesign",
    "CachePolicy",
    "cache_capacity_fraction",
    "design_mems_cache",
    "replicated_cache_buffer",
    "striped_cache_buffer",
    "BufferCostComparison",
    "buffering_cost_with_mems",
    "buffering_cost_without_mems",
    "cache_cost_with_mems",
    "compare_buffer_costs",
    "max_streams_with_buffer",
    "max_streams_with_cache",
    "max_streams_without_mems",
    "LatencyRatioPoint",
    "cost_reduction_at_ratio",
    "cost_reduction_grid",
    "latency_ratio_sweep",
    "HybridDesign",
    "optimize_hybrid_split",
]
