"""Theorem 1 and Corollary 1: direct streaming to DRAM.

Under time-cycle scheduling a device performing one IO per stream per
cycle needs, for each of the ``N`` streams, a DRAM buffer of

    S = N * L * R * B / (R - N * B)          (paper Eqs. 3 and 4)

where ``R`` is the device transfer rate, ``L`` its average per-IO
latency, and ``B`` the average stream bit-rate.  The formula follows
from the fixed point ``S = B * T`` with cycle time
``T = N * (L + S / R)``: each stream must receive exactly one cycle's
worth of playback data per cycle.  It is valid only while the device
retains slack, ``R > N * B``.

The same closed form serves the disk (Theorem 1) and a MEMS device
streaming directly to DRAM (Corollary 1); the convenience wrappers
below select the right parameters from a
:class:`~repro.core.parameters.SystemParameters`.
"""

from __future__ import annotations

import math

from repro.core.parameters import SystemParameters
from repro.errors import AdmissionError, ConfigurationError


def _validate_inputs(n_streams: float, bit_rate: float, rate: float,
                     latency: float) -> None:
    if n_streams < 0:
        raise ConfigurationError(
            f"n_streams must be >= 0, got {n_streams!r}")
    if bit_rate <= 0:
        raise ConfigurationError(f"bit_rate must be > 0, got {bit_rate!r}")
    if rate <= 0:
        raise ConfigurationError(f"rate must be > 0, got {rate!r}")
    if latency < 0:
        raise ConfigurationError(f"latency must be >= 0, got {latency!r}")


def min_buffer_direct(n_streams: float, bit_rate: float, rate: float,
                      latency: float) -> float:
    """Per-stream DRAM buffer for direct device-to-DRAM streaming.

    Implements Eq. 3 (Theorem 1) / Eq. 4 (Corollary 1).  ``n_streams``
    may be fractional: the cache model (Section 4.2) plugs in expected
    sub-populations like ``(1 - h) * N``.

    Raises :class:`~repro.errors.AdmissionError` when the offered load
    ``n_streams * bit_rate`` is not strictly below ``rate``.
    """
    _validate_inputs(n_streams, bit_rate, rate, latency)
    if n_streams == 0:
        return 0.0
    load = n_streams * bit_rate
    if load >= rate:
        raise AdmissionError(
            f"offered load {load:.6g} B/s is not below device rate "
            f"{rate:.6g} B/s; the time-cycle schedule is infeasible",
            load=load, capacity=rate)
    return n_streams * latency * rate * bit_rate / (rate - load)


def io_cycle_direct(n_streams: float, bit_rate: float, rate: float,
                    latency: float) -> float:
    """IO-cycle length ``T = S / B`` for direct streaming (Eq. 6 bound).

    This is the smallest feasible cycle; longer cycles trade DRAM for
    device efficiency and are exploited by Theorem 2's ``T_disk``.
    """
    _validate_inputs(n_streams, bit_rate, rate, latency)
    if n_streams == 0:
        return 0.0
    return min_buffer_direct(n_streams, bit_rate, rate, latency) / bit_rate


def max_streams_direct(bit_rate: float, rate: float, latency: float,
                       dram_budget: float | None = None) -> float:
    """Largest (fractional) ``N`` admissible for direct streaming.

    Without a DRAM budget the bound is the bandwidth limit
    ``N < R / B``.  With a budget ``D`` the total buffer
    ``N * S(N) <= D`` gives the quadratic

        L*R*B * N^2 + D*B * N - D*R = 0,

    whose positive root (always below ``R/B``) is returned.  A zero
    latency makes every bandwidth-feasible N free of buffering, so the
    bandwidth bound is returned.  The result is continuous; callers
    wanting a stream count should take ``floor``.
    """
    _validate_inputs(0, bit_rate, rate, latency)
    bandwidth_bound = rate / bit_rate
    if dram_budget is None:
        return bandwidth_bound
    if dram_budget < 0:
        raise ConfigurationError(
            f"dram_budget must be >= 0, got {dram_budget!r}")
    if dram_budget == 0:
        return 0.0
    if latency == 0:
        return bandwidth_bound
    a = latency * rate * bit_rate
    b = dram_budget * bit_rate
    c = -dram_budget * rate
    root = (-b + math.sqrt(b * b - 4.0 * a * c)) / (2.0 * a)
    return min(root, bandwidth_bound)


# -- SystemParameters conveniences ------------------------------------------

def min_buffer_disk_dram(params: SystemParameters) -> float:
    """Theorem 1 for the disk of a parameter set (``S_disk-dram``)."""
    return min_buffer_direct(params.n_streams, params.bit_rate,
                             params.r_disk, params.l_disk)


def min_buffer_mems_dram(params: SystemParameters) -> float:
    """Corollary 1 for a *single* MEMS device of a parameter set."""
    return min_buffer_direct(params.n_streams, params.bit_rate,
                             params.r_mems, params.l_mems)
