"""Device models: disk drive, MEMS storage, DRAM, and MEMS banks.

This package provides first-principles models of the three storage
technologies the paper compares (Table 1 / Table 3):

* :class:`~repro.devices.disk.DiskDrive` — a seek-curve + rotation model
  of a magnetic disk with zoned geometry and an elevator-scheduling
  latency model.
* :class:`~repro.devices.mems.MemsDevice` — the CMU-style media-sled
  MEMS storage device (Schlosser et al., ASPLOS 2000) with X/Y
  spring-sled seeks, settle time, and a tip-array geometry.
* :class:`~repro.devices.dram.Dram` — a flat-latency DRAM model.
* :class:`~repro.devices.bank.MemsBank` — a bank of ``k`` MEMS devices
  managed round-robin (buffer config), striped, or replicated (cache
  configs).

The :mod:`~repro.devices.catalog` module reproduces the paper's device
tables (Table 1 for 2002/2007 and Table 3 for the 2007 case study).
"""

from repro.devices.base import StorageDevice, effective_throughput
from repro.devices.disk import DiskDrive, SeekCurve
from repro.devices.disk_geometry import DiskGeometry, DiskZone
from repro.devices.dram import Dram
from repro.devices.mems import MemsDevice
from repro.devices.mems_geometry import MemsGeometry, TipSector
from repro.devices.bank import BankPolicy, MemsBank
from repro.devices.mems_placement import (
    SledLayout,
    expected_seek_time,
    organ_pipe_layout,
    placement_improvement,
    sequential_layout,
)
from repro.devices.catalog import (
    DRAM_2002,
    DRAM_2007,
    DISK_2002,
    FUTURE_DISK_2007,
    MEMS_G1,
    MEMS_G2,
    MEMS_G3,
    device_table_2002,
    device_table_2007,
    table3_devices,
)

__all__ = [
    "StorageDevice",
    "effective_throughput",
    "DiskDrive",
    "SeekCurve",
    "DiskGeometry",
    "DiskZone",
    "Dram",
    "MemsDevice",
    "MemsGeometry",
    "TipSector",
    "BankPolicy",
    "MemsBank",
    "SledLayout",
    "expected_seek_time",
    "organ_pipe_layout",
    "placement_improvement",
    "sequential_layout",
    "DRAM_2002",
    "DRAM_2007",
    "DISK_2002",
    "FUTURE_DISK_2007",
    "MEMS_G1",
    "MEMS_G2",
    "MEMS_G3",
    "device_table_2002",
    "device_table_2007",
    "table3_devices",
]
