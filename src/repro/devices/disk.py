"""Magnetic disk-drive model.

The analytical framework of the paper consumes two disk quantities: the
media transfer rate ``R_disk`` and the *scheduler-determined* average
access latency ``L_disk`` (Section 5: "We use scheduler-determined
latency values for disk accesses. The disk IO scheduler uses elevator
scheduling to optimize for disk utilization").  This module derives
both from a physical model:

* a :class:`SeekCurve` calibrated so that the *average* random seek and
  the *full-stroke* seek match the data-sheet values (Table 3: 2.8 ms /
  7.0 ms for the 2007 FutureDisk), using a concave power-law seek
  profile ``t(d) = t_min + (t_fs - t_min) * (d/D)**alpha`` whose
  exponent is solved in closed form from the calibration constraint;
* rotational latency of half a revolution on average (1.5 ms at
  20,000 RPM), a full revolution worst case;
* an elevator (C-LOOK) latency model: with ``q`` pending requests at
  uniformly random cylinders, the expected seek distance between
  successively serviced requests is ``D / (q + 1)``.

The default elevator queue depth (8) calibrates the model so that the
FutureDisk/G3 latency ratio is ~5, the value the paper reports for its
experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.devices.base import StorageDevice
from repro.devices.disk_geometry import DiskGeometry
from repro.errors import ConfigurationError
from repro.units import GB, MB, MS, TB, rpm_to_rotation_time

#: Elevator queue depth at which the paper's latency ratio of ~5
#: between the FutureDisk and the G3 MEMS device is reproduced.
DEFAULT_ELEVATOR_QUEUE_DEPTH = 8

#: Largest cylinder count for which :class:`SeekCurve` precomputes the
#: integer-distance seek table (one float per cylinder).
_SEEK_TABLE_MAX_CYLINDERS = 65_536

_MISSING = object()


@dataclass(frozen=True)
class SeekCurve:
    """Seek time as a concave power law of seek distance.

    ``seek_time(d) = t_min + (t_fs - t_min) * (d / D) ** alpha`` for a
    seek of ``d`` cylinders on a disk with ``D`` cylinders total
    (``d = 0`` costs nothing).  A constant-acceleration arm would give
    ``alpha = 0.5``; coast-dominated long seeks push ``alpha`` toward 1.
    :meth:`calibrate` solves ``alpha`` so that the mean seek time over
    random request pairs matches a data-sheet average seek time.
    """

    #: Single-cylinder (minimum nonzero) seek time, seconds.
    t_min: float
    #: Full-stroke seek time, seconds.
    t_full: float
    #: Total cylinders the curve is defined over.
    n_cylinders: int
    #: Power-law exponent.
    alpha: float

    def __post_init__(self) -> None:
        if self.t_min < 0:
            raise ConfigurationError(f"t_min must be >= 0, got {self.t_min!r}")
        if self.t_full < self.t_min:
            raise ConfigurationError(
                f"t_full ({self.t_full!r}) must be >= t_min ({self.t_min!r})")
        if self.n_cylinders <= 0:
            raise ConfigurationError(
                f"n_cylinders must be > 0, got {self.n_cylinders!r}")
        if self.alpha <= 0:
            raise ConfigurationError(f"alpha must be > 0, got {self.alpha!r}")

    @classmethod
    def calibrate(cls, *, average_seek: float, full_stroke_seek: float,
                  n_cylinders: int,
                  min_seek: float | None = None) -> "SeekCurve":
        """Fit the curve to data-sheet average and full-stroke seeks.

        For two independent uniform cylinders the seek distance ``d``
        has density ``2 (D - d) / D**2``, so the mean of ``(d/D)**a`` is
        ``2 / ((a + 1) (a + 2))``.  Setting
        ``t_min + (t_fs - t_min) * 2 / ((a+1)(a+2)) = t_avg`` gives a
        quadratic in ``a`` solved in closed form.  ``min_seek`` defaults
        to 18% of the average seek, a typical data-sheet proportion.
        """
        if average_seek <= 0 or full_stroke_seek <= 0:
            raise ConfigurationError(
                "average_seek and full_stroke_seek must be > 0, got "
                f"{average_seek!r} / {full_stroke_seek!r}")
        if full_stroke_seek <= average_seek:
            raise ConfigurationError(
                f"full_stroke_seek ({full_stroke_seek!r}) must exceed "
                f"average_seek ({average_seek!r})")
        t_min = 0.18 * average_seek if min_seek is None else min_seek
        if not 0 <= t_min < average_seek:
            raise ConfigurationError(
                f"min_seek must be in [0, average_seek), got {t_min!r}")
        # mean weight w = (t_avg - t_min) / (t_fs - t_min) = 2/((a+1)(a+2))
        w = (average_seek - t_min) / (full_stroke_seek - t_min)
        if not 0 < w < 1:
            raise ConfigurationError(
                f"calibration weight {w!r} out of range; seeks inconsistent")
        # (a+1)(a+2) = 2/w  =>  a^2 + 3a + (2 - 2/w) = 0
        disc = 9.0 - 4.0 * (2.0 - 2.0 / w)
        alpha = (-3.0 + math.sqrt(disc)) / 2.0
        if alpha <= 0:
            raise ConfigurationError(
                f"calibration produced non-positive alpha ({alpha!r}); "
                "average seek too close to full-stroke seek")
        return cls(t_min=t_min, t_full=full_stroke_seek,
                   n_cylinders=n_cylinders, alpha=alpha)

    def _formula(self, fraction: float) -> float:
        """The power law at a stroke fraction (the one scalar expression)."""
        return self.t_min + (self.t_full - self.t_min) * fraction ** self.alpha

    def _integer_table(self) -> tuple[float, ...] | None:
        """Lazy seek-time table for integer distances ``1..n_cylinders``.

        Built from :meth:`_formula` at exactly the fractions the scalar
        path computes (``d / n_cylinders``), so a table lookup is
        bit-identical to the closed form — the fast path trades the
        per-call ``**`` for one tuple index.  Curves wider than
        :data:`_SEEK_TABLE_MAX_CYLINDERS` skip the table (None).  The
        table is stored via ``object.__setattr__`` (the dataclass is
        frozen); it is derived state and takes no part in eq/hash.
        """
        table = self.__dict__.get("_seek_table", _MISSING)
        if table is _MISSING:
            if self.n_cylinders > _SEEK_TABLE_MAX_CYLINDERS:
                table = None
            else:
                table = tuple(
                    self._formula(min(d / self.n_cylinders, 1.0))
                    for d in range(1, self.n_cylinders + 1))
            object.__setattr__(self, "_seek_table", table)
        return table

    def seek_time(self, distance_cylinders: float) -> float:
        """Seek time in seconds for a seek of ``distance_cylinders``."""
        if distance_cylinders < 0:
            raise ConfigurationError(
                f"seek distance must be >= 0, got {distance_cylinders!r}")
        if distance_cylinders == 0:
            return 0.0
        if (type(distance_cylinders) is int
                and distance_cylinders <= self.n_cylinders):
            table = self._integer_table()
            if table is not None:
                return table[distance_cylinders - 1]
        fraction = min(distance_cylinders / self.n_cylinders, 1.0)
        return self._formula(fraction)

    def average_seek_time(self) -> float:
        """Mean seek time over independent uniform request pairs."""
        mean_weight = 2.0 / ((self.alpha + 1.0) * (self.alpha + 2.0))
        return self.t_min + (self.t_full - self.t_min) * mean_weight


@dataclass
class DiskDrive(StorageDevice):
    """A magnetic disk drive with zoned geometry and a seek curve.

    Parameters mirror the paper's Table 3 row for the FutureDisk; see
    :data:`repro.devices.catalog.FUTURE_DISK_2007` for that instance.
    """

    name: str
    rpm: float
    max_bandwidth: float
    seek_curve: SeekCurve
    capacity_bytes: float
    dollars_per_byte: float
    geometry: DiskGeometry = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.rpm <= 0:
            raise ConfigurationError(f"rpm must be > 0, got {self.rpm!r}")
        if self.max_bandwidth <= 0:
            raise ConfigurationError(
                f"max_bandwidth must be > 0, got {self.max_bandwidth!r}")
        if self.capacity_bytes <= 0:
            raise ConfigurationError(
                f"capacity_bytes must be > 0, got {self.capacity_bytes!r}")
        if self.dollars_per_byte < 0:
            raise ConfigurationError(
                f"dollars_per_byte must be >= 0, got {self.dollars_per_byte!r}")
        if self.geometry is None:
            # Calibrate the track format so the outer zone streams at
            # the data-sheet peak rate; the cylinder count then follows
            # from the capacity (and generally differs from the seek
            # curve's normalisation — distances are converted by
            # fraction of the stroke where the two meet).
            self.geometry = DiskGeometry.synthesize(
                capacity_bytes=self.capacity_bytes,
                rpm=self.rpm, peak_rate=self.max_bandwidth)

    # -- StorageDevice interface -------------------------------------------

    @property
    def transfer_rate(self) -> float:
        """Peak (outer-zone) media rate in bytes/second."""
        return self.max_bandwidth

    @property
    def capacity(self) -> float:
        return self.capacity_bytes

    @property
    def cost_per_byte(self) -> float:
        return self.dollars_per_byte

    def average_access_time(self) -> float:
        """Random-access latency: average seek + half a rotation."""
        return self.seek_curve.average_seek_time() + self.average_rotational_latency()

    def max_access_time(self) -> float:
        """Worst-case latency: full-stroke seek + full rotation."""
        return self.seek_curve.t_full + self.rotation_time()

    # -- Disk-specific quantities ------------------------------------------

    def rotation_time(self) -> float:
        """Time of one platter revolution, seconds."""
        return rpm_to_rotation_time(self.rpm)

    def average_rotational_latency(self) -> float:
        """Expected rotational delay (half a revolution), seconds."""
        return self.rotation_time() / 2.0

    def scheduled_latency(self, queue_depth: int = DEFAULT_ELEVATOR_QUEUE_DEPTH) -> float:
        """Average per-IO latency under elevator (C-LOOK) scheduling.

        With ``queue_depth`` pending requests at independently uniform
        cylinders, a C-LOOK sweep visits them in cylinder order, so the
        expected seek distance between consecutive services is
        ``n_cylinders / (queue_depth + 1)``.  Rotational latency is not
        improved by the elevator and stays at half a revolution.  This
        is the ``L_disk`` of the paper's experiments.
        """
        if queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {queue_depth!r}")
        # Every SystemParameters construction resolves L_disk through
        # here; memoize per queue depth (devices are treated as
        # immutable after construction throughout the library).
        memo = self.__dict__.get("_latency_memo")
        if memo is None:
            memo = {}
            self._latency_memo = memo
        value = memo.get(queue_depth)
        if value is None:
            expected_distance = self.seek_curve.n_cylinders / (queue_depth + 1)
            value = (self.seek_curve.seek_time(expected_distance)
                     + self.average_rotational_latency())
            memo[queue_depth] = value
        return value

    def access_time(self, from_cylinder: int, to_cylinder: int, *,
                    rotation_fraction: float = 0.5) -> float:
        """Positioning time for a specific cylinder-to-cylinder move.

        ``rotation_fraction`` is the fraction of a revolution spent
        waiting for the target sector (0.5 on average; the simulator
        may draw it at random).
        """
        if not 0 <= rotation_fraction <= 1:
            raise ConfigurationError(
                f"rotation_fraction must be in [0, 1], got {rotation_fraction!r}")
        # Geometry cylinders and the seek curve's normalisation may use
        # different counts; seeks convert through the stroke fraction.
        fraction = abs(to_cylinder - from_cylinder) / self.geometry.n_cylinders
        distance = fraction * self.seek_curve.n_cylinders
        return (self.seek_curve.seek_time(distance)
                + rotation_fraction * self.rotation_time())

    def transfer_time(self, n_bytes: float, cylinder: int | None = None) -> float:
        """Media transfer time for ``n_bytes``.

        When ``cylinder`` is given, the zone's actual track rate is
        used; otherwise the peak rate is assumed.
        """
        if n_bytes < 0:
            raise ConfigurationError(f"n_bytes must be >= 0, got {n_bytes!r}")
        if cylinder is None:
            rate = self.max_bandwidth
        else:
            rate = self.geometry.track_transfer_rate(cylinder, self.rpm)
        return n_bytes / rate

    def service_time(self, io_size: float, *,
                     queue_depth: int = DEFAULT_ELEVATOR_QUEUE_DEPTH) -> float:
        """Expected total time (position + transfer) per scheduled IO."""
        return self.scheduled_latency(queue_depth) + self.transfer_time(io_size)


def future_disk_like(*, rpm: float = 20_000, max_bandwidth: float = 300 * MB,
                     average_seek: float = 2.8 * MS,
                     full_stroke_seek: float = 7.0 * MS,
                     capacity_bytes: float = 1 * TB,
                     dollars_per_gb: float = 0.2,
                     n_cylinders: int = 50_000,
                     name: str = "FutureDisk") -> DiskDrive:
    """Build a disk with the paper's Table 3 FutureDisk parameters."""
    curve = SeekCurve.calibrate(average_seek=average_seek,
                                full_stroke_seek=full_stroke_seek,
                                n_cylinders=n_cylinders)
    return DiskDrive(name=name, rpm=rpm, max_bandwidth=max_bandwidth,
                     seek_curve=curve, capacity_bytes=capacity_bytes,
                     dollars_per_byte=dollars_per_gb / GB)
