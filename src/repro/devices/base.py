"""Common storage-device interface.

Every device model exposes the three quantities the paper's analytical
framework consumes (Table 2 of the paper):

* a media **transfer rate** ``R`` in bytes/second,
* an **access latency** ``L`` in seconds (average or worst case,
  depending on the configuration being analysed), and
* a **capacity** and **cost**, used by the cost models of Section 4.

The helper :func:`effective_throughput` implements the throughput curve
of the paper's Figure 2: a device that charges latency ``L`` per IO and
transfers at media rate ``R`` delivers ``S / (L + S / R)`` bytes/second
when accessed in IOs of ``S`` bytes.
"""

from __future__ import annotations

import abc

from repro.errors import ConfigurationError


def effective_throughput(io_size: float, latency: float, transfer_rate: float) -> float:
    """Sustained throughput (bytes/s) when reading ``io_size``-byte IOs.

    This is the quantity plotted in the paper's Figure 2.  ``latency``
    is the per-IO positioning overhead in seconds; ``transfer_rate`` is
    the media rate in bytes/second.  An ``io_size`` of zero yields zero.
    """
    if io_size < 0:
        raise ConfigurationError(f"io_size must be >= 0, got {io_size!r}")
    if latency < 0:
        raise ConfigurationError(f"latency must be >= 0, got {latency!r}")
    if transfer_rate <= 0:
        raise ConfigurationError(
            f"transfer_rate must be > 0, got {transfer_rate!r}")
    if io_size == 0:
        return 0.0
    return io_size / (latency + io_size / transfer_rate)


def io_size_for_throughput(target_throughput: float, latency: float,
                           transfer_rate: float) -> float:
    """Smallest IO size (bytes) achieving ``target_throughput`` bytes/s.

    Inverts :func:`effective_throughput`.  Raises
    :class:`~repro.errors.ConfigurationError` when the target is not
    achievable (it must be strictly below ``transfer_rate``).
    """
    if not 0 < target_throughput < transfer_rate:
        raise ConfigurationError(
            f"target throughput {target_throughput!r} must be in "
            f"(0, {transfer_rate!r})")
    if latency < 0:
        raise ConfigurationError(f"latency must be >= 0, got {latency!r}")
    # S / (L + S/R) = T  =>  S = T*L / (1 - T/R)
    return target_throughput * latency / (1.0 - target_throughput / transfer_rate)


class StorageDevice(abc.ABC):
    """Abstract base class for all storage-device models."""

    #: Human-readable device name, e.g. ``"FutureDisk"`` or ``"G3 MEMS"``.
    name: str

    @property
    @abc.abstractmethod
    def transfer_rate(self) -> float:
        """Peak media transfer rate in bytes/second."""

    @property
    @abc.abstractmethod
    def capacity(self) -> float:
        """Usable capacity in bytes."""

    @property
    @abc.abstractmethod
    def cost_per_byte(self) -> float:
        """Unit storage cost in dollars per byte."""

    @abc.abstractmethod
    def average_access_time(self) -> float:
        """Expected positioning time for a random access, in seconds."""

    @abc.abstractmethod
    def max_access_time(self) -> float:
        """Worst-case positioning time, in seconds."""

    @property
    def cost_per_device(self) -> float:
        """Total device cost in dollars (capacity times unit cost)."""
        return self.capacity * self.cost_per_byte

    def effective_throughput(self, io_size: float, *,
                             worst_case: bool = False) -> float:
        """Sustained throughput for ``io_size``-byte IOs (Figure 2).

        With ``worst_case=True`` the device charges its maximum access
        time per IO (the paper does this for MEMS); otherwise the
        average access time is charged (the paper does this for disk).
        """
        latency = self.max_access_time() if worst_case else self.average_access_time()
        return effective_throughput(io_size, latency, self.transfer_rate)

    def io_size_for_utilization(self, utilization: float, *,
                                worst_case: bool = False) -> float:
        """IO size needed to sustain a fraction ``utilization`` of peak rate."""
        if not 0 < utilization < 1:
            raise ConfigurationError(
                f"utilization must be in (0, 1), got {utilization!r}")
        latency = self.max_access_time() if worst_case else self.average_access_time()
        return io_size_for_throughput(
            utilization * self.transfer_rate, latency, self.transfer_rate)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} {self.name!r} "
                f"rate={self.transfer_rate:.3g} B/s "
                f"capacity={self.capacity:.3g} B>")
