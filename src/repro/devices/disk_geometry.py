"""Zoned disk geometry and logical-to-physical address mapping.

Modern disks use *zoned bit recording*: outer cylinders pack more
sectors per track than inner ones, so the media transfer rate falls
from the outer edge to the inner edge (the paper's Table 1 quotes the
resulting 170-300 MB/s range for the 2007 disk).  This module models a
disk surface as a sequence of :class:`DiskZone` regions and provides the
LBA -> (cylinder, head, sector) mapping the simulator and the elevator
scheduler use to compute seek distances.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Conventional sector size in bytes, used throughout the disk model.
SECTOR_SIZE = 512


@dataclass(frozen=True)
class DiskZone:
    """A contiguous group of cylinders with a uniform track format."""

    #: First cylinder of the zone (inclusive).
    first_cylinder: int
    #: Number of cylinders in the zone.
    n_cylinders: int
    #: Sectors recorded on each track within the zone.
    sectors_per_track: int

    def __post_init__(self) -> None:
        if self.first_cylinder < 0:
            raise ConfigurationError(
                f"first_cylinder must be >= 0, got {self.first_cylinder!r}")
        if self.n_cylinders <= 0:
            raise ConfigurationError(
                f"n_cylinders must be > 0, got {self.n_cylinders!r}")
        if self.sectors_per_track <= 0:
            raise ConfigurationError(
                f"sectors_per_track must be > 0, got {self.sectors_per_track!r}")

    @property
    def last_cylinder(self) -> int:
        """Last cylinder of the zone (inclusive)."""
        return self.first_cylinder + self.n_cylinders - 1


@dataclass(frozen=True)
class PhysicalAddress:
    """A physical disk location."""

    cylinder: int
    head: int
    sector: int


@dataclass
class DiskGeometry:
    """Sector-accurate geometry of a multi-zone disk drive.

    The convenience constructor :meth:`synthesize` builds a geometry
    whose outer-to-inner transfer-rate ratio and total capacity match a
    target device (e.g. the paper's FutureDisk), which is how the device
    catalog instantiates it.
    """

    n_heads: int
    zones: list[DiskZone]
    _zone_first_lba: list[int] = field(init=False, repr=False)
    _zone_starts: list[int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_heads <= 0:
            raise ConfigurationError(
                f"n_heads must be > 0, got {self.n_heads!r}")
        if not self.zones:
            raise ConfigurationError("a disk needs at least one zone")
        expected_first = 0
        for zone in self.zones:
            if zone.first_cylinder != expected_first:
                raise ConfigurationError(
                    f"zones must tile the cylinder range contiguously; "
                    f"expected first_cylinder={expected_first}, "
                    f"got {zone.first_cylinder}")
            expected_first = zone.last_cylinder + 1
        # Precompute the first LBA of each zone for O(log z) mapping.
        self._zone_first_lba = []
        self._zone_starts = [z.first_cylinder for z in self.zones]
        lba = 0
        for zone in self.zones:
            self._zone_first_lba.append(lba)
            lba += zone.n_cylinders * self.n_heads * zone.sectors_per_track

    @classmethod
    def synthesize(cls, *, capacity_bytes: float,
                   n_cylinders: int | None = 50_000,
                   n_heads: int = 4, n_zones: int = 8,
                   outer_to_inner_ratio: float = 300.0 / 170.0,
                   rpm: float | None = None,
                   peak_rate: float | None = None) -> "DiskGeometry":
        """Build a zoned geometry approximating ``capacity_bytes``.

        Sectors-per-track falls linearly from the outer zone to the
        inner zone so that the outer/inner transfer-rate ratio equals
        ``outer_to_inner_ratio`` (1.76 reproduces the paper's 300/170
        MB/s spread).  The realised capacity is within one track of the
        request for realistic parameters.

        When ``rpm`` and ``peak_rate`` are both given, the outer zone's
        track format is calibrated so the outer track streams at
        ``peak_rate`` bytes/second, and the cylinder count is derived
        from the capacity instead of taken from ``n_cylinders``.
        """
        if capacity_bytes <= 0:
            raise ConfigurationError(
                f"capacity_bytes must be > 0, got {capacity_bytes!r}")
        if outer_to_inner_ratio < 1:
            raise ConfigurationError(
                f"outer_to_inner_ratio must be >= 1, got {outer_to_inner_ratio!r}")
        if n_zones <= 0:
            raise ConfigurationError(f"n_zones must be > 0, got {n_zones!r}")
        total_sectors = capacity_bytes / SECTOR_SIZE
        # Zone z in [0, n_zones) gets a linear taper between ratio and 1
        # (outer zone is zone 0 by convention, holding the lowest LBAs,
        # as on real disks).
        weights = [
            outer_to_inner_ratio
            + (1.0 - outer_to_inner_ratio) * (z / max(n_zones - 1, 1))
            for z in range(n_zones)
        ]
        mean_weight = sum(weights) / n_zones
        if rpm is not None and peak_rate is not None:
            if rpm <= 0 or peak_rate <= 0:
                raise ConfigurationError(
                    f"rpm and peak_rate must be > 0, got {rpm!r} / "
                    f"{peak_rate!r}")
            rotations_per_second = rpm / 60.0
            outer_spt = peak_rate / (SECTOR_SIZE * rotations_per_second)
            base_spt = outer_spt / outer_to_inner_ratio
            mean_spt = base_spt * mean_weight
            n_cylinders = max(n_zones,
                              round(total_sectors / (n_heads * mean_spt)))
        else:
            if n_cylinders is None:
                raise ConfigurationError(
                    "n_cylinders is required unless rpm and peak_rate "
                    "are given")
        if n_zones <= 0 or n_cylinders < n_zones:
            raise ConfigurationError(
                f"need 1 <= n_zones <= n_cylinders, got "
                f"n_zones={n_zones!r}, n_cylinders={n_cylinders!r}")
        tracks_total = n_cylinders * n_heads
        base_spt = total_sectors / (tracks_total * mean_weight)
        cylinders_per_zone = n_cylinders // n_zones
        zones = []
        first = 0
        for z in range(n_zones):
            n_cyl = (cylinders_per_zone if z < n_zones - 1
                     else n_cylinders - first)
            spt = max(1, round(base_spt * weights[z]))
            zones.append(DiskZone(first_cylinder=first, n_cylinders=n_cyl,
                                  sectors_per_track=spt))
            first += n_cyl
        return cls(n_heads=n_heads, zones=zones)

    @property
    def n_cylinders(self) -> int:
        """Total number of cylinders across all zones."""
        return self.zones[-1].last_cylinder + 1

    @property
    def total_sectors(self) -> int:
        """Total number of addressable sectors."""
        last = self.zones[-1]
        return (self._zone_first_lba[-1]
                + last.n_cylinders * self.n_heads * last.sectors_per_track)

    @property
    def capacity_bytes(self) -> int:
        """Formatted capacity in bytes."""
        return self.total_sectors * SECTOR_SIZE

    def zone_of_cylinder(self, cylinder: int) -> DiskZone:
        """Return the zone containing ``cylinder``."""
        if not 0 <= cylinder < self.n_cylinders:
            raise ConfigurationError(
                f"cylinder {cylinder!r} out of range [0, {self.n_cylinders})")
        idx = bisect.bisect_right(self._zone_starts, cylinder) - 1
        return self.zones[idx]

    def zone_of_lba(self, lba: int) -> DiskZone:
        """Return the zone containing logical block ``lba``."""
        self._check_lba(lba)
        idx = bisect.bisect_right(self._zone_first_lba, lba) - 1
        return self.zones[idx]

    def lba_to_physical(self, lba: int) -> PhysicalAddress:
        """Map a logical block address to (cylinder, head, sector).

        Blocks are laid out in the conventional serpentine-free order:
        all sectors of a track, then the next head, then the next
        cylinder, then the next zone.
        """
        self._check_lba(lba)
        idx = bisect.bisect_right(self._zone_first_lba, lba) - 1
        zone = self.zones[idx]
        offset = lba - self._zone_first_lba[idx]
        sectors_per_cylinder = self.n_heads * zone.sectors_per_track
        cylinder = zone.first_cylinder + offset // sectors_per_cylinder
        within = offset % sectors_per_cylinder
        head = within // zone.sectors_per_track
        sector = within % zone.sectors_per_track
        return PhysicalAddress(cylinder=cylinder, head=head, sector=sector)

    def physical_to_lba(self, address: PhysicalAddress) -> int:
        """Inverse of :meth:`lba_to_physical`."""
        zone = self.zone_of_cylinder(address.cylinder)
        if not 0 <= address.head < self.n_heads:
            raise ConfigurationError(
                f"head {address.head!r} out of range [0, {self.n_heads})")
        if not 0 <= address.sector < zone.sectors_per_track:
            raise ConfigurationError(
                f"sector {address.sector!r} out of range "
                f"[0, {zone.sectors_per_track})")
        idx = self.zones.index(zone)
        offset = ((address.cylinder - zone.first_cylinder)
                  * self.n_heads * zone.sectors_per_track
                  + address.head * zone.sectors_per_track
                  + address.sector)
        return self._zone_first_lba[idx] + offset

    def cylinder_of_byte(self, byte_offset: float) -> int:
        """Cylinder holding the sector that contains ``byte_offset``."""
        lba = int(byte_offset // SECTOR_SIZE)
        return self.lba_to_physical(lba).cylinder

    def track_transfer_rate(self, cylinder: int, rpm: float) -> float:
        """Media rate (bytes/s) while reading a track of ``cylinder``."""
        if rpm <= 0:
            raise ConfigurationError(f"rpm must be > 0, got {rpm!r}")
        zone = self.zone_of_cylinder(cylinder)
        rotations_per_second = rpm / 60.0
        return zone.sectors_per_track * SECTOR_SIZE * rotations_per_second

    def _check_lba(self, lba: int) -> None:
        if not 0 <= lba < self.total_sectors:
            raise ConfigurationError(
                f"LBA {lba!r} out of range [0, {self.total_sectors})")
