"""Geometry of a CMU-style MEMS storage device.

The device (paper Section 2, after Schlosser et al., ASPLOS 2000) is a
spring-mounted magnetic *media sled* suspended above a fixed
two-dimensional array of read/write *tips*.  Actuators position the
sled in X and Y; reading happens while the sled moves in Y at constant
velocity, with a subset of the tips (the *active* tips) streaming
concurrently.

The geometry model divides the media into one square region per tip.
The unit of positioning is a **tip sector**: a run of
``sector_bits`` bits at a given X offset (the "cylinder") and Y offset
within every active tip's region.  Logical blocks are striped across
the active tips of a tip group, laid out along Y first (so that
sequential logical addresses stream without repositioning), then across
X positions, then across tip groups.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Default number of data bits per tip sector (64 bytes of payload, a
#: figure in line with the CMU design's ~80-bit servo/ECC-framed sectors).
DEFAULT_SECTOR_BITS = 512


@dataclass(frozen=True)
class TipSector:
    """Physical coordinates of a logical block on the sled.

    ``tip_group`` selects which set of active tips is engaged,
    ``x_index`` the servo position along X (the MEMS analogue of a
    cylinder), and ``y_index`` the sector offset along the Y sweep.
    """

    tip_group: int
    x_index: int
    y_index: int


@dataclass(frozen=True)
class MemsGeometry:
    """Addressable layout of a MEMS device.

    The total number of tips is ``n_tips``; ``active_tips`` of them can
    stream concurrently (power and channel-electronics limits keep this
    well below ``n_tips``), giving ``n_tips // active_tips`` tip groups.
    Each tip records a square region of ``bits_per_tip_x`` X positions
    by ``bits_per_tip_y`` bits of Y travel.
    """

    n_tips: int
    active_tips: int
    bits_per_tip_x: int
    bits_per_tip_y: int
    sector_bits: int = DEFAULT_SECTOR_BITS

    def __post_init__(self) -> None:
        if self.n_tips <= 0:
            raise ConfigurationError(f"n_tips must be > 0, got {self.n_tips!r}")
        if not 0 < self.active_tips <= self.n_tips:
            raise ConfigurationError(
                f"active_tips must be in (0, n_tips], got {self.active_tips!r}")
        if self.n_tips % self.active_tips:
            raise ConfigurationError(
                f"n_tips ({self.n_tips!r}) must be a multiple of "
                f"active_tips ({self.active_tips!r})")
        if self.bits_per_tip_x <= 0 or self.bits_per_tip_y <= 0:
            raise ConfigurationError(
                "bits_per_tip_x and bits_per_tip_y must be > 0, got "
                f"{self.bits_per_tip_x!r} / {self.bits_per_tip_y!r}")
        if self.sector_bits <= 0 or self.bits_per_tip_y % self.sector_bits:
            raise ConfigurationError(
                f"bits_per_tip_y ({self.bits_per_tip_y!r}) must be a "
                f"positive multiple of sector_bits ({self.sector_bits!r})")

    @classmethod
    def synthesize(cls, *, capacity_bytes: float, n_tips: int = 6_400,
                   active_tips: int = 1_280,
                   sector_bits: int = DEFAULT_SECTOR_BITS) -> "MemsGeometry":
        """Build a square-region geometry of roughly ``capacity_bytes``.

        The per-tip region is made as close to square as the sector
        quantisation allows; realised capacity matches the request to
        within one sector column per tip.
        """
        if capacity_bytes <= 0:
            raise ConfigurationError(
                f"capacity_bytes must be > 0, got {capacity_bytes!r}")
        bits_per_tip = capacity_bytes * 8.0 / n_tips
        side = bits_per_tip ** 0.5
        bits_y = max(sector_bits, round(side / sector_bits) * sector_bits)
        bits_x = max(1, round(bits_per_tip / bits_y))
        return cls(n_tips=n_tips, active_tips=active_tips,
                   bits_per_tip_x=bits_x, bits_per_tip_y=bits_y,
                   sector_bits=sector_bits)

    @property
    def n_tip_groups(self) -> int:
        """Number of tip groups that can be engaged one at a time."""
        return self.n_tips // self.active_tips

    @property
    def sectors_per_sweep(self) -> int:
        """Tip sectors along one full Y sweep of a tip region."""
        return self.bits_per_tip_y // self.sector_bits

    @property
    def sector_bytes(self) -> int:
        """Payload bytes delivered per tip sector *per active group*."""
        return self.sector_bits * self.active_tips // 8

    @property
    def sectors_total(self) -> int:
        """Total addressable tip sectors (per-group granularity)."""
        return self.n_tip_groups * self.bits_per_tip_x * self.sectors_per_sweep

    @property
    def capacity_bytes(self) -> int:
        """Formatted capacity in bytes."""
        return self.sectors_total * self.sector_bytes

    def block_to_sector(self, block: int) -> TipSector:
        """Map a logical block (one tip sector of payload) to coordinates.

        Layout order: Y sweep first, then X position, then tip group, so
        consecutive logical blocks stream along Y without repositioning.
        """
        self._check_block(block)
        sweeps = self.sectors_per_sweep
        y_index = block % sweeps
        rest = block // sweeps
        x_index = rest % self.bits_per_tip_x
        tip_group = rest // self.bits_per_tip_x
        return TipSector(tip_group=tip_group, x_index=x_index, y_index=y_index)

    def sector_to_block(self, sector: TipSector) -> int:
        """Inverse of :meth:`block_to_sector`."""
        if not 0 <= sector.tip_group < self.n_tip_groups:
            raise ConfigurationError(
                f"tip_group {sector.tip_group!r} out of range "
                f"[0, {self.n_tip_groups})")
        if not 0 <= sector.x_index < self.bits_per_tip_x:
            raise ConfigurationError(
                f"x_index {sector.x_index!r} out of range "
                f"[0, {self.bits_per_tip_x})")
        if not 0 <= sector.y_index < self.sectors_per_sweep:
            raise ConfigurationError(
                f"y_index {sector.y_index!r} out of range "
                f"[0, {self.sectors_per_sweep})")
        return ((sector.tip_group * self.bits_per_tip_x + sector.x_index)
                * self.sectors_per_sweep + sector.y_index)

    def block_of_byte(self, byte_offset: float) -> int:
        """Logical block containing ``byte_offset``."""
        if byte_offset < 0:
            raise ConfigurationError(
                f"byte_offset must be >= 0, got {byte_offset!r}")
        block = int(byte_offset // self.sector_bytes)
        self._check_block(block)
        return block

    def seek_fractions(self, origin: TipSector, target: TipSector) -> tuple[float, float]:
        """Normalised (x, y) seek distances between two sectors.

        Both are fractions of the full sled stroke in that dimension;
        the kinematic model in :mod:`repro.devices.mems` converts them
        to seek times.  A tip-group switch needs no sled motion (it is
        an electronic switch), so it does not contribute distance.
        """
        dx = abs(target.x_index - origin.x_index) / max(self.bits_per_tip_x - 1, 1)
        dy = (abs(target.y_index - origin.y_index)
              / max(self.sectors_per_sweep - 1, 1))
        return dx, dy

    def _check_block(self, block: int) -> None:
        if not 0 <= block < self.sectors_total:
            raise ConfigurationError(
                f"block {block!r} out of range [0, {self.sectors_total})")
