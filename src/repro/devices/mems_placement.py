"""Data placement on the MEMS sled (paper Section 7, future work #2).

The paper closes with: "this work can be extended to include
formulating intelligent placement policies for data on the MEMS device
so as to improve the access characteristics of these devices for
multimedia data".  This module implements that extension.

A stream's data is laid out sequentially along Y (the streaming
dimension), so the positioning cost of switching between streams is
dominated by the X seek between their column bands.  Placement then
reduces to assigning streams to X bands.  The classical result for
minimising expected seek under independent random accesses is the
**organ-pipe arrangement**: put the most popular item in the centre
band and alternate decreasingly popular items outward.  We implement
it, along with a naive sequential layout as the baseline, and an exact
expected-seek evaluator under the device's kinematic model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.mems import MemsDevice
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SledLayout:
    """An assignment of items (streams/titles) to X bands.

    ``band_of[i]`` is the band index of item ``i``; bands are equally
    wide slots across the sled's X stroke, so band ``b`` of ``n_bands``
    sits at normalised X position ``(b + 0.5) / n_bands``.
    """

    band_of: tuple[int, ...]
    n_bands: int

    def __post_init__(self) -> None:
        if self.n_bands < 1:
            raise ConfigurationError(
                f"n_bands must be >= 1, got {self.n_bands!r}")
        if len(self.band_of) > self.n_bands:
            raise ConfigurationError(
                f"{len(self.band_of)} items do not fit {self.n_bands} bands")
        if len(set(self.band_of)) != len(self.band_of):
            raise ConfigurationError("items must occupy distinct bands")
        for band in self.band_of:
            if not 0 <= band < self.n_bands:
                raise ConfigurationError(
                    f"band {band!r} out of range [0, {self.n_bands})")

    def position_of(self, item: int) -> float:
        """Normalised X position (band centre) of an item."""
        return (self.band_of[item] + 0.5) / self.n_bands


def sequential_layout(n_items: int, n_bands: int | None = None) -> SledLayout:
    """Naive baseline: item ``i`` in band ``i`` (popularity ignored)."""
    if n_items < 1:
        raise ConfigurationError(f"n_items must be >= 1, got {n_items!r}")
    bands = n_items if n_bands is None else n_bands
    return SledLayout(band_of=tuple(range(n_items)), n_bands=bands)


def organ_pipe_layout(weights: list[float],
                      n_bands: int | None = None) -> SledLayout:
    """Centre-out placement by decreasing access weight.

    The heaviest item takes the centre band; subsequent items alternate
    right/left of centre.  For independent random accesses with the
    given weights this minimises the expected |x_i - x_j| travel over
    any band permutation (the classic organ-pipe optimality result).
    """
    if not weights:
        raise ConfigurationError("weights must be non-empty")
    if any(w < 0 for w in weights):
        raise ConfigurationError("weights must be >= 0")
    n = len(weights)
    bands_total = n if n_bands is None else n_bands
    if bands_total < n:
        raise ConfigurationError(
            f"{n} items do not fit {bands_total} bands")
    order = sorted(range(n), key=lambda i: -weights[i])
    centre = bands_total // 2
    band_of = [0] * n
    offset = 0
    for rank, item in enumerate(order):
        if rank == 0:
            band_of[item] = centre
            continue
        offset = (rank + 1) // 2
        side = 1 if rank % 2 == 1 else -1
        band = centre + side * offset
        # Clamp into range by spiralling (only matters for tiny bands).
        while not 0 <= band < bands_total:
            side = -side
            band = centre + side * offset
            if not 0 <= band < bands_total:
                offset += 1
                band = centre + side * offset
        band_of[item] = band
    # Resolve collisions from clamping deterministically.
    used: set[int] = set()
    for item in order:
        band = band_of[item]
        step = 0
        while band in used or not 0 <= band < bands_total:
            step += 1
            band = band_of[item] + (step // 2 + 1) * (1 if step % 2 else -1)
        band_of[item] = band
        used.add(band)
    return SledLayout(band_of=tuple(band_of), n_bands=bands_total)


def expected_seek_time(layout: SledLayout, weights: list[float],
                       device: MemsDevice) -> float:
    """Expected X positioning time between consecutive random accesses.

    Accesses are independent draws over items with the given weights;
    consecutive accesses at positions ``x_i, x_j`` cost the device's X
    seek over ``|x_i - x_j|`` of the stroke (zero for a same-item hit,
    which needs no repositioning in the sequential-Y layout).
    """
    if len(weights) != len(layout.band_of):
        raise ConfigurationError(
            f"{len(weights)} weights for {len(layout.band_of)} items")
    total = sum(weights)
    if total <= 0:
        raise ConfigurationError("weights must sum to > 0")
    probabilities = np.asarray(weights, dtype=float) / total
    positions = np.array([layout.position_of(i)
                          for i in range(len(weights))])
    distances = np.abs(positions[:, None] - positions[None, :])
    # Vectorise the kinematic seek over the distance matrix.
    seek_times = np.where(
        distances > 0,
        device.full_stroke_x * np.sqrt(distances) + device.settle_x,
        0.0)
    return float(probabilities @ seek_times @ probabilities)


def placement_improvement(weights: list[float], device: MemsDevice, *,
                          n_bands: int | None = None) -> float:
    """Ratio of sequential-layout to organ-pipe expected seek time.

    > 1 means the organ-pipe placement is faster; the gain grows with
    popularity skew and vanishes for uniform weights (where every
    permutation is equivalent in expectation up to edge effects).
    """
    n = len(weights)
    naive = expected_seek_time(sequential_layout(n, n_bands), weights,
                               device)
    tuned = expected_seek_time(organ_pipe_layout(weights, n_bands), weights,
                               device)
    if tuned <= 0:
        return float("inf") if naive > 0 else 1.0
    return naive / tuned
