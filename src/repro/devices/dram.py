"""DRAM model.

DRAM in this study is the stream staging buffer: the paper's cost
models charge ``C_dram`` dollars per byte of buffer, and its throughput
(Table 1: 10 GB/s by 2007) is high enough that DRAM transfer time never
constrains the schedules.  The model is therefore a flat-latency,
flat-rate device; it exists so the simulator can account DRAM transfer
time explicitly and so the catalog can reproduce Table 1 / Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.base import StorageDevice
from repro.errors import ConfigurationError


@dataclass
class Dram(StorageDevice):
    """A DRAM module with uniform access latency."""

    name: str
    bandwidth: float
    capacity_bytes: float
    dollars_per_byte: float
    #: Uniform access latency in seconds (Table 1: 50 ns in 2002,
    #: 30 ns predicted for 2007).
    access_latency: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigurationError(
                f"bandwidth must be > 0, got {self.bandwidth!r}")
        if self.capacity_bytes <= 0:
            raise ConfigurationError(
                f"capacity_bytes must be > 0, got {self.capacity_bytes!r}")
        if self.dollars_per_byte < 0:
            raise ConfigurationError(
                f"dollars_per_byte must be >= 0, got {self.dollars_per_byte!r}")
        if self.access_latency < 0:
            raise ConfigurationError(
                f"access_latency must be >= 0, got {self.access_latency!r}")

    @property
    def transfer_rate(self) -> float:
        return self.bandwidth

    @property
    def capacity(self) -> float:
        return self.capacity_bytes

    @property
    def cost_per_byte(self) -> float:
        return self.dollars_per_byte

    def average_access_time(self) -> float:
        return self.access_latency

    def max_access_time(self) -> float:
        return self.access_latency

    def transfer_time(self, n_bytes: float) -> float:
        """Time to move ``n_bytes`` through the memory bus."""
        if n_bytes < 0:
            raise ConfigurationError(f"n_bytes must be >= 0, got {n_bytes!r}")
        return self.access_latency + n_bytes / self.bandwidth

    def cost_of(self, n_bytes: float) -> float:
        """Dollar cost of ``n_bytes`` of DRAM buffer."""
        if n_bytes < 0:
            raise ConfigurationError(f"n_bytes must be >= 0, got {n_bytes!r}")
        return n_bytes * self.dollars_per_byte
