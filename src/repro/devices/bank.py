"""A bank of ``k`` MEMS devices and its management policies.

Section 3 of the paper manages multi-device MEMS storage in three ways:

* **Round-robin** (buffer configuration, Section 3.1.2): each disk IO
  is routed whole to one device, every ``k``-th IO to the same device,
  so each stream is buffered on a single device and the disk-side IO
  size — and hence MEMS efficiency — is preserved.  By Corollary 2 the
  bank then behaves as one device with ``k``-fold bandwidth *and*
  ``k``-fold smaller effective latency.
* **Striped** (cache configuration, Section 3.2.1): every stream is
  bit/byte-striped across all devices, which access the same relative
  location in lock step.  Bandwidth scales by ``k``; latency is that of
  a single device (Corollary 3); all ``k`` capacities hold distinct
  data; an IO costs a seek on *every* device (``k * Nm`` seeks/cycle).
* **Replicated** (cache configuration, Section 3.2.2): all devices
  store the same content and serve disjoint subsets of the streams.
  Bandwidth scales by ``k`` and each device performs ``Nm / k`` seeks
  per cycle (effective latency ``/k``, Corollary 4), but usable cache
  capacity is that of a single device.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.devices.mems import MemsDevice
from repro.errors import ConfigurationError


class BankPolicy(enum.Enum):
    """How a bank of MEMS devices is managed."""

    #: Whole IOs routed to devices in turn (buffer configuration).
    ROUND_ROBIN = "round_robin"
    #: Bit/byte striping with lock-step access (cache configuration).
    STRIPED = "striped"
    #: Full replication, streams partitioned (cache configuration).
    REPLICATED = "replicated"


@dataclass
class MemsBank:
    """``k`` identical MEMS devices under one management policy."""

    device: MemsDevice
    k: int
    policy: BankPolicy = BankPolicy.ROUND_ROBIN

    def __post_init__(self) -> None:
        if not isinstance(self.device, MemsDevice):
            raise ConfigurationError(
                f"device must be a MemsDevice, got {type(self.device).__name__}")
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k!r}")
        if not isinstance(self.policy, BankPolicy):
            raise ConfigurationError(
                f"policy must be a BankPolicy, got {self.policy!r}")

    # -- Aggregate characteristics ------------------------------------------

    @property
    def aggregate_bandwidth(self) -> float:
        """Total media rate of the bank: ``k * R_mems`` in every policy."""
        return self.k * self.device.transfer_rate

    @property
    def usable_capacity(self) -> float:
        """Bytes of *distinct* data the bank can hold.

        Replication stores the same content everywhere, so only one
        device's worth of distinct bytes is usable.
        """
        if self.policy is BankPolicy.REPLICATED:
            return self.device.capacity
        return self.k * self.device.capacity

    @property
    def raw_capacity(self) -> float:
        """Total physical bytes across the bank."""
        return self.k * self.device.capacity

    @property
    def cost(self) -> float:
        """Purchase cost of the bank (per-device cost model, Section 4)."""
        return self.k * self.device.cost_per_device

    def effective_max_latency(self) -> float:
        """Worst-case per-IO latency as seen by the cycle analysis.

        Striping leaves latency unchanged (every device seeks for every
        IO, Corollary 3).  Round-robin and replication divide the work
        among devices so the bank behaves as one device with ``k``-fold
        smaller latency (Corollaries 2 and 4).
        """
        if self.policy is BankPolicy.STRIPED:
            return self.device.max_access_time()
        return self.device.max_access_time() / self.k

    def seeks_per_cycle(self, n_streams: int) -> int:
        """Total seek operations across the bank in one IO cycle.

        Section 3.2: ``k * Nm`` for striping (lock-step), ``Nm`` for
        replication and round-robin routing.
        """
        if n_streams < 0:
            raise ConfigurationError(
                f"n_streams must be >= 0, got {n_streams!r}")
        if self.policy is BankPolicy.STRIPED:
            return self.k * n_streams
        return n_streams

    def without_failed(self, n_failed: int) -> "MemsBank":
        """The surviving bank after ``n_failed`` devices drop out.

        Failure injection (see :mod:`repro.runtime.failures`) models a
        dead device as simply absent: the bank keeps its policy but
        shrinks to ``k - n_failed`` devices.  Losing the whole bank is a
        :class:`~repro.errors.ConfigurationError` — the caller must fall
        back to the direct disk path instead.
        """
        if n_failed < 0:
            raise ConfigurationError(
                f"n_failed must be >= 0, got {n_failed!r}")
        if n_failed >= self.k:
            raise ConfigurationError(
                f"cannot lose {n_failed} of {self.k} devices and still "
                "have a bank; fall back to the direct disk path")
        return MemsBank(device=self.device, k=self.k - n_failed,
                        policy=self.policy)

    # -- Routing --------------------------------------------------------------

    def device_for_io(self, io_index: int) -> int:
        """Device index servicing the ``io_index``-th routed IO.

        Round-robin routing sends every ``k``-th IO to the same device
        (Section 3.1.2).  Only meaningful for the ROUND_ROBIN policy.
        """
        if self.policy is not BankPolicy.ROUND_ROBIN:
            raise ConfigurationError(
                f"device_for_io applies to ROUND_ROBIN banks, not {self.policy}")
        if io_index < 0:
            raise ConfigurationError(
                f"io_index must be >= 0, got {io_index!r}")
        return io_index % self.k

    def device_for_stream(self, stream_index: int, n_streams: int) -> int:
        """Device servicing a stream under the current policy.

        * ROUND_ROBIN / REPLICATED: streams are partitioned round-robin.
        * STRIPED: every device participates; by convention device 0 is
          reported (the bank moves in lock step).
        """
        if stream_index < 0 or n_streams <= stream_index:
            raise ConfigurationError(
                f"stream_index {stream_index!r} out of range [0, {n_streams!r})")
        if self.policy is BankPolicy.STRIPED:
            return 0
        return stream_index % self.k

    def stripe_unit(self, io_size: float) -> float:
        """Per-device share of an IO under striping."""
        if self.policy is not BankPolicy.STRIPED:
            raise ConfigurationError(
                f"stripe_unit applies to STRIPED banks, not {self.policy}")
        if io_size < 0:
            raise ConfigurationError(f"io_size must be >= 0, got {io_size!r}")
        return io_size / self.k

    def streams_per_device(self, n_streams: int) -> list[int]:
        """How many of ``n_streams`` each device services in a cycle."""
        if n_streams < 0:
            raise ConfigurationError(
                f"n_streams must be >= 0, got {n_streams!r}")
        if self.policy is BankPolicy.STRIPED:
            # Lock-step: every device touches every stream's IO.
            return [n_streams] * self.k
        base, extra = divmod(n_streams, self.k)
        return [base + (1 if i < extra else 0) for i in range(self.k)]

    def io_transfer_time(self, io_size: float) -> float:
        """Media transfer time for one logical IO through the bank.

        Striping spreads each IO over all ``k`` devices, so transfer
        time shrinks by ``k``; the other policies move whole IOs at the
        single-device rate but ``k`` IOs proceed concurrently (the cycle
        analysis accounts for that via :meth:`effective_max_latency`).
        """
        if io_size < 0:
            raise ConfigurationError(f"io_size must be >= 0, got {io_size!r}")
        if self.policy is BankPolicy.STRIPED:
            return io_size / self.aggregate_bandwidth
        return io_size / self.device.transfer_rate
