"""Device catalog reproducing the paper's Table 1 and Table 3.

Table 1 gives 2002-era characteristics and 2007 projections for DRAM,
MEMS, and disk; Table 3 gives the specific 2007 case-study devices
(the "FutureDisk", the CMU third-generation "G3" MEMS device, and
RDRAM-style DRAM).  All dollar figures are the paper's predictions.

Note on Table 3 capacities: the paper's own Table 1 (2007 column) and
the case-study text fix the per-device capacities as disk = 1000 GB,
MEMS = 10 GB, DRAM = 5 GB (Section 5.1.3 restricts DRAM to 5 GB and
Figure 10 relies on one MEMS device caching 1% of a 1 TB disk), and the
cost-per-device rows are only consistent with those values; the printed
Table 3 transposes the disk/DRAM capacity cells.

The G1 and G2 MEMS generations are provided for ablation studies.  The
paper only uses G3; the earlier generations follow the CMU design
trajectory (each generation roughly doubling bandwidth and capacity
while cutting access time) and are documented synthesised interpolations
anchored at the paper's G3 figures, not data-sheet values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.disk import DiskDrive, future_disk_like, SeekCurve
from repro.devices.dram import Dram
from repro.devices.mems import MemsDevice
from repro.units import GB, KB, MB, MS, US

# ---------------------------------------------------------------------------
# Table 3 — the 2007 case-study devices.
# ---------------------------------------------------------------------------

#: The paper's 2007 "FutureDisk" (Table 3, after Maxtor projections):
#: 20,000 RPM, 300 MB/s peak media rate, 2.8 ms average seek, 7.0 ms
#: full stroke, 1 TB, $0.2/GB.
FUTURE_DISK_2007: DiskDrive = future_disk_like()

#: CMU third-generation MEMS device (Table 3, after Schlosser et al.):
#: 320 MB/s, 0.45 ms full-stroke seek, 0.14 ms X settle, 10 GB, $1/GB.
MEMS_G3 = MemsDevice(
    name="G3 MEMS",
    nominal_bandwidth=320 * MB,
    nominal_capacity=10 * GB,
    full_stroke_x=0.45 * MS,
    settle_x=0.14 * MS,
    dollars_per_byte=1.0 / GB,
)

#: Second-generation MEMS: synthesised mid-point of the CMU trajectory
#: (half the G3 bandwidth and capacity, ~40% slower positioning).
MEMS_G2 = MemsDevice(
    name="G2 MEMS",
    nominal_bandwidth=160 * MB,
    nominal_capacity=5 * GB,
    full_stroke_x=0.65 * MS,
    settle_x=0.18 * MS,
    dollars_per_byte=2.0 / GB,
)

#: First-generation MEMS: synthesised early-generation device (a quarter
#: of the G3 bandwidth and capacity, twice the positioning time).
MEMS_G1 = MemsDevice(
    name="G1 MEMS",
    nominal_bandwidth=80 * MB,
    nominal_capacity=2.5 * GB,
    full_stroke_x=0.90 * MS,
    settle_x=0.22 * MS,
    dollars_per_byte=4.0 / GB,
)

#: 2007 DRAM (Table 1 / Table 3, after Rambus projections): 10 GB/s,
#: 30 ns access, 5 GB per module, $20/GB.
DRAM_2007 = Dram(
    name="DRAM 2007",
    bandwidth=10_000 * MB,
    capacity_bytes=5 * GB,
    dollars_per_byte=20.0 / GB,
    access_latency=0.03 * US,
)

# ---------------------------------------------------------------------------
# Table 1 — 2002 devices (no MEMS device existed in 2002).
# ---------------------------------------------------------------------------

#: 2002 disk (Table 1): 100 GB, 1-11 ms access, 30-55 MB/s, $2/GB.
#: Modelled at 10,000 RPM with a 4.5 ms average seek so that the average
#: access (seek + 3 ms half-rotation) sits mid-range, and 55 MB/s peak.
DISK_2002 = DiskDrive(
    name="Disk 2002",
    rpm=10_000,
    max_bandwidth=55 * MB,
    seek_curve=SeekCurve.calibrate(average_seek=4.5 * MS,
                                   full_stroke_seek=10.0 * MS,
                                   n_cylinders=30_000),
    capacity_bytes=100 * GB,
    dollars_per_byte=2.0 / GB,
)

#: 2002 DRAM (Table 1): 0.5 GB, 50 ns, 2 GB/s, $200/GB.
DRAM_2002 = Dram(
    name="DRAM 2002",
    bandwidth=2_000 * MB,
    capacity_bytes=0.5 * GB,
    dollars_per_byte=200.0 / GB,
    access_latency=0.05 * US,
)


@dataclass(frozen=True)
class CatalogRow:
    """One media column of the paper's Table 1."""

    medium: str
    capacity_gb: float | None
    access_time_ms: tuple[float, float] | None
    bandwidth_mb_s: tuple[float, float] | None
    cost_per_gb: float | None
    cost_per_device: tuple[float, float] | None


def device_table_2002() -> list[CatalogRow]:
    """The 2002 half of Table 1 (MEMS was not yet available)."""
    return [
        CatalogRow("DRAM", 0.5, (0.00005, 0.00005), (2000, 2000), 200,
                   (50, 200)),
        CatalogRow("MEMS", None, None, None, None, None),
        CatalogRow("Disk", 100, (1, 11), (30, 55), 2, (100, 300)),
    ]


def device_table_2007() -> list[CatalogRow]:
    """The 2007 half of Table 1."""
    return [
        CatalogRow("DRAM", 5, (0.00003, 0.00003), (10_000, 10_000), 20,
                   (50, 200)),
        CatalogRow("MEMS", 10, (0.4, 1.0), (320, 320), 1, (10, 10)),
        CatalogRow("Disk", 1000, (0.75, 7), (170, 300), 0.2, (100, 300)),
    ]


def table3_devices() -> dict[str, object]:
    """The three Table 3 case-study device instances."""
    return {
        "FutureDisk": FUTURE_DISK_2007,
        "G3 MEMS": MEMS_G3,
        "DRAM": DRAM_2007,
    }


#: Media stream bit-rates the paper sweeps (Section 5, Figure 6):
#: mp3 audio, DivX (MPEG-4), DVD (MPEG-2), and HDTV.
MEDIA_BITRATES: dict[str, float] = {
    "mp3": 10 * KB,
    "DivX": 100 * KB,
    "DVD": 1 * MB,
    "HDTV": 10 * MB,
}
