"""Kinematic model of a MEMS storage device.

Seek behaviour follows the spring-sled mechanics of the CMU design
(paper Section 2; Schlosser et al., ASPLOS 2000):

* The sled is positioned by electrostatic actuators working against
  springs.  A move of fraction ``f`` of the full stroke under constant
  (acceleration-limited) force takes time proportional to ``sqrt(f)``,
  so ``t_x(f) = t_full_x * sqrt(f)`` and likewise in Y.
* After an X move the sled oscillates and must **settle** before tips
  can read; Table 3 gives 0.14 ms for the G3 device.  Y needs no settle
  because the sled reads *while* moving in Y at the access velocity.
* X and Y actuation proceed concurrently, so the positioning time of an
  access is ``max(t_x + settle, t_y)``.

With the G3 numbers (0.45 ms full stroke, 0.14 ms settle) the
worst-case access is 0.59 ms, matching the paper's "maximum device
latency" that Section 5 charges for every MEMS IO, and the resulting
FutureDisk-to-G3 latency ratio is ~5, as the paper reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.devices.base import StorageDevice
from repro.devices.mems_geometry import MemsGeometry, TipSector
from repro.errors import ConfigurationError

#: Largest per-axis bit count for which the sector-accurate seek tables
#: are precomputed (one float per reachable axis distance).
_AXIS_TABLE_MAX = 65_536

#: Entry bound of the ``positioning_time`` memo (cleared, not LRU'd,
#: when full — the working set of distinct fraction pairs is tiny).
_POSITIONING_MEMO_MAX = 4_096

_MISSING = object()


@lru_cache(maxsize=64)
def _mean_max_seek(t_full_x: float, settle_x: float, t_full_y: float) -> float:
    """Mean of ``max(t_x(dx) + settle, t_y(dy))`` over random accesses.

    ``dx`` and ``dy`` are independent distances between two uniform
    positions, each with density ``2 (1 - u)`` on [0, 1].  Evaluated by
    deterministic tensor-grid quadrature (midpoint rule, 400x400),
    accurate to well under a microsecond for realistic parameters.
    """
    n = 400
    u = (np.arange(n) + 0.5) / n
    weights = 2.0 * (1.0 - u) / n
    t_x = t_full_x * np.sqrt(u) + settle_x
    t_y = t_full_y * np.sqrt(u)
    grid = np.maximum(t_x[:, None], t_y[None, :])
    return float(weights @ grid @ weights)


@dataclass
class MemsDevice(StorageDevice):
    """A single MEMS storage device.

    ``nominal_capacity`` and ``nominal_bandwidth`` are the data-sheet
    values the analytical model uses (they match the paper's tables
    exactly); the :class:`~repro.devices.mems_geometry.MemsGeometry` is
    synthesised to approximate them and is used by the event simulator
    for sector-accurate positioning.
    """

    name: str
    nominal_bandwidth: float
    nominal_capacity: float
    full_stroke_x: float
    settle_x: float
    dollars_per_byte: float
    full_stroke_y: float | None = None
    geometry: MemsGeometry = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.nominal_bandwidth <= 0:
            raise ConfigurationError(
                f"nominal_bandwidth must be > 0, got {self.nominal_bandwidth!r}")
        if self.nominal_capacity <= 0:
            raise ConfigurationError(
                f"nominal_capacity must be > 0, got {self.nominal_capacity!r}")
        if self.full_stroke_x <= 0:
            raise ConfigurationError(
                f"full_stroke_x must be > 0, got {self.full_stroke_x!r}")
        if self.settle_x < 0:
            raise ConfigurationError(
                f"settle_x must be >= 0, got {self.settle_x!r}")
        if self.dollars_per_byte < 0:
            raise ConfigurationError(
                f"dollars_per_byte must be >= 0, got {self.dollars_per_byte!r}")
        if self.full_stroke_y is None:
            # Symmetric actuators: same full-stroke time in both axes.
            self.full_stroke_y = self.full_stroke_x
        elif self.full_stroke_y < 0:
            raise ConfigurationError(
                f"full_stroke_y must be >= 0, got {self.full_stroke_y!r}")
        if self.geometry is None:
            self.geometry = MemsGeometry.synthesize(
                capacity_bytes=self.nominal_capacity)

    # -- StorageDevice interface -------------------------------------------

    @property
    def transfer_rate(self) -> float:
        return self.nominal_bandwidth

    @property
    def capacity(self) -> float:
        return self.nominal_capacity

    @property
    def cost_per_byte(self) -> float:
        return self.dollars_per_byte

    def average_access_time(self) -> float:
        """Expected positioning time for a random access."""
        return _mean_max_seek(self.full_stroke_x, self.settle_x,
                              self.full_stroke_y)

    def max_access_time(self) -> float:
        """Worst-case positioning time.

        X and Y moves overlap, so the worst case is a full-stroke move
        in both axes: ``max(t_full_x + settle, t_full_y)``.  This is the
        latency the paper charges for every MEMS IO ("we assume that
        MEMS accesses always experience the maximum device latency").
        """
        return max(self.full_stroke_x + self.settle_x, self.full_stroke_y)

    # -- Kinematics ----------------------------------------------------------

    def seek_time_x(self, fraction: float) -> float:
        """X positioning time (including settle) for a move of ``fraction``."""
        self._check_fraction(fraction)
        if fraction == 0:
            return 0.0
        return self.full_stroke_x * math.sqrt(fraction) + self.settle_x

    def seek_time_y(self, fraction: float) -> float:
        """Y positioning time for a move of ``fraction`` of the stroke."""
        self._check_fraction(fraction)
        if fraction == 0:
            return 0.0
        return self.full_stroke_y * math.sqrt(fraction)

    def positioning_time(self, dx_fraction: float, dy_fraction: float) -> float:
        """Concurrent X/Y positioning time for normalised distances.

        Memoized per fraction pair (devices are treated as immutable
        after construction): the SPTF/elevator batch schedulers in
        :mod:`repro.scheduling.sptf` revisit the same inter-request
        distances constantly.  Invalid fractions are never cached, so
        the range checks of the scalar path still fire every time.
        """
        memo = self.__dict__.get("_positioning_memo")
        if memo is None:
            memo = {}
            self._positioning_memo = memo
        key = (dx_fraction, dy_fraction)
        value = memo.get(key)
        if value is None:
            value = max(self.seek_time_x(dx_fraction),
                        self.seek_time_y(dy_fraction))
            if len(memo) >= _POSITIONING_MEMO_MAX:
                memo.clear()
            memo[key] = value
        return value

    def _axis_seek_tables(self) -> tuple[tuple[float, ...],
                                         tuple[float, ...]] | None:
        """Lazy per-axis seek tables over integer sector distances.

        ``tables[0][di]`` is ``seek_time_x`` of an ``di``-bit X move and
        ``tables[1][dj]`` the Y twin, built at exactly the fractions
        :meth:`MemsGeometry.seek_fractions` produces (``di / (bits - 1)``),
        so :meth:`access_time` answers from the tables bit-identically
        to the kinematic closed forms.  Geometries wider than
        :data:`_AXIS_TABLE_MAX` per axis skip the tables (None).
        """
        tables = self.__dict__.get("_axis_tables", _MISSING)
        if tables is _MISSING:
            geometry = self.geometry
            n_x = geometry.bits_per_tip_x
            n_y = geometry.sectors_per_sweep
            if n_x > _AXIS_TABLE_MAX or n_y > _AXIS_TABLE_MAX:
                tables = None
            else:
                denom_x = max(n_x - 1, 1)
                denom_y = max(n_y - 1, 1)
                tables = (
                    tuple(self.seek_time_x(i / denom_x) for i in range(n_x)),
                    tuple(self.seek_time_y(j / denom_y) for j in range(n_y)))
            self._axis_tables = tables
        return tables

    def access_time(self, origin: TipSector, target: TipSector) -> float:
        """Positioning time between two physical sectors."""
        tables = self._axis_seek_tables()
        if tables is not None:
            table_x, table_y = tables
            di = abs(target.x_index - origin.x_index)
            dj = abs(target.y_index - origin.y_index)
            if di < len(table_x) and dj < len(table_y):
                return max(table_x[di], table_y[dj])
        dx, dy = self.geometry.seek_fractions(origin, target)
        return self.positioning_time(dx, dy)

    def transfer_time(self, n_bytes: float) -> float:
        """Media transfer time with all active tips streaming."""
        if n_bytes < 0:
            raise ConfigurationError(f"n_bytes must be >= 0, got {n_bytes!r}")
        return n_bytes / self.nominal_bandwidth

    def service_time(self, io_size: float, *, worst_case: bool = True) -> float:
        """Total expected time (position + transfer) for one IO.

        ``worst_case`` defaults to True following the paper's
        conservative treatment of MEMS latency.
        """
        latency = (self.max_access_time() if worst_case
                   else self.average_access_time())
        return latency + self.transfer_time(io_size)

    @staticmethod
    def _check_fraction(fraction: float) -> None:
        if not 0 <= fraction <= 1:
            raise ConfigurationError(
                f"seek fraction must be in [0, 1], got {fraction!r}")
