"""Kinematic model of a MEMS storage device.

Seek behaviour follows the spring-sled mechanics of the CMU design
(paper Section 2; Schlosser et al., ASPLOS 2000):

* The sled is positioned by electrostatic actuators working against
  springs.  A move of fraction ``f`` of the full stroke under constant
  (acceleration-limited) force takes time proportional to ``sqrt(f)``,
  so ``t_x(f) = t_full_x * sqrt(f)`` and likewise in Y.
* After an X move the sled oscillates and must **settle** before tips
  can read; Table 3 gives 0.14 ms for the G3 device.  Y needs no settle
  because the sled reads *while* moving in Y at the access velocity.
* X and Y actuation proceed concurrently, so the positioning time of an
  access is ``max(t_x + settle, t_y)``.

With the G3 numbers (0.45 ms full stroke, 0.14 ms settle) the
worst-case access is 0.59 ms, matching the paper's "maximum device
latency" that Section 5 charges for every MEMS IO, and the resulting
FutureDisk-to-G3 latency ratio is ~5, as the paper reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.devices.base import StorageDevice
from repro.devices.mems_geometry import MemsGeometry, TipSector
from repro.errors import ConfigurationError


@lru_cache(maxsize=64)
def _mean_max_seek(t_full_x: float, settle_x: float, t_full_y: float) -> float:
    """Mean of ``max(t_x(dx) + settle, t_y(dy))`` over random accesses.

    ``dx`` and ``dy`` are independent distances between two uniform
    positions, each with density ``2 (1 - u)`` on [0, 1].  Evaluated by
    deterministic tensor-grid quadrature (midpoint rule, 400x400),
    accurate to well under a microsecond for realistic parameters.
    """
    n = 400
    u = (np.arange(n) + 0.5) / n
    weights = 2.0 * (1.0 - u) / n
    t_x = t_full_x * np.sqrt(u) + settle_x
    t_y = t_full_y * np.sqrt(u)
    grid = np.maximum(t_x[:, None], t_y[None, :])
    return float(weights @ grid @ weights)


@dataclass
class MemsDevice(StorageDevice):
    """A single MEMS storage device.

    ``nominal_capacity`` and ``nominal_bandwidth`` are the data-sheet
    values the analytical model uses (they match the paper's tables
    exactly); the :class:`~repro.devices.mems_geometry.MemsGeometry` is
    synthesised to approximate them and is used by the event simulator
    for sector-accurate positioning.
    """

    name: str
    nominal_bandwidth: float
    nominal_capacity: float
    full_stroke_x: float
    settle_x: float
    dollars_per_byte: float
    full_stroke_y: float | None = None
    geometry: MemsGeometry = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.nominal_bandwidth <= 0:
            raise ConfigurationError(
                f"nominal_bandwidth must be > 0, got {self.nominal_bandwidth!r}")
        if self.nominal_capacity <= 0:
            raise ConfigurationError(
                f"nominal_capacity must be > 0, got {self.nominal_capacity!r}")
        if self.full_stroke_x <= 0:
            raise ConfigurationError(
                f"full_stroke_x must be > 0, got {self.full_stroke_x!r}")
        if self.settle_x < 0:
            raise ConfigurationError(
                f"settle_x must be >= 0, got {self.settle_x!r}")
        if self.dollars_per_byte < 0:
            raise ConfigurationError(
                f"dollars_per_byte must be >= 0, got {self.dollars_per_byte!r}")
        if self.full_stroke_y is None:
            # Symmetric actuators: same full-stroke time in both axes.
            self.full_stroke_y = self.full_stroke_x
        elif self.full_stroke_y < 0:
            raise ConfigurationError(
                f"full_stroke_y must be >= 0, got {self.full_stroke_y!r}")
        if self.geometry is None:
            self.geometry = MemsGeometry.synthesize(
                capacity_bytes=self.nominal_capacity)

    # -- StorageDevice interface -------------------------------------------

    @property
    def transfer_rate(self) -> float:
        return self.nominal_bandwidth

    @property
    def capacity(self) -> float:
        return self.nominal_capacity

    @property
    def cost_per_byte(self) -> float:
        return self.dollars_per_byte

    def average_access_time(self) -> float:
        """Expected positioning time for a random access."""
        return _mean_max_seek(self.full_stroke_x, self.settle_x,
                              self.full_stroke_y)

    def max_access_time(self) -> float:
        """Worst-case positioning time.

        X and Y moves overlap, so the worst case is a full-stroke move
        in both axes: ``max(t_full_x + settle, t_full_y)``.  This is the
        latency the paper charges for every MEMS IO ("we assume that
        MEMS accesses always experience the maximum device latency").
        """
        return max(self.full_stroke_x + self.settle_x, self.full_stroke_y)

    # -- Kinematics ----------------------------------------------------------

    def seek_time_x(self, fraction: float) -> float:
        """X positioning time (including settle) for a move of ``fraction``."""
        self._check_fraction(fraction)
        if fraction == 0:
            return 0.0
        return self.full_stroke_x * math.sqrt(fraction) + self.settle_x

    def seek_time_y(self, fraction: float) -> float:
        """Y positioning time for a move of ``fraction`` of the stroke."""
        self._check_fraction(fraction)
        if fraction == 0:
            return 0.0
        return self.full_stroke_y * math.sqrt(fraction)

    def positioning_time(self, dx_fraction: float, dy_fraction: float) -> float:
        """Concurrent X/Y positioning time for normalised distances."""
        return max(self.seek_time_x(dx_fraction), self.seek_time_y(dy_fraction))

    def access_time(self, origin: TipSector, target: TipSector) -> float:
        """Positioning time between two physical sectors."""
        dx, dy = self.geometry.seek_fractions(origin, target)
        return self.positioning_time(dx, dy)

    def transfer_time(self, n_bytes: float) -> float:
        """Media transfer time with all active tips streaming."""
        if n_bytes < 0:
            raise ConfigurationError(f"n_bytes must be >= 0, got {n_bytes!r}")
        return n_bytes / self.nominal_bandwidth

    def service_time(self, io_size: float, *, worst_case: bool = True) -> float:
        """Total expected time (position + transfer) for one IO.

        ``worst_case`` defaults to True following the paper's
        conservative treatment of MEMS latency.
        """
        latency = (self.max_access_time() if worst_case
                   else self.average_access_time())
        return latency + self.transfer_time(io_size)

    @staticmethod
    def _check_fraction(fraction: float) -> None:
        if not 0 <= fraction <= 1:
            raise ConfigurationError(
                f"seek fraction must be in [0, 1], got {fraction!r}")
