"""Memoization store for configuration solves.

A :class:`PlanCache` is a bounded LRU map from solve keys to solve
results, with hit/miss/eviction counters.  Keys are whatever hashable
tuple the :class:`~repro.planner.solver.Planner` builds — typically
``(tag, SystemParameters, Configuration, ...)`` — and both the
parameter set and the configuration spec are frozen dataclasses, so a
``params.replace(...)`` naturally produces a *different* key and never
aliases a stale entry.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Hashable
from typing import Any

from repro.errors import ConfigurationError

#: Default number of memoized solves kept per planner.
DEFAULT_MAXSIZE = 65_536

_MISSING = object()


class PlanCache:
    """Bounded LRU cache with observable hit/miss/eviction counters."""

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE) -> None:
        if maxsize < 1:
            raise ConfigurationError(
                f"maxsize must be >= 1, got {maxsize!r}")
        self.maxsize = maxsize
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._pinned: set[Hashable] = set()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def hits(self) -> int:
        """Lookups answered from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that had to compute."""
        return self._misses

    @property
    def evictions(self) -> int:
        """Entries displaced by the LRU bound."""
        return self._evictions

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any],
                       *, pin: bool = False) -> Any:
        """Return the cached value for ``key``, computing it on a miss.

        A hit returns the *identical* stored object and refreshes its
        LRU position.  Exceptions from ``compute`` propagate and cache
        nothing.  ``pin=True`` exempts the entry from LRU eviction —
        for values the planner mutates in place across a search (the
        ``_demand`` memo dicts), where eviction mid-search would
        silently detach the live object from the cache.  Pinned entries
        never count against other keys: eviction skips them, and when
        every entry is pinned the cache grows past ``maxsize`` rather
        than discarding a live object.
        """
        value = self._entries.get(key, _MISSING)
        if value is not _MISSING:
            self._hits += 1
            self._entries.move_to_end(key)
            if pin:
                self._pinned.add(key)
            return value
        self._misses += 1
        value = compute()
        self._entries[key] = value
        if pin:
            self._pinned.add(key)
        if len(self._entries) > self.maxsize:
            victim = next(
                (k for k in self._entries if k not in self._pinned), None)
            if victim is not None:
                del self._entries[victim]
                self._evictions += 1
        return value

    def clear(self) -> None:
        """Drop every entry (pins included); counters keep accumulating."""
        self._entries.clear()
        self._pinned.clear()

    def stats(self) -> dict[str, int]:
        """Counters snapshot: hits, misses, evictions, current size."""
        return {"hits": self._hits, "misses": self._misses,
                "evictions": self._evictions, "size": len(self._entries)}
