"""Warm-start (hint-bracketed) twins of the monotone search engine.

The cold searches in :mod:`repro.planner.search` always bracket from
scratch — doubling from ``PROBE_SEED`` (continuous) or from 1 (integer)
— which costs ~20-200 predicate probes per inverse solve.  The callers,
however, rarely ask cold questions: admission control re-solves the
same capacity after every ``reconfigure``, runtime epoch re-planning
moves the budget or the popularity by one step, and the figure 9/10
sweeps walk adjacent budgets.  The previous answer is almost the next
answer, and because every predicate is monotone (the Theorem 1-4 DRAM
demands are strictly increasing in ``n``), a handful of probes around
the previous answer re-bracket the threshold.

The variants here accept that previous answer as ``hint`` and are
**bit-identical to the cold searches by construction**, misleading
hints included.  The trick: all probes go through a knowledge wrapper
that records the largest value verified true and the smallest verified
false.  A short hint phase spends a few probes bracketing near the
hint, then the *exact cold algorithm* replays through the wrapper —
monotonicity lets the wrapper answer most replayed probes from
knowledge for free, and any probe it cannot answer calls the real
predicate, so the replay takes precisely the branch sequence the cold
search would.  With ``hint=None`` the wrapper knows nothing, every
probe is real, and the call *is* the cold search, probe for probe.

The equivalence contract assumes what the cold engine already assumes:
the predicate is deterministic and monotone (true on ``[0, n*]``).
This module is determinism-scoped by the repo linter (see
``repro.analysis.checkers.determinism``): the replay must be
reproducible, so no clocks and no randomness belong here.
"""

from __future__ import annotations

import math
from collections.abc import Callable

from repro.errors import ConfigurationError
from repro.planner.search import (
    DEFAULT_INT_LIMIT,
    MAX_BISECTIONS,
    MAX_DOUBLINGS,
    PROBE_SEED,
    REL_TOL,
)

#: Multiplicative steps of the continuous hint phase, tightest first.
#: The first rung sits just outside the bisection tolerance
#: (``REL_TOL = 1e-9`` relative), so a hint taken from a previous
#: converged solve is re-bracketed to a few-ulp window in two probes;
#: the later rungs degrade gracefully for staler hints, and a hint that
#: is off by more than 2x simply stops helping (the replay takes over).
_REAL_HINT_LADDER = (1.0 + 4e-9, 1.0 + 1e-6, 1.0 + 1e-3, 1.05, 2.0)


def hinted_max_feasible_real(predicate: Callable[[float], bool],
                             hint: float | None = None) -> float:
    """:func:`~repro.planner.search.max_feasible_real` with a warm start.

    Returns the bit-identical result of the cold search for any
    ``hint`` — ``None``, stale, wildly wrong, negative, or non-finite
    hints only change how many probes the search spends, never its
    answer.
    """
    known_true = -math.inf
    known_false = math.inf

    def probe(x: float) -> bool:
        nonlocal known_true, known_false
        if x <= known_true:
            return True
        if x >= known_false:
            return False
        if predicate(x):
            known_true = x
            return True
        known_false = x
        return False

    if hint is not None and math.isfinite(hint) and hint > 0.0:
        if probe(hint):
            for factor in _REAL_HINT_LADDER:
                if not probe(hint * factor):
                    break
        else:
            for factor in _REAL_HINT_LADDER:
                below = hint / factor
                if below <= 0.0:
                    break
                if probe(below):
                    break

    # Exact replay of max_feasible_real; knowledge answers the probes
    # the hint phase already settled.
    if not probe(PROBE_SEED):
        return 0.0
    lo = PROBE_SEED
    hi = 1.0
    for _ in range(MAX_DOUBLINGS):
        if not probe(hi):
            break
        lo = hi
        hi *= 2.0
    else:
        raise ConfigurationError(
            "feasible region appears unbounded; check the budget constraint")
    for _ in range(MAX_BISECTIONS):
        mid = 0.5 * (lo + hi)
        if probe(mid):
            lo = mid
        else:
            hi = mid
        if hi - lo <= REL_TOL * max(hi, 1.0):
            break
    return lo


def hinted_max_feasible_int(predicate: Callable[[int], bool],
                            hint: int | None = None, *,
                            limit: int = DEFAULT_INT_LIMIT) -> int:
    """:func:`~repro.planner.search.max_feasible_int` with a warm start.

    Bit-identical to the cold search for any ``hint``.  An *exact* hint
    (the unchanged previous capacity) costs two probes — ``hint`` true,
    ``hint + 1`` false — after which the whole replay is answered from
    knowledge; a hint off by ``d`` re-brackets in ``O(log d)`` probes.
    """
    known_true = 0
    known_false: int | None = None

    def probe(n: int) -> bool:
        nonlocal known_true, known_false
        if n <= known_true:
            return True
        if known_false is not None and n >= known_false:
            return False
        if predicate(n):
            known_true = n
            return True
        known_false = n
        return False

    pivot: int | None = None
    if hint is not None:
        try:
            pivot = int(hint)
        except (OverflowError, ValueError):  # inf / nan hints
            pivot = None
    if pivot is not None:
        pivot = max(1, min(pivot, max(limit, 1)))
        step = 1
        if probe(pivot):
            x = pivot + 1
            while x <= limit and probe(x):
                step *= 2
                x += step
        else:
            x = pivot - 1
            while x >= 1 and not probe(x):
                step *= 2
                x -= step

    # Exact replay of max_feasible_int over the knowledge wrapper.
    if not probe(1):
        return 0
    lo = 1
    hi = 2
    while hi <= limit and probe(hi):
        lo = hi
        hi *= 2
    hi = min(hi, limit + 1)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if probe(mid):
            lo = mid
        else:
            hi = mid
    return lo
