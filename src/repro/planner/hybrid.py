"""Hybrid buffer+cache use of the MEMS bank (paper Section 7, future work).

The paper's first future-work direction: "the MEMS storage could be
simultaneously used for buffering and for caching popular streams",
e.g. when the popularity skew alone cannot justify devoting the whole
bank to caching.  This module implements that design point: of the
``k`` devices, ``k_cache`` hold popular content (under a cache policy)
and the remaining ``k - k_cache`` form a speed-matching buffer for the
disk-served streams.

For a fixed DRAM budget the server throughput of each split is the
largest ``N`` such that

* the cache side admits ``h N`` streams (Theorem 3/4),
* the disk side admits ``(1-h) N`` streams through the buffer
  sub-bank (Theorem 2; plain Theorem 1 when ``k_cache == k``), and
* the summed DRAM fits the budget,

and :func:`optimize_hybrid_split` scans all ``k + 1`` splits.

The per-split solve itself (forward DRAM model and inverse throughput
search) builds :meth:`repro.planner.Configuration.hybrid` specs and
delegates to the shared, memoized planner; the deprecated
:mod:`repro.core.hybrid` shim re-exports this module.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.cache_model import CachePolicy
from repro.core.parameters import SystemParameters
from repro.core.popularity import PopularityDistribution
from repro.errors import ConfigurationError, require

__all__ = [
    "HybridDesign",
    "hybrid_throughput",
    "optimize_hybrid_split",
    "hybrid_split_curve",
    "hybrid_streams_supported",
]


@dataclass(frozen=True)
class HybridDesign:
    """Throughput of one buffer/cache split of the MEMS bank."""

    #: Devices devoted to caching popular content.
    k_cache: int
    #: Devices devoted to disk buffering.
    k_buffer: int
    policy: CachePolicy
    #: Hit rate achieved by the cache sub-bank.
    hit_rate: float
    #: Maximum admitted streams (continuous; floor for a count).
    max_streams: float

    @property
    def k_total(self) -> int:
        """Total devices in the bank."""
        return self.k_cache + self.k_buffer


def hybrid_throughput(params: SystemParameters, *, k_cache: int,
                      policy: CachePolicy,
                      popularity: PopularityDistribution,
                      dram_budget: float) -> HybridDesign:
    """Max streams for a fixed split of the bank (see module docstring).

    ``params.k`` is the total bank size; ``params.size_mems`` and
    ``params.size_disk`` must be finite.  ``params.n_streams`` is
    ignored.
    """
    # Imported lazily: the planner imports the core forward models, so
    # a module-level import here would be circular.
    from repro.planner.configuration import Configuration
    from repro.planner.solver import default_planner

    if not 0 <= k_cache <= params.k:
        raise ConfigurationError(
            f"k_cache must be in [0, {params.k}], got {k_cache!r}")
    if dram_budget < 0:
        raise ConfigurationError(
            f"dram_budget must be >= 0, got {dram_budget!r}")
    if params.size_mems is None or params.size_disk is None:
        raise ConfigurationError(
            "hybrid analysis needs finite size_mems and size_disk")
    k_buffer = params.k - k_cache
    configuration = Configuration.hybrid(k_cache, k_buffer, policy,
                                         popularity)
    planner = default_planner()
    max_streams = planner.max_streams(params, configuration, dram_budget)
    hit_rate = planner.plan(params.replace(n_streams=0),
                            configuration).hit_rate
    require(hit_rate is not None,
            "hybrid plan at n_streams=0 must report a hit rate")
    return HybridDesign(k_cache=k_cache, k_buffer=k_buffer, policy=policy,
                        hit_rate=hit_rate, max_streams=max_streams)


def optimize_hybrid_split(params: SystemParameters, *, policy: CachePolicy,
                          popularity: PopularityDistribution,
                          dram_budget: float) -> HybridDesign:
    """Best split of the ``k``-device bank between buffering and caching.

    Scans all ``k + 1`` integer splits and returns the one admitting
    the most streams (ties favour fewer cache devices, i.e. the
    simpler configuration).
    """
    best: HybridDesign | None = None
    for k_cache in range(params.k + 1):
        design = hybrid_throughput(params, k_cache=k_cache, policy=policy,
                                   popularity=popularity,
                                   dram_budget=dram_budget)
        if best is None or design.max_streams > best.max_streams * (1 + 1e-12):
            best = design
    if best is None:
        # k >= 1 always yields at least two candidates, so this is
        # unreachable — but an assert would vanish under ``python -O``.
        raise ConfigurationError(
            f"no hybrid split candidates for k={params.k!r}")
    return best


def hybrid_split_curve(params: SystemParameters, *, policy: CachePolicy,
                       popularity: PopularityDistribution,
                       dram_budget: float) -> list[HybridDesign]:
    """Throughput of every split, for ablation plots."""
    return [
        hybrid_throughput(params, k_cache=k_cache, policy=policy,
                          popularity=popularity, dram_budget=dram_budget)
        for k_cache in range(params.k + 1)
    ]


def hybrid_streams_supported(design: HybridDesign) -> int:
    """Integer stream count of a hybrid design."""
    return int(math.floor(design.max_streams + 1e-9))
