"""The unified configuration planner.

One :class:`Planner` answers, for any ``(SystemParameters,
Configuration)`` pair, the three questions every layer of the
reproduction asks:

* :meth:`Planner.plan` — the forward solve: DRAM demand and cycle
  structure at ``params.n_streams`` (Theorems 1-4 and the hybrid
  split), returned as a :class:`~repro.planner.plan.Plan` with
  feasibility diagnostics instead of exceptions;
* :meth:`Planner.max_streams` — the continuous inverse: the largest
  admissible population under a DRAM budget (Figures 9/10 sweeps,
  hybrid split scans);
* :meth:`Planner.capacity` — the integer inverse with admission
  semantics (the loss-system capacity the Erlang-B comparisons and the
  online runtime use).

Every solve is memoized in a :class:`~repro.planner.cache.PlanCache`
keyed on the (hashable, frozen) parameter set and configuration, so
figure sweeps, Erlang-B capacity queries, and runtime epoch re-planning
stop recomputing identical solves; ``params.replace(...)`` produces a
new key and therefore a fresh solve.  A process-wide
:func:`default_planner` serves the stateless wrappers in
:mod:`repro.core.capacity` and :mod:`repro.core.hybrid`; components
with their own lifecycle (the online runtime) construct a private
planner so its counters describe just that run.
"""

from __future__ import annotations

from repro.core.buffer_model import BufferDesign, design_mems_buffer
from repro.core.cache_model import (
    cache_buffer,
    cache_capacity_fraction,
    design_mems_cache,
)
from repro.core.parameters import SystemParameters
from repro.core.theorems import (
    max_streams_direct,
    min_buffer_direct,
    min_buffer_disk_dram,
)
from repro.errors import (
    AdmissionError,
    CapacityError,
    ConfigurationError,
    SchedulingError,
    require,
)
from repro.planner.cache import PlanCache
from repro.planner.configuration import Configuration, ConfigurationKind
from repro.planner.incremental import (
    hinted_max_feasible_int,
    hinted_max_feasible_real,
)
from repro.planner.plan import Plan
from repro.planner.search import DEFAULT_INT_LIMIT

#: Exceptions that mean "this operating point is infeasible", as opposed
#: to a malformed request (ConfigurationError, which always propagates).
_FEASIBILITY_ERRORS = (AdmissionError, CapacityError, SchedulingError)


class Planner:
    """Memoizing solver for every server configuration.

    Beyond the memo, the planner keeps *warm-start hints*: the last
    inverse answer per sweep axis — keyed ``("real" | "int", params
    sans n_streams, configuration)`` — seeds the hint-bracketed
    searches of :mod:`repro.planner.incremental` on the next solve for
    the same axis, and callers with cross-axis knowledge (admission
    control, runtime re-planning) can pass an explicit ``hint=``.
    Hints never enter cache keys and never change answers (the hinted
    searches are bit-identical to cold by construction); they only cut
    probe counts, which :meth:`stats` reports.  ``warm_start=False``
    disables both the axis state and explicit hints — every search runs
    cold — which is what the warm-vs-cold benchmarks and equivalence
    tests compare against.
    """

    def __init__(self, *, cache: PlanCache | None = None,
                 warm_start: bool = True) -> None:
        self._cache = cache if cache is not None else PlanCache()
        self._warm_start = bool(warm_start)
        self._hints: dict[tuple, float | int] = {}
        self._probes_cold = 0
        self._probes_warm = 0
        self._solves_cold = 0
        self._solves_warm = 0

    @property
    def cache(self) -> PlanCache:
        """The memoization store (counters, clear)."""
        return self._cache

    @property
    def warm_start(self) -> bool:
        """Whether inverse solves reuse hints (answers never change)."""
        return self._warm_start

    def stats(self) -> dict[str, int]:
        """Cache counters plus inverse-search probe counters.

        ``probes_cold``/``probes_warm`` count real predicate
        evaluations inside unhinted/hinted searches;
        ``solves_cold``/``solves_warm`` count the searches themselves
        (closed-form DIRECT answers and memoized repeats probe nothing
        and are not counted).
        """
        stats = self._cache.stats()
        stats["probes_cold"] = self._probes_cold
        stats["probes_warm"] = self._probes_warm
        stats["solves_cold"] = self._solves_cold
        stats["solves_warm"] = self._solves_warm
        return stats

    def _counted(self, predicate, *, warm: bool):
        """Wrap a feasibility predicate with the probe counters."""
        if warm:
            self._solves_warm += 1
        else:
            self._solves_cold += 1

        def counted_predicate(n):
            if warm:
                self._probes_warm += 1
            else:
                self._probes_cold += 1
            return predicate(n)

        return counted_predicate

    # -- Forward solve -------------------------------------------------------

    def plan(self, params: SystemParameters, configuration: Configuration,
             *, quantise: bool = False) -> Plan:
        """Solve ``configuration`` at ``params.n_streams`` streams.

        Infeasible operating points come back as ``Plan(feasible=False)``
        with the diagnosing exception attached (see
        :meth:`~repro.planner.plan.Plan.require`); malformed requests
        raise :class:`~repro.errors.ConfigurationError` eagerly.
        ``quantise`` requests the integer-M MEMS cycle of Eq. 8 for
        buffer configurations (the Theorem 2 default elsewhere in the
        library is the unquantised closed form).
        """
        key = ("plan", params, configuration, quantise)
        return self._cache.get_or_compute(
            key, lambda: self._solve_plan(params, configuration, quantise))

    def _solve_plan(self, params: SystemParameters,
                    configuration: Configuration, quantise: bool) -> Plan:
        kind = configuration.kind
        try:
            if kind is ConfigurationKind.DIRECT:
                return self._plan_direct(params, configuration)
            if kind is ConfigurationKind.BUFFER:
                return self._plan_buffer(params, configuration, quantise)
            if kind is ConfigurationKind.CACHE:
                return self._plan_cache(params, configuration)
            if kind is ConfigurationKind.PREFIX:
                return self._plan_prefix(params, configuration)
            return self._plan_hybrid(params, configuration)
        except _FEASIBILITY_ERRORS as exc:
            return Plan(params=params, configuration=configuration,
                        feasible=False, failure=exc)

    @staticmethod
    def _effective_params(params: SystemParameters,
                          configuration: Configuration) -> SystemParameters:
        if configuration.k is None or configuration.k == params.k:
            return params
        return params.replace(k=configuration.k)

    def _plan_direct(self, params: SystemParameters,
                     configuration: Configuration) -> Plan:
        per_stream = min_buffer_disk_dram(params)
        n = params.n_streams
        return Plan(params=params, configuration=configuration,
                    feasible=True, per_stream_dram=per_stream,
                    total_dram=n * per_stream,
                    t_disk=per_stream / params.bit_rate if n else None)

    def _plan_buffer(self, params: SystemParameters,
                     configuration: Configuration, quantise: bool) -> Plan:
        solve_params = self._effective_params(params, configuration)
        design = design_mems_buffer(solve_params, quantise=quantise)
        return Plan(params=solve_params, configuration=configuration,
                    feasible=True, per_stream_dram=design.s_mems_dram,
                    total_dram=design.total_dram, t_disk=design.t_disk,
                    t_mems=design.t_mems, cycle_floor=design.cycle_floor,
                    design=design)

    def _plan_cache(self, params: SystemParameters,
                    configuration: Configuration) -> Plan:
        solve_params = self._effective_params(params, configuration)
        require(configuration.policy is not None
                and configuration.popularity is not None,
                "cache Configuration validated without policy/popularity")
        design = design_mems_cache(solve_params, configuration.policy,
                                   configuration.popularity)
        n = solve_params.n_streams
        total = design.total_dram
        return Plan(params=solve_params, configuration=configuration,
                    feasible=True,
                    per_stream_dram=total / n if n else 0.0,
                    total_dram=total,
                    capacity_fraction=design.cached_fraction,
                    hit_rate=design.hit_rate, design=design)

    def _plan_prefix(self, params: SystemParameters,
                     configuration: Configuration) -> Plan:
        """The prefix-cache demand model of :mod:`repro.vod`.

        ``params.n_streams`` counts *sessions*; ``fanout`` of them
        share each IO stream (batched multicast joins read the shared
        stream's DRAM buffer, charging no capacity of their own).  Of
        the resulting IO streams, the expected ``mems_fraction`` load
        is served from the MEMS-resident prefixes at cache service
        quality (Eqs. 12/13) and the remainder streams tails from the
        disk at Theorem 1 quality — the same expected-value split the
        whole-stream cache model uses, applied per byte instead of per
        title.  Total demand is strictly increasing in the population,
        so the inverse capacity searches apply unchanged.
        """
        solve_params = self._effective_params(params, configuration)
        require(configuration.policy is not None
                and configuration.mems_fraction is not None
                and configuration.fanout is not None,
                "prefix Configuration validated without policy/"
                "mems_fraction/fanout")
        fraction = configuration.mems_fraction
        n_sessions = solve_params.n_streams
        n_io = n_sessions / configuration.fanout
        n_mems = fraction * n_io
        n_disk = (1.0 - fraction) * n_io
        dram_mems = 0.0
        if n_mems > 0:
            dram_mems = n_mems * cache_buffer(
                configuration.policy, n_mems, solve_params.bit_rate,
                solve_params.k, solve_params.r_mems, solve_params.l_mems)
        dram_disk = 0.0
        if n_disk > 0:
            dram_disk = n_disk * min_buffer_direct(
                n_disk, solve_params.bit_rate, solve_params.r_disk,
                solve_params.l_disk)
        total = dram_mems + dram_disk
        return Plan(params=solve_params, configuration=configuration,
                    feasible=True,
                    per_stream_dram=total / n_sessions if n_sessions else 0.0,
                    total_dram=total, hit_rate=fraction)

    def _plan_hybrid(self, params: SystemParameters,
                     configuration: Configuration) -> Plan:
        if params.size_mems is None or params.size_disk is None:
            raise ConfigurationError(
                "hybrid analysis needs finite size_mems and size_disk")
        require(configuration.policy is not None
                and configuration.popularity is not None
                and configuration.k_cache is not None,
                "hybrid Configuration validated without policy/"
                "popularity/k_cache")
        policy = configuration.policy
        k_cache = configuration.k_cache
        k_buffer = configuration.k_buffer
        require(k_buffer is not None,
                "hybrid Configuration yielded no k_buffer split")
        if k_cache == 0:
            fraction = 0.0
            hit_rate = 0.0
        else:
            fraction = cache_capacity_fraction(policy, k_cache,
                                               params.size_mems,
                                               params.size_disk)
            hit_rate = configuration.popularity.hit_rate(fraction)
        n = params.n_streams
        n_cache = hit_rate * n
        n_disk = (1.0 - hit_rate) * n
        buffer_design: BufferDesign | None = None
        if n_cache > 0:
            dram_cache = n_cache * cache_buffer(
                policy, n_cache, params.bit_rate, k_cache, params.r_mems,
                params.l_mems)
        else:
            dram_cache = 0.0
        if n_disk > 0:
            if k_buffer > 0:
                buffer_design = design_mems_buffer(
                    params.replace(n_streams=n_disk, k=k_buffer),
                    quantise=False)
                dram_disk = buffer_design.total_dram
            else:
                dram_disk = n_disk * min_buffer_direct(
                    n_disk, params.bit_rate, params.r_disk, params.l_disk)
        else:
            dram_disk = 0.0
        total = dram_cache + dram_disk
        return Plan(params=params, configuration=configuration,
                    feasible=True,
                    per_stream_dram=total / n if n else 0.0,
                    total_dram=total,
                    t_disk=None if buffer_design is None
                    else buffer_design.t_disk,
                    cycle_floor=None if buffer_design is None
                    else buffer_design.cycle_floor,
                    capacity_fraction=fraction, hit_rate=hit_rate,
                    design=buffer_design)

    # -- Inverse solves ------------------------------------------------------

    def max_streams(self, params: SystemParameters,
                    configuration: Configuration,
                    dram_budget: float, *,
                    hint: float | None = None) -> float:
        """Largest (continuous) population feasible within the budget.

        ``params.n_streams`` is ignored.  DIRECT uses the Theorem 1
        closed form; the other configurations run the warm-startable
        doubling+bisection of :mod:`repro.planner.incremental` over
        :meth:`plan` feasibility.  ``hint`` optionally seeds the search
        with a previous answer; with no explicit hint the planner's own
        per-axis state applies.  The result is bit-identical either
        way.
        """
        if dram_budget < 0:
            raise ConfigurationError(
                f"dram_budget must be >= 0, got {dram_budget!r}")
        base = params.replace(n_streams=0)
        key = ("max_streams", base, configuration, dram_budget)
        return self._cache.get_or_compute(
            key,
            lambda: self._solve_max_streams(params, configuration,
                                            dram_budget,
                                            ("real", base, configuration),
                                            hint))

    def _demand(self, params: SystemParameters,
                configuration: Configuration):
        """Memoized population -> DRAM-demand function for one sweep axis.

        The doubling+bisection searches probe the same populations over
        and over across nearby budgets (the doubling phase always walks
        1, 2, 4, ...), and each probe through :meth:`plan` pays a
        ``params.replace`` plus a full cache-key hash.  This keys a
        small ``n -> total_dram`` dict on the budget-independent part of
        the query — ``(params sans n_streams, configuration)`` — so
        repeated sweep points are one dict lookup.  Infeasible points
        are recorded as ``inf`` (matching :meth:`Plan.fits`, which is
        false for them at any budget).  The dict lives *inside* the
        :class:`~repro.planner.cache.PlanCache` — visible in the cache
        counters like every other solve — but **pinned**: the search
        mutates this captured dict across dozens of ``plan`` insertions,
        and under a small cache the LRU bound could otherwise evict the
        entry mid-search, silently detaching the live memo and
        double-counting every later axis query as a fresh miss.  Pinned
        demand memos are small (one float per probed population) and
        one-per-axis, so exempting them from eviction costs little.
        """
        memo: dict[float, float] = self._cache.get_or_compute(
            ("demand", params.replace(n_streams=0), configuration), dict,
            pin=True)

        def total_dram(n: float) -> float:
            value = memo.get(n)
            if value is None:
                plan = self.plan(params.replace(n_streams=n), configuration)
                value = plan.total_dram if plan.feasible else float("inf")
                memo[n] = value
            return value

        return total_dram

    def _resolve_hint(self, axis: tuple, hint):
        """Explicit hint first, then the axis state; None when cold."""
        if not self._warm_start:
            return None
        if hint is not None:
            return hint
        return self._hints.get(axis)

    def _solve_max_streams(self, params: SystemParameters,
                           configuration: Configuration,
                           dram_budget: float, axis: tuple,
                           hint: float | None) -> float:
        if configuration.kind is ConfigurationKind.DIRECT:
            return max_streams_direct(params.bit_rate, params.r_disk,
                                      params.l_disk, dram_budget)
        chosen = self._resolve_hint(axis, hint)
        demand = self._demand(params, configuration)
        result = hinted_max_feasible_real(
            self._counted(lambda n: demand(n) <= dram_budget,
                          warm=chosen is not None),
            hint=chosen)
        if self._warm_start:
            self._hints[axis] = result
        return result

    def capacity(self, params: SystemParameters,
                 configuration: Configuration, dram_budget: float, *,
                 limit: int = DEFAULT_INT_LIMIT,
                 hint: int | None = None) -> int:
        """Largest integer population feasible within the budget.

        The admission-control capacity search (the loss-system capacity
        Erlang-B predictions compare against); ``limit`` bounds the
        doubling.  ``params.n_streams`` is ignored.  ``hint``
        optionally seeds the search with a previous capacity (see
        :meth:`max_streams`); the answer is bit-identical regardless.
        """
        base = params.replace(n_streams=0)
        key = ("capacity", base, configuration, dram_budget, limit)
        axis = ("int", base, configuration)

        def solve() -> int:
            chosen = self._resolve_hint(axis, hint)
            demand = self._demand(params, configuration)
            result = hinted_max_feasible_int(
                self._counted(lambda n: demand(n) <= dram_budget,
                              warm=chosen is not None),
                hint=chosen, limit=limit)
            if self._warm_start:
                self._hints[axis] = result
            return result

        return self._cache.get_or_compute(key, solve)


_DEFAULT_PLANNER: Planner | None = None


def default_planner() -> Planner:
    """The process-wide shared planner (lazy singleton).

    The stateless wrappers in :mod:`repro.core.capacity`,
    :mod:`repro.core.hybrid`, and the experiment runners all share this
    instance, so repeated sweeps (e.g. re-running a figure, or the
    headline-note re-queries inside one) hit its cache.
    """
    global _DEFAULT_PLANNER
    if _DEFAULT_PLANNER is None:
        _DEFAULT_PLANNER = Planner()
    return _DEFAULT_PLANNER
