"""The planner's result type: one solved operating point.

A :class:`Plan` is the answer to "run *this* configuration with *these*
parameters": the per-stream and total DRAM demand, the cycle structure
(``T_disk`` / ``T_mems`` / the MEMS cycle floor ``C``), the cache
geometry (cached-content fraction and hit rate), and — when the
operating point is infeasible — the diagnosis instead of an exception.
Callers that want the legacy raising behaviour chain through
:meth:`Plan.require`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.parameters import SystemParameters
from repro.errors import ReproError
from repro.planner.configuration import Configuration


@dataclass(frozen=True)
class Plan:
    """A solved (or diagnosed-infeasible) operating point."""

    #: The parameter set the plan was solved at (``n_streams`` matters).
    params: SystemParameters
    #: The configuration that was solved.
    configuration: Configuration
    #: False when the operating point is not schedulable; the DRAM and
    #: cycle fields are then zero/None and ``failure`` says why.
    feasible: bool
    #: Average per-stream DRAM demand, bytes (0 for an empty population).
    per_stream_dram: float = 0.0
    #: Aggregate DRAM demand, bytes.
    total_dram: float = 0.0
    #: Disk IO cycle, seconds (None when the configuration has none).
    t_disk: float | None = None
    #: MEMS IO cycle, seconds (None when unquantised or not applicable).
    t_mems: float | None = None
    #: MEMS cycle feasibility floor ``C``, seconds (buffer/hybrid).
    cycle_floor: float | None = None
    #: Cached-content fraction ``p`` (cache/hybrid configurations).
    capacity_fraction: float | None = None
    #: Cache hit rate ``h`` (cache/hybrid configurations).
    hit_rate: float | None = None
    #: The underlying model design (BufferDesign / CacheDesign / ...),
    #: for callers needing the full breakdown.  Not part of equality.
    design: object | None = field(default=None, compare=False, repr=False)
    #: The feasibility failure, when ``feasible`` is False.
    failure: ReproError | None = field(default=None, compare=False,
                                       repr=False)

    @property
    def reason(self) -> str | None:
        """Human-readable infeasibility diagnosis (None when feasible)."""
        return None if self.failure is None else str(self.failure)

    def require(self) -> "Plan":
        """Return self, or raise the recorded feasibility failure.

        This restores the legacy contract of the forward models
        (``design_mems_buffer`` & co.), which raise
        :class:`~repro.errors.AdmissionError` /
        :class:`~repro.errors.CapacityError` at infeasible points.
        """
        if not self.feasible:
            if self.failure is None:
                raise RuntimeError(
                    "infeasible Plan constructed without a failure diagnosis")
            raise self.failure
        return self

    def fits(self, dram_budget: float) -> bool:
        """True when the plan is feasible within ``dram_budget`` bytes."""
        return self.feasible and self.total_dram <= dram_budget
