"""The one monotone-feasibility search engine behind every solver.

Every inverse question the reproduction asks — "how many streams does a
configuration admit under a DRAM budget?" — reduces to finding the
largest ``n`` for which a monotone feasibility predicate holds (the
forward DRAM models are strictly increasing in ``n``).  Historically
that search was implemented twice: a continuous doubling+bisection in
:mod:`repro.core.capacity` and an integer copy inside
:meth:`repro.scheduling.admission.AdmissionController.capacity`.  Both
now live here, with one set of tolerance constants, and every layer
(core wrappers, admission control, experiments, runtime) calls these.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ConfigurationError

#: Relative tolerance of the continuous bisection solver.
REL_TOL = 1e-9
#: Probe population of the continuous solver: the "vanishing load" at
#: which feasibility is first tested, and the initial lower bracket of
#: the doubling phase.  Small enough that any schedulable system admits
#: it, large enough to stay clear of denormal arithmetic.
PROBE_SEED = 1e-6
#: Bracket-growth bound of the doubling phase.
MAX_DOUBLINGS = 80
#: Iteration bound of the continuous bisection phase.
MAX_BISECTIONS = 120
#: Default population bound of the integer solver.
DEFAULT_INT_LIMIT = 10**6  # repro-lint: disable=unit-literals (a count, not bytes)


def max_feasible_real(predicate: Callable[[float], bool]) -> float:
    """Largest ``n >= 0`` with ``predicate(n)`` true, by doubling + bisection.

    ``predicate`` must be monotone (true on an interval ``[0, n*]``).
    Returns 0.0 when even a vanishing load is infeasible.
    """
    if not predicate(PROBE_SEED):
        return 0.0
    lo = PROBE_SEED
    hi = 1.0
    for _ in range(MAX_DOUBLINGS):
        if not predicate(hi):
            break
        lo = hi
        hi *= 2.0
    else:  # pragma: no cover - would need absurd parameters
        raise ConfigurationError(
            "feasible region appears unbounded; check the budget constraint")
    for _ in range(MAX_BISECTIONS):
        mid = 0.5 * (lo + hi)
        if predicate(mid):
            lo = mid
        else:
            hi = mid
        if hi - lo <= REL_TOL * max(hi, 1.0):
            break
    return lo


def max_feasible_int(predicate: Callable[[int], bool], *,
                     limit: int = DEFAULT_INT_LIMIT) -> int:
    """Largest integer ``n >= 1`` with ``predicate(n)`` true, or 0.

    The integer twin of :func:`max_feasible_real`: doubling to bracket,
    then binary search.  ``limit`` bounds the search; the result never
    exceeds ``max(limit, 1)``.  This is the loss-system capacity search
    the Erlang-B comparisons rely on.
    """
    if not predicate(1):
        return 0
    lo = 1
    hi = 2
    while hi <= limit and predicate(hi):
        lo = hi
        hi *= 2
    hi = min(hi, limit + 1)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if predicate(mid):
            lo = mid
        else:
            hi = mid
    return lo
