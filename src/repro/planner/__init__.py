"""The unified planning layer: one configuration solver for all layers.

Every layer of the reproduction — the core capacity wrappers, admission
control, the figure experiments, and the online runtime — asks the same
question: *given a parameter set and a server configuration, what is
the per-stream DRAM, the cycle structure, and the largest admissible
population?*  This package is the single answer path:

* :class:`~repro.planner.configuration.Configuration` — the canonical,
  hashable spelling of the four configurations (DIRECT, BUFFER(k),
  CACHE(policy, k), HYBRID(k_cache, k_buffer));
* :class:`~repro.planner.plan.Plan` — the solved operating point, with
  feasibility diagnostics instead of exceptions;
* :mod:`~repro.planner.search` — the one monotone doubling+bisection
  engine (continuous and integer) behind every inverse solve;
* :class:`~repro.planner.cache.PlanCache` — bounded LRU memoization
  with hit/miss/eviction counters;
* :class:`~repro.planner.solver.Planner` — the memoizing solver tying
  it together, plus the process-wide :func:`default_planner`.

The legacy entry points (:mod:`repro.core.capacity`,
:mod:`repro.core.hybrid`, ``AdmissionController.capacity``) remain as
thin wrappers over this package.
"""

from repro.planner.search import (
    DEFAULT_INT_LIMIT,
    MAX_BISECTIONS,
    MAX_DOUBLINGS,
    REL_TOL,
    max_feasible_int,
    max_feasible_real,
)
from repro.planner.cache import DEFAULT_MAXSIZE, PlanCache
from repro.planner.configuration import Configuration, ConfigurationKind
from repro.planner.plan import Plan
from repro.planner.solver import Planner, default_planner

__all__ = [
    "DEFAULT_INT_LIMIT",
    "DEFAULT_MAXSIZE",
    "MAX_BISECTIONS",
    "MAX_DOUBLINGS",
    "REL_TOL",
    "Configuration",
    "ConfigurationKind",
    "Plan",
    "PlanCache",
    "Planner",
    "default_planner",
    "max_feasible_int",
    "max_feasible_real",
]
