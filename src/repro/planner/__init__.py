"""The unified planning layer: one configuration solver for all layers.

Every layer of the reproduction — the core capacity wrappers, admission
control, the figure experiments, and the online runtime — asks the same
question: *given a parameter set and a server configuration, what is
the per-stream DRAM, the cycle structure, and the largest admissible
population?*  This package is the single answer path:

* :class:`~repro.planner.configuration.Configuration` — the canonical,
  hashable spelling of the four configurations (DIRECT, BUFFER(k),
  CACHE(policy, k), HYBRID(k_cache, k_buffer));
* :class:`~repro.planner.plan.Plan` — the solved operating point, with
  feasibility diagnostics instead of exceptions;
* :mod:`~repro.planner.search` — the one monotone doubling+bisection
  engine (continuous and integer) behind every inverse solve;
* :mod:`~repro.planner.incremental` — the warm-start (hint-bracketed)
  twins of the search engine, bit-identical to cold by construction;
* :class:`~repro.planner.cache.PlanCache` — bounded LRU memoization
  with hit/miss/eviction counters;
* :class:`~repro.planner.solver.Planner` — the memoizing solver tying
  it together, plus the process-wide :func:`default_planner`;
* :mod:`~repro.planner.throughput` — the named stateless solvers
  (``max_streams_*``, ``streams_supported``);
* :mod:`~repro.planner.hybrid` — the Section 7 buffer+cache split of
  the bank.

The legacy entry points (:mod:`repro.core.capacity`,
:mod:`repro.core.hybrid`, ``AdmissionController.capacity``) remain as
pure re-export shims over this package; internal code imports from
here (the ``no-shim-imports`` lint rule enforces it).
"""

from repro.planner.search import (
    DEFAULT_INT_LIMIT,
    MAX_BISECTIONS,
    MAX_DOUBLINGS,
    REL_TOL,
    max_feasible_int,
    max_feasible_real,
)
from repro.planner.cache import DEFAULT_MAXSIZE, PlanCache
from repro.planner.configuration import Configuration, ConfigurationKind
from repro.planner.incremental import (
    hinted_max_feasible_int,
    hinted_max_feasible_real,
)
from repro.planner.plan import Plan
from repro.planner.solver import Planner, default_planner

# Imported after the solver stack: both modules lean on the core
# forward models, which themselves import the planner package.
from repro.planner.hybrid import (
    HybridDesign,
    hybrid_split_curve,
    hybrid_streams_supported,
    hybrid_throughput,
    optimize_hybrid_split,
)
from repro.planner.throughput import (
    max_streams_with_buffer,
    max_streams_with_cache,
    max_streams_without_mems,
    streams_supported,
)

__all__ = [
    "DEFAULT_INT_LIMIT",
    "DEFAULT_MAXSIZE",
    "MAX_BISECTIONS",
    "MAX_DOUBLINGS",
    "REL_TOL",
    "Configuration",
    "ConfigurationKind",
    "HybridDesign",
    "Plan",
    "PlanCache",
    "Planner",
    "default_planner",
    "hinted_max_feasible_int",
    "hinted_max_feasible_real",
    "hybrid_split_curve",
    "hybrid_streams_supported",
    "hybrid_throughput",
    "max_feasible_int",
    "max_feasible_real",
    "max_streams_with_buffer",
    "max_streams_with_cache",
    "max_streams_without_mems",
    "optimize_hybrid_split",
    "streams_supported",
]
