"""The canonical server-configuration spec the planner solves for.

The paper's four ways of arranging the memory hierarchy — direct
disk-to-DRAM streaming (Theorem 1), a ``k``-device MEMS speed-matching
buffer (Theorem 2), a striped/replicated MEMS content cache (Theorems
3/4), and the future-work hybrid split of the bank — were historically
named ad hoc: strings (``"none"`` / ``"buffer"`` / ``"cache"``) in the
admission controller and capacity solvers, keyword choices in the
experiments, split integers in :mod:`repro.core.hybrid`.
:class:`Configuration` is the one canonical, hashable spelling all
layers now share, and therefore the second half of every memoization
key ``(params, configuration)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.cache_model import CachePolicy
from repro.core.popularity import PopularityDistribution
from repro.errors import ConfigurationError, require


class ConfigurationKind(enum.Enum):
    """Which arrangement of the hierarchy a :class:`Configuration` names."""

    #: Plain disk-to-DRAM streaming (Theorem 1); no MEMS involved.
    DIRECT = "direct"
    #: k-device MEMS bank as a disk speed-matching buffer (Theorem 2).
    BUFFER = "buffer"
    #: k-device MEMS bank as a popular-content cache (Theorems 3/4).
    CACHE = "cache"
    #: Bank split between caching and buffering (Section 7 future work).
    HYBRID = "hybrid"
    #: Bank holds per-title *prefixes*; the disk serves the tails and
    #: batched sessions share IO streams (:mod:`repro.vod`).
    PREFIX = "prefix"


@dataclass(frozen=True)
class Configuration:
    """A hashable server-configuration spec.

    ``k`` is the MEMS bank size engaged by the configuration; ``None``
    defers to ``params.k`` at solve time (the common case for the
    legacy wrappers).  ``policy`` and ``popularity`` are required for
    CACHE and HYBRID; ``k_cache`` only exists for HYBRID, where ``k``
    is the *total* bank and ``k - k_cache`` devices buffer.  PREFIX
    carries its demand model as two scalars — ``mems_fraction`` (the
    expected byte share served from the resident prefixes) and
    ``fanout`` (sessions per shared IO stream) — so the planner never
    depends on the per-title allocation behind them (see
    :mod:`repro.vod.placement`, which computes both).
    """

    kind: ConfigurationKind
    k: int | None = None
    policy: CachePolicy | None = None
    popularity: PopularityDistribution | None = None
    k_cache: int | None = None
    mems_fraction: float | None = None
    fanout: float | None = None

    def __post_init__(self) -> None:
        if self.k is not None and self.k < 0:
            raise ConfigurationError(f"k must be >= 0, got {self.k!r}")
        if self.kind in (ConfigurationKind.CACHE, ConfigurationKind.HYBRID):
            if self.policy is None or self.popularity is None:
                raise ConfigurationError(
                    f"{self.kind.value} configuration needs policy and "
                    f"popularity")
        if self.kind is ConfigurationKind.HYBRID:
            if self.k is None or self.k_cache is None:
                raise ConfigurationError(
                    "hybrid configuration needs explicit k and k_cache")
            if not 0 <= self.k_cache <= self.k:
                raise ConfigurationError(
                    f"k_cache must be in [0, {self.k}], got {self.k_cache!r}")
        elif self.k_cache is not None:
            raise ConfigurationError(
                f"k_cache only applies to hybrid configurations, "
                f"got {self.k_cache!r} for {self.kind.value}")
        if self.kind is ConfigurationKind.BUFFER and self.k == 0:
            raise ConfigurationError("a buffer configuration needs k >= 1")
        if self.kind is ConfigurationKind.CACHE and self.k == 0:
            raise ConfigurationError("a cache configuration needs k >= 1")
        if self.kind is ConfigurationKind.PREFIX:
            if self.policy is None or self.mems_fraction is None:
                raise ConfigurationError(
                    "prefix configuration needs policy and mems_fraction")
            if not 0.0 <= self.mems_fraction <= 1.0:
                raise ConfigurationError(
                    f"mems_fraction must be in [0, 1], "
                    f"got {self.mems_fraction!r}")
            if self.fanout is None or self.fanout < 1.0:
                raise ConfigurationError(
                    f"fanout must be >= 1, got {self.fanout!r}")
            if self.k == 0:
                raise ConfigurationError(
                    "a prefix configuration needs k >= 1")
        elif self.mems_fraction is not None or self.fanout is not None:
            raise ConfigurationError(
                f"mems_fraction/fanout only apply to prefix "
                f"configurations, not {self.kind.value}")

    # -- Constructors --------------------------------------------------------

    @classmethod
    def direct(cls) -> "Configuration":
        """Plain disk-to-DRAM streaming."""
        return cls(kind=ConfigurationKind.DIRECT)

    @classmethod
    def buffer(cls, k: int | None = None) -> "Configuration":
        """MEMS disk buffer over ``k`` devices (``None``: ``params.k``)."""
        return cls(kind=ConfigurationKind.BUFFER, k=k)

    @classmethod
    def cache(cls, policy: CachePolicy,
              popularity: PopularityDistribution,
              k: int | None = None) -> "Configuration":
        """MEMS content cache under ``policy`` (``None``: ``params.k``)."""
        return cls(kind=ConfigurationKind.CACHE, k=k, policy=policy,
                   popularity=popularity)

    @classmethod
    def hybrid(cls, k_cache: int, k_buffer: int, policy: CachePolicy,
               popularity: PopularityDistribution) -> "Configuration":
        """Split bank: ``k_cache`` devices cache, ``k_buffer`` buffer."""
        if k_buffer < 0:
            raise ConfigurationError(
                f"k_buffer must be >= 0, got {k_buffer!r}")
        return cls(kind=ConfigurationKind.HYBRID, k=k_cache + k_buffer,
                   policy=policy, popularity=popularity, k_cache=k_cache)

    @classmethod
    def prefix(cls, policy: CachePolicy, mems_fraction: float, *,
               fanout: float = 1.0, k: int | None = None) -> "Configuration":
        """Prefix cache: MEMS serves ``mems_fraction`` of each IO
        stream's bytes under ``policy``; ``fanout`` sessions share one
        stream (``fanout=1`` states demand in IO-stream units — the
        admission controller's spelling, since batched joins consume no
        new stream)."""
        return cls(kind=ConfigurationKind.PREFIX, k=k, policy=policy,
                   mems_fraction=float(mems_fraction), fanout=float(fanout))

    @classmethod
    def from_legacy(cls, configuration: str, *,
                    policy: CachePolicy | None = None,
                    popularity: PopularityDistribution | None = None,
                    k: int | None = None) -> "Configuration":
        """Map the historical ``"none"``/``"buffer"``/``"cache"`` strings."""
        if configuration == "none":
            return cls.direct()
        if configuration == "buffer":
            return cls.buffer(k)
        if configuration == "cache":
            if policy is None or popularity is None:
                raise ConfigurationError(
                    "cache configuration needs policy and popularity")
            return cls.cache(policy, popularity, k)
        raise ConfigurationError(
            f"configuration must be 'none', 'buffer' or 'cache', "
            f"got {configuration!r}")

    # -- Introspection -------------------------------------------------------

    @property
    def k_buffer(self) -> int | None:
        """Buffer-side devices of a hybrid split (``None`` otherwise)."""
        if self.kind is not ConfigurationKind.HYBRID:
            return None
        require(self.k is not None and self.k_cache is not None,
                "hybrid configuration constructed without k/k_cache")
        return self.k - self.k_cache

    @property
    def uses_mems(self) -> bool:
        """True when the configuration engages the MEMS bank at all."""
        return self.kind is not ConfigurationKind.DIRECT

    def describe(self) -> str:
        """Short human-readable label, e.g. ``"cache(striped, k=2)"``."""
        k_text = "" if self.k is None else f"k={self.k}"
        if self.kind is ConfigurationKind.DIRECT:
            return "direct"
        if self.kind is ConfigurationKind.BUFFER:
            return f"buffer({k_text or 'k=params'})"
        require(self.policy is not None,
                "cache/hybrid/prefix configuration constructed without "
                "a policy")
        if self.kind is ConfigurationKind.CACHE:
            return f"cache({self.policy.value}, {k_text or 'k=params'})"
        if self.kind is ConfigurationKind.PREFIX:
            return (f"prefix({self.policy.value}, h={self.mems_fraction:.3f},"
                    f" fanout={self.fanout:g}, {k_text or 'k=params'})")
        return (f"hybrid({self.policy.value}, k_cache={self.k_cache}, "
                f"k_buffer={self.k_buffer})")
