"""Vectorized batch twins of the planner's forward and inverse solves.

The scalar planner answers one ``(SystemParameters, Configuration)``
query per Python call; a figure sweep therefore pays interpreter
dispatch per point (~70k solves/s in ``BENCH_figure6_sweep``).  This
module evaluates whole *axes* of queries per numpy array operation:

* :func:`demand_curve` — the forward solve of
  :meth:`~repro.planner.solver.Planner.plan` over a population axis,
  for every :class:`~repro.planner.configuration.ConfigurationKind`;
* :func:`batch_max_streams` — the continuous inverse of
  :meth:`~repro.planner.solver.Planner.max_streams` over a lane axis of
  ``(params, configuration, budget)`` triples, replaying the
  doubling+bisection search of :mod:`repro.planner.search` with masked
  array updates (and the Theorem 1 closed form for DIRECT lanes);
* the per-theorem kernels (:func:`direct_total_dram`,
  :func:`buffer_total_dram`, ...) for callers that sweep a non-population
  axis, e.g. the Figure 7 latency-ratio study varying ``l_mems``.

Bit-identity contract (pinned by ``tests/test_planner_batch.py``, the
same contract as the PR 4 parallel sweep and the PR 5 device fast
paths): every kernel replicates the *exact floating-point operation
order* of its scalar twin, so batch results equal scalar results to the
last bit — including the convention that an infeasible operating point
(scalar: a caught feasibility exception) is ``inf`` demand, matching
``Planner._demand``.  Eager :class:`~repro.errors.ConfigurationError`
conditions (malformed requests) raise here exactly as they do in the
scalar path; only *feasibility* failures become ``inf`` lanes.

Masked divisions evaluate the formula on infeasible lanes too (the
result is discarded by ``np.where``), so kernels run under
``np.errstate`` with divide/invalid warnings suppressed.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.cache_model import CachePolicy, cache_capacity_fraction
from repro.core.parameters import SystemParameters
from repro.errors import ConfigurationError, require
from repro.planner.configuration import Configuration, ConfigurationKind
from repro.planner.search import (
    MAX_BISECTIONS,
    MAX_DOUBLINGS,
    PROBE_SEED,
    REL_TOL,
)

__all__ = [
    "batch_max_streams",
    "buffer_total_dram",
    "cache_total_dram",
    "demand_at",
    "demand_curve",
    "direct_total_dram",
    "hybrid_total_dram",
    "max_streams_direct_batch",
    "prefix_total_dram",
]

_INF = float("inf")

#: The suppressed-warning context every kernel computes under: masked
#: lanes legitimately divide by zero or subtract infinities.
_QUIET = {"divide": "ignore", "invalid": "ignore", "over": "ignore"}


# -- Forward kernels (total-DRAM demand; inf where infeasible) ---------------

def direct_total_dram(n, *, bit_rate, r_disk, l_disk):
    """Theorem 1 aggregate demand ``N * S(N)``; ``inf`` at saturation.

    Twin of ``Planner._plan_direct`` /
    :func:`repro.core.theorems.min_buffer_direct`.  All arguments
    broadcast.
    """
    with np.errstate(**_QUIET):
        load = n * bit_rate
        per_stream = n * l_disk * r_disk * bit_rate / (r_disk - load)
        total = n * per_stream
        return np.where(load >= r_disk, _INF, total)


def buffer_total_dram(n, *, bit_rate, r_disk, l_disk, r_mems, l_mems, k,
                      bank_capacity):
    """Theorem 2 aggregate demand for a ``k``-device MEMS buffer.

    Twin of ``design_mems_buffer(..., quantise=False).total_dram`` with
    every feasibility exception (bank saturation, disk saturation,
    Eq. 6/7 conflict, undrainable disk cycle) mapped to ``inf``.
    ``bank_capacity`` is ``k * size_mems`` in bytes, or ``inf`` for the
    paper's unlimited-MEMS relaxation (``size_mems=None``).
    """
    with np.errstate(**_QUIET):
        disk_load = n * bit_rate
        doubled_load = 2.0 * (n + k - 1) * bit_rate
        bank_rate = k * r_mems
        infeasible = (disk_load >= r_disk) | (doubled_load >= bank_rate)
        floor = (n * l_mems * r_mems) / (bank_rate - doubled_load)
        # io_cycle_direct: Theorem 1 buffer divided back to a cycle.
        lower = n * l_disk * r_disk * bit_rate / (r_disk - disk_load) \
            / bit_rate
        t_disk = bank_capacity / (2.0 * n * bit_rate)
        infeasible |= t_disk < lower
        slack = 1.0 + (2.0 * k - 2.0) / n
        s_unbounded = bit_rate * floor * slack
        infeasible |= np.isfinite(t_disk) & (t_disk <= floor)
        s_bounded = (bit_rate * floor * slack
                     * t_disk / (t_disk - floor))
        s_mems_dram = np.where(np.isinf(t_disk), s_unbounded, s_bounded)
        total = np.where(infeasible, _INF, n * s_mems_dram)
        # A zero population short-circuits to an all-zero design before
        # any bandwidth check in the scalar path.
        return np.where(n == 0, 0.0, total)


def _cache_service_dram(n_cached, *, bit_rate, k, r_mems, l_mems, striped):
    """(per-stream Eq. 12/13 buffer, infeasible mask) at ``n_cached``.

    Twin of :func:`repro.core.cache_model.cache_buffer`; ``striped``
    selects Theorem 3 vs Theorem 4 elementwise.
    """
    bank_rate = k * r_mems
    load_s = n_cached * bit_rate
    s_striped = (n_cached * l_mems * bank_rate * bit_rate
                 / (bank_rate - load_s))
    effective = n_cached + k - 1
    load_r = effective * bit_rate
    s_replicated = ((effective / k) * l_mems * bank_rate * bit_rate
                    / (bank_rate - load_r))
    s = np.where(striped, s_striped, s_replicated)
    bad = np.where(striped, load_s >= bank_rate, load_r >= bank_rate)
    served = n_cached > 0.0  # n_cached == 0 returns 0.0 before any check
    return np.where(served, s, 0.0), bad & served


def cache_total_dram(n, *, hit_rate, bit_rate, r_disk, l_disk, r_mems,
                     l_mems, k, striped):
    """Theorems 3/4 aggregate demand for a whole-title MEMS cache.

    Twin of ``design_mems_cache(...).total_dram`` at a precomputed hit
    rate ``h`` (the capacity fraction and Eq. 11 stay scalar — they do
    not depend on the population axis).
    """
    with np.errstate(**_QUIET):
        n_cache = hit_rate * n
        n_disk = (1.0 - hit_rate) * n
        s_mems, bad_mems = _cache_service_dram(
            n_cache, bit_rate=bit_rate, k=k, r_mems=r_mems, l_mems=l_mems,
            striped=striped)
        disk_load = n_disk * bit_rate
        s_disk = n_disk * l_disk * r_disk * bit_rate / (r_disk - disk_load)
        s_disk = np.where(n_disk == 0, 0.0, s_disk)
        bad_disk = (n_disk > 0.0) & (disk_load >= r_disk)
        total = n_cache * s_mems + n_disk * s_disk
        return np.where(bad_mems | bad_disk, _INF, total)


def prefix_total_dram(n, *, mems_fraction, fanout, bit_rate, r_disk, l_disk,
                      r_mems, l_mems, k, striped):
    """Prefix-cache aggregate demand (the :mod:`repro.vod` model).

    Twin of ``Planner._plan_prefix``: ``n`` counts *sessions*,
    ``fanout`` of which share each IO stream; the expected
    ``mems_fraction`` byte share is served at cache service quality and
    the rest at Theorem 1 quality.
    """
    with np.errstate(**_QUIET):
        n_io = n / fanout
        n_mems = mems_fraction * n_io
        n_disk = (1.0 - mems_fraction) * n_io
        s_mems, bad_mems = _cache_service_dram(
            n_mems, bit_rate=bit_rate, k=k, r_mems=r_mems, l_mems=l_mems,
            striped=striped)
        dram_mems = np.where(n_mems > 0.0, n_mems * s_mems, 0.0)
        disk_load = n_disk * bit_rate
        per_disk = n_disk * l_disk * r_disk * bit_rate \
            / (r_disk - disk_load)
        dram_disk = np.where(n_disk > 0.0, n_disk * per_disk, 0.0)
        bad_disk = (n_disk > 0.0) & (disk_load >= r_disk)
        total = dram_mems + dram_disk
        return np.where(bad_mems | bad_disk, _INF, total)


def hybrid_total_dram(n, *, hit_rate, k_cache, k_buffer, bit_rate, r_disk,
                      l_disk, r_mems, l_mems, size_mems, striped):
    """Hybrid split-bank aggregate demand (Section 7 future work).

    Twin of ``Planner._plan_hybrid`` at a precomputed hit rate:
    ``k_cache`` devices cache whole titles, ``k_buffer`` devices buffer
    the disk-served remainder (Theorem 2), a zero ``k_buffer`` streams
    the remainder directly (Theorem 1).
    """
    with np.errstate(**_QUIET):
        n_cache = hit_rate * n
        n_disk = (1.0 - hit_rate) * n
        s_cache, bad_cache = _cache_service_dram(
            n_cache, bit_rate=bit_rate, k=k_cache, r_mems=r_mems,
            l_mems=l_mems, striped=striped)
        dram_cache = np.where(n_cache > 0.0, n_cache * s_cache, 0.0)
        buffered = buffer_total_dram(
            n_disk, bit_rate=bit_rate, r_disk=r_disk, l_disk=l_disk,
            r_mems=r_mems, l_mems=l_mems, k=k_buffer,
            bank_capacity=k_buffer * size_mems)
        disk_load = n_disk * bit_rate
        per_direct = n_disk * l_disk * r_disk * bit_rate \
            / (r_disk - disk_load)
        direct = np.where(n_disk > 0.0, n_disk * per_direct, 0.0)
        bad_direct = (n_disk > 0.0) & (disk_load >= r_disk)
        use_buffer = k_buffer > 0
        dram_disk = np.where(use_buffer, buffered, direct)
        bad_disk = np.where(use_buffer, np.isinf(buffered), bad_direct)
        total = dram_cache + np.where(bad_disk, 0.0, dram_disk)
        return np.where(bad_cache | bad_disk, _INF, total)


# -- Lane compilation --------------------------------------------------------

def _effective(params: SystemParameters,
               configuration: Configuration) -> SystemParameters:
    """``Planner._effective_params``: the configuration's ``k`` wins."""
    if configuration.k is None or configuration.k == params.k:
        return params
    return params.replace(k=configuration.k)


def _hit_rate(params: SystemParameters, configuration: Configuration,
              k: int) -> float:
    """Eq. 11 hit rate at the lane's capacity fraction (scalar)."""
    require(configuration.policy is not None
            and configuration.popularity is not None,
            "cache/hybrid Configuration validated without "
            "policy/popularity")
    fraction = cache_capacity_fraction(configuration.policy, k,
                                       params.size_mems, params.size_disk)
    return configuration.popularity.hit_rate(fraction)


def _compile_demand(lanes: Sequence[tuple[SystemParameters, Configuration]]):
    """Build ``totals(n)`` for same-kind lanes, broadcast lane-aligned.

    Returns a closure evaluating the lane's aggregate DRAM demand at a
    population array ``n`` (shape-compatible with the lane axis), with
    ``inf`` on infeasible lanes — the vector twin of
    ``Planner._demand``.  Per-lane scalars that do not depend on the
    population (capacity fractions, hit rates) are computed here, once,
    through the *scalar* code path so they match bit for bit.
    """
    kind = lanes[0][1].kind
    if kind is ConfigurationKind.HYBRID:
        return _compile_hybrid_demand(lanes)
    effective = [_effective(params, cfg) for params, cfg in lanes]

    def column(attr: str) -> np.ndarray:
        return np.array([getattr(p, attr) for p in effective],
                        dtype=np.float64)

    bit_rate = column("bit_rate")
    r_disk = column("r_disk")
    l_disk = column("l_disk")

    if kind is ConfigurationKind.DIRECT:
        return lambda n: direct_total_dram(
            n, bit_rate=bit_rate, r_disk=r_disk, l_disk=l_disk)

    r_mems = column("r_mems")
    l_mems = column("l_mems")

    if kind is ConfigurationKind.BUFFER:
        k = column("k")
        bank_capacity = np.array(
            [_INF if p.mems_bank_capacity is None else p.mems_bank_capacity
             for p in effective], dtype=np.float64)
        return lambda n: buffer_total_dram(
            n, bit_rate=bit_rate, r_disk=r_disk, l_disk=l_disk,
            r_mems=r_mems, l_mems=l_mems, k=k, bank_capacity=bank_capacity)

    if kind is ConfigurationKind.CACHE:
        for params in effective:
            if params.size_mems is None or params.size_disk is None:
                raise ConfigurationError(
                    "the cache model needs finite size_mems and size_disk")
        k = column("k")
        hit = np.array(
            [_hit_rate(params, cfg, params.k)
             for params, (_, cfg) in zip(effective, lanes)],
            dtype=np.float64)
        striped = np.array([cfg.policy is CachePolicy.STRIPED
                            for _, cfg in lanes])
        return lambda n: cache_total_dram(
            n, hit_rate=hit, bit_rate=bit_rate, r_disk=r_disk,
            l_disk=l_disk, r_mems=r_mems, l_mems=l_mems, k=k,
            striped=striped)

    require(kind is ConfigurationKind.PREFIX,
            f"unknown configuration kind {kind!r}")
    k = column("k")
    fraction = np.array([cfg.mems_fraction for _, cfg in lanes],
                        dtype=np.float64)
    fanout = np.array([cfg.fanout for _, cfg in lanes], dtype=np.float64)
    striped = np.array([cfg.policy is CachePolicy.STRIPED
                        for _, cfg in lanes])
    return lambda n: prefix_total_dram(
        n, mems_fraction=fraction, fanout=fanout, bit_rate=bit_rate,
        r_disk=r_disk, l_disk=l_disk, r_mems=r_mems, l_mems=l_mems,
        k=k, striped=striped)


def _compile_hybrid_demand(
        lanes: Sequence[tuple[SystemParameters, Configuration]]):
    """Hybrid lanes read the raw params (no ``_effective_params``)."""
    raw = [params for params, _ in lanes]
    for params in raw:
        if params.size_mems is None or params.size_disk is None:
            raise ConfigurationError(
                "hybrid analysis needs finite size_mems and size_disk")
    bit_rate = np.array([p.bit_rate for p in raw], dtype=np.float64)
    r_disk = np.array([p.r_disk for p in raw], dtype=np.float64)
    l_disk = np.array([p.l_disk for p in raw], dtype=np.float64)
    r_mems = np.array([p.r_mems for p in raw], dtype=np.float64)
    l_mems = np.array([p.l_mems for p in raw], dtype=np.float64)
    size_mems = np.array([p.size_mems for p in raw], dtype=np.float64)
    k_cache = np.array([cfg.k_cache for _, cfg in lanes], dtype=np.float64)
    k_buffer = np.array([cfg.k_buffer for _, cfg in lanes], dtype=np.float64)
    hit = np.array(
        [0.0 if cfg.k_cache == 0 else _hit_rate(params, cfg, cfg.k_cache)
         for params, cfg in lanes], dtype=np.float64)
    striped = np.array([cfg.policy is CachePolicy.STRIPED
                        for _, cfg in lanes])
    return lambda n: hybrid_total_dram(
        n, hit_rate=hit, k_cache=k_cache, k_buffer=k_buffer,
        bit_rate=bit_rate, r_disk=r_disk, l_disk=l_disk, r_mems=r_mems,
        l_mems=l_mems, size_mems=size_mems, striped=striped)


# -- Public batch solves -----------------------------------------------------

def demand_curve(params: SystemParameters, configuration: Configuration,
                 populations) -> np.ndarray:
    """Aggregate DRAM demand at each population; ``inf`` if infeasible.

    Element ``i`` equals
    ``planner.plan(params.replace(n_streams=populations[i]),
    configuration).total_dram`` (or ``inf`` when that plan is
    infeasible) to the last bit.
    """
    n = np.asarray(populations, dtype=np.float64)
    if np.any(n < 0):
        raise ConfigurationError(
            "n_streams must be >= 0 everywhere on the population axis")
    return _compile_demand([(params, configuration)])(n)


def demand_at(lanes: Sequence[tuple[SystemParameters, Configuration]],
              population: float) -> np.ndarray:
    """Aggregate DRAM demand of each lane at one shared population.

    The candidate-evaluation twin of :func:`demand_curve`: one
    population, many ``(params, configuration)`` lanes.  Element ``i``
    equals ``planner.plan(lanes[i][0].replace(n_streams=population),
    lanes[i][1]).total_dram`` (or ``inf`` when that plan is infeasible)
    to the last bit.  Lanes are grouped by configuration kind, so a
    mixed slate (say a cache policy against a prefix spelling) batches
    within each kind.  The epoch placement controllers use this to
    judge their candidate policies in one vector evaluation instead of
    one scalar planner solve per candidate.
    """
    if population < 0:
        raise ConfigurationError(
            f"population must be >= 0, got {population!r}")
    items = list(lanes)
    out = np.empty(len(items), dtype=np.float64)
    by_kind: dict[ConfigurationKind, list[int]] = {}
    for index, (_, configuration) in enumerate(items):
        by_kind.setdefault(configuration.kind, []).append(index)
    for indices in by_kind.values():
        demand = _compile_demand([items[i] for i in indices])
        out[indices] = demand(np.full(len(indices), float(population)))
    return out


def max_streams_direct_batch(budgets, *, bit_rate, r_disk, l_disk):
    """Vector twin of :func:`repro.core.theorems.max_streams_direct`.

    All arguments broadcast; budgets must be ``>= 0`` (checked by the
    caller, as in ``Planner.max_streams``).
    """
    with np.errstate(**_QUIET):
        bandwidth_bound = r_disk / bit_rate
        a = l_disk * r_disk * bit_rate
        b = budgets * bit_rate
        c = -budgets * r_disk
        root = (-b + np.sqrt(b * b - 4.0 * a * c)) / (2.0 * a)
        bounded = np.minimum(root, bandwidth_bound)
        # Scalar branch order: a zero budget answers 0.0 even at zero
        # latency; zero latency otherwise answers the bandwidth bound.
        return np.where(budgets == 0, 0.0,
                        np.where(l_disk == 0, bandwidth_bound, bounded))


def _masked_max_feasible(demand, budgets: np.ndarray) -> np.ndarray:
    """Replay ``max_feasible_real`` on every lane with masked updates.

    Each lane evolves its own ``lo``/``hi`` bracket through exactly the
    probe sequence the scalar search would take (the doubling ladder is
    lane-independent: 1, 2, 4, ...; the bisection midpoints are
    per-lane), so the result is bit-identical per lane.  Lanes whose
    vanishing-load probe already fails answer 0.0, as in the scalar
    search.
    """
    lanes = budgets.shape[0]
    feasible = demand(np.full(lanes, PROBE_SEED)) <= budgets
    lo = np.full(lanes, PROBE_SEED)
    hi = np.ones(lanes)
    growing = feasible.copy()
    for _ in range(MAX_DOUBLINGS):
        if not growing.any():
            break
        grow = growing & (demand(hi) <= budgets)
        lo = np.where(grow, hi, lo)
        hi = np.where(grow, hi * 2.0, hi)
        growing = grow
    if growing.any():  # pragma: no cover - needs absurd parameters
        raise ConfigurationError(
            "feasible region appears unbounded; check the budget constraint")
    done = ~feasible
    for _ in range(MAX_BISECTIONS):
        if done.all():
            break
        mid = 0.5 * (lo + hi)
        fits = demand(mid) <= budgets
        active = ~done
        lo = np.where(active & fits, mid, lo)
        hi = np.where(active & ~fits, mid, hi)
        # The scalar loop tests convergence after each update.
        done |= hi - lo <= REL_TOL * np.maximum(hi, 1.0)
    return np.where(feasible, lo, 0.0)


def batch_max_streams(
        items: Sequence[tuple[SystemParameters, Configuration, float]],
) -> list[float]:
    """Largest feasible populations for many lanes at once.

    Element ``i`` equals ``planner.max_streams(*items[i])`` to the last
    bit (the hinted scalar searches are bit-identical to cold by the
    PR 5 contract, so one vectorized cold replay answers for both).
    Lanes are grouped by configuration kind; DIRECT lanes use the
    closed form and the rest share masked doubling+bisection searches.
    """
    lanes = list(items)
    for _, _, budget in lanes:
        if budget < 0:
            raise ConfigurationError(
                f"dram_budget must be >= 0, got {budget!r}")
    out = np.empty(len(lanes), dtype=np.float64)
    by_kind: dict[ConfigurationKind, list[int]] = {}
    for index, (_, configuration, _) in enumerate(lanes):
        by_kind.setdefault(configuration.kind, []).append(index)
    for kind, indices in by_kind.items():
        budgets = np.array([lanes[i][2] for i in indices], dtype=np.float64)
        if kind is ConfigurationKind.DIRECT:
            out[indices] = max_streams_direct_batch(
                budgets,
                bit_rate=np.array([lanes[i][0].bit_rate for i in indices]),
                r_disk=np.array([lanes[i][0].r_disk for i in indices]),
                l_disk=np.array([lanes[i][0].l_disk for i in indices]))
            continue
        demand = _compile_demand([(lanes[i][0], lanes[i][1])
                                  for i in indices])
        out[indices] = _masked_max_feasible(demand, budgets)
    return [float(v) for v in out]
