"""Named throughput solvers: the planner's stateless convenience API.

The paper's Figures 9 and 10 report *server throughput* — the maximum
number of streams a configuration can admit — for a fixed buffering
budget.  The forward models (Theorems 1-4) map ``N`` to a DRAM
requirement; these functions invert them by delegating to the shared,
memoized :class:`repro.planner.Planner`
(:func:`repro.planner.default_planner`).

They are the supported internal spelling of what the deprecated
:mod:`repro.core.capacity` shim re-exports; new code either calls
these or builds a :class:`repro.planner.Configuration` and talks to
the planner directly.
"""

from __future__ import annotations

import math

from repro.core.cache_model import CachePolicy
from repro.core.parameters import SystemParameters
from repro.core.popularity import PopularityDistribution
from repro.errors import ConfigurationError

__all__ = [
    "max_streams_without_mems",
    "max_streams_with_buffer",
    "max_streams_with_cache",
    "streams_supported",
]


def _planner():
    # Imported lazily: repro.planner.solver imports the core forward
    # models, so a module-level import here would be circular.
    from repro.planner.solver import default_planner

    return default_planner()


def _configuration(kind: str, policy: CachePolicy | None = None,
                   popularity: PopularityDistribution | None = None):
    from repro.planner.configuration import Configuration

    return Configuration.from_legacy(kind, policy=policy,
                                     popularity=popularity)


def max_streams_without_mems(params: SystemParameters,
                             dram_budget: float) -> float:
    """Throughput of the plain disk-to-DRAM server (Theorem 1 inverse).

    Closed form; ``params.n_streams`` is ignored.
    """
    return _planner().max_streams(params, _configuration("none"), dram_budget)


def max_streams_with_buffer(params: SystemParameters,
                            dram_budget: float) -> float:
    """Throughput of the MEMS-buffered server (Theorem 2 inverse).

    The feasibility predicate combines the disk and MEMS bandwidth
    limits, the MEMS storage bound (Eq. 7 vs Eq. 6 compatibility), and
    the DRAM budget.  ``params.n_streams`` is ignored.
    """
    return _planner().max_streams(params, _configuration("buffer"),
                                  dram_budget)


def max_streams_with_cache(params: SystemParameters, policy: CachePolicy,
                           popularity: PopularityDistribution,
                           dram_budget: float) -> float:
    """Throughput of the MEMS-cached server (Theorems 3/4 inverse).

    Streams split ``h : (1-h)`` between cache and disk (the hit rate
    depends only on capacities, not on ``N``); feasibility requires
    both device classes to admit their share and the combined DRAM to
    fit the budget.  ``params.n_streams`` is ignored.
    """
    return _planner().max_streams(params,
                                  _configuration("cache", policy, popularity),
                                  dram_budget)


def streams_supported(params: SystemParameters, dram_budget: float, *,
                      configuration: str = "none",
                      policy: CachePolicy | None = None,
                      popularity: PopularityDistribution | None = None) -> int:
    """Integer server throughput for any of the three configurations.

    ``configuration`` is ``"none"`` (plain disk), ``"buffer"``, or
    ``"cache"`` (which additionally needs ``policy`` and
    ``popularity``).  Returns ``floor`` of the continuous solution.
    """
    if configuration not in ("none", "buffer", "cache"):
        raise ConfigurationError(
            f"configuration must be 'none', 'buffer' or 'cache', "
            f"got {configuration!r}")
    n = _planner().max_streams(
        params, _configuration(configuration, policy, popularity),
        dram_budget)
    return int(math.floor(n + 1e-9))
