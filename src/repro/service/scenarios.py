"""The nine named scenarios, declaratively.

This module is the single source of truth for scenario names and
contents: each factory returns a frozen
:class:`~repro.service.config.RuntimeConfig` tree (so any scenario
serialises to JSON via ``mems-repro runtime --emit-config``), the
legacy factories in :mod:`repro.runtime.scenarios` are thin
``.to_legacy()`` shims over these, and
:func:`require_known_scenario` is the one place an unknown scenario
name turns into an error — the CLI and both scenario registries route
through it.

The numbers are transcribed exactly from the pre-refactor factories
(the parity harness in :mod:`repro.service.parity` holds both paths to
byte-identical output); see the legacy module docstring for the
library-sizing rationale.  ``overload`` is the one scenario born
declarative: a plain-disk run offered ~3x its admission capacity, the
regime where the backpressure governor lives in ``SHEDDING`` and the
service facade's explicit states earn their keep.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.parameters import SystemParameters
from repro.errors import ConfigurationError
from repro.runtime.failures import FailureEvent, FailureKind
from repro.runtime.runtime import DriftEvent, FocusEvent, SurgeEvent
from repro.service.config import (
    ControlConfig,
    PopularityConfig,
    RuntimeConfig,
    SystemConfig,
    TimelineConfig,
    WorkloadConfig,
)
from repro.units import GB, KB, MB

#: Library size: 100 titles on a 200 GB disk slice (see legacy module).
_N_TITLES = 100
_LIBRARY_BYTES = 200 * GB
_BIT_RATE = 500 * KB


def _disk_system() -> SystemConfig:
    return SystemConfig.from_params(SystemParameters.table3_default(
        n_streams=1, bit_rate=_BIT_RATE, k=1))


def _cache_system() -> SystemConfig:
    return SystemConfig.from_params(SystemParameters.table3_default(
        n_streams=1, bit_rate=_BIT_RATE, k=2).replace(
            size_disk=_LIBRARY_BYTES))


def _zipf() -> PopularityConfig:
    return PopularityConfig(kind="zipf", alpha=1.0)


def _disk_workload(arrival_rate: float) -> WorkloadConfig:
    return WorkloadConfig(arrival_rate=arrival_rate, mean_holding=600.0,
                          n_titles=_N_TITLES, popularity=_zipf())


def _cache_workload(arrival_rate: float,
                    n_titles: int = _N_TITLES,
                    alpha: float = 1.0) -> WorkloadConfig:
    return WorkloadConfig(arrival_rate=arrival_rate, mean_holding=1_200.0,
                          n_titles=n_titles,
                          popularity=PopularityConfig(kind="zipf",
                                                      alpha=alpha))


_SLOW_CONTROL = ControlConfig(epoch=3_600.0, metrics_interval=600.0)
_FAST_CONTROL = ControlConfig(epoch=300.0, metrics_interval=120.0)


def steady_disk(*, seed: int = 0,
                horizon: float = 30_000.0) -> RuntimeConfig:
    """Plain disk-to-DRAM loss system near its admission limit.

    Fixed capacity, no adaptation — the run that validates the
    empirical blocking probability against Erlang-B.
    """
    return RuntimeConfig(
        configuration="none", dram_budget=50 * MB, horizon=horizon,
        system=_disk_system(), workload=_disk_workload(160 / 600.0),
        control=_SLOW_CONTROL, seed=seed)


def adaptive_cache(*, seed: int = 0,
                   horizon: float = 6_000.0) -> RuntimeConfig:
    """MEMS cache chasing a drifting Zipf popularity.

    The title ranking rotates twice mid-run; each epoch the placement
    re-ranks from observed admissions and migrates the cached set.
    """
    return RuntimeConfig(
        configuration="cache", dram_budget=50 * MB, horizon=horizon,
        system=_cache_system(), workload=_cache_workload(150 / 1_200.0),
        control=_FAST_CONTROL,
        timeline=TimelineConfig(
            drifts=(DriftEvent(time=horizon / 3, shift=25),
                    DriftEvent(time=2 * horizon / 3, shift=25))),
        seed=seed)


def device_failure(*, seed: int = 0,
                   horizon: float = 6_000.0) -> RuntimeConfig:
    """A MEMS device dies mid-run; the server re-plans degraded.

    The bank halves at the midpoint: the runtime recomputes a feasible
    configuration (smaller cache, or a fallback path), sheds sessions
    it can no longer carry, and keeps serving the rest.  The DRAM
    budget is deliberately tight so the run sits near capacity and the
    failure is consequential.
    """
    return RuntimeConfig(
        configuration="cache", dram_budget=10 * MB, horizon=horizon,
        system=_cache_system(), workload=_cache_workload(170 / 1_200.0),
        control=_FAST_CONTROL,
        timeline=TimelineConfig(
            failures=(FailureEvent(time=horizon / 2,
                                   kind=FailureKind.DEVICE_LOSS,
                                   count=1),)),
        seed=seed)


def degraded_bandwidth(*, seed: int = 0,
                       horizon: float = 6_000.0) -> RuntimeConfig:
    """Both MEMS devices throttle to 40% media rate mid-run."""
    return RuntimeConfig(
        configuration="cache", dram_budget=50 * MB, horizon=horizon,
        system=_cache_system(), workload=_cache_workload(150 / 1_200.0),
        control=_FAST_CONTROL,
        timeline=TimelineConfig(
            failures=(FailureEvent(time=horizon / 2,
                                   kind=FailureKind.BANDWIDTH_DEGRADE,
                                   factor=0.4),)),
        seed=seed)


def flash_crowd(*, seed: int = 0,
                horizon: float = 30_000.0) -> RuntimeConfig:
    """Arrival rate surges 2.5x through the middle third of the run."""
    return RuntimeConfig(
        configuration="none", dram_budget=50 * MB, horizon=horizon,
        system=_disk_system(), workload=_disk_workload(120 / 600.0),
        control=_SLOW_CONTROL,
        timeline=TimelineConfig(
            surges=(SurgeEvent(time=horizon / 3, factor=2.5),
                    SurgeEvent(time=2 * horizon / 3, factor=1.0))),
        seed=seed)


def overload(*, seed: int = 0, horizon: float = 30_000.0) -> RuntimeConfig:
    """Plain disk offered ~3x its admission capacity, start to finish.

    The saturation run: blocking dominates, the load fraction pins
    above 1, and the backpressure governor spends the run in
    ``SHEDDING`` — the scenario that exercises the service facade's
    explicit backpressure states rather than the happy path.
    """
    return RuntimeConfig(
        configuration="none", dram_budget=50 * MB, horizon=horizon,
        system=_disk_system(), workload=_disk_workload(480 / 600.0),
        control=_SLOW_CONTROL, seed=seed)


def vod_flash_crowd(*, seed: int = 0,
                    horizon: float = 6_000.0) -> RuntimeConfig:
    """A focused flash crowd hits the prefix-cached VoD server.

    Through the middle third the arrival rate jumps 6x *and* 70% of
    all arrivals collapse onto one title: the regime multicast batching
    exists for.  With the title's prefix resident, same-title arrivals
    inside the batching window join the open IO stream, so admitted
    sessions grow far past the IO-stream capacity that gates a
    whole-stream cache at the same MEMS/DRAM budgets — the fan-out
    economics the ``flash_crowd`` benchmark gate records.
    """
    return RuntimeConfig(
        configuration="prefix", dram_budget=50 * MB, horizon=horizon,
        system=_cache_system(), workload=_cache_workload(150 / 1_200.0),
        control=_FAST_CONTROL,
        timeline=TimelineConfig(
            surges=(SurgeEvent(time=horizon / 3, factor=6.0),
                    SurgeEvent(time=2 * horizon / 3, factor=1.0)),
            focuses=(FocusEvent(time=horizon / 3, title=7, weight=0.7),
                     FocusEvent(time=2 * horizon / 3, title=7,
                                weight=0.0))),
        seed=seed)


def vod_diurnal_drift(*, seed: int = 0,
                      horizon: float = 6_000.0) -> RuntimeConfig:
    """A day/night cycle over a 400-title catalogue in prefix mode.

    Four times the catalogue size of the cache scenarios, so the bank
    cannot hold every prefix and the adaptive replacement must chase
    the head as the ranking rotates each quarter; the rate doubles for
    the "evening" and halves for the "night".
    """
    return RuntimeConfig(
        configuration="prefix", dram_budget=50 * MB, horizon=horizon,
        system=_cache_system(),
        workload=_cache_workload(150 / 1_200.0, n_titles=4 * _N_TITLES),
        control=_FAST_CONTROL,
        timeline=TimelineConfig(
            drifts=(DriftEvent(time=horizon / 4, shift=100),
                    DriftEvent(time=horizon / 2, shift=100),
                    DriftEvent(time=3 * horizon / 4, shift=100)),
            surges=(SurgeEvent(time=horizon / 4, factor=2.0),
                    SurgeEvent(time=3 * horizon / 4, factor=0.5))),
        seed=seed)


def vod_long_tail(*, seed: int = 0,
                  horizon: float = 6_000.0) -> RuntimeConfig:
    """Weakly skewed 400-title catalogue: the prefix cache's worst case.

    With ``alpha = 0.4`` the head carries little probability mass, so
    resident prefixes buy few batched joins and the tail-disk load
    stays high — the contrast run for ``flash_crowd``.
    """
    return RuntimeConfig(
        configuration="prefix", dram_budget=50 * MB, horizon=horizon,
        system=_cache_system(),
        workload=_cache_workload(150 / 1_200.0, n_titles=4 * _N_TITLES,
                                 alpha=0.4),
        control=_FAST_CONTROL, seed=seed)


#: Canonical scenario registry (name -> declarative config factory).
SERVICE_SCENARIOS: dict[str, Callable[..., RuntimeConfig]] = {
    "steady-disk": steady_disk,
    "adaptive-cache": adaptive_cache,
    "device-failure": device_failure,
    "degraded-bandwidth": degraded_bandwidth,
    "flash-crowd": flash_crowd,
    "overload": overload,
    "flash_crowd": vod_flash_crowd,
    "diurnal_drift": vod_diurnal_drift,
    "long_tail": vod_long_tail,
}


def require_known_scenario(name: str) -> Callable[..., RuntimeConfig]:
    """Look up a scenario factory; THE canonical unknown-name error.

    Every surface that takes a scenario name — the legacy registry,
    the CLI's ``runtime`` subcommand, ``--emit-config`` — routes
    through here, so the error text (and the list of names in it) has
    exactly one home.
    """
    try:
        return SERVICE_SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: "
            f"{', '.join(SERVICE_SCENARIOS)}") from None


def build_service_scenario(name: str, *, seed: int = 0,
                           horizon: float | None = None) -> RuntimeConfig:
    """Instantiate a named scenario's declarative configuration."""
    factory = require_known_scenario(name)
    if horizon is None:
        return factory(seed=seed)
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be > 0, got {horizon!r}")
    return factory(seed=seed, horizon=horizon)
