"""The MediaService facade: the runtime as a long-running service.

:class:`MediaService` fronts one :class:`~repro.runtime.runtime.ServerRuntime`
with the five control-plane operations a production streaming server
exposes — ``admit`` / ``teardown`` / ``stats`` / ``reconfigure`` /
``drain`` — plus fault injection, and publishes every externally
observable action as a typed event on the service's
:class:`~repro.service.events.EventBus`.

Two properties define the facade:

* **Replans run off the request path.**  With
  ``control.replan_latency > 0`` an epoch replan is a *window*, not an
  instant: :meth:`on_epoch` publishes ``ReplanStarted`` and schedules a
  ``replan-done`` simulation event; an :meth:`admit` that lands inside
  the window returns a ``PENDING`` :class:`AdmitTicket` immediately —
  it never blocks, and never consults the half-swapped demand model —
  and the replan-done event finalizes the parked tickets FIFO under the
  fresh plan (the bud-runtime EVENT_FLOW shape).  With the default
  latency of 0 the replan is synchronous and the facade is
  byte-identical to the legacy run loop, which is what the parity
  harness proves.

* **Backpressure is a published state, not a verdict.**  The
  :class:`~repro.service.backpressure.BackpressureGovernor` classifies
  admission load after every state-changing operation and the facade
  publishes exactly one ``BackpressureChanged`` event per transition.
  The governor never alters an admission decision, so attaching it is
  observationally free.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.runtime.failures import FailureEvent
from repro.runtime.runtime import (
    DriftEvent,
    FocusEvent,
    RuntimeResult,
    ServerRuntime,
    SurgeEvent,
)
from repro.service.backpressure import BackpressureGovernor, ServiceState
from repro.service.config import RuntimeConfig
from repro.service.events import (
    AdmitPending,
    BackpressureChanged,
    DrainStarted,
    EventBus,
    FailureInjected,
    Reconfigured,
    RecoveryPlanned,
    ReplanCompleted,
    ReplanStarted,
    SessionAdmitted,
    SessionClosed,
    SessionRejected,
)


class TicketState(enum.Enum):
    """Lifecycle state of one admit ticket."""

    PENDING = "pending"
    ADMITTED = "admitted"
    REJECTED = "rejected"


@dataclass(slots=True)
class AdmitTicket:
    """The receipt one :meth:`MediaService.admit` call returns.

    ``PENDING`` tickets were issued during an in-flight replan; the
    replan-done event finalizes them (``finalized_at`` is then the
    finalization time, not the issue time).
    """

    ticket_id: int
    state: TicketState
    created_at: float
    title: int | None = None
    session_id: int | None = None
    served_by: str | None = None
    reason: str | None = None
    batched: bool = False
    finalized_at: float | None = None

    @property
    def admitted(self) -> bool:
        return self.state is TicketState.ADMITTED

    @property
    def pending(self) -> bool:
        return self.state is TicketState.PENDING


class MediaService:
    """Service facade over one engine run (see module docstring)."""

    def __init__(self, config: RuntimeConfig,
                 bus: EventBus | None = None) -> None:
        self.config = config
        self.bus = bus if bus is not None else EventBus()
        self.engine = ServerRuntime(config.to_legacy())
        self.governor = BackpressureGovernor(config.control.backpressure)
        self._next_ticket = 0
        self._tickets_issued = 0
        self._pending: list[AdmitTicket] = []
        self._replan_inflight = False
        self._replan_started_at = 0.0
        self._draining = False

    # -- Internals -----------------------------------------------------------

    @property
    def sim(self):
        """The engine's event calendar (traffic programs schedule on it)."""
        return self.engine.sim

    def _new_ticket(self, state: TicketState, **fields) -> AdmitTicket:
        ticket = AdmitTicket(ticket_id=self._next_ticket, state=state,
                            created_at=self.engine.sim.now, **fields)
        self._next_ticket += 1
        self._tickets_issued += 1
        return ticket

    def _load(self) -> float:
        """Admission load fraction: admitted streams over capacity."""
        admitted = self.engine.controller.admitted_streams
        capacity = self.engine.controller.capacity()
        if capacity <= 0:
            return 0.0 if admitted == 0 else self.governor.config.shed_enter
        return admitted / capacity

    def _update_backpressure(self) -> None:
        """Fold the current load in; publish one event per transition."""
        self._fold_load(self._load())

    def _fold_load(self, load: float) -> None:
        transition = self.governor.update(load)
        if transition is not None:
            previous, state = transition
            self.bus.publish(BackpressureChanged(
                time=self.engine.sim.now, previous=previous.value,
                state=state.value, load=load))

    def _block_loads(self, outcomes) -> list[float]:
        """The load fraction each outcome's bookkeeping must observe.

        A block runs the whole burst through the engine before any
        per-ticket bookkeeping, so :meth:`_load` would report the
        *final* population for every ticket.  The scalar path folds
        the load in after each admission; this reconstructs that exact
        trajectory by replaying the admitted count backwards (batched
        prefix joins never touch the controller, and the capacity is
        fixed between replans, so no admission can move it mid-burst).
        """
        controller = self.engine.controller
        capacity = controller.capacity()
        shed_enter = self.governor.config.shed_enter
        fresh = sum(1 for o in outcomes if o.admitted and not o.batched)
        running = controller.admitted_streams - fresh
        loads = []
        for outcome in outcomes:
            if outcome.admitted and not outcome.batched:
                running += 1
            if capacity <= 0:
                loads.append(0.0 if running == 0 else shed_enter)
            else:
                loads.append(running / capacity)
        return loads

    # -- Facade operations ---------------------------------------------------

    @property
    def state(self) -> ServiceState:
        """Current backpressure regime."""
        return self.governor.state

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def replan_inflight(self) -> bool:
        return self._replan_inflight

    @property
    def pending_tickets(self) -> int:
        return len(self._pending)

    def admit(self, title: int | None = None) -> AdmitTicket:
        """Request one session; never blocks.

        Returns an ``ADMITTED`` or ``REJECTED`` ticket immediately, or
        a ``PENDING`` one when a replan is in flight (finalized by the
        replan-done event).  ``title`` defaults to the next draw of the
        workload's seeded popularity stream.
        """
        sim = self.engine.sim
        if self._draining:
            ticket = self._new_ticket(TicketState.REJECTED, title=title,
                                      reason="draining",
                                      finalized_at=sim.now)
            self.bus.publish(SessionRejected(
                time=sim.now, ticket_id=ticket.ticket_id, title=title,
                reason="draining"))
            return ticket
        if self._replan_inflight:
            ticket = self._new_ticket(TicketState.PENDING, title=title)
            self._pending.append(ticket)
            self.bus.publish(AdmitPending(
                time=sim.now, ticket_id=ticket.ticket_id, title=title))
            return ticket
        ticket = self._new_ticket(TicketState.PENDING, title=title)
        return self._finalize_admit(ticket, was_pending=False)

    def admit_block(self, count: int | None = None,
                    titles: Sequence[int | None] | None = None
                    ) -> list[AdmitTicket]:
        """Request a burst of sessions at the current instant.

        Ticket for ticket — ids, states, published events, RNG draws —
        this is :meth:`admit` called once per requested session, but
        the burst reaches the engine through its vectorized block
        arrival, so a large admit storm pays one bulk title draw
        instead of one scalar draw (and one drain guard) per call.
        Pass ``count`` to draw every title from the workload stream,
        or ``titles`` (None entries draw) to pin them.
        """
        if titles is None:
            if count is None:
                raise ConfigurationError(
                    "admit_block needs count or titles")
            wanted: list[int | None] = [None] * count
        else:
            wanted = list(titles)
            if count is not None and count != len(wanted):
                raise ConfigurationError(
                    f"count {count} != len(titles) {len(wanted)}")
        if self._draining:
            return [self.admit(title) for title in wanted]
        sim = self.engine.sim
        if self._replan_inflight:
            # The whole burst parks; no engine work until replan-done.
            parked: list[AdmitTicket] = []
            now = sim.now
            for title in wanted:
                ticket = self._new_ticket(TicketState.PENDING, title=title)
                self._pending.append(ticket)
                self.bus.publish(AdmitPending(
                    time=now, ticket_id=ticket.ticket_id, title=title))
                parked.append(ticket)
            return parked
        outcomes = self.engine.handle_arrival_block(sim, wanted)
        now = sim.now
        publish = self.bus.publish
        fold = self._fold_load
        next_id = self._next_ticket
        tickets: list[AdmitTicket] = []
        append = tickets.append
        last_load: float | None = None
        for outcome, load in zip(outcomes, self._block_loads(outcomes)):
            # Each ticket is born in its final state (ids run in call
            # order, exactly as ``admit`` would have assigned them).
            if outcome.admitted:
                ticket = AdmitTicket(
                    ticket_id=next_id, state=TicketState.ADMITTED,
                    created_at=now, title=outcome.title,
                    session_id=outcome.session.session_id,
                    served_by=outcome.served_by,
                    batched=outcome.batched, finalized_at=now)
                publish(SessionAdmitted(
                    time=now, ticket_id=next_id,
                    session_id=ticket.session_id, title=outcome.title,
                    served_by=outcome.served_by, was_pending=False))
            else:
                ticket = AdmitTicket(
                    ticket_id=next_id, state=TicketState.REJECTED,
                    created_at=now, title=outcome.title,
                    reason=outcome.reason, finalized_at=now)
                publish(SessionRejected(
                    time=now, ticket_id=next_id, title=outcome.title,
                    reason=outcome.reason, was_pending=False))
            next_id += 1
            if load != last_load:
                # ``governor.update`` at an unchanged load is a no-op
                # (the state machine is a fixpoint of its own verdicts),
                # so only the first ticket of an equal-load run folds.
                fold(load)
                last_load = load
            append(ticket)
        self._tickets_issued += next_id - self._next_ticket
        self._next_ticket = next_id
        return tickets

    def _finalize_admit(self, ticket: AdmitTicket, *,
                        was_pending: bool) -> AdmitTicket:
        """Run the engine admission for ``ticket`` and publish the result."""
        outcome = self.engine.handle_arrival(self.engine.sim, ticket.title)
        return self._apply_outcome(ticket, outcome,
                                   was_pending=was_pending)

    def _apply_outcome(self, ticket: AdmitTicket, outcome, *,
                       was_pending: bool,
                       load: float | None = None) -> AdmitTicket:
        """Fold one engine admission outcome into ``ticket``; publish.

        ``load`` carries the admission load this ticket's bookkeeping
        must fold into the governor when the caller already ran the
        whole burst through the engine (see :meth:`_block_loads`);
        scalar callers leave it None and the live load is read.
        """
        sim = self.engine.sim
        ticket.title = outcome.title
        ticket.finalized_at = sim.now
        if outcome.admitted:
            ticket.state = TicketState.ADMITTED
            ticket.session_id = outcome.session.session_id
            ticket.served_by = outcome.served_by
            ticket.batched = outcome.batched
            self.bus.publish(SessionAdmitted(
                time=sim.now, ticket_id=ticket.ticket_id,
                session_id=ticket.session_id, title=outcome.title,
                served_by=outcome.served_by, was_pending=was_pending))
        else:
            ticket.state = TicketState.REJECTED
            ticket.reason = outcome.reason
            self.bus.publish(SessionRejected(
                time=sim.now, ticket_id=ticket.ticket_id,
                title=outcome.title, reason=outcome.reason,
                was_pending=was_pending))
        self._fold_load(self._load() if load is None else load)
        return ticket

    def teardown(self, session_id: int) -> bool:
        """Close one live session early; True when it was live."""
        sim = self.engine.sim
        session = self.engine.close_session(sim, session_id)
        if session is None:
            return False
        self.bus.publish(SessionClosed(
            time=sim.now, session_id=session.session_id,
            title=session.title))
        self._update_backpressure()
        return True

    def stats(self) -> dict:
        """A point-in-time snapshot of the control plane."""
        engine = self.engine
        engine.sync(engine.sim)
        return {
            "time": engine.sim.now,
            "state": self.governor.state.value,
            "mode": engine.mode,
            "active_sessions": engine.active_sessions,
            "admitted_streams": engine.controller.admitted_streams,
            "capacity": engine.controller.capacity(),
            "load": self._load(),
            "k_active": engine.k_active,
            "draining": self._draining,
            "replan_inflight": self._replan_inflight,
            "pending_tickets": len(self._pending),
            "tickets_issued": self._tickets_issued,
            "events_published": self.bus.events_published,
        }

    def reconfigure(self, *, rate_factor: float | None = None,
                    popularity_shift: int | None = None,
                    focus_title: int | None = None,
                    focus_weight: float | None = None,
                    dram_budget: float | None = None) -> tuple[str, ...]:
        """Change the live run's traffic model or budget.

        Each keyword maps to one engine operation (arrival-rate scale,
        popularity rotation, title focus, DRAM budget swap); one
        ``Reconfigured`` event lists everything that changed.
        """
        if (focus_title is None) != (focus_weight is None):
            raise ConfigurationError(
                "focus_title and focus_weight go together")
        sim = self.engine.sim
        changes: list[str] = []
        if rate_factor is not None:
            self.engine.apply_surge(
                sim, SurgeEvent(time=sim.now, factor=rate_factor))
            changes.append(f"rate_factor={rate_factor:g}")
        if popularity_shift is not None:
            self.engine.apply_drift(
                sim, DriftEvent(time=sim.now, shift=popularity_shift))
            changes.append(f"popularity_shift={popularity_shift}")
        if focus_title is not None:
            self.engine.apply_focus(
                sim, FocusEvent(time=sim.now, title=focus_title,
                                weight=focus_weight))
            changes.append(f"focus={focus_title}:{focus_weight:g}")
        if dram_budget is not None:
            if dram_budget < 0:
                raise ConfigurationError(
                    f"dram_budget must be >= 0, got {dram_budget!r}")
            self.engine.config.dram_budget = dram_budget
            self.engine.controller.reconfigure(dram_budget=dram_budget)
            changes.append(f"dram_budget={dram_budget:g}")
        if not changes:
            raise ConfigurationError("reconfigure called with no changes")
        self.bus.publish(Reconfigured(time=sim.now, changes=tuple(changes)))
        self._update_backpressure()
        return tuple(changes)

    def drain(self) -> int:
        """Stop accepting sessions; live ones play out.

        Returns the number of sessions still playing.  Subsequent
        admits — including PENDING tickets finalized after the drain —
        are rejected at the service layer with reason ``"draining"``
        (the engine and its counters are untouched).
        """
        self.engine.sync(self.engine.sim)
        if not self._draining:
            self._draining = True
            self.bus.publish(DrainStarted(
                time=self.engine.sim.now,
                active_sessions=self.engine.active_sessions))
        return self.engine.active_sessions

    # -- Control-plane events ------------------------------------------------

    def on_epoch(self, sim) -> None:
        """The epoch tick: re-plan now, or open a replan window.

        Scheduled by the traffic program with the same ``"epoch"``
        label the legacy loop uses.  Static modes have nothing to
        re-plan and stay silent.
        """
        latency = self.config.control.replan_latency
        if latency <= 0:
            if self.engine.run_epoch(sim):
                self.bus.publish(ReplanStarted(time=sim.now, reason="epoch"))
                self.bus.publish(ReplanCompleted(
                    time=sim.now, reason="epoch", duration=0.0,
                    capacity=self.engine.controller.capacity(),
                    pending_finalized=0))
                self._update_backpressure()
            return
        if self.engine.mode not in ("cache", "prefix"):
            return
        if self._replan_inflight:  # pragma: no cover - latency < epoch
            return
        self._replan_inflight = True
        self._replan_started_at = sim.now
        self.bus.publish(ReplanStarted(time=sim.now, reason="epoch"))
        sim.after(latency, self._finish_replan, "replan-done")

    def _finish_replan(self, sim) -> None:
        """The replan-done event: swap the plan, finalize parked tickets."""
        self.engine.run_epoch(sim)
        self._replan_inflight = False
        parked, self._pending = self._pending, []
        finalized = len(parked)
        if self._draining:
            for ticket in parked:
                ticket.state = TicketState.REJECTED
                ticket.reason = "draining"
                ticket.finalized_at = sim.now
                self.bus.publish(SessionRejected(
                    time=sim.now, ticket_id=ticket.ticket_id,
                    title=ticket.title, reason="draining",
                    was_pending=True))
        elif parked:
            # All parked tickets finalize at this same instant, so the
            # whole backlog goes through the engine's block arrival —
            # identical outcomes and publish order to finalizing them
            # one by one (each ticket folds the load trajectory point
            # the scalar path would have observed).
            outcomes = self.engine.handle_arrival_block(
                sim, [ticket.title for ticket in parked])
            loads = self._block_loads(outcomes)
            for ticket, outcome, load in zip(parked, outcomes, loads):
                self._apply_outcome(ticket, outcome, was_pending=True,
                                    load=load)
        self.bus.publish(ReplanCompleted(
            time=sim.now, reason="epoch",
            duration=sim.now - self._replan_started_at,
            capacity=self.engine.controller.capacity(),
            pending_finalized=finalized))
        self._update_backpressure()

    def inject_failure(self, sim, event: FailureEvent) -> None:
        """Degrade the MEMS bank per ``event`` and publish the recovery."""
        # Departures due by now leave first (on the table core they are
        # harvested lazily), so ``sessions_dropped`` counts only what
        # the failure itself shed.
        self.engine.sync(sim)
        before = self.engine.active_sessions
        self.engine.apply_failure(sim, event)
        self.bus.publish(FailureInjected(
            time=sim.now, failure_kind=event.kind.value, count=event.count,
            factor=event.factor))
        policy = self.engine.policy
        self.bus.publish(RecoveryPlanned(
            time=sim.now, mode=self.engine.mode,
            policy=policy.value if policy is not None else None,
            k_active=self.engine.k_active,
            sessions_dropped=before - self.engine.active_sessions))
        self._update_backpressure()

    def finalize(self) -> RuntimeResult:
        """Seal the run and build the result (identical to legacy)."""
        return self.engine.finalize()
