"""Typed service events and the publication bus.

Every externally observable control-plane action of the
:class:`~repro.service.facade.MediaService` — admissions, rejections,
pending tickets, replans, failures, recoveries, backpressure state
changes, reconfigurations, drains — is published as one frozen, typed
event on an :class:`EventBus`.  Metrics rollups, the dashboard, tests,
and (later) cluster dispatch all *subscribe* rather than poke at
service internals, which is what keeps the facade's request path free
of observer-specific code.

Dispatch is synchronous and deterministic: subscribers run in
subscription order at the simulated instant the event is published, so
a seeded run reproduces the exact event stream.  The bus itself never
reads a clock — every event carries the simulation time it happened
at.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field, fields

from repro.errors import ConfigurationError, require


@dataclass(frozen=True, slots=True)
class ServiceEvent:
    """Base class: something the control plane did at ``time``."""

    time: float

    @property
    def kind(self) -> str:
        """Stable lowercase event-kind name (the class name)."""
        return type(self).__name__

    def to_dict(self) -> dict:
        payload = {"kind": self.kind}
        for spec in fields(self):
            payload[spec.name] = getattr(self, spec.name)
        return payload


@dataclass(frozen=True, slots=True)
class SessionAdmitted(ServiceEvent):
    """An admit ticket was finalized as admitted."""

    ticket_id: int
    session_id: int
    title: int
    served_by: str
    #: True when the ticket spent time PENDING behind a replan.
    was_pending: bool = False


@dataclass(frozen=True, slots=True)
class SessionRejected(ServiceEvent):
    """An admit ticket was finalized as rejected."""

    ticket_id: int
    title: int | None
    reason: str
    was_pending: bool = False


@dataclass(frozen=True, slots=True)
class AdmitPending(ServiceEvent):
    """An admit arrived during an in-flight replan; ticket parked."""

    ticket_id: int
    title: int | None


@dataclass(frozen=True, slots=True)
class SessionClosed(ServiceEvent):
    """An explicit ``teardown`` closed a live session."""

    session_id: int
    title: int


@dataclass(frozen=True, slots=True)
class ReplanStarted(ServiceEvent):
    """An epoch/reconfigure replan left the request path."""

    reason: str


@dataclass(frozen=True, slots=True)
class ReplanCompleted(ServiceEvent):
    """The replan landed; placement and demand model are swapped."""

    reason: str
    #: Simulated seconds the replan spent in flight (0 = synchronous).
    duration: float
    #: Admission capacity under the new model.
    capacity: int
    #: PENDING tickets finalized by this completion.
    pending_finalized: int


@dataclass(frozen=True, slots=True)
class FailureInjected(ServiceEvent):
    """A fault hit the MEMS bank."""

    failure_kind: str
    count: int
    factor: float


@dataclass(frozen=True, slots=True)
class RecoveryPlanned(ServiceEvent):
    """The degraded re-plan after a failure settled on a mode."""

    mode: str
    policy: str | None
    k_active: int
    sessions_dropped: int


@dataclass(frozen=True, slots=True)
class BackpressureChanged(ServiceEvent):
    """The admission backpressure state moved."""

    previous: str
    state: str
    load: float


@dataclass(frozen=True, slots=True)
class Reconfigured(ServiceEvent):
    """A live ``reconfigure`` operation changed the running config."""

    changes: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class DrainStarted(ServiceEvent):
    """The service stopped accepting new sessions."""

    active_sessions: int


#: Every publishable event type, in a stable documentation order.
EVENT_TYPES: tuple[type[ServiceEvent], ...] = (
    SessionAdmitted, SessionRejected, AdmitPending, SessionClosed,
    ReplanStarted, ReplanCompleted, FailureInjected, RecoveryPlanned,
    BackpressureChanged, Reconfigured, DrainStarted,
)


class EventBus:
    """Synchronous, deterministic pub/sub for :class:`ServiceEvent`.

    ``subscribe(SessionAdmitted, cb)`` delivers only that type;
    ``subscribe(None, cb)`` delivers everything.  Publication order is
    delivery order, and per-event subscribers run before wildcard ones,
    each in subscription order — no threads, no reordering, so event
    streams are reproducible run to run.
    """

    def __init__(self) -> None:
        self._by_type: dict[type[ServiceEvent],
                            list[Callable[[ServiceEvent], None]]] = {}
        self._wildcard: list[Callable[[ServiceEvent], None]] = []
        self._published = 0

    @property
    def events_published(self) -> int:
        """Total events published on this bus."""
        return self._published

    def subscribe(self, event_type: type[ServiceEvent] | None,
                  callback: Callable[[ServiceEvent], None]) -> None:
        """Register ``callback`` for one event type (None = all)."""
        if event_type is None:
            self._wildcard.append(callback)
            return
        if not (isinstance(event_type, type)
                and issubclass(event_type, ServiceEvent)):
            raise ConfigurationError(
                f"subscribe needs a ServiceEvent subclass or None, "
                f"got {event_type!r}")
        self._by_type.setdefault(event_type, []).append(callback)

    def publish(self, event: ServiceEvent) -> None:
        """Deliver ``event`` to its subscribers, synchronously."""
        if not isinstance(event, ServiceEvent):
            raise ConfigurationError(
                f"publish needs a ServiceEvent, got {event!r}")
        self._published += 1
        for callback in self._by_type.get(type(event), ()):
            callback(event)
        for callback in self._wildcard:
            callback(event)


@dataclass
class EventCounter:
    """A bus subscriber that rolls events up into per-kind counts.

    The metrics/dashboard-facing consumer: attach with
    ``bus.subscribe(None, counter)`` and read ``counter.counts``.
    """

    counts: dict[str, int] = field(default_factory=dict)

    def __call__(self, event: ServiceEvent) -> None:
        self.counts[event.kind] = self.counts.get(event.kind, 0) + 1

    def total(self) -> int:
        return sum(self.counts.values())


class EventLog:
    """A bus subscriber that records the event stream (tests, tooling).

    The log is a bounded ring: only the most recent ``capacity``
    events are retained, and anything shed off the head is tallied in
    :attr:`dropped`, so subscribing a log to a very long service run
    costs O(capacity) memory instead of growing linearly with the
    event stream.  The default capacity of one million events is
    deliberately generous — every in-repo scenario publishes orders of
    magnitude fewer, so by default nothing is ever dropped and
    :attr:`events` is the complete stream.
    """

    def __init__(self,
                 capacity: int = 1_000_000) -> None:  # repro-lint: disable=unit-literals (an event count, not bytes)
        if capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1, got {capacity!r}")
        self._ring: deque[ServiceEvent] = deque(maxlen=capacity)
        #: Events shed off the head of the full ring.
        self.dropped = 0

    @property
    def capacity(self) -> int:
        """Most events the log retains before shedding the oldest."""
        maxlen = self._ring.maxlen
        require(maxlen is not None, "EventLog ring built without maxlen")
        return maxlen

    @property
    def events(self) -> list[ServiceEvent]:
        """The retained events, oldest first (a fresh list)."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def __call__(self, event: ServiceEvent) -> None:
        if len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        self._ring.append(event)

    def of_type(self, event_type: type[ServiceEvent]) -> list[ServiceEvent]:
        return [e for e in self._ring if isinstance(e, event_type)]
