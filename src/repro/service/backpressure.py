"""Admission backpressure states with hysteresis.

When a loss system runs near its admission limit, a binary
admit/reject signal is a poor operator interface: the interesting
regimes are *approaching* saturation (start steering new traffic away)
and *past* it (the server is actively refusing or shedding).  The
:class:`BackpressureGovernor` classifies the admission load — admitted
population over solved capacity — into three states:

``ACCEPTING``
    comfortably under capacity; admit freely.
``THROTTLED``
    near capacity; admissions still succeed but dispatchers should
    back off (the P2P sizing analysis in PAPERS.md is why this must be
    an online signal, not a scenario-time constant).
``SHEDDING``
    at or beyond capacity; new admissions are being rejected, and a
    failure/replan may be dropping live sessions.

Transitions are **monotone in load** — a higher load never maps to an
earlier state — and **hysteretic**: each state is entered at a high
threshold and left at a strictly lower one, so load noise around a
threshold cannot flap the state (and with it the event stream).  The
governor is pure bookkeeping: it never changes an admission verdict,
it only names the regime, so a run with the governor attached stays
byte-identical to one without.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "BackpressureConfig",
    "BackpressureGovernor",
    "ServiceState",
    "severity",
]


class ServiceState(enum.Enum):
    """Backpressure regime of the admission plane."""

    ACCEPTING = "accepting"
    THROTTLED = "throttled"
    SHEDDING = "shedding"


#: State -> severity rank (monotone order of the regimes).
_SEVERITY = {ServiceState.ACCEPTING: 0, ServiceState.THROTTLED: 1,
             ServiceState.SHEDDING: 2}


def severity(state: ServiceState) -> int:
    """Monotone rank of a state (ACCEPTING=0 .. SHEDDING=2)."""
    return _SEVERITY[state]


@dataclass(frozen=True)
class BackpressureConfig:
    """Thresholds of the governor, as load fractions of capacity.

    Enter thresholds must sit strictly above their exit thresholds
    (that gap *is* the hysteresis), and the throttle band must sit
    below the shed band so the states are monotone in load::

        0 <= throttle_exit < throttle_enter <= shed_exit < shed_enter
    """

    throttle_enter: float = 0.85
    throttle_exit: float = 0.70
    shed_enter: float = 1.0
    shed_exit: float = 0.95

    def __post_init__(self) -> None:
        ordered = (self.throttle_exit, self.throttle_enter,
                   self.shed_exit, self.shed_enter)
        if any(value < 0 for value in ordered):
            raise ConfigurationError(
                f"backpressure thresholds must be >= 0, got {ordered!r}")
        if not self.throttle_exit < self.throttle_enter:
            raise ConfigurationError(
                f"throttle_exit must be < throttle_enter, got "
                f"{self.throttle_exit!r} >= {self.throttle_enter!r}")
        if not self.shed_exit < self.shed_enter:
            raise ConfigurationError(
                f"shed_exit must be < shed_enter, got "
                f"{self.shed_exit!r} >= {self.shed_enter!r}")
        if not self.throttle_enter <= self.shed_exit:
            raise ConfigurationError(
                f"throttle_enter must be <= shed_exit, got "
                f"{self.throttle_enter!r} > {self.shed_exit!r}")


class BackpressureGovernor:
    """Classifies admission load into a hysteretic ServiceState.

    Call :meth:`update` with the current load fraction after every
    admission-plane operation; it returns the ``(previous, new)`` pair
    exactly when the state changed (the caller publishes exactly one
    bus event per transition) and None otherwise.
    """

    def __init__(self, config: BackpressureConfig | None = None) -> None:
        self.config = config if config is not None else BackpressureConfig()
        self._state = ServiceState.ACCEPTING

    @property
    def state(self) -> ServiceState:
        return self._state

    def classify(self, load: float) -> ServiceState:
        """The state a *fresh* governor assigns to ``load`` (no
        hysteresis): the monotone spine the transitions respect."""
        if load < 0:
            raise ConfigurationError(f"load must be >= 0, got {load!r}")
        cfg = self.config
        if load >= cfg.shed_enter:
            return ServiceState.SHEDDING
        if load >= cfg.throttle_enter:
            return ServiceState.THROTTLED
        return ServiceState.ACCEPTING

    def update(self, load: float
               ) -> tuple[ServiceState, ServiceState] | None:
        """Fold one load observation in; report a transition if any."""
        if load < 0:
            raise ConfigurationError(f"load must be >= 0, got {load!r}")
        cfg = self.config
        state = self._state
        if state is ServiceState.ACCEPTING:
            new = self.classify(load)
        elif state is ServiceState.THROTTLED:
            if load >= cfg.shed_enter:
                new = ServiceState.SHEDDING
            elif load <= cfg.throttle_exit:
                new = ServiceState.ACCEPTING
            else:
                new = state
        else:  # SHEDDING
            if load <= cfg.throttle_exit:
                new = ServiceState.ACCEPTING
            elif load <= cfg.shed_exit:
                new = ServiceState.THROTTLED
            else:
                new = state
        if new is state:
            return None
        self._state = new
        return (state, new)
