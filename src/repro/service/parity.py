"""The parity harness: service path vs legacy path, byte for byte.

The refactor's safety net.  For every named scenario it runs the run
twice from the same declarative config — once through the legacy
:func:`~repro.runtime.runtime.run_runtime` batch loop on the compiled
legacy config, once through :class:`~repro.service.facade.MediaService`
plus a :class:`~repro.service.traffic.TrafficProgram` — and demands the
two :class:`~repro.runtime.runtime.RuntimeResult` JSON payloads be
*byte-identical*: every admission, rejection, migration, drop, gauge
sample, note, and the executed-event count.  Anything the facade adds
(tickets, the event bus, the backpressure governor) must therefore be
observationally free; anything that isn't shows up as a diff here
before it ships.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.runtime import RuntimeResult, run_runtime
from repro.service.config import RuntimeConfig
from repro.service.scenarios import (
    SERVICE_SCENARIOS,
    build_service_scenario,
)
from repro.service.traffic import run_service


@dataclass(frozen=True)
class ParityReport:
    """The verdict for one scenario."""

    name: str
    matches: bool
    legacy_json: str
    service_json: str

    def first_divergence(self, context: int = 60) -> str | None:
        """A short excerpt around the first differing byte (or None)."""
        if self.matches:
            return None
        a, b = self.legacy_json, self.service_json
        n = min(len(a), len(b))
        at = next((i for i in range(n) if a[i] != b[i]), n)
        lo = max(0, at - context)
        return (f"at byte {at}: legacy ...{a[lo:at + context]!r} vs "
                f"service ...{b[lo:at + context]!r}")


def run_both(config: RuntimeConfig) -> tuple[RuntimeResult, RuntimeResult]:
    """One config, both paths: (legacy result, service result)."""
    legacy = run_runtime(config.to_legacy())
    service = run_service(config)
    return legacy, service


def compare_config(name: str, config: RuntimeConfig) -> ParityReport:
    """Run both paths for ``config`` and compare the JSON bytes."""
    legacy, service = run_both(config)
    legacy_json = legacy.to_json(indent=None)
    service_json = service.to_json(indent=None)
    return ParityReport(name=name, matches=legacy_json == service_json,
                        legacy_json=legacy_json, service_json=service_json)


def compare_scenario(name: str, *, seed: int = 0,
                     horizon: float | None = None) -> ParityReport:
    """Parity verdict for one named scenario."""
    config = build_service_scenario(name, seed=seed, horizon=horizon)
    return compare_config(name, config)


def verify_all(*, seed: int = 0,
               horizon: float | None = None) -> dict[str, ParityReport]:
    """Parity verdicts for every named scenario."""
    return {name: compare_scenario(name, seed=seed, horizon=horizon)
            for name in SERVICE_SCENARIOS}
