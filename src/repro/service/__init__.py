"""The event-driven service control plane.

The long-running face of the runtime: a declarative
:class:`~repro.service.config.RuntimeConfig` tree compiles into a
:class:`~repro.service.facade.MediaService` facade
(``admit / teardown / stats / reconfigure / drain``) whose epoch
replans run off the request path, whose backpressure regime is an
explicit published state, and whose every control-plane action lands
as a typed event on an :class:`~repro.service.events.EventBus`.
:class:`~repro.service.traffic.TrafficProgram` replays the named
scenarios through that API, and :mod:`repro.service.parity` proves the
replay byte-identical to the legacy batch loop.
"""

from repro.service.backpressure import (
    BackpressureConfig,
    BackpressureGovernor,
    ServiceState,
)
from repro.service.config import (
    ControlConfig,
    PlacementConfig,
    PopularityConfig,
    RuntimeConfig,
    SystemConfig,
    TimelineConfig,
    WorkloadConfig,
)
from repro.service.events import (
    EVENT_TYPES,
    AdmitPending,
    BackpressureChanged,
    DrainStarted,
    EventBus,
    EventCounter,
    EventLog,
    FailureInjected,
    Reconfigured,
    RecoveryPlanned,
    ReplanCompleted,
    ReplanStarted,
    ServiceEvent,
    SessionAdmitted,
    SessionClosed,
    SessionRejected,
)
from repro.service.facade import AdmitTicket, MediaService, TicketState
from repro.service.parity import compare_scenario, verify_all
from repro.service.scenarios import (
    SERVICE_SCENARIOS,
    build_service_scenario,
    require_known_scenario,
)
from repro.service.traffic import TrafficProgram, run_service

__all__ = [
    "AdmitPending",
    "AdmitTicket",
    "BackpressureChanged",
    "BackpressureConfig",
    "BackpressureGovernor",
    "ControlConfig",
    "DrainStarted",
    "EVENT_TYPES",
    "EventBus",
    "EventCounter",
    "EventLog",
    "FailureInjected",
    "MediaService",
    "PlacementConfig",
    "PopularityConfig",
    "Reconfigured",
    "RecoveryPlanned",
    "ReplanCompleted",
    "ReplanStarted",
    "RuntimeConfig",
    "SERVICE_SCENARIOS",
    "ServiceEvent",
    "ServiceState",
    "SessionAdmitted",
    "SessionClosed",
    "SessionRejected",
    "SystemConfig",
    "TicketState",
    "TimelineConfig",
    "TrafficProgram",
    "WorkloadConfig",
    "build_service_scenario",
    "compare_scenario",
    "require_known_scenario",
    "run_service",
    "verify_all",
]
