"""Traffic programs: a scenario's stochastic load as API calls.

The legacy :meth:`~repro.runtime.runtime.ServerRuntime.run` loop bakes
the traffic into the engine — Poisson arrivals, epoch and metrics
timers, and the scheduled timeline all live in one method.
:class:`TrafficProgram` lifts exactly that schedule out and drives it
through the :class:`~repro.service.facade.MediaService` API instead:
arrivals become :meth:`~repro.service.facade.MediaService.admit`,
epochs become :meth:`~repro.service.facade.MediaService.on_epoch`,
surges/drifts/focuses become
:meth:`~repro.service.facade.MediaService.reconfigure`, and failures
become :meth:`~repro.service.facade.MediaService.inject_failure`.

Parity is load-bearing here: the program schedules the same callbacks
in the same order with the same labels and draws the seeded RNG in the
same sequence (interarrival, then title, then holding-if-admitted) as
the legacy loop, so with the default synchronous replans the run's
JSON output is byte-identical — :mod:`repro.service.parity` holds it
there.  A cluster dispatcher later swaps this program for real demand
without touching the engine.
"""

from __future__ import annotations

from repro.runtime.failures import FailureEvent
from repro.runtime.runtime import DriftEvent, FocusEvent, RuntimeResult, SurgeEvent
from repro.service.config import RuntimeConfig
from repro.service.events import EventBus
from repro.service.facade import MediaService


class TrafficProgram:
    """Replays one scenario's load against a :class:`MediaService`."""

    def __init__(self, service: MediaService) -> None:
        self.service = service

    # -- Schedule pieces (one per legacy run-loop line) ----------------------

    def _schedule_arrival(self, sim) -> None:
        delay = self.service.engine.sampler.next_interarrival()
        sim.after(delay, self._on_arrival, "arrival")

    def _on_arrival(self, sim) -> None:
        self.service.admit()
        self._schedule_arrival(sim)

    def _make_failure(self, event: FailureEvent):
        def fail(sim) -> None:
            self.service.inject_failure(sim, event)

        return fail

    def _make_drift(self, event: DriftEvent):
        def drift(sim) -> None:
            self.service.reconfigure(popularity_shift=event.shift)

        return drift

    def _make_surge(self, event: SurgeEvent):
        def surge(sim) -> None:
            self.service.reconfigure(rate_factor=event.factor)

        return surge

    def _make_focus(self, event: FocusEvent):
        def focus(sim) -> None:
            self.service.reconfigure(focus_title=event.title,
                                     focus_weight=event.weight)

        return focus

    # -- Program -------------------------------------------------------------

    def install(self) -> None:
        """Put the whole scenario on the calendar (legacy order exactly)."""
        service = self.service
        sim = service.sim
        config = service.config
        timeline = config.timeline
        self._schedule_arrival(sim)
        sim.every(config.control.epoch, service.on_epoch, "epoch")
        sim.every(config.control.metrics_interval,
                  service.engine.seal_metrics, "metrics")
        for failure in sorted(timeline.failures, key=lambda e: e.time):
            sim.at(failure.time, self._make_failure(failure), "failure")
        for drift in sorted(timeline.drifts, key=lambda e: e.time):
            sim.at(drift.time, self._make_drift(drift), "drift")
        for surge in sorted(timeline.surges, key=lambda e: e.time):
            sim.at(surge.time, self._make_surge(surge), "surge")
        for focus in sorted(timeline.focuses, key=lambda e: e.time):
            sim.at(focus.time, self._make_focus(focus), "focus")

    def run(self) -> RuntimeResult:
        """Install, play to the horizon, and seal the result."""
        self.install()
        self.service.sim.run(until=self.service.config.horizon)
        return self.service.finalize()


def run_service(config: RuntimeConfig, *,
                bus: EventBus | None = None) -> RuntimeResult:
    """Build a service from ``config`` and drive it to the horizon."""
    return TrafficProgram(MediaService(config, bus=bus)).run()
