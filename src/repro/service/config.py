"""The declarative runtime configuration tree.

One frozen, validated dataclass tree replaces the constructor-argument
sprawl that used to configure a run — ``SystemParameters`` fields here,
``SessionWorkload`` knobs there, prefix sizing on the legacy
``RuntimeConfig``, event tuples built by hand in ``scenarios.py``.
Everything a :class:`~repro.service.facade.MediaService` needs is one
:class:`RuntimeConfig` that

* validates eagerly (every sub-config checks its own bounds),
* serialises losslessly to/from JSON (``mems-repro runtime --config``
  accepts the file; ``--emit-config`` writes one for any named
  scenario, so users fork scenarios declaratively),
* compiles to the imperative objects the engine runs on
  (:meth:`RuntimeConfig.to_legacy`) and lifts back out of them
  (:meth:`RuntimeConfig.from_legacy`), both directions exact — the
  parity harness relies on ``to_legacy`` reproducing the pre-refactor
  configs bit for bit.

The shape follows the jeeves ``ExecutionConfig`` exemplar (SNIPPETS.md
snippet 2): bounds, timeouts, seeds and feature flags grouped into
purpose-named sub-configs rather than one flat namespace.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field

from repro.core.parameters import SystemParameters
from repro.core.popularity import (
    BimodalPopularity,
    PopularityDistribution,
    UniformPopularity,
    ZipfPopularity,
)
from repro.errors import ConfigurationError
from repro.runtime.failures import FailureEvent, FailureKind
from repro.runtime.runtime import (
    DriftEvent,
    FocusEvent,
    RuntimeConfig as LegacyRuntimeConfig,
    SurgeEvent,
)
from repro.runtime.sessions import SessionWorkload
from repro.service.backpressure import BackpressureConfig

#: Serialisation format version of the config JSON.
CONFIG_SCHEMA_VERSION = 1

#: Named MEMS devices a config may reference.
_DEVICES = ("G3",)


def _require_keys(payload: dict, known: set[str], *, where: str) -> None:
    unknown = set(payload) - known
    if unknown:
        raise ConfigurationError(
            f"unknown key(s) {sorted(unknown)} in {where}; "
            f"known: {sorted(known)}")


@dataclass(frozen=True)
class SystemConfig:
    """The analytical model's inputs (Table 2), declaratively.

    Field for field a :class:`~repro.core.parameters.SystemParameters`
    minus the per-run stream population (the runtime always starts one
    at ``n_streams=0`` and the demand model varies it).
    """

    bit_rate: float
    r_disk: float
    r_mems: float
    l_disk: float
    l_mems: float
    k: int = 1
    c_dram: float = 0.0
    c_mems: float = 0.0
    size_mems: float | None = None
    size_disk: float | None = None

    def __post_init__(self) -> None:
        self.to_params()  # SystemParameters carries the bound checks

    @classmethod
    def from_params(cls, params: SystemParameters) -> "SystemConfig":
        return cls(bit_rate=params.bit_rate, r_disk=params.r_disk,
                   r_mems=params.r_mems, l_disk=params.l_disk,
                   l_mems=params.l_mems, k=params.k, c_dram=params.c_dram,
                   c_mems=params.c_mems, size_mems=params.size_mems,
                   size_disk=params.size_disk)

    def to_params(self, *, n_streams: float = 1.0) -> SystemParameters:
        return SystemParameters(
            n_streams=n_streams, bit_rate=self.bit_rate, r_disk=self.r_disk,
            r_mems=self.r_mems, l_disk=self.l_disk, l_mems=self.l_mems,
            k=self.k, c_dram=self.c_dram, c_mems=self.c_mems,
            size_mems=self.size_mems, size_disk=self.size_disk)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "SystemConfig":
        _require_keys(payload, {f.name for f in dataclasses.fields(cls)},
                      where="system")
        return cls(**payload)


@dataclass(frozen=True)
class PopularityConfig:
    """A named popularity distribution (``zipf``/``bimodal``/``uniform``)."""

    kind: str
    alpha: float | None = None
    x_percent: float | None = None
    y_percent: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("zipf", "bimodal", "uniform"):
            raise ConfigurationError(
                f"popularity kind must be 'zipf', 'bimodal' or 'uniform', "
                f"got {self.kind!r}")
        if self.kind == "zipf" and self.alpha is None:
            raise ConfigurationError("zipf popularity needs alpha")
        if self.kind == "bimodal" and (self.x_percent is None
                                       or self.y_percent is None):
            raise ConfigurationError(
                "bimodal popularity needs x_percent and y_percent")

    @classmethod
    def from_distribution(cls,
                          popularity: PopularityDistribution
                          ) -> "PopularityConfig":
        if isinstance(popularity, ZipfPopularity):
            return cls(kind="zipf", alpha=popularity.alpha)
        if isinstance(popularity, BimodalPopularity):
            return cls(kind="bimodal", x_percent=popularity.x_percent,
                       y_percent=popularity.y_percent)
        if isinstance(popularity, UniformPopularity):
            return cls(kind="uniform")
        raise ConfigurationError(
            f"cannot express {type(popularity).__name__} declaratively; "
            f"supported: zipf, bimodal, uniform")

    def to_distribution(self, n_titles: int) -> PopularityDistribution:
        if self.kind == "zipf":
            return ZipfPopularity(alpha=self.alpha, n_titles=n_titles)
        if self.kind == "bimodal":
            return BimodalPopularity(x_percent=self.x_percent,
                                     y_percent=self.y_percent)
        return UniformPopularity()

    def to_dict(self) -> dict:
        payload = {"kind": self.kind}
        for name in ("alpha", "x_percent", "y_percent"):
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "PopularityConfig":
        _require_keys(payload, {f.name for f in dataclasses.fields(cls)},
                      where="popularity")
        return cls(**payload)


@dataclass(frozen=True)
class WorkloadConfig:
    """The stochastic session generator, declaratively."""

    arrival_rate: float
    mean_holding: float
    n_titles: int
    popularity: PopularityConfig

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ConfigurationError(
                f"arrival_rate must be > 0, got {self.arrival_rate!r}")
        if self.mean_holding <= 0:
            raise ConfigurationError(
                f"mean_holding must be > 0, got {self.mean_holding!r}")
        if self.n_titles < 1:
            raise ConfigurationError(
                f"n_titles must be >= 1, got {self.n_titles!r}")

    def to_workload(self) -> SessionWorkload:
        return SessionWorkload(
            arrival_rate=self.arrival_rate, mean_holding=self.mean_holding,
            n_titles=self.n_titles,
            popularity=self.popularity.to_distribution(self.n_titles))

    @classmethod
    def from_workload(cls, workload: SessionWorkload) -> "WorkloadConfig":
        return cls(arrival_rate=workload.arrival_rate,
                   mean_holding=workload.mean_holding,
                   n_titles=workload.n_titles,
                   popularity=PopularityConfig.from_distribution(
                       workload.popularity))

    def to_dict(self) -> dict:
        return {"arrival_rate": self.arrival_rate,
                "mean_holding": self.mean_holding,
                "n_titles": self.n_titles,
                "popularity": self.popularity.to_dict()}

    @classmethod
    def from_dict(cls, payload: dict) -> "WorkloadConfig":
        _require_keys(payload, {f.name for f in dataclasses.fields(cls)},
                      where="workload")
        payload = dict(payload)
        payload["popularity"] = PopularityConfig.from_dict(
            payload["popularity"])
        return cls(**payload)


@dataclass(frozen=True)
class PlacementConfig:
    """Adaptive placement / prefix-cache knobs."""

    decay: float = 0.5
    prefix_safety: float = 2.0
    prefix_floor: float = 1.0
    batch_window: float = 120.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.decay < 1.0:
            raise ConfigurationError(
                f"decay must be in [0, 1), got {self.decay!r}")
        if self.prefix_safety <= 0:
            raise ConfigurationError(
                f"prefix_safety must be > 0, got {self.prefix_safety!r}")
        if self.prefix_floor < 0:
            raise ConfigurationError(
                f"prefix_floor must be >= 0, got {self.prefix_floor!r}")
        if self.batch_window <= 0:
            raise ConfigurationError(
                f"batch_window must be > 0, got {self.batch_window!r}")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "PlacementConfig":
        _require_keys(payload, {f.name for f in dataclasses.fields(cls)},
                      where="placement")
        return cls(**payload)


@dataclass(frozen=True)
class ControlConfig:
    """Control-plane timing, bounds and feature flags.

    ``replan_latency`` is the simulated seconds an epoch replan spends
    *off the request path*: 0 keeps replans synchronous (the legacy
    semantics every named scenario uses), a positive value opens the
    window in which ``admit`` returns PENDING tickets that the
    replan-done event finalizes.
    """

    epoch: float = 600.0
    metrics_interval: float = 60.0
    replan_latency: float = 0.0
    backpressure: BackpressureConfig = field(
        default_factory=BackpressureConfig)

    def __post_init__(self) -> None:
        if self.epoch <= 0:
            raise ConfigurationError(
                f"epoch must be > 0, got {self.epoch!r}")
        if self.metrics_interval <= 0:
            raise ConfigurationError(
                f"metrics_interval must be > 0, got "
                f"{self.metrics_interval!r}")
        if self.replan_latency < 0:
            raise ConfigurationError(
                f"replan_latency must be >= 0, got {self.replan_latency!r}")
        if self.replan_latency >= self.epoch:
            raise ConfigurationError(
                f"replan_latency must be < epoch, got "
                f"{self.replan_latency!r} >= {self.epoch!r}")

    def to_dict(self) -> dict:
        return {"epoch": self.epoch,
                "metrics_interval": self.metrics_interval,
                "replan_latency": self.replan_latency,
                "backpressure": dataclasses.asdict(self.backpressure)}

    @classmethod
    def from_dict(cls, payload: dict) -> "ControlConfig":
        _require_keys(payload, {f.name for f in dataclasses.fields(cls)},
                      where="control")
        payload = dict(payload)
        if "backpressure" in payload:
            bp = payload["backpressure"]
            _require_keys(
                bp, {f.name for f in dataclasses.fields(BackpressureConfig)},
                where="control.backpressure")
            payload["backpressure"] = BackpressureConfig(**bp)
        return cls(**payload)


@dataclass(frozen=True)
class TimelineConfig:
    """Scheduled mid-run happenings: faults, drift, surges, focuses."""

    failures: tuple[FailureEvent, ...] = ()
    drifts: tuple[DriftEvent, ...] = ()
    surges: tuple[SurgeEvent, ...] = ()
    focuses: tuple[FocusEvent, ...] = ()

    def to_dict(self) -> dict:
        return {
            "failures": [
                {"time": f.time, "kind": f.kind.value, "count": f.count,
                 "factor": f.factor} for f in self.failures],
            "drifts": [{"time": d.time, "shift": d.shift}
                       for d in self.drifts],
            "surges": [{"time": s.time, "factor": s.factor}
                       for s in self.surges],
            "focuses": [{"time": f.time, "title": f.title,
                         "weight": f.weight} for f in self.focuses],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TimelineConfig":
        _require_keys(payload, {"failures", "drifts", "surges", "focuses"},
                      where="timeline")
        failures = tuple(
            FailureEvent(time=f["time"], kind=FailureKind(f["kind"]),
                         count=f.get("count", 1), factor=f.get("factor", 1.0))
            for f in payload.get("failures", ()))
        drifts = tuple(DriftEvent(time=d["time"], shift=d["shift"])
                       for d in payload.get("drifts", ()))
        surges = tuple(SurgeEvent(time=s["time"], factor=s["factor"])
                       for s in payload.get("surges", ()))
        focuses = tuple(
            FocusEvent(time=f["time"], title=f["title"], weight=f["weight"])
            for f in payload.get("focuses", ()))
        return cls(failures=failures, drifts=drifts, surges=surges,
                   focuses=focuses)


@dataclass(frozen=True)
class RuntimeConfig:
    """Everything one service run needs, declaratively.

    The root of the tree; see the module docstring.  ``configuration``
    picks the serving mode ("none"/"buffer"/"cache"/"prefix"),
    ``device`` names the MEMS model from the catalog, and the
    sub-configs carry the rest.
    """

    configuration: str
    dram_budget: float
    horizon: float
    system: SystemConfig
    workload: WorkloadConfig
    control: ControlConfig = field(default_factory=ControlConfig)
    placement: PlacementConfig = field(default_factory=PlacementConfig)
    timeline: TimelineConfig = field(default_factory=TimelineConfig)
    device: str = "G3"
    seed: int = 0
    #: Session bookkeeping core ("objects" or "table"); see the legacy
    #: config's field of the same name.  Both cores produce the same
    #: metrics/events bytes, so this is purely a speed knob.
    session_core: str = "objects"

    def __post_init__(self) -> None:
        if self.session_core not in ("objects", "table"):
            raise ConfigurationError(
                f"session_core must be 'objects' or 'table', "
                f"got {self.session_core!r}")
        if self.configuration not in ("none", "buffer", "cache", "prefix"):
            raise ConfigurationError(
                f"configuration must be 'none', 'buffer', 'cache' or "
                f"'prefix', got {self.configuration!r}")
        if self.dram_budget < 0:
            raise ConfigurationError(
                f"dram_budget must be >= 0, got {self.dram_budget!r}")
        if self.horizon <= 0:
            raise ConfigurationError(
                f"horizon must be > 0, got {self.horizon!r}")
        if self.device not in _DEVICES:
            raise ConfigurationError(
                f"unknown device {self.device!r}; available: "
                f"{', '.join(_DEVICES)}")

    # -- Compilation to/from the imperative layer ------------------------

    def to_legacy(self) -> LegacyRuntimeConfig:
        """Compile to the engine's imperative config (exact)."""
        from repro.devices.catalog import MEMS_G3

        return LegacyRuntimeConfig(
            params=self.system.to_params(),
            dram_budget=self.dram_budget,
            workload=self.workload.to_workload(),
            horizon=self.horizon,
            epoch=self.control.epoch,
            metrics_interval=self.control.metrics_interval,
            configuration=self.configuration,
            device=MEMS_G3,
            placement_decay=self.placement.decay,
            failures=self.timeline.failures,
            drifts=self.timeline.drifts,
            surges=self.timeline.surges,
            focuses=self.timeline.focuses,
            prefix_safety=self.placement.prefix_safety,
            prefix_floor=self.placement.prefix_floor,
            batch_window=self.placement.batch_window,
            seed=self.seed,
            session_core=self.session_core)

    @classmethod
    def from_legacy(cls, legacy: LegacyRuntimeConfig, *,
                    control: ControlConfig | None = None) -> "RuntimeConfig":
        """Lift an imperative config into the declarative tree.

        Only configs expressible declaratively round-trip: the workload
        must carry a named popularity distribution and the device must
        be the catalog G3.  ``control`` optionally overrides the
        service-only knobs (replan latency, backpressure thresholds)
        that the legacy config has no spelling for.
        """
        from repro.devices.catalog import MEMS_G3

        if legacy.device is not MEMS_G3:
            raise ConfigurationError(
                "only the catalog G3 MEMS device is expressible "
                "declaratively")
        if control is None:
            control = ControlConfig(epoch=legacy.epoch,
                                    metrics_interval=legacy.metrics_interval)
        return cls(
            configuration=legacy.configuration,
            dram_budget=legacy.dram_budget,
            horizon=legacy.horizon,
            system=SystemConfig.from_params(legacy.params),
            workload=WorkloadConfig.from_workload(legacy.workload),
            control=control,
            placement=PlacementConfig(decay=legacy.placement_decay,
                                      prefix_safety=legacy.prefix_safety,
                                      prefix_floor=legacy.prefix_floor,
                                      batch_window=legacy.batch_window),
            timeline=TimelineConfig(failures=legacy.failures,
                                    drifts=legacy.drifts,
                                    surges=legacy.surges,
                                    focuses=legacy.focuses),
            seed=legacy.seed,
            session_core=legacy.session_core)

    # -- Serialisation ----------------------------------------------------

    def to_dict(self) -> dict:
        payload = {
            "schema": CONFIG_SCHEMA_VERSION,
            "configuration": self.configuration,
            "dram_budget": self.dram_budget,
            "horizon": self.horizon,
            "seed": self.seed,
            "device": self.device,
            "system": self.system.to_dict(),
            "workload": self.workload.to_dict(),
            "control": self.control.to_dict(),
            "placement": self.placement.to_dict(),
            "timeline": self.timeline.to_dict(),
        }
        # Emitted only when set, so existing config files stay stable.
        if self.session_core != "objects":
            payload["session_core"] = self.session_core
        return payload

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "RuntimeConfig":
        if payload.get("schema") != CONFIG_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported config schema {payload.get('schema')!r}; "
                f"expected {CONFIG_SCHEMA_VERSION}")
        known = {"schema", "configuration", "dram_budget", "horizon",
                 "seed", "device", "system", "workload", "control",
                 "placement", "timeline", "session_core"}
        _require_keys(payload, known, where="runtime config")
        for required in ("configuration", "dram_budget", "horizon",
                         "system", "workload"):
            if required not in payload:
                raise ConfigurationError(
                    f"runtime config is missing {required!r}")
        return cls(
            configuration=payload["configuration"],
            dram_budget=payload["dram_budget"],
            horizon=payload["horizon"],
            seed=payload.get("seed", 0),
            device=payload.get("device", "G3"),
            system=SystemConfig.from_dict(payload["system"]),
            workload=WorkloadConfig.from_dict(payload["workload"]),
            control=ControlConfig.from_dict(payload.get("control", {})),
            placement=PlacementConfig.from_dict(payload.get("placement", {})),
            timeline=TimelineConfig.from_dict(payload.get("timeline", {})),
            session_core=payload.get("session_core", "objects"),
        )

    @classmethod
    def from_json(cls, text: str) -> "RuntimeConfig":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"runtime config is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"runtime config must be a JSON object, got "
                f"{type(payload).__name__}")
        return cls.from_dict(payload)

    def replace(self, **changes: object) -> "RuntimeConfig":
        """Return a copy with the given top-level fields replaced."""
        return dataclasses.replace(self, **changes)
