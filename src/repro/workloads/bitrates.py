"""Media classes and their bit-rates.

Section 5 of the paper anchors its sweeps on four media classes, chosen
so that the 300 MB/s FutureDisk supports "tens of high-definition
streams ... more than a hundred compressed MPEG2 (DVD quality) streams
at 1 MB/s, or a thousand DivX (MPEG4) streams at 100 KB/s, or even tens
of thousands of MP3 audio at a bit-rate of 10 KB/s".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import KB, MB


@dataclass(frozen=True)
class MediaType:
    """One media class: a name, a bit-rate, and a typical duration."""

    name: str
    #: Average bit-rate in bytes/second.
    bit_rate: float
    #: Typical title duration in seconds (used to size catalog titles).
    typical_duration: float

    def __post_init__(self) -> None:
        if self.bit_rate <= 0:
            raise ConfigurationError(
                f"bit_rate must be > 0, got {self.bit_rate!r}")
        if self.typical_duration <= 0:
            raise ConfigurationError(
                f"typical_duration must be > 0, got {self.typical_duration!r}")

    @property
    def typical_size(self) -> float:
        """Bytes of a typical title."""
        return self.bit_rate * self.typical_duration


#: The paper's four media classes (Figure 6 legend).
MP3 = MediaType(name="mp3", bit_rate=10 * KB, typical_duration=4 * 60)
DIVX = MediaType(name="DivX", bit_rate=100 * KB, typical_duration=100 * 60)
DVD = MediaType(name="DVD", bit_rate=1 * MB, typical_duration=120 * 60)
HDTV = MediaType(name="HDTV", bit_rate=10 * MB, typical_duration=60 * 60)

MEDIA_TYPES: tuple[MediaType, ...] = (MP3, DIVX, DVD, HDTV)

_BY_NAME = {m.name.lower(): m for m in MEDIA_TYPES}


def media_type_by_name(name: str) -> MediaType:
    """Look up one of the paper's media classes by (case-insensitive) name."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown media type {name!r}; known: "
            f"{sorted(_BY_NAME)}") from None


def average_bit_rate(mix: dict[MediaType, int]) -> float:
    """Population-average bit-rate B̄ of a mixed stream population.

    The analytical model is formulated for the average bit-rate of the
    serviced streams (Table 2); a mixed population enters through this
    average (the paper's CBR simplification).
    """
    if not mix:
        raise ConfigurationError("mix must not be empty")
    total_streams = 0
    total_rate = 0.0
    for media, count in mix.items():
        if count < 0:
            raise ConfigurationError(
                f"stream counts must be >= 0, got {count!r} for {media.name}")
        total_streams += count
        total_rate += count * media.bit_rate
    if total_streams == 0:
        raise ConfigurationError("mix must contain at least one stream")
    return total_rate / total_streams
