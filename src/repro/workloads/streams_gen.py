"""Stream-set and content-catalog construction.

A *catalog* is the set of titles a server stores (whose total size is
the paper's ``Size_disk``); a *stream set* is a concrete population of
concurrent playback sessions over those titles.  These builders feed
the examples and the cache-placement logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.bitrates import MediaType


@dataclass(frozen=True)
class Title:
    """One piece of content in the catalog."""

    title_id: int
    media: MediaType
    #: Size on disk, bytes.
    size: float
    #: Popularity rank, 0 = most popular.
    rank: int

    def __post_init__(self) -> None:
        if self.title_id < 0:
            raise ConfigurationError(
                f"title_id must be >= 0, got {self.title_id!r}")
        if self.size <= 0:
            raise ConfigurationError(f"size must be > 0, got {self.size!r}")
        if self.rank < 0:
            raise ConfigurationError(f"rank must be >= 0, got {self.rank!r}")

    @property
    def duration(self) -> float:
        """Playback duration in seconds at the media bit-rate."""
        return self.size / self.media.bit_rate


def make_catalog(media: MediaType, *, n_titles: int,
                 total_size: float | None = None,
                 size_jitter: float = 0.2, seed: int = 0) -> list[Title]:
    """Build a catalog of ``n_titles`` titles of one media class.

    Title sizes are the media's typical size with uniform +/-
    ``size_jitter`` variation, then rescaled so the catalog totals
    ``total_size`` when given (this pins the paper's ``Size_disk``).
    Ranks follow title order (0 is most popular).
    """
    if n_titles < 1:
        raise ConfigurationError(f"n_titles must be >= 1, got {n_titles!r}")
    if not 0 <= size_jitter < 1:
        raise ConfigurationError(
            f"size_jitter must be in [0, 1), got {size_jitter!r}")
    rng = np.random.default_rng(seed)
    sizes = media.typical_size * (
        1.0 + size_jitter * (2.0 * rng.random(n_titles) - 1.0))
    if total_size is not None:
        if total_size <= 0:
            raise ConfigurationError(
                f"total_size must be > 0, got {total_size!r}")
        sizes *= total_size / sizes.sum()
    return [Title(title_id=i, media=media, size=float(sizes[i]), rank=i)
            for i in range(n_titles)]


@dataclass
class StreamSet:
    """A concurrent stream population over a catalog."""

    catalog: list[Title]
    #: Title index requested by each stream.
    requests: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.catalog:
            raise ConfigurationError("catalog must not be empty")
        for r in self.requests:
            if not 0 <= r < len(self.catalog):
                raise ConfigurationError(
                    f"request {r!r} outside catalog of {len(self.catalog)}")

    @property
    def n_streams(self) -> int:
        return len(self.requests)

    @property
    def catalog_size(self) -> float:
        """Total catalog bytes (the paper's ``Size_disk``)."""
        return sum(t.size for t in self.catalog)

    @property
    def average_bit_rate(self) -> float:
        """Average bit-rate B̄ of the streaming population."""
        if not self.requests:
            raise ConfigurationError("no streams in the set")
        rates = [self.catalog[r].media.bit_rate for r in self.requests]
        return sum(rates) / len(rates)

    def streams_hitting_prefix(self, cached_titles: int) -> int:
        """Streams whose title is among the ``cached_titles`` top ranks.

        This is the *empirical* cache population ``n`` for a cache that
        holds the most popular ``cached_titles`` titles.
        """
        if cached_titles < 0:
            raise ConfigurationError(
                f"cached_titles must be >= 0, got {cached_titles!r}")
        ranks = {t.title_id: t.rank for t in self.catalog}
        return sum(1 for r in self.requests if ranks[r] < cached_titles)

    def titles_fitting(self, capacity: float) -> int:
        """How many top-ranked titles fit in ``capacity`` bytes (greedy)."""
        if capacity < 0:
            raise ConfigurationError(
                f"capacity must be >= 0, got {capacity!r}")
        by_rank = sorted(self.catalog, key=lambda t: t.rank)
        used = 0.0
        count = 0
        for title in by_rank:
            if used + title.size > capacity:
                break
            used += title.size
            count += 1
        return count
