"""Workload models: media bit-rates, popularity sampling, stream sets.

* :mod:`~repro.workloads.bitrates` — the four media classes the paper
  sweeps (mp3, DivX, DVD, HDTV) and helpers for mixed populations.
* :mod:`~repro.workloads.popularity_gen` — samplers that draw request
  sequences from the analytical popularity distributions, for the
  empirical hit-rate validation.
* :mod:`~repro.workloads.streams_gen` — stream-set construction
  (titles, lengths, placements) used by the examples and simulator.
* :mod:`~repro.workloads.vbr` — variable-bit-rate streams modelled as
  CBR plus a cushion (footnote 1 of the paper).
"""

from repro.workloads.bitrates import (
    MEDIA_TYPES,
    MediaType,
    average_bit_rate,
    media_type_by_name,
)
from repro.workloads.popularity_gen import (
    RequestSampler,
    empirical_hit_rate,
    sample_title_requests,
)
from repro.workloads.streams_gen import StreamSet, Title, make_catalog
from repro.workloads.vbr import VbrTrace, cushion_for_trace, make_vbr_trace
from repro.workloads.arrivals import (
    BlockingStats,
    erlang_b,
    simulate_blocking,
)

__all__ = [
    "BlockingStats",
    "erlang_b",
    "simulate_blocking",
    "MEDIA_TYPES",
    "MediaType",
    "average_bit_rate",
    "media_type_by_name",
    "RequestSampler",
    "empirical_hit_rate",
    "sample_title_requests",
    "StreamSet",
    "Title",
    "make_catalog",
    "VbrTrace",
    "cushion_for_trace",
    "make_vbr_trace",
]
