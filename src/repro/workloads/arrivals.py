"""Session arrivals and admission blocking.

The paper sizes servers for a fixed concurrent population; a server
operator also needs to know how often arriving viewers are *turned
away* when the admission controller is full.  This module provides the
classic loss-system machinery:

* :func:`erlang_b` — the Erlang-B blocking probability for a
  ``capacity``-server loss system at a given offered load, computed by
  the numerically stable recurrence;
* :func:`simulate_blocking` — an event simulation of Poisson session
  arrivals with exponentially distributed holding (viewing) times over
  an admission capacity, reporting the empirical blocking probability
  and occupancy statistics.

Together with :mod:`repro.core.capacity` (which converts DRAM budget
and device configuration into an admission capacity), this answers
questions like "how much blocking does adding a MEMS buffer remove at
the same DRAM budget?".
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


def erlang_b(offered_load: float, capacity: int) -> float:
    """Erlang-B blocking probability.

    ``offered_load`` is in Erlangs (arrival rate x mean holding time).
    Uses the recurrence ``B(0) = 1``,
    ``B(c) = a B(c-1) / (c + a B(c-1))``, which is stable for large
    capacities.
    """
    if offered_load < 0:
        raise ConfigurationError(
            f"offered_load must be >= 0, got {offered_load!r}")
    if capacity < 0:
        raise ConfigurationError(
            f"capacity must be >= 0, got {capacity!r}")
    blocking = 1.0
    for servers in range(1, capacity + 1):
        blocking = (offered_load * blocking
                    / (servers + offered_load * blocking))
    return blocking


def predicted_blocking(arrival_rate: float, mean_holding: float,
                       capacity: int) -> float:
    """Erlang-B prediction for a session workload against a capacity.

    Convenience wrapper used by the online runtime: the offered load is
    ``arrival_rate * mean_holding`` Erlangs.
    """
    if arrival_rate < 0:
        raise ConfigurationError(
            f"arrival_rate must be >= 0, got {arrival_rate!r}")
    if mean_holding <= 0:
        raise ConfigurationError(
            f"mean_holding must be > 0, got {mean_holding!r}")
    return erlang_b(arrival_rate * mean_holding, capacity)


@dataclass(frozen=True)
class BlockingStats:
    """Outcome of a blocking simulation."""

    arrivals: int
    blocked: int
    #: Time-averaged number of concurrent sessions.
    mean_occupancy: float
    #: Largest concurrent population observed.
    peak_occupancy: int
    #: Simulated horizon, seconds.
    horizon: float

    @property
    def blocking_probability(self) -> float:
        """Fraction of arrivals rejected."""
        if self.arrivals == 0:
            return 0.0
        return self.blocked / self.arrivals


def simulate_blocking(*, capacity: int, arrival_rate: float,
                      mean_holding: float, horizon: float,
                      seed: int = 0) -> BlockingStats:
    """Simulate a Poisson/exponential loss system over ``horizon`` seconds.

    ``capacity`` is the admission limit (e.g. from
    :func:`repro.core.capacity.streams_supported`); ``arrival_rate`` in
    sessions/second; ``mean_holding`` in seconds.  An arrival finding
    ``capacity`` sessions active is blocked and lost (no retries),
    matching the Erlang-B model.
    """
    if capacity < 0:
        raise ConfigurationError(f"capacity must be >= 0, got {capacity!r}")
    if arrival_rate <= 0:
        raise ConfigurationError(
            f"arrival_rate must be > 0, got {arrival_rate!r}")
    if mean_holding <= 0:
        raise ConfigurationError(
            f"mean_holding must be > 0, got {mean_holding!r}")
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be > 0, got {horizon!r}")

    rng = np.random.default_rng(seed)
    departures: list[float] = []  # min-heap of active session end times
    now = 0.0
    arrivals = 0
    blocked = 0
    occupancy_area = 0.0
    last_event = 0.0
    peak = 0
    while True:
        now += rng.exponential(1.0 / arrival_rate)
        if now >= horizon:
            break
        # Retire finished sessions (integrating occupancy over time).
        while departures and departures[0] <= now:
            end = heapq.heappop(departures)
            occupancy_area += len(departures) * 0.0  # heap already popped
            occupancy_area += (end - last_event) * (len(departures) + 1)
            last_event = end
        occupancy_area += (now - last_event) * len(departures)
        last_event = now
        arrivals += 1
        if len(departures) >= capacity:
            blocked += 1
            continue
        heapq.heappush(departures, now + rng.exponential(mean_holding))
        peak = max(peak, len(departures))
    # Drain the occupancy integral to the horizon.
    while departures and departures[0] <= horizon:
        end = heapq.heappop(departures)
        occupancy_area += (end - last_event) * (len(departures) + 1)
        last_event = end
    occupancy_area += (horizon - last_event) * len(departures)
    return BlockingStats(arrivals=arrivals, blocked=blocked,
                         mean_occupancy=occupancy_area / horizon,
                         peak_occupancy=peak, horizon=horizon)
