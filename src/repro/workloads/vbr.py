"""Variable-bit-rate streams as CBR plus a cushion.

Footnote 1 of the paper: "VBR can be modeled by CBR plus some memory
cushion for handling bit-rate variability [8]".  This module makes that
substitution concrete: a synthetic VBR trace (piecewise-constant rate
over fixed-length windows) is reduced to its long-run average rate plus
the *cushion* — the largest cumulative excess of actual consumption
over the average-rate drain — which is exactly the extra per-stream
DRAM a CBR schedule needs to absorb the variability without underflow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "VbrTrace",
    "cushion_for_trace",
    "make_vbr_trace",
    "vbr_buffer_requirement",
]


@dataclass(frozen=True)
class VbrTrace:
    """A piecewise-constant bit-rate trace."""

    #: Per-window consumption rates, bytes/second.
    rates: tuple[float, ...]
    #: Window length, seconds.
    window: float

    def __post_init__(self) -> None:
        if not self.rates:
            raise ConfigurationError("a trace needs at least one window")
        if any(r < 0 for r in self.rates):
            raise ConfigurationError("rates must be >= 0")
        if self.window <= 0:
            raise ConfigurationError(
                f"window must be > 0, got {self.window!r}")

    @property
    def duration(self) -> float:
        """Total trace length, seconds."""
        return len(self.rates) * self.window

    @property
    def average_rate(self) -> float:
        """Long-run average consumption rate, bytes/second."""
        return float(np.mean(self.rates))

    @property
    def peak_rate(self) -> float:
        """Largest windowed rate, bytes/second."""
        return float(np.max(self.rates))

    def cumulative_consumption(self) -> np.ndarray:
        """Bytes consumed by the end of each window."""
        return np.cumsum(np.asarray(self.rates) * self.window)


def make_vbr_trace(*, average_rate: float, n_windows: int = 600,
                   window: float = 1.0, burstiness: float = 0.3,
                   correlation: float = 0.9, seed: int = 0) -> VbrTrace:
    """Synthesize an MPEG-like VBR trace with a given long-run average.

    An AR(1) process (lag-1 ``correlation``) modulates the rate around
    ``average_rate`` with relative amplitude ``burstiness``; rates are
    clipped at zero and rescaled to hit the average exactly.  This
    mimics the scene-length correlation of compressed video without
    requiring proprietary traces.
    """
    if average_rate <= 0:
        raise ConfigurationError(
            f"average_rate must be > 0, got {average_rate!r}")
    if n_windows < 1:
        raise ConfigurationError(
            f"n_windows must be >= 1, got {n_windows!r}")
    if not 0 <= burstiness < 1:
        raise ConfigurationError(
            f"burstiness must be in [0, 1), got {burstiness!r}")
    if not 0 <= correlation < 1:
        raise ConfigurationError(
            f"correlation must be in [0, 1), got {correlation!r}")
    rng = np.random.default_rng(seed)
    noise = rng.standard_normal(n_windows)
    ar = np.empty(n_windows)
    ar[0] = noise[0]
    innovation_scale = np.sqrt(1.0 - correlation ** 2)
    for i in range(1, n_windows):
        ar[i] = correlation * ar[i - 1] + innovation_scale * noise[i]
    rates = average_rate * (1.0 + burstiness * ar)
    rates = np.clip(rates, 0.0, None)
    mean = rates.mean()
    if mean > 0:
        rates *= average_rate / mean
    return VbrTrace(rates=tuple(float(r) for r in rates), window=window)


def cushion_for_trace(trace: VbrTrace) -> float:
    """Extra DRAM (bytes) a CBR schedule needs for this VBR stream.

    With the server delivering at the trace's average rate, the stream
    buffer level walks ``delivered - consumed``; the cushion is the
    largest cumulative *deficit* of that walk — prefilling this many
    bytes guarantees no underflow over the whole trace.  A constant
    trace has zero cushion.
    """
    consumed = trace.cumulative_consumption()
    n = len(trace.rates)
    delivered = trace.average_rate * trace.window * np.arange(1, n + 1)
    deficit = consumed - delivered
    return float(max(np.max(deficit), 0.0))


def vbr_buffer_requirement(cbr_buffer: float, trace: VbrTrace) -> float:
    """Per-stream DRAM for a VBR stream: CBR share plus the cushion.

    ``cbr_buffer`` is the Theorem 1/2/3/4 result evaluated at the
    trace's average rate.
    """
    if cbr_buffer < 0:
        raise ConfigurationError(
            f"cbr_buffer must be >= 0, got {cbr_buffer!r}")
    return cbr_buffer + cushion_for_trace(trace)
