"""Empirical request sampling from popularity distributions.

The analytical hit rate (Eq. 11) is an expectation; these samplers draw
concrete title-request sequences so that tests and examples can verify
the expectation empirically and the simulator can replay realistic
request mixes.
"""

from __future__ import annotations

import numpy as np

from repro.core.popularity import (
    BimodalPopularity,
    PopularityDistribution,
    UniformPopularity,
    ZipfPopularity,
)
from repro.errors import ConfigurationError


class RequestSampler:
    """Draws title indices (0-based, by popularity rank) from a distribution.

    Titles are ordered most-popular-first, matching the convention of
    :meth:`~repro.core.popularity.PopularityDistribution.hit_rate`
    (caching a fraction ``p`` means caching titles ``0 .. p*n-1``).
    """

    def __init__(self, distribution: PopularityDistribution, n_titles: int,
                 *, seed: int = 0) -> None:
        if n_titles < 1:
            raise ConfigurationError(
                f"n_titles must be >= 1, got {n_titles!r}")
        self.distribution = distribution
        self.n_titles = n_titles
        self._rng = np.random.default_rng(seed)
        self._weights = self._title_weights()

    def _title_weights(self) -> np.ndarray:
        """Per-title access probabilities implied by the distribution."""
        dist = self.distribution
        n = self.n_titles
        if isinstance(dist, ZipfPopularity):
            if dist.n_titles != n:
                raise ConfigurationError(
                    f"ZipfPopularity was built for {dist.n_titles} titles, "
                    f"sampler asked for {n}")
            ranks = np.arange(1, n + 1, dtype=float)
            weights = ranks ** (-dist.alpha)
        elif isinstance(dist, BimodalPopularity):
            n_popular = max(1, int(round(dist.x_percent / 100.0 * n)))
            n_popular = min(n_popular, n)
            weights = np.empty(n)
            y = dist.y_percent / 100.0
            weights[:n_popular] = y / n_popular
            if n_popular < n:
                weights[n_popular:] = (1.0 - y) / (n - n_popular)
            else:  # degenerate: every title is "popular"
                weights[:] = 1.0 / n
        elif isinstance(dist, UniformPopularity):
            weights = np.ones(n)
        else:
            # Generic fallback: differentiate the hit-rate curve.
            edges = np.linspace(0.0, 1.0, n + 1)
            cumulative = np.array([dist.hit_rate(e) for e in edges])
            weights = np.diff(cumulative)
            weights = np.clip(weights, 0.0, None)
        total = weights.sum()
        if total <= 0:
            raise ConfigurationError(
                "distribution yields no positive title weights")
        return weights / total

    @property
    def title_weights(self) -> np.ndarray:
        """Per-title access probabilities (most popular first)."""
        return self._weights.copy()

    def sample(self, n_requests: int) -> np.ndarray:
        """Draw ``n_requests`` title indices."""
        if n_requests < 0:
            raise ConfigurationError(
                f"n_requests must be >= 0, got {n_requests!r}")
        return self._rng.choice(self.n_titles, size=n_requests,
                                p=self._weights)


def sample_title_requests(distribution: PopularityDistribution,
                          n_titles: int, n_requests: int, *,
                          seed: int = 0) -> np.ndarray:
    """One-shot convenience around :class:`RequestSampler`."""
    return RequestSampler(distribution, n_titles, seed=seed).sample(n_requests)


def empirical_hit_rate(distribution: PopularityDistribution, n_titles: int,
                       cached_fraction: float, n_requests: int = 100_000, *,
                       seed: int = 0) -> float:
    """Monte-Carlo estimate of Eq. 11's hit rate.

    Draws requests and counts those landing in the cached most-popular
    prefix.  Converges to ``distribution.hit_rate(cached_fraction)`` up
    to the title-count quantisation of the prefix.
    """
    if not 0 <= cached_fraction <= 1:
        raise ConfigurationError(
            f"cached_fraction must be in [0, 1], got {cached_fraction!r}")
    if n_requests < 1:
        raise ConfigurationError(
            f"n_requests must be >= 1, got {n_requests!r}")
    sampler = RequestSampler(distribution, n_titles, seed=seed)
    requests = sampler.sample(n_requests)
    n_cached = int(round(cached_fraction * n_titles))
    return float(np.mean(requests < n_cached))
