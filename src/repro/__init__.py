"""Reproduction of *MEMS-based Disk Buffer for Streaming Media Servers*.

Rangaswami, Dimitrijević, Chang, Schauser — ICDE 2003 (UCSB).

The paper analyses placing MEMS-based storage between DRAM and the disk
of a streaming-media server, as a speed-matching **buffer** or as a
popular-content **cache**, under time-cycle (QPMS) real-time
scheduling.  This package implements:

* first-principles device models (disk, MEMS, DRAM, multi-device MEMS
  banks) — :mod:`repro.devices`;
* the complete analytical framework (Theorems 1-4, the cost models,
  the X:Y popularity/hit-rate map) — :mod:`repro.core`;
* the unified, memoized configuration planner every consumer solves
  through — :mod:`repro.planner`;
* schedulers and admission control — :mod:`repro.scheduling`;
* a discrete-event simulator that executes the schedules and verifies
  the analytical bounds — :mod:`repro.simulation`;
* workload generators — :mod:`repro.workloads`;
* runners for every table and figure of the paper's evaluation —
  :mod:`repro.experiments` (CLI: ``mems-repro``).

Quickstart::

    from repro import SystemParameters, design_mems_buffer

    params = SystemParameters.table3_default(n_streams=1000,
                                             bit_rate=100_000, k=2)
    design = design_mems_buffer(params)
    print(design.total_dram)          # DRAM with the MEMS buffer
"""

from repro.errors import (
    AdmissionError,
    CapacityError,
    ConfigurationError,
    ReproError,
    SchedulingError,
    SimulationError,
)
from repro.core import (
    BimodalPopularity,
    BufferCostComparison,
    BufferDesign,
    CacheDesign,
    CachePolicy,
    SystemParameters,
    UniformPopularity,
    ZipfPopularity,
    compare_buffer_costs,
    design_mems_buffer,
    design_mems_cache,
    max_streams_with_buffer,
    max_streams_with_cache,
    max_streams_without_mems,
    min_buffer_direct,
)
from repro.devices import (
    DiskDrive,
    Dram,
    MemsBank,
    MemsDevice,
    BankPolicy,
    FUTURE_DISK_2007,
    MEMS_G3,
    DRAM_2007,
)
from repro.planner import (
    Configuration,
    ConfigurationKind,
    Plan,
    PlanCache,
    Planner,
    default_planner,
)
from repro.simulation import ServerConfig, StreamingServer

__version__ = "1.0.0"

__all__ = [
    "AdmissionError",
    "CapacityError",
    "ConfigurationError",
    "ReproError",
    "SchedulingError",
    "SimulationError",
    "BimodalPopularity",
    "BufferCostComparison",
    "BufferDesign",
    "CacheDesign",
    "CachePolicy",
    "SystemParameters",
    "UniformPopularity",
    "ZipfPopularity",
    "compare_buffer_costs",
    "design_mems_buffer",
    "design_mems_cache",
    "max_streams_with_buffer",
    "max_streams_with_cache",
    "max_streams_without_mems",
    "min_buffer_direct",
    "DiskDrive",
    "Dram",
    "MemsBank",
    "MemsDevice",
    "BankPolicy",
    "FUTURE_DISK_2007",
    "MEMS_G3",
    "DRAM_2007",
    "Configuration",
    "ConfigurationKind",
    "Plan",
    "PlanCache",
    "Planner",
    "default_planner",
    "ServerConfig",
    "StreamingServer",
    "__version__",
]
