"""Epoch controller for the prefix-cache placement mode.

The prefix-mode analogue of
:class:`repro.runtime.placement.AdaptivePlacement`: it observes
admissions, ages per-title scores by an EWMA, and at each epoch

1. fits an :class:`~repro.core.popularity.EmpiricalPopularity` to the
   observed traffic;
2. re-sizes the startup-covering *base* prefix against the live
   IO-stream population (:func:`repro.vod.prefix.base_prefix_bytes`) —
   heavier tail load means a longer disk cycle and therefore longer
   prefixes;
3. re-runs :class:`repro.vod.replacement.AdaptiveReplacement` under
   both bank policies (replication keeps one copy per device; striping
   aggregates capacity) and keeps whichever feasible policy needs less
   DRAM at the live population, solved through the unified planner as
   a PREFIX :class:`~repro.planner.configuration.Configuration`;
4. pre-solves the admission capacity (in IO streams) with the previous
   epoch's capacity as a warm-start hint, so the admission controller's
   post-``reconfigure`` query replays from the planner cache.

The diff between the old and new allocations is reported as
promotions, demotions and resizes — the migration traffic an operator
would watch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cache_model import CachePolicy
from repro.core.parameters import SystemParameters
from repro.core.popularity import EmpiricalPopularity
from repro.errors import ConfigurationError
from repro.planner.batch import demand_at
from repro.planner.configuration import Configuration
from repro.planner.solver import Planner, default_planner

from repro.vod.prefix import PrefixAllocation, base_prefix_bytes
from repro.vod.replacement import AdaptiveReplacement

#: Base-prefix sizing never assumes fewer concurrent IO streams than
#: this: a cold server still sizes for a plausible startup population.
_MIN_SIZING_POPULATION = 16.0


@dataclass(frozen=True)
class PrefixDecision:
    """Outcome of one epoch's prefix re-planning."""

    policy: CachePolicy
    #: The per-title residency chosen for the coming epoch.
    allocation: PrefixAllocation
    #: Popularity model fitted to the observed traffic.
    popularity: EmpiricalPopularity
    #: Expected byte share served from MEMS (the demand model's ``h``).
    mems_fraction: float
    #: The planner spelling of the demand model, in IO-stream units
    #: (``fanout=1``: the admission controller counts streams).
    spec: Configuration
    #: Whether the chosen policy is schedulable at the live population
    #: (False means the runtime must shed streams and re-plan).
    feasible: bool
    #: Titles whose prefixes were staged onto the bank this epoch.
    promoted: tuple[int, ...]
    #: Titles whose prefixes were evicted this epoch.
    demoted: tuple[int, ...]
    #: Titles resident across the epoch whose prefix length changed.
    resized: tuple[int, ...]
    #: Admission capacity (IO streams) under the new model, pre-solved
    #: with the previous epoch's capacity as a warm-start hint; None
    #: when the caller passed no ``dram_budget``.
    capacity: int | None = None

    # Aliases matching PlacementDecision, so the runtime's migration
    # bookkeeping handles either decision type unchanged.

    @property
    def migrations_in(self) -> tuple[int, ...]:
        return self.promoted

    @property
    def migrations_out(self) -> tuple[int, ...]:
        return self.demoted

    @property
    def cached_titles(self) -> tuple[int, ...]:
        return self.allocation.resident_titles


class PrefixPlacement:
    """Tracks observed popularity and re-plans the resident prefixes."""

    def __init__(self, n_titles: int, *, decay: float = 0.5,
                 prior_weights: np.ndarray | None = None,
                 prior_strength: float = 10.0,
                 safety: float = 2.0, floor_seconds: float = 1.0,
                 window_cap: float = 120.0, hysteresis: float = 0.2,
                 planner: Planner | None = None) -> None:
        if n_titles < 1:
            raise ConfigurationError(
                f"n_titles must be >= 1, got {n_titles!r}")
        if not 0.0 <= decay < 1.0:
            raise ConfigurationError(
                f"decay must be in [0, 1), got {decay!r}")
        if prior_strength < 0:
            raise ConfigurationError(
                f"prior_strength must be >= 0, got {prior_strength!r}")
        if safety <= 0:
            raise ConfigurationError(f"safety must be > 0, got {safety!r}")
        if floor_seconds < 0:
            raise ConfigurationError(
                f"floor_seconds must be >= 0, got {floor_seconds!r}")
        if window_cap <= 0:
            raise ConfigurationError(
                f"window_cap must be > 0, got {window_cap!r}")
        self.n_titles = n_titles
        self.decay = decay
        self.safety = safety
        self.floor_seconds = floor_seconds
        self.window_cap = window_cap
        self._scores = np.zeros(n_titles)
        if prior_weights is not None:
            prior = np.asarray(prior_weights, dtype=float)
            if prior.shape != (n_titles,):
                raise ConfigurationError(
                    f"prior_weights must have shape ({n_titles},), "
                    f"got {prior.shape}")
            self._scores += prior_strength * prior
        self._epoch_counts = np.zeros(n_titles)
        self._replacement = AdaptiveReplacement(hysteresis=hysteresis)
        self._allocation: PrefixAllocation | None = None
        self._bit_rate: float | None = None
        self._planner = planner if planner is not None else default_planner()
        # Last epoch's capacity, threaded into the next epoch's solve as
        # a warm-start hint (every epoch's h is fresh, so the planner's
        # per-axis state never matches without it).
        self._capacity_hint: int | None = None

    @property
    def planner(self) -> Planner:
        """The planner this placement solves its epoch designs through."""
        return self._planner

    @property
    def allocation(self) -> PrefixAllocation | None:
        """The residency chosen by the last :meth:`replan` (None cold)."""
        return self._allocation

    @property
    def resident_titles(self) -> tuple[int, ...]:
        """Titles with a resident prefix after the last replan."""
        if self._allocation is None:
            return ()
        return self._allocation.resident_titles

    def is_resident(self, title: int) -> bool:
        """True when ``title`` has any prefix on the bank."""
        if not 0 <= title < self.n_titles:
            raise ConfigurationError(
                f"title must be in [0, {self.n_titles}), got {title!r}")
        if self._allocation is None:
            return False
        return self._allocation.prefix_bytes[title] > 0

    def window_seconds(self, title: int) -> float:
        """Batching window of ``title``: its prefix's playback duration."""
        if self._allocation is None or self._bit_rate is None:
            return 0.0
        return self._allocation.window_seconds(title, self._bit_rate)

    def observe(self, title: int) -> None:
        """Record one admission for ``title`` in the current epoch."""
        if not 0 <= title < self.n_titles:
            raise ConfigurationError(
                f"title must be in [0, {self.n_titles}), got {title!r}")
        self._epoch_counts[title] += 1.0

    def observe_block(self, titles: np.ndarray) -> None:
        """Record one arrival per entry of ``titles``, in one operation.

        The vectorized twin of :meth:`observe` for the table core's
        bulk paths; per-title counts are order-insensitive within an
        epoch, so a whole window lands as one scatter-add.
        """
        titles = np.asarray(titles)
        if len(titles) and not (0 <= int(titles.min())
                                and int(titles.max()) < self.n_titles):
            raise ConfigurationError(
                f"titles must be in [0, {self.n_titles})")
        np.add.at(self._epoch_counts, titles, 1.0)

    def scores(self) -> np.ndarray:
        """Aged per-title scores including the in-flight epoch."""
        return self.decay * self._scores + self._epoch_counts

    def _weights(self) -> np.ndarray:
        """Observed per-title access probabilities (uniform when cold)."""
        total = float(self._scores.sum())
        if total <= 0:
            return np.full(self.n_titles, 1.0 / self.n_titles)
        return self._scores / total

    def replan(self, params: SystemParameters, n_io_active: float, *,
               dram_budget: float | None = None) -> PrefixDecision:
        """Close the epoch: age scores, re-allocate prefixes, re-solve.

        ``params.k`` / ``params.size_mems`` reflect the *surviving*
        bank; ``n_io_active`` is the live **IO-stream** population (not
        sessions — batched joins ride for free).  When ``dram_budget``
        is given the admission capacity under the chosen model is
        pre-solved here, hinted by the previous epoch's capacity.
        """
        if n_io_active < 0:
            raise ConfigurationError(
                f"n_io_active must be >= 0, got {n_io_active!r}")
        if params.size_mems is None or params.size_disk is None:
            raise ConfigurationError(
                "prefix placement needs finite size_mems and size_disk")
        self._scores = self.scores()
        self._epoch_counts = np.zeros(self.n_titles)
        popularity = EmpiricalPopularity.from_counts(self._scores)
        weights = self._weights()

        title_bytes = params.size_disk / self.n_titles
        max_bytes = min(self.window_cap * params.bit_rate, title_bytes)
        population = max(float(n_io_active), _MIN_SIZING_POPULATION)
        base = min(base_prefix_bytes(params, population=population,
                                     safety=self.safety,
                                     floor=self.floor_seconds), max_bytes)
        previous = self._allocation
        resident = previous.resident_titles if previous is not None else ()

        at_population = params.replace(n_streams=n_io_active)
        # Build both bank policies' candidate allocations (and their
        # planner spellings), then judge them in one batch-demand
        # evaluation — bit-identical to the scalar solves, with ``inf``
        # marking an infeasible candidate.  No candidate pays a scalar
        # planner solve; the winner's spec is what the admission
        # controller reconfigures onto.
        slates: list[tuple[CachePolicy, PrefixAllocation, float,
                           Configuration]] = []
        for policy in (CachePolicy.REPLICATED, CachePolicy.STRIPED):
            budget = (params.k * params.size_mems
                      if policy is CachePolicy.STRIPED else params.size_mems)
            allocation = self._replacement.rebalance(
                self._scores, base_bytes=base, max_bytes=max_bytes,
                budget_bytes=budget, title_bytes=title_bytes,
                resident=resident)
            fraction = allocation.mems_fraction(weights)
            slates.append((policy, allocation, fraction,
                           Configuration.prefix(policy, fraction)))
        demands = demand_at([(at_population, spec)
                             for _, _, _, spec in slates], n_io_active)
        best: tuple[CachePolicy, PrefixAllocation, float,
                    Configuration] | None = None
        best_dram = float("inf")
        for slate, dram in zip(slates, demands):
            if dram < best_dram:
                best = slate
                best_dram = float(dram)
        feasible = best is not None
        if best is None:
            # Neither policy carries the live streams; report under the
            # replicated geometry (rebalance is deterministic, so the
            # replicated slate is exactly what a fresh rebalance under
            # the replicated budget would build) so the caller can shed
            # and re-plan.
            best = slates[0]
        policy, allocation, fraction, spec = best

        capacity: int | None = None
        if dram_budget is not None:
            capacity = self._planner.capacity(params, spec, dram_budget,
                                              hint=self._capacity_hint)
            self._capacity_hint = capacity

        promoted, demoted, resized = _diff(previous, allocation)
        self._allocation = allocation
        self._bit_rate = params.bit_rate
        return PrefixDecision(policy=policy, allocation=allocation,
                              popularity=popularity,
                              mems_fraction=fraction, spec=spec,
                              feasible=feasible, promoted=promoted,
                              demoted=demoted, resized=resized,
                              capacity=capacity)


def _diff(previous: PrefixAllocation | None, current: PrefixAllocation
          ) -> tuple[tuple[int, ...], tuple[int, ...], tuple[int, ...]]:
    """Promotions, demotions and resizes between two allocations."""
    old = set(previous.resident_titles) if previous is not None else set()
    new = set(current.resident_titles)
    promoted = tuple(sorted(new - old))
    demoted = tuple(sorted(old - new))
    resized: list[int] = []
    if previous is not None:
        tolerance = 1e-9 * current.title_bytes
        for title in sorted(old & new):
            if abs(previous.prefix_bytes[title]
                   - current.prefix_bytes[title]) > tolerance:
                resized.append(title)
    return promoted, demoted, tuple(resized)
