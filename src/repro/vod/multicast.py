"""Multicast/batching: many sessions, one IO stream.

A flash crowd on one title does not need one disk stream per viewer.
With the title's prefix resident on MEMS, a session arriving within the
prefix's *playback window* of an already-open stream can start
instantly from MEMS, catch up, and then share that stream's tail IO —
the classic prefix-assisted batching of the multicast VoD literature.

:class:`MulticastBatcher` tracks the open :class:`SharedStream` per
title and the session membership of each stream.  The runtime charges
admission control (and therefore the planner) *once per stream*:
batched joins consume no new IO capacity, which is exactly the
sessions-per-IO-stream economics the ``flash_crowd`` scenario and its
benchmark gate measure.

All state is insertion-ordered and fed with explicit event times from
the simulation clock, so a seeded run reproduces exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, require


@dataclass(slots=True)
class SharedStream:
    """One IO stream and the sessions fanned out from it."""

    stream_id: int
    title: int
    #: Simulation time the stream (and its batching window) opened.
    opened_at: float
    #: Batching window in seconds: sessions arriving before
    #: ``opened_at + window`` join instead of opening a new stream.
    window: float
    #: Member sessions, in join order (the opener first).
    session_ids: list[int] = field(default_factory=list)

    @property
    def n_sessions(self) -> int:
        return len(self.session_ids)

    def accepts(self, now: float) -> bool:
        """True while the batching window is still open."""
        return now - self.opened_at <= self.window


class MulticastBatcher:
    """Shared-stream bookkeeping for one runtime.

    The batcher never decides *admission* — the runtime asks it only
    "is there an open stream this session can join?", and otherwise
    runs the admission check for a brand-new stream.  Cumulative
    counters (`sessions_total` / `streams_total`) survive stream
    closure, so the end-of-run fanout ratio covers the whole run.
    """

    def __init__(self) -> None:
        self._streams: dict[int, SharedStream] = {}
        #: Newest stream per title (the only one still joinable).
        self._open_by_title: dict[int, int] = {}
        self._next_stream_id = 0
        self.sessions_total = 0
        self.streams_total = 0

    # -- Introspection -------------------------------------------------------

    @property
    def active_streams(self) -> int:
        """IO streams currently open (what admission control counts)."""
        return len(self._streams)

    @property
    def active_sessions(self) -> int:
        """Sessions currently riding any open stream."""
        return sum(s.n_sessions for s in self._streams.values())

    @property
    def fanout(self) -> float:
        """Cumulative sessions-per-IO-stream ratio over the run."""
        if self.streams_total == 0:
            return 0.0
        return self.sessions_total / self.streams_total

    def has_stream(self, stream_id: int) -> bool:
        return stream_id in self._streams

    def stream(self, stream_id: int) -> SharedStream:
        try:
            return self._streams[stream_id]
        except KeyError:
            raise ConfigurationError(
                f"no open stream {stream_id!r}") from None

    # -- Lifecycle -----------------------------------------------------------

    def joinable(self, title: int, now: float) -> SharedStream | None:
        """The open stream a ``title`` arrival at ``now`` may join."""
        stream_id = self._open_by_title.get(title)
        if stream_id is None:
            return None
        stream = self._streams.get(stream_id)
        if stream is None or not stream.accepts(now):
            # The pointer went stale (stream closed, or its window
            # lapsed); drop it so the next lookup short-circuits.
            del self._open_by_title[title]
            return None
        return stream

    def open(self, title: int, now: float, window: float,
             session_id: int) -> SharedStream:
        """Open a new stream for ``session_id`` (the opener joins it)."""
        if window < 0:
            raise ConfigurationError(
                f"window must be >= 0, got {window!r}")
        stream = SharedStream(stream_id=self._next_stream_id, title=title,
                              opened_at=now, window=window,
                              session_ids=[session_id])
        self._next_stream_id += 1
        self._streams[stream.stream_id] = stream
        self._open_by_title[title] = stream.stream_id
        self.streams_total += 1
        self.sessions_total += 1
        return stream

    def join(self, stream: SharedStream, session_id: int) -> None:
        """Fan ``session_id`` out from an open stream."""
        require(stream.stream_id in self._streams,
                f"cannot join closed stream {stream.stream_id}")
        stream.session_ids.append(session_id)
        self.sessions_total += 1

    def leave(self, stream_id: int, session_id: int) -> bool:
        """A member departs; returns True when the stream closed."""
        stream = self.stream(stream_id)
        try:
            stream.session_ids.remove(session_id)
        except ValueError:
            raise ConfigurationError(
                f"session {session_id} is not a member of stream "
                f"{stream_id}") from None
        if stream.session_ids:
            return False
        self._close(stream)
        return True

    def drop_newest(self, count: int) -> list[SharedStream]:
        """Close the ``count`` newest streams; returns them (members
        intact) so the caller can shed the riding sessions."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count!r}")
        victims = sorted(self._streams.values(),
                         key=lambda s: s.stream_id)[::-1][:count]
        for stream in victims:
            self._close(stream)
        return victims

    def dissolve(self) -> list[SharedStream]:
        """Close every stream (the bank died; batching collapses)."""
        return self.drop_newest(len(self._streams))

    def _close(self, stream: SharedStream) -> None:
        del self._streams[stream.stream_id]
        if self._open_by_title.get(stream.title) == stream.stream_id:
            del self._open_by_title[stream.title]
