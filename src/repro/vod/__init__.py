"""Prefix-caching + multicast VoD subsystem.

The paper's cache configuration stores *whole* popular titles on the
MEMS bank.  This package implements the two refinements the follow-up
VoD literature applies to such a tier (see ``PAPERS.md``: dynamic
per-prefix buffer allocation for multicast VoD, and popularity-aware
prefix caching with adaptive dynamic replacement):

* :mod:`repro.vod.prefix` — per-title *prefix* residency sized from the
  disk path's startup latency (bitrate x latency), so MEMS bytes buy
  instant startup instead of whole-title copies;
* :mod:`repro.vod.multicast` — sessions on the same title arriving
  within a prefix's playback window share one IO stream, so the
  planner and admission control account *IO streams*, not sessions;
* :mod:`repro.vod.replacement` — an adaptive replacement policy that
  promotes/demotes/resizes resident prefixes from observed popularity
  at each epoch replan;
* :mod:`repro.vod.placement` — the epoch controller tying the three
  together, mirroring :class:`repro.runtime.placement.AdaptivePlacement`
  for the whole-stream mode.
"""

from repro.vod.multicast import MulticastBatcher, SharedStream
from repro.vod.placement import PrefixDecision, PrefixPlacement
from repro.vod.prefix import (
    PrefixAllocation,
    base_prefix_bytes,
    prefix_seconds,
)
from repro.vod.replacement import AdaptiveReplacement

__all__ = [
    "AdaptiveReplacement",
    "MulticastBatcher",
    "PrefixAllocation",
    "PrefixDecision",
    "PrefixPlacement",
    "SharedStream",
    "base_prefix_bytes",
    "prefix_seconds",
]
