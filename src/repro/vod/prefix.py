"""Prefix-cache sizing: how many MEMS bytes a title's head needs.

Hiding the disk path's startup latency does not need a whole title
resident on the MEMS bank — only its *prefix*: a new session plays the
first seconds from MEMS (one short MEMS cycle away, see
:func:`repro.core.startup.cache_startup`) while its tail IO joins the
disk cycle.  The resident prefix must therefore cover at least the
worst-case direct-path startup (Theorem 1 cycle plus one IO service,
:func:`repro.core.startup.direct_startup`) at the concurrent IO-stream
population, scaled by a safety factor.

A prefix *may* be longer than that floor: every extra resident second
widens the multicast batching window of :mod:`repro.vod.multicast`
(a later session can catch up from MEMS and share the open IO stream),
which is where :mod:`repro.vod.replacement` spends the bank's remaining
bytes on the popular head of the catalogue.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.parameters import SystemParameters
from repro.core.startup import direct_startup
from repro.errors import ConfigurationError, require

#: Startup-latency sizing caps the reference population at this disk
#: bandwidth fraction: beyond it the Theorem 1 cycle diverges and the
#: "cover the startup" rule would ask for unbounded prefixes.
_SIZING_LOAD_CAP = 0.5


def prefix_seconds(params: SystemParameters, *, population: float,
                   safety: float = 2.0, floor: float = 1.0) -> float:
    """Seconds of playback a resident prefix must hold to hide startup.

    ``population`` is the concurrent *IO-stream* population the disk
    path is sized against (clamped to at least one stream and at most
    half the disk's bandwidth capacity, where the cycle-time model is
    well behaved).  ``safety`` scales the worst-case startup bound;
    ``floor`` is the minimum prefix duration regardless of load.
    """
    if population < 0:
        raise ConfigurationError(
            f"population must be >= 0, got {population!r}")
    if safety <= 0:
        raise ConfigurationError(f"safety must be > 0, got {safety!r}")
    if floor < 0:
        raise ConfigurationError(f"floor must be >= 0, got {floor!r}")
    cap = _SIZING_LOAD_CAP * params.r_disk / params.bit_rate
    sizing_n = min(max(population, 1.0), cap)
    latency = direct_startup(params.replace(n_streams=sizing_n)).worst
    return max(safety * latency, floor)


def base_prefix_bytes(params: SystemParameters, *, population: float,
                      safety: float = 2.0, floor: float = 1.0) -> float:
    """Bytes of the startup-covering base prefix: bitrate x latency."""
    return params.bit_rate * prefix_seconds(params, population=population,
                                            safety=safety, floor=floor)


@dataclass(frozen=True)
class PrefixAllocation:
    """Per-title resident prefix bytes under one MEMS byte budget.

    ``prefix_bytes[t]`` is the MEMS residency of title ``t`` (0 when the
    title is not resident at all); every resident prefix is clamped to
    the whole title.  Titles are modelled equal-sized (``title_bytes``
    each), matching the scenario library model.
    """

    prefix_bytes: tuple[float, ...]
    title_bytes: float

    def __post_init__(self) -> None:
        if not self.prefix_bytes:
            raise ConfigurationError("prefix_bytes must be non-empty")
        if self.title_bytes <= 0:
            raise ConfigurationError(
                f"title_bytes must be > 0, got {self.title_bytes!r}")
        for title, size in enumerate(self.prefix_bytes):
            if size < 0 or size > self.title_bytes * (1 + 1e-9):
                raise ConfigurationError(
                    f"prefix of title {title} must be in "
                    f"[0, {self.title_bytes!r}], got {size!r}")

    @property
    def n_titles(self) -> int:
        return len(self.prefix_bytes)

    @property
    def resident_titles(self) -> tuple[int, ...]:
        """Titles with any resident prefix, sorted by id."""
        return tuple(t for t, size in enumerate(self.prefix_bytes)
                     if size > 0)

    @property
    def total_bytes(self) -> float:
        """MEMS bytes the allocation occupies."""
        return float(sum(self.prefix_bytes))

    def byte_fraction(self, title: int) -> float:
        """Resident fraction of one title's bytes, in [0, 1]."""
        require(0 <= title < self.n_titles,
                f"title must be in [0, {self.n_titles}), got {title!r}")
        return min(self.prefix_bytes[title] / self.title_bytes, 1.0)

    def window_seconds(self, title: int, bit_rate: float) -> float:
        """Playback duration of one title's resident prefix."""
        if bit_rate <= 0:
            raise ConfigurationError(
                f"bit_rate must be > 0, got {bit_rate!r}")
        require(0 <= title < self.n_titles,
                f"title must be in [0, {self.n_titles}), got {title!r}")
        return self.prefix_bytes[title] / bit_rate

    def mems_fraction(self, weights) -> float:
        """Expected byte share served from MEMS under ``weights``.

        ``weights`` are per-title access probabilities (summing to 1);
        the expected fraction of a random session's bytes that are
        MEMS-resident is ``sum_t w_t * prefix_t / title_bytes`` — the
        ``h`` the prefix demand model of the planner consumes.
        """
        values = [float(w) for w in weights]
        if len(values) != self.n_titles:
            raise ConfigurationError(
                f"weights must have length {self.n_titles}, "
                f"got {len(values)}")
        if any(w < 0 for w in values):
            raise ConfigurationError("weights must be >= 0")
        total = sum(values)
        if not math.isclose(total, 1.0, rel_tol=1e-6, abs_tol=1e-9):
            raise ConfigurationError(
                f"weights must sum to 1, got {total!r}")
        share = sum(w * self.byte_fraction(t)
                    for t, w in enumerate(values))
        return min(share, 1.0)
