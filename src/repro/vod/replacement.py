"""Adaptive replacement of resident prefixes.

The bank budget is spent greedily down the observed popularity ranking
(the "popularity-aware prefix cache" policy): the hottest titles get a
*full* prefix — the batching-window cap, which maximises multicast
fan-out on the head — the marginal title gets whatever partial prefix
is left (still at least the startup-covering base), and colder titles
get nothing.  Re-running the allocation against fresh scores at each
epoch is what promotes, demotes and resizes prefixes as popularity
drifts.

A hysteresis bonus makes residency sticky: an already-resident title
only loses its slot to a challenger whose score beats it by the
hysteresis margin, so near-ties do not thrash prefixes on and off the
bank every epoch.
"""

from __future__ import annotations

from collections.abc import Collection
from dataclasses import dataclass

from repro.errors import ConfigurationError

from repro.vod.prefix import PrefixAllocation


@dataclass(frozen=True)
class AdaptiveReplacement:
    """Deterministic promote/demote/resize policy (pure: no state).

    The caller (:class:`repro.vod.placement.PrefixPlacement`) owns the
    previous allocation and passes its resident set back in, so one
    policy instance can evaluate several candidate budgets (striped
    vs. replicated) without committing.
    """

    #: Relative score bonus a resident title enjoys when re-ranked.
    hysteresis: float = 0.2

    def __post_init__(self) -> None:
        if self.hysteresis < 0:
            raise ConfigurationError(
                f"hysteresis must be >= 0, got {self.hysteresis!r}")

    def rebalance(self, scores, *, base_bytes: float, max_bytes: float,
                  budget_bytes: float, title_bytes: float,
                  resident: Collection[int] = ()) -> PrefixAllocation:
        """Allocate ``budget_bytes`` of prefixes down the score ranking.

        ``base_bytes`` is the startup-covering minimum a resident title
        must hold; ``max_bytes`` the batching-window cap a hot title may
        grow to (both already clamped to the title size by the caller).
        A title is resident only if at least ``base_bytes`` remain for
        it — a shorter residue could not even hide startup, so it stays
        on the bank unspent rather than buying a useless stub.
        """
        values = [float(s) for s in scores]
        if not values:
            raise ConfigurationError("scores must be non-empty")
        if any(s < 0 for s in values):
            raise ConfigurationError("scores must be >= 0")
        if base_bytes <= 0:
            raise ConfigurationError(
                f"base_bytes must be > 0, got {base_bytes!r}")
        if max_bytes < base_bytes:
            raise ConfigurationError(
                f"max_bytes must be >= base_bytes ({base_bytes!r}), "
                f"got {max_bytes!r}")
        if budget_bytes < 0:
            raise ConfigurationError(
                f"budget_bytes must be >= 0, got {budget_bytes!r}")
        sticky = set(resident)
        bonus = 1.0 + self.hysteresis

        def effective(title: int) -> float:
            score = values[title]
            return score * bonus if title in sticky else score

        # Stable ranking: higher effective score first, lower id on ties.
        ranked = sorted(range(len(values)),
                        key=lambda t: (-effective(t), t))
        prefix = [0.0] * len(values)
        remaining = budget_bytes
        for title in ranked:
            if remaining < base_bytes:
                break
            give = min(max_bytes, remaining)
            prefix[title] = give
            remaining -= give
        return PrefixAllocation(prefix_bytes=tuple(prefix),
                                title_bytes=title_bytes)
