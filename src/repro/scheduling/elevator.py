"""C-LOOK elevator scheduling.

The paper's disk IO scheduler "uses elevator scheduling to optimize for
disk utilization" (Section 5).  This implementation is the circular
LOOK variant: requests are serviced in ascending position order; when
the sweep passes the last request the head returns to the lowest
pending position and sweeps up again.  Within one time cycle all ``N``
requests are known up front, so each cycle is a single sorted sweep —
which is exactly what makes the expected inter-request seek distance
``1 / (N + 1)`` of the stroke for uniformly placed requests (the
latency model of :meth:`repro.devices.disk.DiskDrive.scheduled_latency`).
"""

from __future__ import annotations

from repro.scheduling.requests import IoRequest
from repro.errors import ConfigurationError


class ElevatorScheduler:
    """Orders batches of requests into C-LOOK sweeps."""

    def __init__(self, head_position: float = 0.0) -> None:
        if not 0 <= head_position <= 1:
            raise ConfigurationError(
                f"head_position must be in [0, 1], got {head_position!r}")
        self._head = head_position

    @property
    def head_position(self) -> float:
        """Current normalised head position in [0, 1]."""
        return self._head

    def order(self, requests: list[IoRequest]) -> list[IoRequest]:
        """Return the service order for one sweep over ``requests``.

        Requests at or ahead of the head position are serviced on the
        current ascending sweep; the rest follow after the circular
        wrap, again in ascending order.  The head position is updated
        to the last serviced request.
        """
        if not requests:
            return []
        ahead = sorted((r for r in requests if r.position >= self._head),
                       key=lambda r: (r.position, r.request_id))
        behind = sorted((r for r in requests if r.position < self._head),
                        key=lambda r: (r.position, r.request_id))
        ordered = ahead + behind
        self._head = ordered[-1].position
        return ordered

    def sweep_distance(self, requests: list[IoRequest]) -> float:
        """Total normalised head travel to service ``requests`` in order.

        Does not mutate the head position; useful for comparing
        schedules.
        """
        if not requests:
            return 0.0
        head = self._head
        ahead = sorted(r.position for r in requests if r.position >= head)
        behind = sorted(r.position for r in requests if r.position < head)
        distance = 0.0
        position = head
        for target in ahead:
            distance += target - position
            position = target
        if behind:
            # Circular return to the lowest pending request.
            distance += position - behind[0]
            position = behind[0]
            for target in behind[1:]:
                distance += target - position
                position = target
        return distance
