"""Earliest-Deadline-First scheduling.

EDF is the classic real-time disk scheduler (Daigle & Strosnider, 1994)
the paper cites as the alternative to time-cycle scheduling (Section 6).
It is provided as a comparison baseline: EDF meets deadlines whenever
any scheduler can, but by ignoring head position it seeks more than an
elevator sweep, which is why time-cycle servers prefer elevator order
within a cycle.
"""

from __future__ import annotations

import heapq

from repro.scheduling.requests import IoRequest


class EdfScheduler:
    """Orders requests by deadline; stable on (deadline, arrival)."""

    def __init__(self) -> None:
        self._queue: list[IoRequest] = []

    def submit(self, request: IoRequest) -> None:
        """Add a request to the pending set."""
        heapq.heappush(self._queue, request)

    def submit_all(self, requests: list[IoRequest]) -> None:
        """Add a batch of requests to the pending set."""
        for request in requests:
            self.submit(request)

    def pop(self) -> IoRequest | None:
        """Remove and return the earliest-deadline request, if any."""
        if not self._queue:
            return None
        return heapq.heappop(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    @staticmethod
    def order(requests: list[IoRequest]) -> list[IoRequest]:
        """Return a batch in EDF order without queue state."""
        return sorted(requests)
