"""IO schedulers and admission control.

* :mod:`~repro.scheduling.requests` — the IO request vocabulary.
* :mod:`~repro.scheduling.elevator` — C-LOOK elevator ordering (the
  paper's disk scheduler).
* :mod:`~repro.scheduling.edf` — Earliest-Deadline-First ordering (the
  related-work baseline of Section 6).
* :mod:`~repro.scheduling.time_cycle` — the time-cycle (QPMS) schedule
  builder of Section 3, including the two-level disk/MEMS cycle
  structure of Figures 4 and 5.
* :mod:`~repro.scheduling.admission` — admission control against the
  analytical feasibility bounds.
"""

from repro.scheduling.requests import IoKind, IoRequest
from repro.scheduling.elevator import ElevatorScheduler
from repro.scheduling.edf import EdfScheduler
from repro.scheduling.time_cycle import (
    CycleOperation,
    OperationKind,
    TimeCycleSchedule,
    build_buffer_schedule,
    build_direct_schedule,
)
from repro.scheduling.admission import AdmissionController, AdmissionDecision
from repro.scheduling.sptf import (
    batch_positioning_time,
    positioning_time_matrix,
    sptf_order,
    sptf_speedup,
    x_elevator_order,
)

__all__ = [
    "batch_positioning_time",
    "positioning_time_matrix",
    "sptf_order",
    "sptf_speedup",
    "x_elevator_order",
    "IoKind",
    "IoRequest",
    "ElevatorScheduler",
    "EdfScheduler",
    "CycleOperation",
    "OperationKind",
    "TimeCycleSchedule",
    "build_buffer_schedule",
    "build_direct_schedule",
    "AdmissionController",
    "AdmissionDecision",
]
