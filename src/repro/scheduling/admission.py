"""Admission control for a streaming server.

A server admits a new stream only if the resulting population is still
schedulable: the device keeps bandwidth slack (Theorems 1-4) and the
total DRAM buffer stays within the installed memory.  This module wraps
the analytical feasibility checks behind the interface an operator
would actually call, and is used by the server simulation and the
examples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.buffer_model import design_mems_buffer
from repro.core.cache_model import CachePolicy, design_mems_cache
from repro.core.parameters import SystemParameters
from repro.core.popularity import PopularityDistribution
from repro.core.theorems import min_buffer_disk_dram
from repro.errors import (
    AdmissionError,
    CapacityError,
    ConfigurationError,
)


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of an admission test."""

    admitted: bool
    #: Stream population if admitted (current + 1).
    n_streams: float
    #: Total DRAM the admitted population would need, bytes (None when
    #: the rejection was a bandwidth/capacity failure).
    dram_required: float | None
    #: Human-readable reason for a rejection (None when admitted).
    reason: str | None = None


class AdmissionController:
    """Tracks the admitted population for one server configuration.

    ``configuration`` is ``"none"`` (plain disk-to-DRAM), ``"buffer"``
    (MEMS buffer, Theorem 2), or ``"cache"`` (MEMS cache, Theorems 3/4,
    which also needs ``policy`` and ``popularity``).
    """

    def __init__(self, params: SystemParameters, dram_budget: float, *,
                 configuration: str = "none",
                 policy: CachePolicy | None = None,
                 popularity: PopularityDistribution | None = None) -> None:
        if dram_budget < 0:
            raise ConfigurationError(
                f"dram_budget must be >= 0, got {dram_budget!r}")
        if configuration not in ("none", "buffer", "cache"):
            raise ConfigurationError(
                f"configuration must be 'none', 'buffer' or 'cache', "
                f"got {configuration!r}")
        if configuration == "cache" and (policy is None or popularity is None):
            raise ConfigurationError(
                "cache configuration needs policy and popularity")
        self._params = params.replace(n_streams=0)
        self._dram_budget = dram_budget
        self._configuration = configuration
        self._policy = policy
        self._popularity = popularity
        self._admitted = 0

    @property
    def admitted_streams(self) -> int:
        """Streams currently admitted."""
        return self._admitted

    @property
    def dram_budget(self) -> float:
        """Installed DRAM in bytes."""
        return self._dram_budget

    def _dram_required(self, n: int) -> float:
        params = self._params.replace(n_streams=n)
        if self._configuration == "none":
            return n * min_buffer_disk_dram(params)
        if self._configuration == "buffer":
            return design_mems_buffer(params, quantise=False).total_dram
        assert self._policy is not None and self._popularity is not None
        return design_mems_cache(params, self._policy,
                                 self._popularity).total_dram

    def try_admit(self) -> AdmissionDecision:
        """Test one more stream; admit it if the system stays feasible."""
        candidate = self._admitted + 1
        try:
            dram = self._dram_required(candidate)
        except (AdmissionError, CapacityError) as exc:
            return AdmissionDecision(admitted=False, n_streams=self._admitted,
                                     dram_required=None, reason=str(exc))
        if dram > self._dram_budget:
            return AdmissionDecision(
                admitted=False, n_streams=self._admitted, dram_required=dram,
                reason=(f"DRAM requirement {dram:.6g} B exceeds the budget "
                        f"{self._dram_budget:.6g} B"))
        self._admitted = candidate
        return AdmissionDecision(admitted=True, n_streams=candidate,
                                 dram_required=dram)

    def release(self, count: int = 1) -> None:
        """Return ``count`` streams to the pool (stream departure)."""
        if count < 0 or count > self._admitted:
            raise ConfigurationError(
                f"cannot release {count!r} of {self._admitted} streams")
        self._admitted -= count

    def fill(self) -> int:
        """Admit streams until the first rejection; return the count."""
        while self.try_admit().admitted:
            pass
        return self._admitted
